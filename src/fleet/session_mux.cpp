#include "fleet/session_mux.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "net/dns.hpp"
#include "net/element.hpp"
#include "net/fabric.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace mahimahi::fleet {

namespace {

/// Fixed-precision formatting, same discipline as experiment::Report: a
/// finite double printf'd at fixed precision is a pure function of the
/// value, so byte-identical outcomes serialize to byte-identical text.
void append_outcome_line(std::string& out, const SessionOutcome& o) {
  char buffer[320];
  std::snprintf(buffer, sizeof buffer,
                "session %6d ok=%d plt_ms=%.6f start_ms=%.3f finish_ms=%.3f "
                "objects=%u failed=%u connections=%u bytes=%llu "
                "retries=%u timeouts=%u degraded_plt_ms=%.6f\n",
                o.session_index, o.success ? 1 : 0, o.plt_ms, o.start_ms,
                o.finish_ms, o.objects_loaded, o.objects_failed,
                o.connections_opened,
                static_cast<unsigned long long>(o.bytes_downloaded),
                o.retries, o.timeouts, o.degraded_plt_ms);
  out += buffer;
}

/// Session i's seed: forked from the fleet seed by global index alone —
/// the (fleet_seed, session_index) contract. Removing or re-sharding any
/// other session cannot disturb this value.
std::uint64_t derive_session_seed(std::uint64_t fleet_seed, int index) {
  util::Rng root{fleet_seed};
  return root.fork("session-" + std::to_string(index)).next();
}

}  // namespace

std::string serialize_outcomes(const std::vector<SessionOutcome>& outcomes) {
  std::string out;
  out.reserve(outcomes.size() * 96);
  for (const SessionOutcome& outcome : outcomes) {
    append_outcome_line(out, outcome);
  }
  return out;
}

/// The one namespace every session of a shared-world mux lives in: one
/// fabric, one shell stack, one origin-server farm, one DNS. Browsers are
/// per-session; everything they contend for is here.
struct SessionMux::SharedWorld {
  /// The shared world's fault plan forks from the fleet seed, like its
  /// shells: faults belong to the world, not to any one user, so every
  /// session observes the same flap/crash/DNS schedule regardless of
  /// sharding (a shared world never splits across muxes).
  static std::uint64_t fault_plan_seed(const MuxConfig& config) {
    util::Rng rng{config.fleet_seed ^ config.session.host.seed_salt};
    return rng.fork("fault-plan").next();
  }

  static replay::OriginServerSet::Options origin_options(
      const MuxConfig& config, const fault::FaultPlan& plan) {
    // Shared infrastructure — origin servers, DNS, shells, fault boxes —
    // belongs to no one session: its trace events carry session -1.
    core::SessionConfig shared_session = config.session;
    shared_session.trace_session = -1;
    replay::OriginServerSet::Options options =
        core::session_origin_options(shared_session, config.origin);
    if (plan.active()) {
      options.fault = plan;
    }
    return options;
  }

  SharedWorld(net::EventLoop& loop, const record::RecordStore& store,
              const MuxConfig& config)
      : plan{config.session.fault, fault_plan_seed(config)},
        fabric{loop},
        servers{fabric, store, origin_options(config, plan)},
        dns_server{fabric,
                   net::Address{fabric.allocate_server_ip(), net::kDnsPort},
                   servers.dns_table()} {
    dns_server.set_tracer(config.session.tracer, -1);
    if (plan.spec().dns.any()) {
      dns_server.set_fault_hook([p = plan](std::uint64_t query_index) {
        return p.dns_query_fault(query_index);
      });
    }
    // Fault elements sit innermost, before any shell — same layering as
    // ReplayWorld, so a fault spec means the same thing in both modes.
    if (plan.spec().flap.has_value()) {
      const auto& flap = *plan.spec().flap;
      auto box = std::make_unique<net::FlapBox>(loop, flap.period, flap.down,
                                                flap.offset);
      box->set_tracer(config.session.tracer, -1);
      fabric.chain().push_back(std::move(box));
    }
    if (plan.spec().corrupt.has_value()) {
      auto box = std::make_unique<net::CorruptBox>(
          plan.plan_seed(), plan.spec().corrupt->rate);
      box->set_tracer(config.session.tracer, -1, &loop);
      fabric.chain().push_back(std::move(box));
    }
    // The shared stack's randomness forks from the fleet seed, not from
    // any session: shells belong to the world, not to a user.
    util::Rng rng{config.fleet_seed ^ config.session.host.seed_salt};
    util::Rng shell_rng = rng.fork("shared-world-shells");
    core::apply_shells(fabric, config.session.shells, config.session.host,
                       shell_rng, config.session.tracer, -1);
  }

  fault::FaultPlan plan;
  net::Fabric fabric;
  replay::OriginServerSet servers;
  net::DnsServer dns_server;
};

SessionMux::SessionMux(const record::RecordStore& store, std::string url,
                       MuxConfig config)
    : store_{store}, url_{std::move(url)}, config_{std::move(config)} {
  MAHI_ASSERT_MSG(config_.stagger >= 0, "fleet stagger must be >= 0");
  loop_.set_event_limit(config_.event_limit);
  if (config_.shared_world) {
    shared_ = std::make_unique<SharedWorld>(loop_, store_, config_);
  }
}

SessionMux::~SessionMux() = default;

void SessionMux::add_session(int global_index) {
  MAHI_ASSERT_MSG(!ran_, "add_session after run()");
  MAHI_ASSERT_MSG(global_index >= 0, "session index must be >= 0");
  for (const Slot& slot : slots_) {
    MAHI_ASSERT_MSG(slot.global_index != global_index,
                    "session " << global_index << " enrolled twice");
  }
  slots_.emplace_back();
  Slot& slot = slots_.back();
  slot.global_index = global_index;
  slot.start_at = config_.stagger * global_index;
  slot.session_seed = derive_session_seed(config_.fleet_seed, global_index);
}

void SessionMux::admit(Slot& slot) {
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  slot.clock = net::SessionClock{loop_, loop_.now()};
  slot.outcome.session_index = slot.global_index;
  slot.outcome.start_ms = to_ms(loop_.now());

  core::SessionConfig session = config_.session;
  session.seed = slot.session_seed;
  // Trace attribution: this session's events carry its global fleet index
  // (shared infrastructure logs as -1; see SharedWorld).
  session.trace_session = slot.global_index;

  auto on_done = [this, &slot](web::PageLoadResult result) {
    complete(slot, std::move(result));
  };
  if (config_.shared_world) {
    // Shared world: this session is one more user of the common
    // namespace. Its randomness still forks from its own seed, so the
    // user population is reproducible independent of arrival interleaving.
    util::Rng rng = core::session_load_rng(session, 0);
    slot.browser = std::make_unique<web::Browser>(
        shared_->fabric, shared_->dns_server.address(),
        core::session_browser_config(session), rng.fork("browser"));
    slot.browser->load(url_, std::move(on_done));
  } else {
    slot.world = std::make_unique<core::ReplayWorld>(loop_, store_, session,
                                                     config_.origin, 0);
    slot.world->browser().load(url_, std::move(on_done));
  }
}

void SessionMux::complete(Slot& slot, web::PageLoadResult result) {
  MAHI_ASSERT_MSG(!slot.done, "session completed twice");
  MAHI_ASSERT(live_ > 0);
  --live_;
  slot.done = true;
  // Timer-isolation audit: the load must have finished on its own session
  // clock — exactly page_load_time after this session's admission, no
  // matter how many sibling sessions shared the loop.
  MAHI_ASSERT_MSG(slot.clock.now() == result.page_load_time,
                  "session " << slot.global_index
                             << " finished off its own clock");
  MAHI_ASSERT_MSG(result.started_at == slot.clock.origin(),
                  "session " << slot.global_index
                             << " load started off its admission time");
  SessionOutcome& o = slot.outcome;
  o.success = result.success ? 1 : 0;
  o.plt_ms = to_ms(result.page_load_time);
  o.finish_ms = to_ms(loop_.now());
  o.objects_loaded = static_cast<std::uint32_t>(result.objects_loaded);
  o.objects_failed = static_cast<std::uint32_t>(result.objects_failed);
  o.connections_opened =
      static_cast<std::uint32_t>(result.connections_opened);
  o.bytes_downloaded = result.bytes_downloaded;
  o.retries = static_cast<std::uint32_t>(result.retries);
  o.timeouts = static_cast<std::uint32_t>(result.timeouts);
  o.degraded_plt_ms = to_ms(result.degraded_page_load_time);
  if (config_.shared_world) {
    // Retire the browser once the loop is past its frames: destroying it
    // inside its own completion callback would unwind into freed state.
    // Its world (the shared one) stays; in isolated mode the whole world
    // is kept until the loop drains — packets still in flight hold events
    // that reference its elements.
    web::Browser* browser = slot.browser.get();
    loop_.schedule_in(0, [&slot, browser] {
      MAHI_ASSERT(slot.browser.get() == browser);
      slot.browser.reset();
    });
  }
}

std::vector<SessionOutcome> SessionMux::run() {
  MAHI_ASSERT_MSG(!ran_, "SessionMux::run is one-shot");
  ran_ = true;
  for (Slot& slot : slots_) {
    loop_.schedule_at(slot.start_at, [this, &slot] { admit(slot); });
  }
  if (config_.session.deadline > 0) {
    // Watchdog over the whole mux: a shared-world fleet is one
    // indivisible simulation, so the deadline covers every session. An
    // unfinished fleet becomes a typed failure listing how far it got.
    loop_.run_until(config_.session.deadline);
    std::size_t done = 0;
    for (const Slot& slot : slots_) {
      done += slot.done ? 1 : 0;
    }
    if (done != slots_.size()) {
      if (config_.session.tracer != nullptr) {
        config_.session.tracer->event(
            config_.session.deadline, obs::Layer::kRunner,
            obs::EventKind::kWatchdogExpired, -1, 0, done,
            to_ms(config_.session.deadline), url_);
      }
      throw core::WatchdogError{
          "watchdog: fleet load exceeded " +
          std::to_string(config_.session.deadline / 1000) +
          " ms of virtual time (" + std::to_string(done) + "/" +
          std::to_string(slots_.size()) + " sessions complete)"};
    }
  } else {
    loop_.run();
  }

  std::vector<SessionOutcome> outcomes;
  outcomes.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    if (!slot.done) {
      throw std::runtime_error{
          "fleet session " + std::to_string(slot.global_index) +
          " never completed (event loop drained)"};
    }
    outcomes.push_back(slot.outcome);
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const SessionOutcome& a, const SessionOutcome& b) {
              return a.session_index < b.session_index;
            });
  // Worlds are torn down here, in enrollment order, with the loop idle —
  // deterministic and safe (no event can reference them anymore).
  slots_.clear();
  return outcomes;
}

}  // namespace mahimahi::fleet
