#pragma once

#include <string>
#include <vector>

#include "core/parallel_runner.hpp"
#include "fleet/session_mux.hpp"

namespace mahimahi::fleet {

/// A fleet: N emulated users, each an independent replay session, sharded
/// over `shards` event loops which run as ParallelRunner tasks.
struct FleetSpec {
  int sessions{1};
  /// Number of SessionMux loops. Session i is assigned to loop i % shards
  /// — but because seeds and arrival times are pure functions of i, the
  /// assignment (and the thread count under it) never changes any
  /// session's bytes. shards <= 0 selects the runner's thread count.
  int shards{0};
  /// Arrival spacing between consecutive global indices (offered load:
  /// one session every `stagger` microseconds of simulated time).
  Microseconds stagger{1'000};
  std::uint64_t seed{1};
  /// Per-session template (shells, host, browser model, cc), seed ignored.
  core::SessionConfig session{};
  replay::OriginServerSet::Options origin{};
};

/// Everything a fleet run produced. The per-session outcomes (and
/// everything derived from them: percentiles, failure counts, peak
/// concurrency) are deterministic; only the wall-clock throughput figures
/// depend on the host.
struct FleetResult {
  std::vector<SessionOutcome> sessions;  // global-index order
  int shards{0};
  std::size_t failed{0};
  double plt_p50_ms{0};
  double plt_p95_ms{0};
  /// Peak number of sessions simultaneously in flight across the whole
  /// fleet, measured on simulated time from the outcome intervals — a
  /// pure function of the outcomes, independent of sharding.
  std::size_t peak_concurrent{0};
  // --- host-dependent (excluded from serialization) ---------------------
  double wall_seconds{0};
  double sessions_per_second{0};
  double page_loads_per_second{0};
};

/// Run a fleet: shard sessions over muxes, fan the muxes across the
/// runner (nullptr = the process-wide pool), merge outcomes by global
/// index. Byte-identity contract: FleetResult::sessions — and its
/// serialize_outcomes() bytes — are identical for any `shards` value and
/// any runner thread count.
FleetResult run_fleet(const record::RecordStore& store, const std::string& url,
                      const FleetSpec& spec,
                      core::ParallelRunner* runner = nullptr);

/// Peak overlap of [start, finish] intervals — exposed for tests.
std::size_t peak_concurrency(const std::vector<SessionOutcome>& outcomes);

}  // namespace mahimahi::fleet
