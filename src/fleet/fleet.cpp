#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/statistics.hpp"

namespace mahimahi::fleet {

std::size_t peak_concurrency(const std::vector<SessionOutcome>& outcomes) {
  // Interval sweep over (start, finish) edges: +1 at each start, -1 at
  // each finish, starts before finishes at equal times (a session that
  // arrives the instant another retires does overlap it for an instant).
  std::vector<std::pair<double, int>> edges;
  edges.reserve(outcomes.size() * 2);
  for (const SessionOutcome& o : outcomes) {
    edges.emplace_back(o.start_ms, +1);
    edges.emplace_back(o.finish_ms, -1);
  }
  std::sort(edges.begin(), edges.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second > b.second;  // +1 edges first
            });
  std::size_t live = 0;
  std::size_t peak = 0;
  for (const auto& [at, delta] : edges) {
    if (delta > 0) {
      ++live;
      peak = std::max(peak, live);
    } else {
      MAHI_ASSERT(live > 0);
      --live;
    }
  }
  return peak;
}

FleetResult run_fleet(const record::RecordStore& store, const std::string& url,
                      const FleetSpec& spec, core::ParallelRunner* runner) {
  if (spec.sessions < 1) {
    throw std::invalid_argument{"fleet needs at least one session"};
  }
  core::ParallelRunner& pool =
      runner != nullptr ? *runner : core::ParallelRunner::shared();
  int shards = spec.shards > 0 ? spec.shards : pool.thread_count();
  shards = std::min(shards, spec.sessions);

  const auto wall_start = std::chrono::steady_clock::now();

  // Shard s owns sessions {i : i % shards == s}. Each shard is one
  // SessionMux (one event loop) and one pool task; because every
  // session's seed and arrival time derive from its global index alone,
  // this assignment is arbitrary — any other partition produces the same
  // per-session bytes, which is exactly what the selfcheck re-verifies.
  std::vector<std::vector<SessionOutcome>> per_shard =
      pool.map(shards, [&](int shard) {
        MuxConfig config;
        config.fleet_seed = spec.seed;
        config.stagger = spec.stagger;
        config.session = spec.session;
        config.origin = spec.origin;
        config.shared_world = false;
        SessionMux mux{store, url, config};
        for (int i = shard; i < spec.sessions; i += shards) {
          mux.add_session(i);
        }
        return mux.run();
      });

  const auto wall_end = std::chrono::steady_clock::now();

  FleetResult result;
  result.shards = shards;
  result.sessions.reserve(static_cast<std::size_t>(spec.sessions));
  for (const std::vector<SessionOutcome>& shard : per_shard) {
    result.sessions.insert(result.sessions.end(), shard.begin(), shard.end());
  }
  std::sort(result.sessions.begin(), result.sessions.end(),
            [](const SessionOutcome& a, const SessionOutcome& b) {
              return a.session_index < b.session_index;
            });
  MAHI_ASSERT_MSG(result.sessions.size() ==
                      static_cast<std::size_t>(spec.sessions),
                  "fleet lost sessions across shards");

  util::Samples plts;
  std::size_t loads = 0;
  for (const SessionOutcome& o : result.sessions) {
    if (o.success != 0) {
      plts.add(o.plt_ms);
      ++loads;
    } else {
      ++result.failed;
    }
  }
  if (!plts.empty()) {
    result.plt_p50_ms = plts.percentile(50.0);
    result.plt_p95_ms = plts.percentile(95.0);
  }
  result.peak_concurrent = peak_concurrency(result.sessions);

  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_seconds > 0) {
    result.sessions_per_second = spec.sessions / result.wall_seconds;
    result.page_loads_per_second =
        static_cast<double>(loads) / result.wall_seconds;
  }
  return result;
}

}  // namespace mahimahi::fleet
