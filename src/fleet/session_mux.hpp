#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/sessions.hpp"
#include "net/event_loop.hpp"
#include "record/store.hpp"

namespace mahimahi::fleet {

/// Everything one emulated user's page load produced, in fixed-width
/// numeric fields so a fleet of outcomes serializes byte-identically
/// regardless of shard assignment or thread count (the fleet determinism
/// contract). All times are simulated.
struct SessionOutcome {
  int session_index{-1};  // global fleet index, the determinism anchor
  char success{0};
  double plt_ms{0};
  /// Arrival and completion on the *fleet* clock (the shared loop's
  /// epoch): start_ms = stagger * session_index by construction, and
  /// finish_ms - start_ms equals plt_ms — SessionMux asserts it, proving
  /// the session's events never ran on another session's clock.
  double start_ms{0};
  double finish_ms{0};
  std::uint32_t objects_loaded{0};
  std::uint32_t objects_failed{0};
  std::uint32_t connections_opened{0};
  std::uint64_t bytes_downloaded{0};
  /// Resilience accounting (fault axis): retry attempts and deadline
  /// expiries the session's browser recorded, and its graceful-degradation
  /// PLT (== plt_ms for clean loads).
  std::uint32_t retries{0};
  std::uint32_t timeouts{0};
  double degraded_plt_ms{0};
};

/// One line per session, fixed precision, in session-index order — the
/// byte-comparison payload of the fleet selfcheck and determinism tests.
std::string serialize_outcomes(const std::vector<SessionOutcome>& outcomes);

/// Knobs of one mux (one event loop's worth of sessions).
struct MuxConfig {
  /// Root of the fleet's seed tree. Session i's SessionConfig seed is
  /// forked as (fleet_seed, i) — a pure function of the *global* session
  /// index, never of the shard it lands on or the order it was enrolled.
  std::uint64_t fleet_seed{1};
  /// Arrival spacing: session i is admitted at loop time stagger * i —
  /// again a function of the global index, so re-sharding a fleet never
  /// moves a session's arrival.
  Microseconds stagger{1'000};
  /// Template for every session: shells, host profile, browser model,
  /// congestion control. The per-session seed is filled in by the mux.
  core::SessionConfig session{};
  /// Replay server-farm knobs, passed through to every session's world.
  replay::OriginServerSet::Options origin{};
  /// false: every session runs in its own connection namespace (fabric,
  ///   origin servers, DNS, shells) — sessions share only the loop, and
  ///   their results are byte-identical under any shard assignment.
  /// true: all sessions share ONE namespace — one fabric, one shell
  ///   stack, one origin-server farm — so concurrent users contend for
  ///   servers and link bandwidth (the experiment engine's offered-load
  ///   axis). A shared world is one indivisible simulation: it is
  ///   deterministic as a whole, but its sessions are not individually
  ///   relocatable, so it must never be split across muxes.
  bool shared_world{false};
  /// Safety valve forwarded to the loop (see EventLoop::set_event_limit).
  std::size_t event_limit{2'000'000'000};
};

/// Multiplexes many independent replay sessions onto ONE event loop — the
/// fleet-scale unit of concurrency. Each enrolled session is admitted at
/// its arrival time, runs a full page load, and retires; the mux reports
/// one SessionOutcome per session in global-index order.
///
/// Isolation contract (isolated mode): a session's world is its own
/// core::ReplayWorld — its own fabric (socket namespace), server farm,
/// DNS and browser — created on admission. Worlds share nothing but the
/// loop; event ids are (slot, generation)-validated, so one session
/// cancelling its timers can never touch another's. The only cross-session
/// coupling is the loop's tie-break order for same-timestamp events, which
/// no simulation result depends on. Hence: per-session results are a pure
/// function of (fleet_seed, session_index, session template), regardless
/// of which mux — or how many sibling sessions — a session runs with.
class SessionMux {
 public:
  /// `url` is loaded once per session from `store` (shared, read-only).
  SessionMux(const record::RecordStore& store, std::string url,
             MuxConfig config);
  ~SessionMux();

  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  /// Enroll the session with the given *global* fleet index. Indices must
  /// be distinct; they need not be contiguous — a shard enrolls only its
  /// own subset (e.g. every k-th index).
  void add_session(int global_index);

  [[nodiscard]] std::size_t session_count() const { return slots_.size(); }

  /// Run every enrolled session to completion (one call per mux).
  /// Returns outcomes sorted by global session index.
  std::vector<SessionOutcome> run();

  /// Peak number of sessions simultaneously in flight on this loop during
  /// run() — the mux's realized concurrency.
  [[nodiscard]] std::size_t peak_live_sessions() const { return peak_live_; }

  [[nodiscard]] const net::EventLoop& loop() const { return loop_; }

 private:
  struct Slot {
    int global_index{0};
    Microseconds start_at{0};
    std::uint64_t session_seed{0};
    /// Isolated mode: the session's whole world. Worlds are torn down
    /// together after the loop drains — never mid-run, because packets in
    /// flight hold scheduled events that reference the world's elements.
    std::unique_ptr<core::ReplayWorld> world;
    /// Shared-world mode: only the browser is per-session.
    std::unique_ptr<web::Browser> browser;
    net::SessionClock clock{};
    SessionOutcome outcome{};
    bool done{false};
  };

  /// The shared namespace (shared_world mode only).
  struct SharedWorld;

  void admit(Slot& slot);
  void complete(Slot& slot, web::PageLoadResult result);

  const record::RecordStore& store_;
  std::string url_;
  MuxConfig config_;
  net::EventLoop loop_;
  std::unique_ptr<SharedWorld> shared_;
  std::deque<Slot> slots_;  // stable addresses: admission events hold Slot&
  std::size_t live_{0};
  std::size_t peak_live_{0};
  bool ran_{false};
};

}  // namespace mahimahi::fleet
