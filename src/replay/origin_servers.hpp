#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "net/dns.hpp"
#include "net/http_session.hpp"
#include "net/mux.hpp"
#include "replay/matcher.hpp"

namespace mahimahi::replay {

/// ReplayShell's server farm.
///
/// Multi-origin mode (the paper's contribution): one web server per
/// distinct (IP, port) pair seen while recording, each bound to the same
/// address as its recorded counterpart, each able to serve the *entire*
/// recorded corpus through the Matcher. DNS maps every recorded hostname
/// to its recorded IP.
///
/// Single-server mode (the paper's Table 2 / Figure 3 ablation): all
/// content served from one IP; DNS maps every hostname to it.
class OriginServerSet {
 public:
  struct Options {
    bool single_server{false};
    /// Address used in single-server mode (one listener per recorded port).
    net::Ipv4 single_server_ip{net::Ipv4{10, 200, 0, 1}};
    /// Per-request latency: Apache dispatch + CGI matcher run.
    Microseconds processing_delay{1'500};
    /// Per-Apache-instance prefork pool: a freshly spawned server has a
    /// few spare workers and grows the pool at a bounded rate; keep-alive
    /// connections hold workers. Multi-origin replay sees at most the
    /// browser's six connections per instance and never starves; the
    /// single-server ablation funnels every connection into one cold pool
    /// — the mechanism behind Table 2 and Figure 3.
    /// Calibrated against the paper's Table 2 (see EXPERIMENTS.md):
    /// Apache prefork starts ~3 ready processes and grows the pool slowly.
    net::WorkerPool worker_pool{.initial_workers = 3,
                                .max_workers = 256,
                                .spawn_interval = 27'000};
    /// Speak the SPDY-like multiplexed protocol instead of HTTP/1.1 —
    /// pair with web::AppProtocol::kMultiplexed on the browser. With one
    /// connection per client the prefork pool is irrelevant and not
    /// applied.
    bool multiplexed{false};
    /// Transport knobs for every origin's accepted connections. The
    /// congestion controller named here shapes the downlink (response
    /// bytes) — the side that dominates page-load time.
    net::TcpConnection::Config tcp{};
    /// Per-origin controller fleet (ROADMAP's mixed-CC axis): when
    /// non-empty, origin server j — in spawn order, which follows
    /// RecordStore::distinct_servers()' sorted (IP, port) order and is
    /// therefore deterministic — serves responses under
    /// cc_fleet[j % size()] instead of tcp.congestion_control.
    std::vector<std::string> cc_fleet;
    /// Hostname-targeted override, applied after cc_fleet: every origin
    /// server whose recorded IP backs `hostname` serves under the named
    /// controller. Lets a spec pin "www.site.test runs bbr" regardless of
    /// spawn order. Strict by construction: a hostname matching nothing
    /// in the store throws, as do two co-recorded hostnames pinning the
    /// same IP to different controllers (servers are per-IP; an ambiguous
    /// pin must never silently measure the wrong fleet).
    std::map<std::string, std::string> cc_by_origin;
    /// Origin-fault plan: when active, every spawned server consults it
    /// per request (crash mid-response / stall / slow-start), keyed by the
    /// server's deterministic spawn index so origins fail independently.
    fault::FaultPlan fault{};
  };

  OriginServerSet(net::Fabric& fabric, const record::RecordStore& store,
                  Options options);
  OriginServerSet(net::Fabric& fabric, const record::RecordStore& store)
      : OriginServerSet(fabric, store, Options{}) {}

  /// Hostname bindings ReplayShell installs in the namespace's DNS.
  [[nodiscard]] const net::DnsTable& dns_table() const { return dns_; }

  /// Number of web servers spawned (paper: one per recorded IP/port).
  [[nodiscard]] std::size_t server_count() const {
    return servers_.size() + mux_servers_.size();
  }

  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t connections_accepted() const;

  /// Controller each spawned server serves under, in spawn order —
  /// introspection for tests and the experiment report (mixed fleets).
  [[nodiscard]] const std::vector<std::string>& server_controllers() const {
    return server_controllers_;
  }

  [[nodiscard]] const Matcher& matcher() const { return matcher_; }

 private:
  Matcher matcher_;
  net::DnsTable dns_;
  std::vector<std::unique_ptr<net::HttpServer>> servers_;
  std::vector<std::unique_ptr<net::mux::MuxServer>> mux_servers_;
  std::vector<std::string> server_controllers_;
};

}  // namespace mahimahi::replay
