#pragma once

#include <memory>
#include <vector>

#include "net/dns.hpp"
#include "net/http_session.hpp"
#include "net/mux.hpp"
#include "replay/matcher.hpp"

namespace mahimahi::replay {

/// ReplayShell's server farm.
///
/// Multi-origin mode (the paper's contribution): one web server per
/// distinct (IP, port) pair seen while recording, each bound to the same
/// address as its recorded counterpart, each able to serve the *entire*
/// recorded corpus through the Matcher. DNS maps every recorded hostname
/// to its recorded IP.
///
/// Single-server mode (the paper's Table 2 / Figure 3 ablation): all
/// content served from one IP; DNS maps every hostname to it.
class OriginServerSet {
 public:
  struct Options {
    bool single_server{false};
    /// Address used in single-server mode (one listener per recorded port).
    net::Ipv4 single_server_ip{net::Ipv4{10, 200, 0, 1}};
    /// Per-request latency: Apache dispatch + CGI matcher run.
    Microseconds processing_delay{1'500};
    /// Per-Apache-instance prefork pool: a freshly spawned server has a
    /// few spare workers and grows the pool at a bounded rate; keep-alive
    /// connections hold workers. Multi-origin replay sees at most the
    /// browser's six connections per instance and never starves; the
    /// single-server ablation funnels every connection into one cold pool
    /// — the mechanism behind Table 2 and Figure 3.
    /// Calibrated against the paper's Table 2 (see EXPERIMENTS.md):
    /// Apache prefork starts ~3 ready processes and grows the pool slowly.
    net::WorkerPool worker_pool{.initial_workers = 3,
                                .max_workers = 256,
                                .spawn_interval = 27'000};
    /// Speak the SPDY-like multiplexed protocol instead of HTTP/1.1 —
    /// pair with web::AppProtocol::kMultiplexed on the browser. With one
    /// connection per client the prefork pool is irrelevant and not
    /// applied.
    bool multiplexed{false};
    /// Transport knobs for every origin's accepted connections. The
    /// congestion controller named here shapes the downlink (response
    /// bytes) — the side that dominates page-load time.
    net::TcpConnection::Config tcp{};
  };

  OriginServerSet(net::Fabric& fabric, const record::RecordStore& store,
                  Options options);
  OriginServerSet(net::Fabric& fabric, const record::RecordStore& store)
      : OriginServerSet(fabric, store, Options{}) {}

  /// Hostname bindings ReplayShell installs in the namespace's DNS.
  [[nodiscard]] const net::DnsTable& dns_table() const { return dns_; }

  /// Number of web servers spawned (paper: one per recorded IP/port).
  [[nodiscard]] std::size_t server_count() const {
    return servers_.size() + mux_servers_.size();
  }

  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t connections_accepted() const;

  [[nodiscard]] const Matcher& matcher() const { return matcher_; }

 private:
  Matcher matcher_;
  net::DnsTable dns_;
  std::vector<std::unique_ptr<net::HttpServer>> servers_;
  std::vector<std::unique_ptr<net::mux::MuxServer>> mux_servers_;
};

}  // namespace mahimahi::replay
