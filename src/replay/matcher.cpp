#include "replay/matcher.hpp"

#include "util/strings.hpp"

namespace mahimahi::replay {
namespace {

std::string host_path_key(std::string_view host, std::string_view path) {
  std::string key{host};
  key += '\0';
  key += path;
  return key;
}

}  // namespace

std::size_t common_query_prefix(std::string_view a, std::string_view b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) {
    ++i;
  }
  return i;
}

Matcher::Matcher(const record::RecordStore& store) {
  for (const auto& exchange : store.exchanges()) {
    by_host_path_[host_path_key(exchange.host(), exchange.path())].push_back(
        &exchange);
    ++indexed_;
  }
}

const record::RecordedExchange* Matcher::find(const http::Request& request) const {
  const auto [path, query] = util::split_once(request.target, '?');
  const auto it = by_host_path_.find(host_path_key(request.host(), path));
  if (it == by_host_path_.end()) {
    return nullptr;
  }
  const record::RecordedExchange* best = nullptr;
  // Score: exact query beats everything; otherwise longest common query
  // prefix, with method equality as the tie-break. `>` keeps the earliest
  // recorded candidate on full ties (deterministic).
  long best_score = -1;
  for (const auto* candidate : it->second) {
    const std::string candidate_query = candidate->query();
    long score = 0;
    if (candidate_query == query) {
      score = 1'000'000'000L;
    } else {
      score = static_cast<long>(common_query_prefix(candidate_query, query)) * 2;
    }
    if (candidate->request.method == request.method) {
      score += 1;
    }
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

http::Response Matcher::respond(const http::Request& request) const {
  if (const auto* exchange = find(request)) {
    return exchange->response;
  }
  return http::make_not_found(request.target);
}

}  // namespace mahimahi::replay
