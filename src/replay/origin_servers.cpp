#include "replay/origin_servers.hpp"

#include <set>

#include "util/logging.hpp"

namespace mahimahi::replay {

OriginServerSet::OriginServerSet(net::Fabric& fabric,
                                 const record::RecordStore& store,
                                 Options options)
    : matcher_{store} {
  // Every server shares one handler: match against the whole corpus.
  const auto handler = [this](const http::Request& request) {
    return matcher_.respond(request);
  };

  const auto spawn = [&](const net::Address& address) {
    if (options.multiplexed) {
      mux_servers_.push_back(std::make_unique<net::mux::MuxServer>(
          fabric, address, handler, options.processing_delay,
          net::mux::MuxServer::kDefaultChunkBytes, options.tcp));
    } else {
      servers_.push_back(std::make_unique<net::HttpServer>(
          fabric, address, handler, options.processing_delay, options.tcp));
      servers_.back()->set_worker_pool(options.worker_pool);
    }
  };

  if (options.single_server) {
    // One IP; one listener per distinct recorded port (80, 443, ...).
    std::set<std::uint16_t> ports;
    for (const auto& address : store.distinct_servers()) {
      ports.insert(address.port);
    }
    if (ports.empty()) {
      ports.insert(80);
    }
    for (const auto port : ports) {
      spawn(net::Address{options.single_server_ip, port});
    }
    for (const auto& [host, ip] : store.host_bindings()) {
      (void)ip;  // every name resolves to the single server
      dns_.add(host, options.single_server_ip);
    }
    MAHI_INFO("replay") << "single-server mode: " << server_count()
                        << " listener(s), " << dns_.size() << " DNS names";
    return;
  }

  // Multi-origin mode: mirror the recorded server topology exactly.
  for (const auto& address : store.distinct_servers()) {
    spawn(address);
  }
  for (const auto& [host, ip] : store.host_bindings()) {
    dns_.add(host, ip);
  }
  MAHI_INFO("replay") << "multi-origin mode: " << server_count()
                      << " servers, " << dns_.size() << " DNS names";
}

std::uint64_t OriginServerSet::requests_served() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->requests_served();
  }
  for (const auto& server : mux_servers_) {
    total += server->requests_served();
  }
  return total;
}

std::uint64_t OriginServerSet::connections_accepted() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->total_accepted();
  }
  for (const auto& server : mux_servers_) {
    total += server->total_accepted();
  }
  return total;
}

}  // namespace mahimahi::replay
