#include "replay/origin_servers.hpp"

#include <set>
#include <stdexcept>

#include "cc/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mahimahi::replay {

OriginServerSet::OriginServerSet(net::Fabric& fabric,
                                 const record::RecordStore& store,
                                 Options options)
    : matcher_{store} {
  // Every server shares one handler: match against the whole corpus.
  const auto handler = [this](const http::Request& request) {
    return matcher_.respond(request);
  };

  // Hostname-targeted controller overrides resolve to recorded IPs once.
  // An entry matching no recorded hostname is a configuration error, not
  // a no-op: a typo must never silently measure the wrong fleet.
  std::map<net::Ipv4, std::string> cc_by_ip;
  if (!options.cc_by_origin.empty()) {
    std::set<std::string> matched;
    for (const auto& [host, ip] : store.host_bindings()) {
      const auto it = options.cc_by_origin.find(host);
      if (it != options.cc_by_origin.end()) {
        // Servers are per-IP, so two hostnames co-recorded on one IP
        // cannot be pinned to *different* controllers — refuse the
        // ambiguity rather than keep whichever binding enumerates first.
        const auto [existing, inserted] = cc_by_ip.emplace(ip, it->second);
        if (!inserted && existing->second != it->second) {
          throw std::invalid_argument{
              "cc_by_origin pins '" + host + "' to '" + it->second +
              "', but another hostname on the same recorded IP is pinned "
              "to '" + existing->second + "'"};
        }
        matched.insert(it->first);
      }
    }
    for (const auto& [host, controller] : options.cc_by_origin) {
      (void)controller;
      if (matched.count(host) == 0) {
        throw std::invalid_argument{
            "cc_by_origin names '" + host +
            "', which matches no recorded hostname in this store"};
      }
    }
  }

  const auto spawn = [&](const net::Address& address) {
    net::TcpConnection::Config tcp = options.tcp;
    if (!options.cc_fleet.empty()) {
      tcp.congestion_control =
          options.cc_fleet[server_controllers_.size() %
                           options.cc_fleet.size()];
    }
    if (const auto it = cc_by_ip.find(address.ip); it != cc_by_ip.end()) {
      tcp.congestion_control = it->second;
    }
    server_controllers_.push_back(tcp.congestion_control.empty()
                                      ? std::string{cc::kDefaultController}
                                      : tcp.congestion_control);
    // Origin faults: each server decides per request via the plan, keyed
    // by its spawn index (deterministic: spawn order follows the store's
    // sorted distinct_servers()).
    net::ServerFaultHook fault_hook;
    if (options.fault.active() && options.fault.spec().origin.any()) {
      const std::size_t server_index = server_controllers_.size() - 1;
      fault_hook = [plan = options.fault,
                    server_index](std::uint64_t request_index) {
        return plan.server_fault(server_index, request_index);
      };
      if (options.tcp.tracer != nullptr) {
        // Tracing wrap: every injected origin fault becomes a fault-layer
        // event tagged with the injector ("origin/crash" or
        // "origin/stall"), the server's spawn index as the flow and the
        // request index as the decision-stream position.
        fault_hook = [inner = std::move(fault_hook),
                      tracer = options.tcp.tracer,
                      session = options.tcp.trace_session,
                      loop = &fabric.loop(),
                      server_index](std::uint64_t request_index) {
          const net::ServerFault fault = inner(request_index);
          if (fault.kind != net::ServerFault::Kind::kNone) {
            tracer->event(loop->now(), obs::Layer::kFault,
                          obs::EventKind::kFaultInjected, session,
                          server_index, request_index, 0,
                          fault.kind == net::ServerFault::Kind::kCrash
                              ? "origin/crash"
                              : "origin/stall");
          }
          return fault;
        };
      }
    }
    if (options.multiplexed) {
      mux_servers_.push_back(std::make_unique<net::mux::MuxServer>(
          fabric, address, handler, options.processing_delay,
          net::mux::MuxServer::kDefaultChunkBytes, tcp));
      if (fault_hook) {
        mux_servers_.back()->set_fault_hook(std::move(fault_hook));
      }
    } else {
      servers_.push_back(std::make_unique<net::HttpServer>(
          fabric, address, handler, options.processing_delay, tcp));
      servers_.back()->set_worker_pool(options.worker_pool);
      if (fault_hook) {
        servers_.back()->set_fault_hook(std::move(fault_hook));
      }
    }
  };

  if (options.single_server) {
    // One IP; one listener per distinct recorded port (80, 443, ...).
    std::set<std::uint16_t> ports;
    for (const auto& address : store.distinct_servers()) {
      ports.insert(address.port);
    }
    if (ports.empty()) {
      ports.insert(80);
    }
    for (const auto port : ports) {
      spawn(net::Address{options.single_server_ip, port});
    }
    for (const auto& [host, ip] : store.host_bindings()) {
      (void)ip;  // every name resolves to the single server
      dns_.add(host, options.single_server_ip);
    }
    MAHI_INFO("replay") << "single-server mode: " << server_count()
                        << " listener(s), " << dns_.size() << " DNS names";
    return;
  }

  // Multi-origin mode: mirror the recorded server topology exactly.
  for (const auto& address : store.distinct_servers()) {
    spawn(address);
  }
  for (const auto& [host, ip] : store.host_bindings()) {
    dns_.add(host, ip);
  }
  MAHI_INFO("replay") << "multi-origin mode: " << server_count()
                      << " servers, " << dns_.size() << " DNS names";
}

std::uint64_t OriginServerSet::requests_served() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->requests_served();
  }
  for (const auto& server : mux_servers_) {
    total += server->requests_served();
  }
  return total;
}

std::uint64_t OriginServerSet::connections_accepted() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->total_accepted();
  }
  for (const auto& server : mux_servers_) {
    total += server->total_accepted();
  }
  return total;
}

}  // namespace mahimahi::replay
