#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "record/store.hpp"

namespace mahimahi::replay {

/// The request-matching algorithm of ReplayShell's CGI script.
///
/// Every replayed server runs this against the *entire* recorded corpus
/// (each Apache in the paper can access all recorded content). Matching
/// rules, mirroring mahimahi's replayserver:
///   1. candidates = recorded exchanges with the same host and same path;
///   2. an exact query-string match wins outright;
///   3. otherwise the candidate sharing the longest common query prefix
///      wins (same HTTP method breaks ties);
///   4. no same-host-and-path candidate -> no match (the server answers
///      404, which is what the real CGI does).
class Matcher {
 public:
  explicit Matcher(const record::RecordStore& store);

  /// Best recorded exchange for this request, or nullptr.
  [[nodiscard]] const record::RecordedExchange* find(
      const http::Request& request) const;

  /// find() + materialize the response (recorded one, or 404).
  [[nodiscard]] http::Response respond(const http::Request& request) const;

  [[nodiscard]] std::size_t indexed_exchanges() const { return indexed_; }

 private:
  // host + '\0' + path -> candidate exchanges, in recorded order.
  std::unordered_map<std::string, std::vector<const record::RecordedExchange*>>
      by_host_path_;
  std::size_t indexed_{0};
};

/// Length of the common prefix of two query strings (exposed for tests).
std::size_t common_query_prefix(std::string_view a, std::string_view b);

}  // namespace mahimahi::replay
