#include "web/browser.hpp"

#include <algorithm>

#include "http/status.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::web {
namespace {

/// Approximate wire overhead of response headers (for byte accounting).
constexpr std::uint64_t kHeaderOverheadBytes = 180;

}  // namespace

/// One origin's connection pool. HTTP/1.1: up to
/// max_connections_per_origin keep-alive connections, each carrying one
/// request at a time (no pipelining — 2014 browser behaviour).
/// Multiplexed: a single mux connection carrying any number of streams.
struct Browser::OriginPool {
  net::Address server;
  std::deque<FetchTask> waiting;

  struct Entry {
    std::unique_ptr<net::HttpClientConnection> connection;
    bool busy{false};
    http::Url current;  // valid while busy (error attribution)
  };
  // shared_ptr so deferred request-issue events can hold weak references
  // that survive pool teardown (stall timeout mid-load).
  std::vector<std::shared_ptr<Entry>> entries;

  // Multiplexed mode only.
  std::unique_ptr<net::mux::MuxClientConnection> mux;
  /// URLs with a stream in flight on `mux` — the connection's error
  /// callback fails exactly these (previously they dangled until the
  /// stall timeout), and a deadline expiry removes its URL so the late
  /// response cannot double-account.
  std::map<std::string, http::Url> mux_inflight;
};

Browser::Browser(net::Fabric& fabric, net::Address dns_server,
                 BrowserConfig config, util::Rng rng)
    : fabric_{fabric},
      loop_{fabric.loop()},
      dns_{fabric, dns_server},
      config_{config},
      rng_{std::move(rng)} {
  dns_.set_tracer(config_.tcp.tracer, config_.tcp.trace_session);
}

obs::ObjectRecord* Browser::trace_object(const http::Url& url) {
  if (tracer() == nullptr) {
    return nullptr;
  }
  return &tracer()->object(config_.tcp.trace_session, url.to_string());
}

void Browser::trace_event(obs::EventKind kind, std::uint64_t value,
                          const std::string& label) {
  if (tracer() != nullptr) {
    tracer()->event(loop_.now(), obs::Layer::kBrowser, kind,
                    config_.tcp.trace_session, 0, value, 0, label);
  }
}

net::FetchHooks Browser::make_fetch_hooks(const http::Url& url) {
  net::FetchHooks hooks;
  if (tracer() == nullptr) {
    return hooks;
  }
  hooks.on_connected = [this, url] {
    if (auto* object = trace_object(url)) {
      object->connect_done = loop_.now();
    }
  };
  hooks.on_sent = [this, url] {
    if (auto* object = trace_object(url)) {
      object->request_sent = loop_.now();
      object->first_byte = -1;  // a retry's stale first-byte must not stick
    }
  };
  hooks.on_first_byte = [this, url] {
    if (auto* object = trace_object(url)) {
      object->first_byte = loop_.now();
    }
  };
  return hooks;
}

Browser::~Browser() {
  if (stall_event_ != 0) {
    loop_.cancel(stall_event_);
  }
  if (finish_event_ != 0) {
    loop_.cancel(finish_event_);
  }
  cancel_fetch_timers();
}

void Browser::load(const std::string& url_text, LoadCallback on_done) {
  MAHI_ASSERT_MSG(!loading_, "Browser::load while a load is in progress");
  MAHI_ASSERT(on_done != nullptr);
  const auto url = http::parse_url(url_text);
  if (!url || url->host.empty()) {
    PageLoadResult failed;
    failed.errors.push_back("unparseable URL: " + url_text);
    on_done(std::move(failed));
    return;
  }
  loading_ = true;
  on_done_ = std::move(on_done);
  page_url_ = url_text;
  started_at_ = loop_.now();
  outstanding_objects_ = 0;
  in_flight_requests_ = 0;
  main_thread_busy_until_ = loop_.now();
  seen_urls_.clear();
  pools_.clear();
  cancel_fetch_timers();
  fetches_.clear();
  last_success_time_ = started_at_;
  result_ = PageLoadResult{};
  arm_stall_timer();
  schedule_fetch(*url);
}

void Browser::schedule_fetch(const http::Url& url) {
  if (!seen_urls_.insert(url.to_string()).second) {
    return;  // already fetched or in flight
  }
  ++outstanding_objects_;
  if (auto* object = trace_object(url)) {
    object->fetch_start = loop_.now();
    object->dns_start = loop_.now();
    object->kind = http::resource_kind_name(http::classify_content_type(
        http::content_type_for_path(url.path)));
    trace_event(obs::EventKind::kFetchStart, 0, url.to_string());
  }
  dns_.resolve(url.host, [this, url](std::optional<net::Ipv4> ip) {
    on_resolved(url, ip);
  });
}

void Browser::on_resolved(const http::Url& url, std::optional<net::Ipv4> ip) {
  if (!loading_) {
    return;  // load already aborted
  }
  if (auto* object = trace_object(url)) {
    object->dns_done = loop_.now();
  }
  if (!ip) {
    attempt_failed(url, "DNS failure for " + url.host, /*timed_out=*/false);
    return;
  }
  OriginPool& pool = pool_for(url, *ip);
  pool.waiting.push_back(FetchTask{url});
  pump(pool);
}

Browser::OriginPool& Browser::pool_for(const http::Url& url, net::Ipv4 ip) {
  // Pools are keyed per hostname:port, like Chrome's socket pools — the
  // per-origin six-connection limit applies to names, not resolved IPs.
  const std::string key = url.host + ':' + std::to_string(url.effective_port());
  const auto it = pools_.find(key);
  if (it != pools_.end()) {
    return *it->second;
  }
  auto pool = std::make_unique<OriginPool>();
  pool->server = net::Address{ip, url.effective_port()};
  auto& ref = *pool;
  pools_.emplace(key, std::move(pool));
  result_.origins_contacted = pools_.size();
  return ref;
}

net::TcpConnection::Config Browser::next_connection_config() const {
  net::TcpConnection::Config config = config_.tcp;
  if (!config_.cc_fleet.empty()) {
    config.congestion_control =
        config_.cc_fleet[result_.connections_opened % config_.cc_fleet.size()];
  }
  return config;
}

void Browser::pump_all() {
  for (auto& [key, pool] : pools_) {
    pump(*pool);
    if (in_flight_requests_ >= config_.max_concurrent_requests) {
      return;
    }
  }
}

void Browser::pump(OriginPool& pool) {
  if (config_.protocol == AppProtocol::kMultiplexed) {
    pump_mux(pool);
    return;
  }
  while (!pool.waiting.empty() &&
         in_flight_requests_ < config_.max_concurrent_requests) {
    // Prefer an idle live connection.
    OriginPool::Entry* idle = nullptr;
    std::size_t live = 0;
    for (const auto& entry : pool.entries) {
      if (!entry->connection->alive()) {
        continue;
      }
      ++live;
      if (!entry->busy && idle == nullptr) {
        idle = entry.get();
      }
    }
    if (idle == nullptr) {
      // Open a new connection if the per-origin and global caps allow.
      std::size_t total_live = 0;
      for (const auto& [key, p] : pools_) {
        for (const auto& entry : p->entries) {
          if (entry->connection->alive()) {
            ++total_live;
          }
        }
      }
      if (live >= static_cast<std::size_t>(config_.max_connections_per_origin) ||
          total_live >= config_.max_total_connections) {
        return;  // wait for a connection to free up
      }
      auto entry = std::make_shared<OriginPool::Entry>();
      OriginPool::Entry* raw = entry.get();
      entry->connection = std::make_unique<net::HttpClientConnection>(
          fabric_, pool.server, [this, raw](const std::string& reason) {
            // Connection died; fail its in-flight object, if any. The
            // resilience layer decides between retry and permanent failure.
            if (raw->busy) {
              raw->busy = false;
              MAHI_ASSERT(in_flight_requests_ > 0);
              --in_flight_requests_;
              attempt_failed(raw->current, reason, /*timed_out=*/false);
            }
            if (loading_) {
              pump_all();
            }
          },
          next_connection_config());
      pool.entries.push_back(std::move(entry));
      ++result_.connections_opened;
      idle = raw;
    }
    FetchTask task = std::move(pool.waiting.front());
    pool.waiting.pop_front();
    issue(pool, *idle->connection, std::move(task));
  }
}

void Browser::pump_mux(OriginPool& pool) {
  if (pool.mux != nullptr && !pool.mux->alive()) {
    if (config_.resilience.enabled()) {
      // Reconnect: defer-destroy the dead connection (we may be inside one
      // of its callbacks) and fall through to open a fresh one.
      loop_.schedule_in(0, [old = std::move(pool.mux)] { (void)old; });
      pool.mux = nullptr;
      pool.mux_inflight.clear();
    } else if (!pool.waiting.empty()) {
      // Connection died with work queued: fail those objects.
      while (!pool.waiting.empty()) {
        pool.waiting.pop_front();
        object_finished(false, "mux connection to " +
                                   pool.server.to_string() + " is dead");
      }
      return;
    }
  }
  if (pool.mux == nullptr) {
    pool.mux = std::make_unique<net::mux::MuxClientConnection>(
        fabric_, pool.server, [this, &pool](const std::string& reason) {
          // All outstanding streams on this origin just died with the
          // connection. Fail each in-flight object through the resilience
          // layer; pumping is deferred — this stack frame may sit inside
          // the dying connection's own callbacks.
          std::vector<http::Url> dead;
          dead.reserve(pool.mux_inflight.size());
          for (const auto& [key, url] : pool.mux_inflight) {
            dead.push_back(url);
          }
          pool.mux_inflight.clear();
          for (const auto& url : dead) {
            MAHI_ASSERT(in_flight_requests_ > 0);
            --in_flight_requests_;
            attempt_failed(url, reason, /*timed_out=*/false);
          }
          if (loading_ && (!dead.empty() || !pool.waiting.empty())) {
            loop_.schedule_in(0, [this] {
              if (loading_) {
                pump_all();
              }
            });
          }
        },
        next_connection_config());
    ++result_.connections_opened;
  }
  while (!pool.waiting.empty() &&
         in_flight_requests_ < config_.max_concurrent_requests) {
    FetchTask task = std::move(pool.waiting.front());
    pool.waiting.pop_front();

    http::Request request;
    request.method = http::Method::kGet;
    request.target = task.url.request_target();
    std::string host_value = task.url.host;
    if (task.url.port != 0) {
      host_value += ':' + std::to_string(task.url.port);
    }
    request.headers.add("Host", std::move(host_value));
    request.headers.add("User-Agent", "mahimahi-model-browser/1.0");
    request.headers.add("Accept", "*/*");

    ++in_flight_requests_;
    const http::Url url = task.url;
    // The issue cost applies as in HTTP/1.1; mux just removes the
    // connection bookkeeping.
    auto send = [this, &pool, url, request = std::move(request)]() mutable {
      if (!loading_ || pool.mux == nullptr) {
        return;
      }
      const std::string key = url.to_string();
      pool.mux_inflight.emplace(key, url);
      const std::uint64_t generation = fetches_[key].generation;
      arm_deadline(url, [this, &pool, key] {
        // Undo the in-flight accounting; the erase also marks any late
        // response for this stream as stale.
        if (pool.mux_inflight.erase(key) == 0) {
          return false;
        }
        MAHI_ASSERT(in_flight_requests_ > 0);
        --in_flight_requests_;
        return true;
      });
      pool.mux->fetch(
          std::move(request),
          [this, &pool, url, key, generation](http::Response response) {
            const auto it = fetches_.find(key);
            if (it == fetches_.end() || it->second.generation != generation ||
                pool.mux_inflight.erase(key) == 0) {
              return;  // superseded by a deadline expiry; already accounted
            }
            cancel_deadline(key);
            MAHI_ASSERT(in_flight_requests_ > 0);
            --in_flight_requests_;
            on_response(url, std::move(response));
            if (loading_) {
              pump_all();
            }
          },
          make_fetch_hooks(url));
    };
    if (config_.request_issue_cost > 0) {
      const Microseconds at = std::max(loop_.now(), main_thread_busy_until_) +
                              config_.request_issue_cost;
      main_thread_busy_until_ = at;
      loop_.schedule_at(at, std::move(send));
    } else {
      send();
    }
  }
}

void Browser::issue(OriginPool& pool, net::HttpClientConnection& connection,
                    FetchTask task) {
  OriginPool::Entry* entry = nullptr;
  for (const auto& e : pool.entries) {
    if (e->connection.get() == &connection) {
      entry = e.get();
      break;
    }
  }
  MAHI_ASSERT(entry != nullptr);
  entry->busy = true;
  entry->current = task.url;

  http::Request request;
  request.method = http::Method::kGet;
  request.target = task.url.request_target();
  std::string host_value = task.url.host;
  if (task.url.port != 0) {
    host_value += ':' + std::to_string(task.url.port);
  }
  request.headers.add("Host", std::move(host_value));
  request.headers.add("User-Agent", "mahimahi-model-browser/1.0");
  request.headers.add("Accept", "*/*");

  const http::Url url = task.url;
  std::shared_ptr<OriginPool::Entry> shared;
  for (const auto& e : pool.entries) {
    if (e.get() == entry) {
      shared = e;
      break;
    }
  }
  MAHI_ASSERT(shared != nullptr);
  ++in_flight_requests_;
  auto send = [this, weak = std::weak_ptr<OriginPool::Entry>{shared}, url,
               request = std::move(request)]() mutable {
    const auto e = weak.lock();
    if (!e || !loading_) {
      return;  // load torn down before the issue event fired
    }
    OriginPool::Entry* raw = e.get();
    arm_deadline(url, [this, weak, key = url.to_string()] {
      // Deadline expired mid-request: kill the connection silently (its
      // error callback must not fire — the failure is already attributed)
      // and undo the in-flight accounting.
      const auto entry = weak.lock();
      if (!entry || !entry->busy || entry->current.to_string() != key) {
        return false;
      }
      entry->busy = false;
      MAHI_ASSERT(in_flight_requests_ > 0);
      --in_flight_requests_;
      entry->connection->abort();
      return true;
    });
    e->connection->fetch(
        std::move(request),
        [this, raw, url](http::Response response) {
          raw->busy = false;
          MAHI_ASSERT(in_flight_requests_ > 0);
          --in_flight_requests_;
          cancel_deadline(url.to_string());
          on_response(url, std::move(response));
          if (loading_) {
            pump_all();
          }
        },
        make_fetch_hooks(url));
  };
  if (config_.request_issue_cost > 0) {
    // Issuing a request costs main-thread time; a post-parse burst of
    // discoveries goes out staggered, not as one packet storm.
    const Microseconds at =
        std::max(loop_.now(), main_thread_busy_until_) + config_.request_issue_cost;
    main_thread_busy_until_ = at;
    loop_.schedule_at(at, std::move(send));
  } else {
    send();
  }
}

void Browser::on_response(const http::Url& url, http::Response response) {
  if (!loading_) {
    return;
  }
  result_.bytes_downloaded += response.body.size() + kHeaderOverheadBytes;
  if (auto* object = trace_object(url)) {
    object->complete = loop_.now();
    object->bytes = response.body.size() + kHeaderOverheadBytes;
    object->status = response.status;
    if (const auto content_type = response.headers.get("Content-Type")) {
      object->kind =
          http::resource_kind_name(http::classify_content_type(*content_type));
    }
  }

  if (http::is_redirect(response.status)) {
    if (const auto location = response.headers.get("Location")) {
      schedule_fetch(http::resolve_reference(url, *location));
    }
    object_finished(true);
    return;
  }
  if (!http::is_success(response.status)) {
    if (auto* object = trace_object(url)) {
      object->failed = true;
      object->error = "status " + std::to_string(response.status);
    }
    object_finished(false,
                    url.to_string() + " -> " + std::to_string(response.status));
    return;
  }

  // Determine the resource kind: Content-Type header, else extension.
  const auto content_type = response.headers.get("Content-Type");
  const http::ResourceKind kind =
      content_type ? http::classify_content_type(*content_type)
                   : http::classify_content_type(
                         http::content_type_for_path(url.path));

  // Charge compute; discovery happens when the task finishes, which is how
  // real parsers serialize resource discovery behind parse/execute work.
  // HTML/CSS/JS contend for the single main thread; images, fonts and data
  // decode in parallel off-thread.
  const Microseconds cost = compute_cost(kind, response.body.size());
  const bool main_thread = kind == http::ResourceKind::kHtml ||
                           kind == http::ResourceKind::kCss ||
                           kind == http::ResourceKind::kJavaScript;
  Microseconds done;
  if (main_thread) {
    const Microseconds start = std::max(loop_.now(), main_thread_busy_until_);
    done = start + cost;
    main_thread_busy_until_ = done;
  } else {
    done = loop_.now() + cost;
  }
  loop_.schedule_at(done, [this, url, kind, body = std::move(response.body)]() {
    on_object_computed(url, kind, std::move(body));
  });
}

void Browser::on_object_computed(const http::Url& url, http::ResourceKind kind,
                                 std::string body) {
  if (!loading_) {
    return;
  }
  for (const auto& sub : discover_subresources(kind, url, body)) {
    schedule_fetch(sub);
  }
  object_finished(true);
}

Microseconds Browser::compute_cost(http::ResourceKind kind, std::size_t bytes) {
  double per_byte = config_.other_us_per_byte;
  Microseconds overhead = config_.parallel_object_overhead;
  switch (kind) {
    case http::ResourceKind::kHtml:
      per_byte = config_.html_parse_us_per_byte;
      overhead = config_.per_object_overhead;
      break;
    case http::ResourceKind::kCss:
      per_byte = config_.css_parse_us_per_byte;
      overhead = config_.per_object_overhead;
      break;
    case http::ResourceKind::kJavaScript:
      per_byte = config_.js_exec_us_per_byte;
      overhead = config_.per_object_overhead;
      break;
    case http::ResourceKind::kImage:
      per_byte = config_.image_decode_us_per_byte;
      break;
    case http::ResourceKind::kJson:
      per_byte = config_.css_parse_us_per_byte;
      break;
    case http::ResourceKind::kFont:
    case http::ResourceKind::kOther:
      break;
  }
  const double jitter =
      config_.compute_jitter_sigma > 0
          ? rng_.lognormal(0.0, config_.compute_jitter_sigma)
          : 1.0;
  const double cost = (per_byte * static_cast<double>(bytes) +
                       static_cast<double>(overhead)) *
                      jitter;
  return static_cast<Microseconds>(cost);
}

void Browser::object_finished(bool ok, const std::string& error) {
  if (!loading_) {
    return;
  }
  if (ok) {
    ++result_.objects_loaded;
    last_success_time_ = loop_.now();
  } else {
    ++result_.objects_failed;
    if (result_.errors.size() < 16) {
      result_.errors.push_back(error);
    }
  }
  MAHI_ASSERT(outstanding_objects_ > 0);
  --outstanding_objects_;
  arm_stall_timer();
  maybe_finish();
}

void Browser::maybe_finish() {
  if (outstanding_objects_ > 0) {
    return;
  }
  // All objects delivered and computed: finish after the final layout.
  const Microseconds at =
      std::max(loop_.now(), main_thread_busy_until_) + config_.final_layout_cost;
  if (finish_event_ != 0) {
    loop_.cancel(finish_event_);
  }
  finish_event_ = loop_.schedule_at(at, [this] {
    finish_event_ = 0;
    finish();
  });
}

void Browser::finish() {
  if (!loading_) {
    return;
  }
  loading_ = false;
  if (stall_event_ != 0) {
    loop_.cancel(stall_event_);
    stall_event_ = 0;
  }
  result_.success = result_.objects_failed == 0 && result_.objects_loaded > 0;
  result_.page_load_time = loop_.now() - started_at_;
  result_.started_at = started_at_;
  fill_degraded_plt();
  if (tracer() != nullptr) {
    tracer()->page(obs::PageRecord{config_.tcp.trace_session, page_url_,
                                   started_at_, result_.page_load_time,
                                   result_.degraded_page_load_time,
                                   result_.success});
  }
  // Tear down this load's connections (a fresh load is a fresh browser).
  pools_.clear();
  cancel_fetch_timers();
  LoadCallback done = std::move(on_done_);
  on_done_ = nullptr;
  done(std::move(result_));
}

void Browser::attempt_failed(const http::Url& url, const std::string& reason,
                             bool timed_out) {
  if (!loading_) {
    return;
  }
  const std::string key = url.to_string();
  FetchState& state = fetches_[key];
  cancel_deadline(key);
  ++state.generation;  // a late response for the old attempt is now stale
  ++state.attempts;
  if (timed_out) {
    ++result_.timeouts;
    trace_event(obs::EventKind::kFetchTimeout,
                static_cast<std::uint64_t>(state.attempts), key);
  }
  const auto& policy = config_.resilience;
  if (policy.enabled() && state.attempts <= policy.max_retries) {
    ++result_.retries;
    if (auto* object = trace_object(url)) {
      // Retry: the next attempt re-stamps the phase columns from scratch
      // (fetch_start keeps the first attempt — the waterfall bar spans the
      // whole wait, attempt count marks the churn inside it).
      ++object->attempts;
      object->dns_start = -1;
      object->dns_done = -1;
      object->request_sent = -1;
      object->first_byte = -1;
      trace_event(obs::EventKind::kFetchRetry,
                  static_cast<std::uint64_t>(state.attempts), key);
    }
    // Capped exponential backoff with seeded jitter: base * 2^(n-1),
    // clamped to the cap, scaled by uniform [1-j, 1+j] from the browser's
    // deterministic RNG.
    const int exponent = std::min(state.attempts - 1, 20);
    Microseconds backoff =
        std::min<Microseconds>(policy.backoff_base << exponent, policy.backoff_max);
    if (policy.backoff_jitter > 0) {
      const double scale =
          1.0 + policy.backoff_jitter * (rng_.uniform() * 2.0 - 1.0);
      backoff = std::max<Microseconds>(
          1, static_cast<Microseconds>(static_cast<double>(backoff) * scale));
    }
    state.retry_event = loop_.schedule_in(backoff, [this, url] {
      fetches_[url.to_string()].retry_event = 0;
      if (!loading_) {
        return;
      }
      if (auto* object = trace_object(url)) {
        object->dns_start = loop_.now();
      }
      // Re-resolve and re-enqueue; the DNS cache makes repeat resolution
      // synchronous, while a DNS-failure retry genuinely asks again.
      dns_.resolve(url.host, [this, url](std::optional<net::Ipv4> ip) {
        on_resolved(url, ip);
      });
    });
    return;  // the object stays outstanding
  }
  if (auto* object = trace_object(url)) {
    object->failed = true;
    object->error = reason;
  }
  object_finished(false, reason);
}

void Browser::arm_deadline(const http::Url& url,
                           std::function<bool()> on_expire) {
  const auto& policy = config_.resilience;
  if (!policy.enabled() || policy.request_deadline <= 0) {
    return;
  }
  const std::string key = url.to_string();
  FetchState& state = fetches_[key];
  if (state.deadline_event != 0) {
    loop_.cancel(state.deadline_event);
  }
  state.deadline_event = loop_.schedule_in(
      policy.request_deadline,
      [this, url, key, on_expire = std::move(on_expire)] {
        fetches_[key].deadline_event = 0;
        if (!loading_ || !on_expire()) {
          return;
        }
        attempt_failed(url, "request deadline exceeded for " + key,
                       /*timed_out=*/true);
        if (loading_) {
          pump_all();
        }
      });
}

void Browser::cancel_deadline(const std::string& key) {
  const auto it = fetches_.find(key);
  if (it != fetches_.end() && it->second.deadline_event != 0) {
    loop_.cancel(it->second.deadline_event);
    it->second.deadline_event = 0;
  }
}

void Browser::cancel_fetch_timers() {
  for (auto& [key, state] : fetches_) {
    if (state.deadline_event != 0) {
      loop_.cancel(state.deadline_event);
      state.deadline_event = 0;
    }
    if (state.retry_event != 0) {
      loop_.cancel(state.retry_event);
      state.retry_event = 0;
    }
  }
}

void Browser::fill_degraded_plt() {
  result_.degraded = result_.objects_failed > 0;
  if (!result_.degraded || result_.objects_loaded == 0) {
    // Clean load — or nothing ever rendered, in which case there is no
    // "partially useful page" moment to report.
    result_.degraded_page_load_time = result_.page_load_time;
    return;
  }
  // The page "looked done" when its last successful object landed plus the
  // final layout; everything after that was failure detection.
  const Microseconds at =
      last_success_time_ + config_.final_layout_cost - started_at_;
  result_.degraded_page_load_time =
      std::clamp<Microseconds>(at, 0, result_.page_load_time);
}

void Browser::arm_stall_timer() {
  if (stall_event_ != 0) {
    loop_.cancel(stall_event_);
  }
  stall_event_ = loop_.schedule_in(config_.stall_timeout, [this] {
    stall_event_ = 0;
    if (!loading_) {
      return;
    }
    MAHI_WARN("browser") << "page load stalled with " << outstanding_objects_
                         << " objects outstanding";
    result_.errors.push_back("stall timeout");
    result_.objects_failed += outstanding_objects_;
    outstanding_objects_ = 0;
    loading_ = false;
    result_.success = false;
    result_.page_load_time = loop_.now() - started_at_;
    result_.started_at = started_at_;
    fill_degraded_plt();
    if (tracer() != nullptr) {
      tracer()->page(obs::PageRecord{config_.tcp.trace_session, page_url_,
                                     started_at_, result_.page_load_time,
                                     result_.degraded_page_load_time,
                                     result_.success});
    }
    pools_.clear();
    cancel_fetch_timers();
    LoadCallback done = std::move(on_done_);
    on_done_ = nullptr;
    done(std::move(result_));
  });
}

}  // namespace mahimahi::web
