#include "web/discovery.hpp"

#include <set>

namespace mahimahi::web {
namespace {

/// Collect every occurrence of `opener`...`closer` in `body`, returning
/// the text between them. Tolerates unterminated trailing fragments.
void scan_between(std::string_view body, std::string_view opener, char closer,
                  std::vector<std::string>& out) {
  std::size_t pos = 0;
  while (true) {
    pos = body.find(opener, pos);
    if (pos == std::string_view::npos) {
      return;
    }
    pos += opener.size();
    const std::size_t end = body.find(closer, pos);
    if (end == std::string_view::npos) {
      return;
    }
    if (end > pos) {
      out.emplace_back(body.substr(pos, end - pos));
    }
    pos = end + 1;
  }
}

}  // namespace

std::vector<std::string> extract_references(http::ResourceKind kind,
                                            std::string_view body) {
  std::vector<std::string> refs;
  switch (kind) {
    case http::ResourceKind::kHtml:
      scan_between(body, "src=\"", '"', refs);
      scan_between(body, "href=\"", '"', refs);
      break;
    case http::ResourceKind::kCss:
      scan_between(body, "url(", ')', refs);
      break;
    case http::ResourceKind::kJavaScript:
      scan_between(body, "loadSubresource(\"", '"', refs);
      break;
    case http::ResourceKind::kImage:
    case http::ResourceKind::kFont:
    case http::ResourceKind::kJson:
    case http::ResourceKind::kOther:
      break;
  }
  return refs;
}

std::vector<http::Url> discover_subresources(http::ResourceKind kind,
                                             const http::Url& base,
                                             std::string_view body) {
  std::vector<http::Url> urls;
  std::set<std::string> seen;
  for (const auto& ref : extract_references(kind, body)) {
    // Skip fragments, javascript: pseudo-URLs, and data URIs.
    if (ref.empty() || ref.front() == '#' || ref.starts_with("javascript:") ||
        ref.starts_with("data:")) {
      continue;
    }
    const http::Url url = http::resolve_reference(base, ref);
    if (url.host.empty()) {
      continue;
    }
    if (seen.insert(url.to_string()).second) {
      urls.push_back(url);
    }
  }
  return urls;
}

}  // namespace mahimahi::web
