#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "http/mime.hpp"
#include "http/url.hpp"

namespace mahimahi::web {

/// Extract subresource references from a response body, the way a browser's
/// parser discovers work:
///   HTML      : src="..." and href="..." attributes
///   CSS       : url(...) references
///   JavaScript: loadSubresource("...") calls (the marker our corpus's
///               generated scripts use for dynamically-fetched resources)
/// Other kinds reference nothing. References are returned in document
/// order, unresolved (raw attribute text).
std::vector<std::string> extract_references(http::ResourceKind kind,
                                            std::string_view body);

/// extract + resolve against the containing document's URL, drop anything
/// that fails to resolve, and deduplicate (first occurrence wins).
std::vector<http::Url> discover_subresources(http::ResourceKind kind,
                                             const http::Url& base,
                                             std::string_view body);

}  // namespace mahimahi::web
