#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/dns.hpp"
#include "net/fetch_hooks.hpp"
#include "net/http_session.hpp"
#include "net/mux.hpp"
#include "obs/trace.hpp"
#include "util/random.hpp"
#include "web/discovery.hpp"

namespace mahimahi::web {

/// Application protocol the browser speaks to origins.
enum class AppProtocol {
  kHttp11,        // six keep-alive connections per origin, no pipelining
  kMultiplexed,   // SPDY-like: one connection per origin, many streams
};

/// Tunables of the page-load model. Defaults approximate a 2014 desktop
/// Chrome on commodity hardware; EXPERIMENTS.md documents the calibration
/// against the paper's Table 1 page-load times.
struct BrowserConfig {
  AppProtocol protocol{AppProtocol::kHttp11};
  /// HTTP/1.1 connection pool: per-origin parallelism (Chrome uses 6).
  /// This limit is the mechanism behind the paper's multi-origin result:
  /// one origin = 6 total connections; twenty origins = up to 120.
  int max_connections_per_origin{6};
  /// Total socket cap across origins (Chrome's pool is effectively ~256).
  std::size_t max_total_connections{256};
  /// Global in-flight request throttle — Chrome's resource scheduler keeps
  /// roughly this many requests outstanding at once and queues the rest.
  std::size_t max_concurrent_requests{24};

  // --- compute model. HTML/CSS/JS serialize on the main thread (parsing
  // and script execution block each other, as in a real browser); images,
  // fonts and data decode off-thread, in parallel.
  double html_parse_us_per_byte{0.50};
  double css_parse_us_per_byte{0.30};
  double js_exec_us_per_byte{2.20};
  double image_decode_us_per_byte{0.05};
  double other_us_per_byte{0.02};
  /// Fixed main-thread cost per HTML/CSS/JS object (style/layout churn).
  Microseconds per_object_overhead{5'000};
  /// Fixed off-thread cost per image/font/data object.
  Microseconds parallel_object_overhead{800};
  /// Main-thread cost to issue one request (cache lookup, socket setup).
  /// Spaces out the request storm that follows HTML parsing, as a real
  /// browser's resource scheduler does.
  Microseconds request_issue_cost{300};
  /// Final layout + paint after the last object.
  Microseconds final_layout_cost{40'000};
  /// Multiplicative lognormal jitter applied to every compute task —
  /// models scheduling noise; the source of run-to-run PLT variance on a
  /// single machine (paper Table 1 reports ~1% coefficient of variation).
  double compute_jitter_sigma{0.03};

  /// Give up on a page when nothing completes for this long.
  Microseconds stall_timeout{60'000'000};

  /// Resilience policy: per-request deadlines plus capped exponential
  /// backoff with jittered-but-seeded retries. Disabled by default —
  /// page loads behave exactly as before (no timers armed, no extra RNG
  /// draws), keeping healthy-world runs byte-identical.
  struct ResilienceConfig {
    /// Abort a request not answered within this long. 0 = no deadline.
    Microseconds request_deadline{0};
    /// Re-fetch a failed object up to this many times before giving up.
    int max_retries{0};
    Microseconds backoff_base{500'000};
    Microseconds backoff_max{8'000'000};
    /// Multiplicative jitter on each backoff, uniform in [1-j, 1+j],
    /// drawn from the browser's seeded RNG (deterministic).
    double backoff_jitter{0.1};

    [[nodiscard]] bool enabled() const {
      return request_deadline > 0 || max_retries > 0;
    }
  };
  ResilienceConfig resilience{};

  /// Transport knobs for every connection the browser opens — notably
  /// `tcp.congestion_control`, the uplink-side controller (request bytes;
  /// the server side is configured where the servers are built, e.g.
  /// replay::OriginServerSet::Options::tcp).
  net::TcpConnection::Config tcp{};

  /// Per-connection-index controller fleet (ROADMAP's mixed-CC axis): when
  /// non-empty, the k-th connection this load opens — counted across all
  /// origins in opening order, HTTP/1.1 pool entries and mux connections
  /// alike — runs cc_fleet[k % size()] instead of tcp.congestion_control.
  /// Opening order is deterministic under the measurement engine, so the
  /// assignment is reproducible. Empty = homogeneous (tcp's controller).
  std::vector<std::string> cc_fleet;
};

/// Outcome of one page load.
struct PageLoadResult {
  bool success{false};
  Microseconds page_load_time{0};
  /// Loop-clock time at which the load began. On a private per-load loop
  /// this is 0; under fleet::SessionMux it is the session's arrival time,
  /// letting callers audit that a load's events stayed on its own session
  /// clock (finish = started_at + page_load_time).
  Microseconds started_at{0};
  std::size_t objects_loaded{0};
  std::size_t objects_failed{0};
  /// Re-fetch attempts the resilience policy issued (0 when disabled).
  std::size_t retries{0};
  /// Request deadlines that expired (each may then have been retried).
  std::size_t timeouts{0};
  /// True when the load completed without every object (graceful
  /// degradation: the page is up, some resources are missing).
  bool degraded{false};
  /// PLT excluding trailing failure detection: time until the last
  /// *successful* object plus final layout. Equal to page_load_time on a
  /// clean load; under faults it is the "page looked done" time, bounded
  /// above by page_load_time.
  Microseconds degraded_page_load_time{0};
  std::uint64_t bytes_downloaded{0};
  std::size_t origins_contacted{0};
  std::size_t connections_opened{0};
  std::vector<std::string> errors;
};

/// The measurement application: a model browser that performs page loads
/// over the simulated network. It resolves names through the namespace's
/// DNS, opens per-origin HTTP/1.1 keep-alive connection pools, discovers
/// subresources by scanning delivered bytes (HTML src/href, CSS url(),
/// script fetch markers), charges main-thread compute for parsing and
/// script execution, and reports page load time — the metric every
/// experiment in the paper is built on.
class Browser {
 public:
  using LoadCallback = std::function<void(PageLoadResult)>;

  Browser(net::Fabric& fabric, net::Address dns_server, BrowserConfig config,
          util::Rng rng);
  ~Browser();

  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  /// Begin loading `url`. One load at a time per Browser.
  void load(const std::string& url, LoadCallback on_done);

  [[nodiscard]] bool loading() const { return loading_; }

 private:
  struct OriginPool;
  struct FetchTask {
    http::Url url;
  };

  /// Transport config for the next connection to open: tcp, with the
  /// fleet's per-connection-index controller applied when one is set.
  [[nodiscard]] net::TcpConnection::Config next_connection_config() const;

  /// Per-URL retry/deadline bookkeeping (resilience layer). Entries are
  /// created on first fetch and live until the load ends.
  struct FetchState {
    int attempts{0};  ///< attempts that have *failed* so far
    /// Bumped when a deadline expires: a late mux response whose captured
    /// generation no longer matches is stale and must not double-account.
    std::uint64_t generation{0};
    net::EventLoop::EventId deadline_event{0};
    net::EventLoop::EventId retry_event{0};
  };

  // --- observability. The tracer rides in config_.tcp (so TCP-layer
  // events share it); these helpers add the browser's per-object
  // waterfall on top. All are no-ops when no tracer is installed.
  [[nodiscard]] obs::Tracer* tracer() const { return config_.tcp.tracer; }
  /// Find-or-create the waterfall record for `url`; null without a tracer.
  obs::ObjectRecord* trace_object(const http::Url& url);
  void trace_event(obs::EventKind kind, std::uint64_t value,
                   const std::string& label);
  /// Transport-edge hooks stamping request_sent / first_byte. Empty (zero
  /// overhead) without a tracer.
  [[nodiscard]] net::FetchHooks make_fetch_hooks(const http::Url& url);

  void schedule_fetch(const http::Url& url);
  void on_resolved(const http::Url& url, std::optional<net::Ipv4> ip);
  OriginPool& pool_for(const http::Url& url, net::Ipv4 ip);
  void pump(OriginPool& pool);
  void pump_mux(OriginPool& pool);
  void pump_all();
  void issue(OriginPool& pool, net::HttpClientConnection& connection,
             FetchTask task);
  void on_response(const http::Url& url, http::Response response);
  void on_object_computed(const http::Url& url, http::ResourceKind kind,
                          std::string body);
  void object_finished(bool ok, const std::string& error = {});
  void maybe_finish();
  void finish();
  void arm_stall_timer();

  // --- resilience layer ---
  /// One attempt at `url` failed (connection error, DNS failure, deadline).
  /// Schedules a seeded-backoff retry while attempts remain; otherwise
  /// fails the object for good.
  void attempt_failed(const http::Url& url, const std::string& reason,
                      bool timed_out);
  /// Arm the per-request deadline for `url`; on expiry `on_expire` undoes
  /// the protocol-specific in-flight accounting and returns whether the
  /// request was in fact still pending (false = raced with completion, do
  /// nothing). No-op unless the resilience policy sets a deadline.
  void arm_deadline(const http::Url& url, std::function<bool()> on_expire);
  void cancel_deadline(const std::string& key);
  void cancel_fetch_timers();
  void fill_degraded_plt();

  [[nodiscard]] Microseconds compute_cost(http::ResourceKind kind,
                                          std::size_t bytes);

  net::Fabric& fabric_;
  net::EventLoop& loop_;
  net::DnsClient dns_;
  BrowserConfig config_;
  util::Rng rng_;

  // --- per-load state ---
  bool loading_{false};
  LoadCallback on_done_;
  std::string page_url_;  // for the traced PageRecord
  Microseconds started_at_{0};
  std::size_t outstanding_objects_{0};
  std::size_t in_flight_requests_{0};
  Microseconds main_thread_busy_until_{0};
  std::set<std::string> seen_urls_;
  std::map<std::string, std::unique_ptr<OriginPool>> pools_;
  std::map<std::string, FetchState> fetches_;
  Microseconds last_success_time_{0};
  PageLoadResult result_;
  net::EventLoop::EventId stall_event_{0};
  net::EventLoop::EventId finish_event_{0};
};

}  // namespace mahimahi::web
