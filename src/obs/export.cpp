#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace mahimahi::obs {
namespace {

// All doubles serialize through fixed-precision snprintf — the same
// discipline as experiment/report.cpp — so exported bytes are a pure
// function of the values, not of locale or shortest-round-trip quirks.
std::string fmt(double value, int precision = 6) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string fmt_i64(std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return buffer;
}

std::string fmt_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- Chrome trace ---------------------------------------------------------

// Thread lane for (session, layer): shared infrastructure (session -1)
// gets lanes 0..4, session s gets lanes (s+1)*8 + layer.
std::int64_t lane(std::int32_t session, Layer layer) {
  const auto layer_index = static_cast<std::int64_t>(layer);
  return (static_cast<std::int64_t>(session) + 1) * 8 + layer_index;
}

std::string lane_name(std::int32_t session, Layer layer) {
  std::string name;
  if (session < 0) {
    name = "shared";
  } else {
    name = "s";
    name += std::to_string(session);
  }
  name += ":";
  name += to_string(layer);
  return name;
}

void append_event_json(std::string& out, int pid, const TraceEvent& event) {
  const std::string tid = fmt_i64(lane(event.session, event.layer));
  const std::string ts = fmt_i64(event.at);
  switch (event.kind) {
    case EventKind::kEnqueue:
    case EventKind::kDequeue:
      // Queue depth as a counter track named after the queue.
      out += R"({"name":"queue )" + json_escape(event.label) +
             R"(","ph":"C","pid":)" + std::to_string(pid) + R"(,"tid":)" +
             tid + R"(,"ts":)" + ts + R"(,"args":{"packets":)" +
             fmt_u64(event.value) + R"(,"bytes":)" + fmt(event.metric, 0) +
             "}}";
      return;
    case EventKind::kTcpCwndSample:
      out += R"({"name":"cwnd flow )" + fmt_u64(event.flow) +
             R"(","ph":"C","pid":)" + std::to_string(pid) + R"(,"tid":)" +
             tid + R"(,"ts":)" + ts + R"(,"args":{"cwnd":)" +
             fmt(event.metric, 0) + R"(,"ssthresh":)" + fmt_u64(event.value) +
             "}}";
      return;
    case EventKind::kTcpRttSample:
      out += R"({"name":"srtt flow )" + fmt_u64(event.flow) +
             R"(","ph":"C","pid":)" + std::to_string(pid) + R"(,"tid":)" +
             tid + R"(,"ts":)" + ts + R"(,"args":{"srtt_ms":)" +
             fmt(event.metric, 3) + "}}";
      return;
    default:
      break;
  }
  // Everything else is an instant with the full payload in args.
  out += R"({"name":")" + std::string(to_string(event.kind)) +
         R"(","ph":"i","s":"t","pid":)" + std::to_string(pid) + R"(,"tid":)" +
         tid + R"(,"ts":)" + ts + R"(,"args":{"label":")" +
         json_escape(event.label) + R"(","flow":)" + fmt_u64(event.flow) +
         R"(,"value":)" + fmt_u64(event.value) + R"(,"metric":)" +
         fmt(event.metric, 3) + "}}";
}

void append_object_span(std::string& out, int pid, const ObjectRecord& o) {
  const Microseconds start = o.fetch_start >= 0 ? o.fetch_start : 0;
  const Microseconds end = o.complete >= 0 ? o.complete : start;
  out += R"({"name":")" + json_escape(o.url) + R"(","cat":"object","ph":"X")" +
         R"(,"pid":)" + std::to_string(pid) + R"(,"tid":)" +
         fmt_i64(lane(o.session, Layer::kBrowser)) + R"(,"ts":)" +
         fmt_i64(start) + R"(,"dur":)" + fmt_i64(end - start) +
         R"(,"args":{"kind":")" + json_escape(o.kind) + R"(","status":)" +
         std::to_string(o.status) + R"(,"bytes":)" + fmt_u64(o.bytes) +
         R"(,"attempts":)" + std::to_string(o.attempts) + R"(,"failed":)" +
         (o.failed ? "true" : "false") + R"(,"dns_start":)" +
         fmt_i64(o.dns_start) + R"(,"dns_done":)" + fmt_i64(o.dns_done) +
         R"(,"connect_done":)" + fmt_i64(o.connect_done) +
         R"(,"request_sent":)" + fmt_i64(o.request_sent) +
         R"(,"first_byte":)" + fmt_i64(o.first_byte) + R"(,"error":")" +
         json_escape(o.error) + R"("}})";
}

void append_page_span(std::string& out, int pid, const PageRecord& p) {
  out += R"({"name":"page )" + json_escape(p.url) +
         R"(","cat":"page","ph":"X","pid":)" + std::to_string(pid) +
         R"(,"tid":)" + fmt_i64(lane(p.session, Layer::kBrowser)) +
         R"(,"ts":)" + fmt_i64(p.started_at) + R"(,"dur":)" + fmt_i64(p.plt) +
         R"(,"args":{"success":)" + (p.success ? "true" : "false") +
         R"(,"degraded_plt_ms":)" + fmt(to_ms(p.degraded_plt), 3) + "}}";
}

// ---- HAR ------------------------------------------------------------------

// Deterministic fake epoch: virtual time 0 maps to this instant (the
// SIGCOMM '14 presentation week). Real wall time never enters a trace.
constexpr const char* kEpochPrefix = "2014-08-";
constexpr int kEpochDay = 17;

std::string iso_date(Microseconds at) {
  if (at < 0) {
    at = 0;
  }
  const std::int64_t total_ms = at / 1000;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t total_min = total_s / 60;
  const std::int64_t min = total_min % 60;
  const std::int64_t total_h = total_min / 60;
  const std::int64_t h = total_h % 24;
  const std::int64_t day = kEpochDay + total_h / 24;  // August has 31 days;
  // virtual loads never span two weeks, so no month rollover in practice.
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer),
                "%s%02" PRId64 "T%02" PRId64 ":%02" PRId64 ":%02" PRId64
                ".%03" PRId64 "Z",
                kEpochPrefix, day, h, min, s, ms);
  return buffer;
}

std::string har_page_id(int load_index, std::int32_t session) {
  return "load" + std::to_string(load_index) + ".s" + std::to_string(session);
}

// Phase duration in ms, or fallback when a boundary was never reached.
double span_ms(Microseconds from, Microseconds to, double fallback) {
  if (from < 0 || to < 0 || to < from) {
    return fallback;
  }
  return to_ms(to - from);
}

}  // namespace

std::string to_chrome_trace(const TraceMeta& meta,
                            const std::vector<LoadTrace>& loads) {
  std::string out;
  out.reserve(1 << 16);
  out += R"({"displayTimeUnit":"ms","otherData":{"experiment":")" +
         json_escape(meta.experiment) + R"(","cell":")" +
         json_escape(meta.cell_label) + R"(","cell_index":)" +
         std::to_string(meta.cell_index) + R"(,"cell_seed":)" +
         fmt_u64(meta.cell_seed) + R"(},"traceEvents":[)";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += event_json;
  };
  for (const LoadTrace& load : loads) {
    const int pid = load.load_index;
    emit(R"({"name":"process_name","ph":"M","pid":)" + std::to_string(pid) +
         R"(,"args":{"name":"load )" + std::to_string(pid) + R"("}})");
    // Name each (session, layer) lane that actually carries events. An
    // ordered set keeps metadata order deterministic.
    std::map<std::int64_t, std::string> lanes;
    for (const TraceEvent& event : load.buffer.events) {
      lanes.emplace(lane(event.session, event.layer),
                    lane_name(event.session, event.layer));
    }
    for (const ObjectRecord& object : load.buffer.objects) {
      lanes.emplace(lane(object.session, Layer::kBrowser),
                    lane_name(object.session, Layer::kBrowser));
    }
    for (const PageRecord& page : load.buffer.pages) {
      lanes.emplace(lane(page.session, Layer::kBrowser),
                    lane_name(page.session, Layer::kBrowser));
    }
    for (const auto& [tid, name] : lanes) {
      emit(R"({"name":"thread_name","ph":"M","pid":)" + std::to_string(pid) +
           R"(,"tid":)" + fmt_i64(tid) + R"(,"args":{"name":")" +
           json_escape(name) + R"("}})");
    }
    for (const TraceEvent& event : load.buffer.events) {
      std::string line;
      append_event_json(line, pid, event);
      emit(line);
    }
    for (const ObjectRecord& object : load.buffer.objects) {
      std::string line;
      append_object_span(line, pid, object);
      emit(line);
    }
    for (const PageRecord& page : load.buffer.pages) {
      std::string line;
      append_page_span(line, pid, page);
      emit(line);
    }
  }
  out += "]}\n";
  return out;
}

std::string to_har(const TraceMeta& meta, const std::vector<LoadTrace>& loads) {
  std::string out;
  out.reserve(1 << 16);
  out += R"({"log":{"version":"1.2","creator":{"name":"mahimahi-obs",)" +
         std::string(R"("version":"1"},"comment":"experiment=)") +
         json_escape(meta.experiment) + " cell=" +
         std::to_string(meta.cell_index) + " label=" +
         json_escape(meta.cell_label) + " seed=" + fmt_u64(meta.cell_seed) +
         R"(","pages":[)";
  bool first = true;
  for (const LoadTrace& load : loads) {
    for (const PageRecord& page : load.buffer.pages) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      out += R"({"startedDateTime":")" + iso_date(page.started_at) +
             R"(","id":")" + har_page_id(load.load_index, page.session) +
             R"(","title":")" + json_escape(page.url) +
             R"(","pageTimings":{"onContentLoad":-1,"onLoad":)" +
             fmt(to_ms(page.plt), 3) + R"(},"_success":)" +
             (page.success ? "true" : "false") + R"(,"_degraded_plt_ms":)" +
             fmt(to_ms(page.degraded_plt), 3) + "}";
    }
  }
  out += R"(],"entries":[)";
  first = true;
  for (const LoadTrace& load : loads) {
    for (const ObjectRecord& o : load.buffer.objects) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      const Microseconds start = o.fetch_start >= 0 ? o.fetch_start : 0;
      const Microseconds end = o.complete >= 0 ? o.complete : start;
      const double total_ms = to_ms(end - start);
      const double dns_ms = span_ms(o.dns_start, o.dns_done, -1.0);
      // Connect counts from name resolution (or fetch start) to handshake
      // completion; blocked then covers handshake→request. A multiplexed
      // request queued pre-connect timestamps "sent" at queue time, so its
      // connect_done can exceed request_sent — that inversion falls back
      // to the pre-connect accounting (connect -1, whole gap blocked).
      double connect_ms = -1.0;
      double blocked_ms = span_ms(o.dns_done, o.request_sent, -1.0);
      if (o.connect_done >= 0 && o.connect_done <= o.request_sent) {
        const Microseconds connect_from =
            o.dns_done >= 0 ? o.dns_done : o.fetch_start;
        connect_ms = span_ms(connect_from, o.connect_done, -1.0);
        blocked_ms = span_ms(o.connect_done, o.request_sent, -1.0);
      }
      // wait = request to first response byte; receive = rest of the
      // body. Without a first-byte mark (multiplexed transports) the whole
      // response interval counts as wait and receive is 0.
      double wait_ms = 0;
      double receive_ms = 0;
      if (o.request_sent >= 0) {
        if (o.first_byte >= 0) {
          wait_ms = span_ms(o.request_sent, o.first_byte, 0.0);
          receive_ms = span_ms(o.first_byte, end, 0.0);
        } else {
          wait_ms = span_ms(o.request_sent, end, 0.0);
        }
      }
      out += R"({"pageref":")" + har_page_id(load.load_index, o.session) +
             R"(","startedDateTime":")" + iso_date(o.fetch_start) +
             R"(","time":)" + fmt(total_ms, 3) +
             R"(,"request":{"method":"GET","url":")" + json_escape(o.url) +
             R"(","httpVersion":"HTTP/1.1","cookies":[],"headers":[],)" +
             R"("queryString":[],"headersSize":-1,"bodySize":0},)" +
             R"("response":{"status":)" + std::to_string(o.status) +
             R"(,"statusText":"","httpVersion":"HTTP/1.1","cookies":[],)" +
             R"("headers":[],"content":{"size":)" + fmt_u64(o.bytes) +
             R"(,"mimeType":")" + json_escape(o.kind) +
             R"("},"redirectURL":"","headersSize":-1,"bodySize":)" +
             fmt_u64(o.bytes) + R"(},"cache":{},"timings":{"blocked":)" +
             fmt(blocked_ms, 3) + R"(,"dns":)" + fmt(dns_ms, 3) +
             R"(,"connect":)" + fmt(connect_ms, 3) +
             R"(,"ssl":-1,"send":0,"wait":)" + fmt(wait_ms, 3) +
             R"(,"receive":)" + fmt(receive_ms, 3) + R"(},"_attempts":)" +
             std::to_string(o.attempts) + R"(,"_failed":)" +
             (o.failed ? "true" : "false") + R"(,"_error":")" +
             json_escape(o.error) + R"("})";
    }
  }
  out += "]}}\n";
  return out;
}

std::string to_csv(const TraceMeta& meta, const std::vector<LoadTrace>& loads) {
  std::string out;
  out.reserve(1 << 16);
  const auto sanitize = [](std::string text) {
    for (char& c : text) {
      if (c == ',' || c == '\n' || c == '\r') {
        c = ';';
      }
    }
    return text;
  };
  out += "# mahimahi-obs-trace-v1 experiment=" + sanitize(meta.experiment) +
         " cell=" + std::to_string(meta.cell_index) + " label=" +
         sanitize(meta.cell_label) + " seed=" + fmt_u64(meta.cell_seed) + "\n";
  out += "load,session,t_us,layer,kind,flow,value,metric,label,detail\n";
  for (const LoadTrace& load : loads) {
    const std::string prefix = std::to_string(load.load_index) + ",";
    for (const TraceEvent& e : load.buffer.events) {
      out += prefix + std::to_string(e.session) + "," + fmt_i64(e.at) + "," +
             std::string(to_string(e.layer)) + "," +
             std::string(to_string(e.kind)) + "," + fmt_u64(e.flow) + "," +
             fmt_u64(e.value) + "," + fmt(e.metric, 6) + "," +
             sanitize(e.label) + ",\n";
    }
    for (const ObjectRecord& o : load.buffer.objects) {
      const Microseconds start = o.fetch_start >= 0 ? o.fetch_start : 0;
      const Microseconds end = o.complete >= 0 ? o.complete : start;
      out += prefix + std::to_string(o.session) + "," + fmt_i64(start) +
             ",browser,object,0," + fmt_u64(o.bytes) + "," +
             fmt(to_ms(end - start), 6) + "," + sanitize(o.url) + "," +
             "kind=" + sanitize(o.kind) + ";status=" +
             std::to_string(o.status) + ";attempts=" +
             std::to_string(o.attempts) + ";failed=" + (o.failed ? "1" : "0") +
             ";dns_start_us=" + fmt_i64(o.dns_start) + ";dns_done_us=" +
             fmt_i64(o.dns_done) + ";connect_us=" + fmt_i64(o.connect_done) +
             ";request_us=" + fmt_i64(o.request_sent) +
             ";first_byte_us=" + fmt_i64(o.first_byte) + ";complete_us=" +
             fmt_i64(o.complete) + ";error=" + sanitize(o.error) + "\n";
    }
    for (const PageRecord& p : load.buffer.pages) {
      out += prefix + std::to_string(p.session) + "," +
             fmt_i64(p.started_at) + ",browser,page,0," +
             (p.success ? "1" : "0") + "," + fmt(to_ms(p.plt), 6) + "," +
             sanitize(p.url) + ",degraded_ms=" +
             fmt(to_ms(p.degraded_plt), 3) + "\n";
    }
  }
  return out;
}

}  // namespace mahimahi::obs
