#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mahimahi::obs {

/// Wall-clock profiler: scoped RAII timers aggregated by name across every
/// thread. Real elapsed time — NOT simulated time — so the output is a
/// diagnostic, never a determinism-checked artifact (it changes run to
/// run; mm_experiment writes it as profile.json next to, but excluded
/// from, the byte-compared exports).
///
/// Disabled (the default) a ProfileScope is two relaxed atomic loads and
/// no clock reads, so MAHI_PROFILE can stay in hot paths permanently.
/// The merge is deterministic by name: identical scope structure yields an
/// identical table layout even though the times differ.
class Profiler {
 public:
  struct Entry {
    std::string name;
    std::uint64_t count{0};
    std::int64_t total_ns{0};  // wall time with children included
    std::int64_t self_ns{0};   // total minus time inside nested scopes
  };

  static void enable(bool on);
  [[nodiscard]] static bool enabled();

  /// Drop all accumulated entries (tests; between experiment phases).
  static void reset();

  /// Snapshot sorted by name — the deterministic merge order.
  [[nodiscard]] static std::vector<Entry> snapshot();

  /// Human table: name, calls, total ms, self ms; sorted by name.
  [[nodiscard]] static std::string report();

  /// {"schema": "mahimahi-profile-v1", "scopes": [...]} — one line per
  /// scope, sorted by name.
  [[nodiscard]] static std::string to_json();
};

/// RAII scope: measures wall time from construction to destruction and
/// folds it into the named Profiler entry. Parent scopes on the same
/// thread subtract nested time to get self time. `name` must outlive the
/// scope (string literals).
class ProfileScope {
 public:
  explicit ProfileScope(const char* name);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_{0};
  std::int64_t child_ns_{0};
  ProfileScope* parent_{nullptr};
  bool active_{false};
};

}  // namespace mahimahi::obs

#define MAHI_PROFILE_CONCAT2(a, b) a##b
#define MAHI_PROFILE_CONCAT(a, b) MAHI_PROFILE_CONCAT2(a, b)
/// Time the rest of the enclosing block under `name` (a string literal).
#define MAHI_PROFILE(name) \
  ::mahimahi::obs::ProfileScope MAHI_PROFILE_CONCAT(mahi_profile_, __LINE__)(name)
