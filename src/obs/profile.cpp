#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

namespace mahimahi::obs {
namespace {

std::atomic<bool> g_enabled{false};

struct Totals {
  std::uint64_t count{0};
  std::int64_t total_ns{0};
  std::int64_t self_ns{0};
};

std::mutex g_mutex;
std::map<std::string, Totals>& totals() {
  static std::map<std::string, Totals> map;
  return map;
}

thread_local ProfileScope* t_current = nullptr;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Profiler::enable(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool Profiler::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock{g_mutex};
  totals().clear();
}

std::vector<Profiler::Entry> Profiler::snapshot() {
  std::vector<Entry> entries;
  const std::lock_guard<std::mutex> lock{g_mutex};
  entries.reserve(totals().size());
  for (const auto& [name, t] : totals()) {  // std::map: sorted by name
    entries.push_back(Entry{name, t.count, t.total_ns, t.self_ns});
  }
  return entries;
}

std::string Profiler::report() {
  const std::vector<Entry> entries = snapshot();
  std::string out = "profile (wall clock)\n";
  char line[192];
  std::snprintf(line, sizeof line, "  %-24s %10s %12s %12s\n", "scope",
                "calls", "total ms", "self ms");
  out += line;
  for (const Entry& e : entries) {
    std::snprintf(line, sizeof line, "  %-24s %10llu %12.3f %12.3f\n",
                  e.name.c_str(), static_cast<unsigned long long>(e.count),
                  static_cast<double>(e.total_ns) / 1e6,
                  static_cast<double>(e.self_ns) / 1e6);
    out += line;
  }
  return out;
}

std::string Profiler::to_json() {
  const std::vector<Entry> entries = snapshot();
  std::string out = "{\n  \"schema\": \"mahimahi-profile-v1\",\n  \"scopes\": [";
  char buf[224];
  bool first = true;
  for (const Entry& e : entries) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"name\": \"%s\", \"count\": %llu, "
                  "\"total_ns\": %lld, \"self_ns\": %lld}",
                  first ? "" : ",", e.name.c_str(),
                  static_cast<unsigned long long>(e.count),
                  static_cast<long long>(e.total_ns),
                  static_cast<long long>(e.self_ns));
    out += buf;
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

ProfileScope::ProfileScope(const char* name) : name_{name} {
  if (!Profiler::enabled()) {
    return;
  }
  active_ = true;
  start_ns_ = now_ns();
  parent_ = t_current;
  t_current = this;
}

ProfileScope::~ProfileScope() {
  if (!active_) {
    return;
  }
  const std::int64_t elapsed = now_ns() - start_ns_;
  t_current = parent_;
  if (parent_ != nullptr) {
    parent_->child_ns_ += elapsed;
  }
  const std::lock_guard<std::mutex> lock{g_mutex};
  Totals& t = totals()[name_];
  ++t.count;
  t.total_ns += elapsed;
  t.self_ns += elapsed - child_ns_;
}

}  // namespace mahimahi::obs
