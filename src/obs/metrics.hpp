#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace mahimahi::obs {

/// Log-bucketed histogram with *fixed* bucket boundaries: four sub-buckets
/// per octave, cut at the quarter-octave mantissa points (2^0.25, 2^0.5,
/// 2^0.75). Bucketing uses frexp/ldexp only — exact IEEE operations — so a
/// bucket index is a pure function of the value on every platform, and a
/// snapshot's bytes depend only on the observed multiset, never on thread
/// count, merge order or libm. Percentiles report the upper bound of the
/// bucket holding the rank, clamped to the exact observed [min, max].
class Histogram {
 public:
  void observe(double value);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double percentile(double p) const;

  /// Bucket index for a value: values <= 0 share the zero bucket;
  /// otherwise exponent * 4 + quarter-octave sub-bucket.
  [[nodiscard]] static std::int32_t bucket_of(double value);
  /// Upper boundary of a bucket (inclusive), 0 for the zero bucket.
  [[nodiscard]] static double upper_bound(std::int32_t bucket);

  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0};
  double min_{0};
  double max_{0};
};

/// Point-in-time value set, ordered by name — the serializable face of a
/// MetricsRegistry. All serializations use fixed-precision formatting, so
/// equal registries produce byte-identical text.
struct MetricsSnapshot {
  struct HistogramStats {
    std::uint64_t count{0};
    double sum{0};
    double min{0};
    double max{0};
    double p50{0};
    double p90{0};
    double p99{0};
  };

  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  [[nodiscard]] std::size_t size() const {
    return counters.size() + gauges.size() + histograms.size();
  }

  /// Full document: {"schema": "mahimahi-metrics-v1", ...}, one metric per
  /// line (mm_metrics output).
  [[nodiscard]] std::string to_json() const;
  /// The same object without schema or newlines — the per-cell `metrics`
  /// block embedded in an experiment report row.
  [[nodiscard]] std::string to_json_inline() const;
  /// "name,type,count,sum,min,max,p50,p90,p99,value" rows.
  [[nodiscard]] std::string to_csv() const;
};

/// Deterministic named counters/gauges/histograms. Not thread-safe on
/// purpose: one registry belongs to one deterministic derivation (one cell
/// merge, or one simulation via Tracer::set_metrics), matching the repo's
/// one-Rng-per-task convention.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::int64_t delta = 1);
  void set_gauge(const std::string& name, double value);
  void observe(const std::string& name, double value);

  /// Direct-population hook (Tracer::set_metrics): counts the event under
  /// "events.<layer>.<kind>". Replaying a TraceBuffer's events through
  /// this function reproduces the live-instrumentation counters exactly —
  /// the property that lets the experiment runner derive every cell's
  /// metrics post-hoc from journaled traces.
  void observe_trace_event(const TraceEvent& event);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Derive the full metric catalog from one load's trace into `registry`:
///   events.<layer>.<kind>        per-event counters (== direct path)
///   objects.* / pages.*          waterfall outcome counters
///   queue.residence_us           enqueue→dequeue matched by (queue, pkt id)
///   queue.depth_pkts             instantaneous depth at each enqueue
///   tcp.cwnd_convergence_us      per flow: first time cwnd stays within
///                                25% of its final sample
///   tcp.retransmit_burst         per flow: maximal retransmit runs with
///                                inter-event gaps <= 100 ms
///   plt.phase.{dns,connect,request,first_byte,receive}_us
///                                per-object critical-path breakdown
///   fault.recovery_us            fetch_start→complete of retried objects
///                                that still completed
/// Matching state is local to the call: one load is one simulation, so
/// flows and packet ids never alias across loads.
void derive_metrics(const TraceBuffer& trace, MetricsRegistry& registry);

/// One cell's metrics: derive every load (in the given order — the runner
/// passes load-index order) into a fresh registry, then add the
/// plt.share.* gauges (each phase's share of the cell's summed critical
/// path) and snapshot.
[[nodiscard]] MetricsSnapshot derive_cell_metrics(
    const std::vector<LoadTrace>& loads);

}  // namespace mahimahi::obs
