#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace mahimahi::obs {
namespace {

// Quarter-octave mantissa boundaries: 2^-1, 2^-0.75, 2^-0.5, 2^-0.25 — the
// cut points of frexp's [0.5, 1) mantissa range. Compile-time constants,
// never recomputed, so bucket edges are pinned forever.
constexpr double kQuarter[4] = {0.5, 0.59460355750136051, 0.70710678118654757,
                                0.84089641525371461};

// The bucket all values <= 0 share (timings and counts are non-negative;
// an exact zero is common — e.g. a warm-connection connect phase).
constexpr std::int32_t kZeroBucket = INT32_MIN;

std::string fmt(double value, int precision = 6) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

void append_histogram_json(std::string& out,
                           const MetricsSnapshot::HistogramStats& h) {
  out += "{\"count\": " + std::to_string(h.count);
  out += ", \"sum\": " + fmt(h.sum);
  out += ", \"min\": " + fmt(h.min);
  out += ", \"max\": " + fmt(h.max);
  out += ", \"p50\": " + fmt(h.p50);
  out += ", \"p90\": " + fmt(h.p90);
  out += ", \"p99\": " + fmt(h.p99) + "}";
}

}  // namespace

// ---- Histogram ------------------------------------------------------------

std::int32_t Histogram::bucket_of(double value) {
  if (!(value > 0)) {
    return kZeroBucket;
  }
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // [0.5, 1)
  int sub = 3;
  if (mantissa < kQuarter[1]) {
    sub = 0;
  } else if (mantissa < kQuarter[2]) {
    sub = 1;
  } else if (mantissa < kQuarter[3]) {
    sub = 2;
  }
  return exponent * 4 + sub;
}

double Histogram::upper_bound(std::int32_t bucket) {
  if (bucket == kZeroBucket) {
    return 0;
  }
  // Round toward the octave floor for negative indices too.
  std::int32_t exponent = bucket / 4;
  std::int32_t sub = bucket % 4;
  if (sub < 0) {
    sub += 4;
    --exponent;
  }
  const double boundary = sub == 3 ? 1.0 : kQuarter[sub + 1];
  return std::ldexp(boundary, exponent);
}

void Histogram::observe(double value) {
  ++buckets_[bucket_of(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = value < min_ ? value : min_;
    max_ = value > max_ ? value : max_;
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (const auto& [bucket, count] : other.buckets_) {
    buckets_[bucket] += count;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = other.min_ < min_ ? other.min_ : min_;
    max_ = other.max_ > max_ ? other.max_ : max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * n). Integer arithmetic so the rank is exact.
  const auto rank_target = static_cast<std::uint64_t>(
      (p >= 100 ? 100.0 : p) / 100.0 * static_cast<double>(count_) + 0.999999);
  const std::uint64_t rank = rank_target == 0 ? 1 : rank_target;
  std::uint64_t cumulative = 0;
  for (const auto& [bucket, count] : buckets_) {
    cumulative += count;
    if (cumulative >= rank) {
      double bound = upper_bound(bucket);
      bound = bound < min_ ? min_ : bound;
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

// ---- MetricsSnapshot ------------------------------------------------------

std::string MetricsSnapshot::to_json_inline() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "" : ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "" : ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": " + fmt(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : histograms) {
    out += first ? "" : ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": ";
    append_histogram_json(out, stats);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"schema\": \"mahimahi-metrics-v1\",\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + fmt(value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_histogram_json(out, stats);
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  const auto sanitize = [](std::string text) {
    for (char& c : text) {
      if (c == ',' || c == '\n' || c == '\r') {
        c = ';';
      }
    }
    return text;
  };
  std::string out = "name,type,count,sum,min,max,p50,p90,p99,value\n";
  for (const auto& [name, value] : counters) {
    out += sanitize(name) + ",counter,,,,,,,," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += sanitize(name) + ",gauge,,,,,,,," + fmt(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += sanitize(name) + ",histogram," + std::to_string(h.count) + "," +
           fmt(h.sum) + "," + fmt(h.min) + "," + fmt(h.max) + "," +
           fmt(h.p50) + "," + fmt(h.p90) + "," + fmt(h.p99) + ",\n";
  }
  return out;
}

// ---- MetricsRegistry ------------------------------------------------------

void MetricsRegistry::add_counter(const std::string& name,
                                  std::int64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histograms_[name].observe(value);
}

void MetricsRegistry::observe_trace_event(const TraceEvent& event) {
  std::string name = "events.";
  name += to_string(event.layer);
  name += ".";
  name += to_string(event.kind);
  ++counters_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = histogram.count();
    stats.sum = histogram.sum();
    stats.min = histogram.min();
    stats.max = histogram.max();
    stats.p50 = histogram.percentile(50);
    stats.p90 = histogram.percentile(90);
    stats.p99 = histogram.percentile(99);
    snap.histograms.emplace(name, stats);
  }
  return snap;
}

// ---- derivation -----------------------------------------------------------

namespace {

/// Clamp each waterfall boundary into monotone order, inheriting the
/// previous boundary when a phase never happened — the critical-path
/// phases are then the non-negative gaps between consecutive boundaries.
/// (A multiplexed "sent" can timestamp before the handshake completes —
/// the request went to the pre-connect queue — so raw boundaries are not
/// guaranteed monotone.)
struct PhaseBreakdown {
  double dns{0};
  double connect{0};
  double request{0};
  double first_byte{0};
  double receive{0};
};

PhaseBreakdown object_phases(const ObjectRecord& o) {
  const auto step = [](Microseconds raw, Microseconds previous) {
    return raw < previous ? previous : raw;
  };
  PhaseBreakdown phases;
  if (o.fetch_start < 0 || o.complete < 0) {
    return phases;  // never completed: no critical path to split
  }
  const Microseconds start = o.fetch_start;
  const Microseconds dns_done = step(o.dns_done, start);
  const Microseconds connect_done = step(o.connect_done, dns_done);
  const Microseconds request_sent = step(o.request_sent, connect_done);
  const Microseconds first_byte = step(o.first_byte, request_sent);
  const Microseconds complete = step(o.complete, first_byte);
  phases.dns = static_cast<double>(dns_done - start);
  phases.connect = static_cast<double>(connect_done - dns_done);
  phases.request = static_cast<double>(request_sent - connect_done);
  phases.first_byte = static_cast<double>(first_byte - request_sent);
  phases.receive = static_cast<double>(complete - first_byte);
  return phases;
}

}  // namespace

void derive_metrics(const TraceBuffer& trace, MetricsRegistry& registry) {
  // Matching state, all local: one buffer is one simulation.
  std::map<std::pair<std::string, std::uint64_t>, Microseconds> in_queue;
  struct FlowCwnd {
    std::vector<std::pair<Microseconds, double>> samples;
  };
  std::map<std::uint64_t, FlowCwnd> cwnd;
  struct FlowBurst {
    Microseconds last_at{0};
    std::uint64_t run{0};
  };
  std::map<std::uint64_t, FlowBurst> bursts;
  constexpr Microseconds kBurstGap = 100'000;

  for (const TraceEvent& e : trace.events) {
    registry.observe_trace_event(e);
    switch (e.kind) {
      case EventKind::kEnqueue:
        if (e.flow != 0) {
          in_queue[{e.label, e.flow}] = e.at;
        }
        registry.observe("queue.depth_pkts", static_cast<double>(e.value));
        break;
      case EventKind::kDequeue:
        if (e.flow != 0) {
          const auto it = in_queue.find({e.label, e.flow});
          if (it != in_queue.end()) {
            registry.observe("queue.residence_us",
                             static_cast<double>(e.at - it->second));
            in_queue.erase(it);
          }
        }
        break;
      case EventKind::kDrop:
        // Drop labels carry a "/reason" suffix the enqueue label lacks;
        // enqueue-time drops were never queued, so there is nothing to
        // unmatch — dropped-at-dequeue ids (flow 0) cannot match either.
        break;
      case EventKind::kTcpCwndSample:
        cwnd[e.flow].samples.emplace_back(e.at, e.metric);
        break;
      case EventKind::kTcpRetransmit: {
        FlowBurst& burst = bursts[e.flow];
        if (burst.run > 0 && e.at - burst.last_at > kBurstGap) {
          registry.observe("tcp.retransmit_burst",
                           static_cast<double>(burst.run));
          burst.run = 0;
        }
        burst.last_at = e.at;
        ++burst.run;
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [flow, burst] : bursts) {
    if (burst.run > 0) {
      registry.observe("tcp.retransmit_burst",
                       static_cast<double>(burst.run));
    }
  }
  // Convergence: the earliest sample after which cwnd never leaves the
  // ±25% band around its final value (scanned backwards — the first
  // out-of-band sample from the end pins the convergence point).
  for (const auto& [flow, series] : cwnd) {
    const auto& samples = series.samples;
    if (samples.empty()) {
      continue;
    }
    const double final_cwnd = samples.back().second;
    const double band = 0.25 * (final_cwnd < 0 ? -final_cwnd : final_cwnd);
    std::size_t converged = 0;
    for (std::size_t i = samples.size(); i-- > 0;) {
      const double delta = samples[i].second - final_cwnd;
      if (delta > band || delta < -band) {
        converged = i + 1;
        break;
      }
    }
    if (converged < samples.size()) {
      registry.observe("tcp.cwnd_convergence_us",
                       static_cast<double>(samples[converged].first -
                                           samples.front().first));
    }
  }

  for (const ObjectRecord& o : trace.objects) {
    registry.add_counter("objects.count");
    if (o.failed) {
      registry.add_counter("objects.failed");
    }
    if (o.attempts > 1) {
      registry.add_counter("objects.retried");
      if (!o.failed && o.complete >= 0 && o.fetch_start >= 0) {
        registry.observe("fault.recovery_us",
                         static_cast<double>(o.complete - o.fetch_start));
      }
    }
    if (o.fetch_start < 0 || o.complete < 0) {
      continue;
    }
    const PhaseBreakdown phases = object_phases(o);
    registry.observe("plt.phase.dns_us", phases.dns);
    registry.observe("plt.phase.connect_us", phases.connect);
    registry.observe("plt.phase.request_us", phases.request);
    registry.observe("plt.phase.first_byte_us", phases.first_byte);
    registry.observe("plt.phase.receive_us", phases.receive);
  }

  for (const PageRecord& p : trace.pages) {
    registry.add_counter("pages.count");
    if (!p.success) {
      registry.add_counter("pages.failed");
    }
    registry.observe("page.plt_us", static_cast<double>(p.plt));
  }
}

MetricsSnapshot derive_cell_metrics(const std::vector<LoadTrace>& loads) {
  MetricsRegistry registry;
  for (const LoadTrace& load : loads) {
    derive_metrics(load.buffer, registry);
  }
  MetricsSnapshot snap = registry.snapshot();
  // Critical-path shares over the *whole cell*: each phase histogram's sum
  // already aggregates every completed object across the loads.
  static constexpr const char* kPhases[5] = {"dns", "connect", "request",
                                             "first_byte", "receive"};
  double totals[5] = {0, 0, 0, 0, 0};
  double critical_path = 0;
  for (int i = 0; i < 5; ++i) {
    const auto it =
        snap.histograms.find("plt.phase." + std::string{kPhases[i]} + "_us");
    if (it != snap.histograms.end()) {
      totals[i] = it->second.sum;
      critical_path += totals[i];
    }
  }
  if (critical_path > 0) {
    for (int i = 0; i < 5; ++i) {
      snap.gauges.emplace("plt.share." + std::string{kPhases[i]},
                          totals[i] / critical_path);
    }
  }
  return snap;
}

}  // namespace mahimahi::obs
