#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mahimahi::obs {

/// One load's buffer tagged with its global load index — the merge key.
/// Exporters require the vector sorted by load_index (the experiment
/// runner merges task results in index order), which makes exported bytes
/// independent of thread count and shard assignment.
struct LoadTrace {
  int load_index{0};
  TraceBuffer buffer;
};

/// Provenance stamped into every artifact.
struct TraceMeta {
  std::string experiment;
  std::string cell_label;
  int cell_index{0};
  std::uint64_t cell_seed{0};
};

/// Chrome trace-event JSON (the "JSON Array Format" inside an object with
/// displayTimeUnit) — loadable in Perfetto / chrome://tracing. One process
/// per load, one thread lane per (session, layer); queue depth and cwnd
/// become counter tracks, objects and pages become complete spans.
[[nodiscard]] std::string to_chrome_trace(const TraceMeta& meta,
                                          const std::vector<LoadTrace>& loads);

/// HAR 1.2: one page per (load, session) PageRecord, one entry per
/// ObjectRecord. Virtual timestamps are mapped onto a fixed fake epoch so
/// the ISO date strings are deterministic.
[[nodiscard]] std::string to_har(const TraceMeta& meta,
                                 const std::vector<LoadTrace>& loads);

/// Flat CSV time series (one row per event, object and page) — the input
/// format of mm_trace_dump.
[[nodiscard]] std::string to_csv(const TraceMeta& meta,
                                 const std::vector<LoadTrace>& loads);

}  // namespace mahimahi::obs
