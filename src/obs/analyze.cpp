#include "obs/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace mahimahi::obs {
namespace {

std::vector<std::string> split(const std::string& line, char sep,
                               std::size_t max_fields) {
  // The exporter sanitizes separators out of every text field, but capping
  // the split keeps the last field whole if a future field grows commas.
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (fields.size() + 1 < max_fields) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  fields.push_back(line.substr(start));
  return fields;
}

/// "key=value" token from the space-separated header comment; "" absent.
std::string header_field(const std::string& header, const std::string& key) {
  const std::string needle = " " + key + "=";
  const std::size_t pos = header.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  const std::size_t start = pos + needle.size();
  const std::size_t end = header.find(' ', start);
  return header.substr(start,
                       end == std::string::npos ? end : end - start);
}

void fail(std::string* error, const std::string& reason) {
  if (error != nullptr) {
    *error = reason;
  }
}

}  // namespace

std::string detail_field(const std::string& detail, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < detail.size()) {
    const std::size_t end = detail.find(';', pos);
    const std::string item =
        detail.substr(pos, end == std::string::npos ? end : end - pos);
    if (item.rfind(needle, 0) == 0) {
      return item.substr(needle.size());
    }
    if (end == std::string::npos) {
      break;
    }
    pos = end + 1;
  }
  return "";
}

std::int64_t detail_us(const std::string& detail, const std::string& key) {
  const std::string text = detail_field(detail, key);
  return text.empty() ? -1 : std::atoll(text.c_str());
}

std::optional<ParsedTrace> parse_trace_csv(std::istream& in,
                                           std::string* error) {
  ParsedTrace trace;
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# mahimahi-obs-trace-v1", 0) != 0) {
    fail(error, "not a mahimahi-obs-trace-v1 CSV");
    return std::nullopt;
  }
  trace.experiment = header_field(header, "experiment");
  trace.cell_label = header_field(header, "label");
  const std::string cell = header_field(header, "cell");
  trace.cell_index = cell.empty() ? -1 : std::atoi(cell.c_str());
  trace.seed = std::strtoull(header_field(header, "seed").c_str(), nullptr, 10);

  std::string columns;
  std::getline(in, columns);  // "load,session,t_us,..."

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields = split(line, ',', 10);
    if (fields.size() != 10) {
      fail(error, "malformed row: " + line);
      return std::nullopt;
    }
    TraceRow row;
    row.load = std::atoi(fields[0].c_str());
    row.session = std::atoi(fields[1].c_str());
    row.t_us = std::atoll(fields[2].c_str());
    row.layer = std::move(fields[3]);
    row.kind = std::move(fields[4]);
    row.flow = std::strtoull(fields[5].c_str(), nullptr, 10);
    row.value = std::strtoull(fields[6].c_str(), nullptr, 10);
    row.metric = std::atof(fields[7].c_str());
    row.label = std::move(fields[8]);
    row.detail = std::move(fields[9]);
    row.raw = std::move(line);
    trace.rows.push_back(std::move(row));
  }
  return trace;
}

std::optional<ParsedTrace> parse_trace_file(const std::string& path,
                                            std::string* error) {
  std::ifstream in{path};
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return parse_trace_csv(in, error);
}

std::vector<LoadTrace> to_load_traces(const ParsedTrace& trace) {
  std::vector<LoadTrace> loads;
  const auto buffer_for = [&](int load_index) -> TraceBuffer& {
    if (loads.empty() || loads.back().load_index != load_index) {
      loads.push_back(LoadTrace{load_index, TraceBuffer{}});
    }
    return loads.back().buffer;
  };
  for (const TraceRow& row : trace.rows) {
    TraceBuffer& buffer = buffer_for(row.load);
    if (row.layer == "browser" && row.kind == "object") {
      ObjectRecord o;
      o.url = row.label;
      o.kind = detail_field(row.detail, "kind");
      o.session = row.session;
      o.fetch_start = row.t_us;
      o.dns_start = detail_us(row.detail, "dns_start_us");
      o.dns_done = detail_us(row.detail, "dns_done_us");
      o.connect_done = detail_us(row.detail, "connect_us");
      o.request_sent = detail_us(row.detail, "request_us");
      o.first_byte = detail_us(row.detail, "first_byte_us");
      o.complete = detail_us(row.detail, "complete_us");
      o.bytes = row.value;
      const std::string status = detail_field(row.detail, "status");
      o.status = static_cast<std::uint32_t>(std::atoi(status.c_str()));
      const std::string attempts = detail_field(row.detail, "attempts");
      o.attempts = static_cast<std::uint32_t>(
          attempts.empty() ? 1 : std::atoi(attempts.c_str()));
      o.failed = detail_field(row.detail, "failed") == "1";
      o.error = detail_field(row.detail, "error");
      buffer.objects.push_back(std::move(o));
      continue;
    }
    if (row.layer == "browser" && row.kind == "page") {
      PageRecord p;
      p.session = row.session;
      p.url = row.label;
      p.started_at = row.t_us;
      p.plt = static_cast<Microseconds>(row.metric * 1000.0 + 0.5);
      const std::string degraded = detail_field(row.detail, "degraded_ms");
      p.degraded_plt = static_cast<Microseconds>(
          std::atof(degraded.c_str()) * 1000.0 + 0.5);
      p.success = row.value != 0;
      buffer.pages.push_back(std::move(p));
      continue;
    }
    TraceEvent e;
    e.at = row.t_us;
    if (!layer_from_string(row.layer, e.layer) ||
        !kind_from_string(row.kind, e.kind)) {
      continue;  // future layer/kind: skip rather than misclassify
    }
    e.session = row.session;
    e.flow = row.flow;
    e.value = row.value;
    e.metric = row.metric;
    e.label = row.label;
    buffer.events.push_back(std::move(e));
  }
  return loads;
}

std::string render_waterfall(const std::vector<TraceRow>& rows) {
  constexpr int kWidth = 64;
  std::string out;
  char line[256];
  std::vector<const TraceRow*> objects;
  std::int64_t max_us = 1;
  // Axis extent: every object's last recorded timestamp (not just
  // completions — an early-failing object still occupies its span) and
  // every page's end.
  const auto last_known = [](const TraceRow& row) {
    std::int64_t end = row.t_us;
    for (const char* key : {"dns_start_us", "dns_done_us", "connect_us",
                            "request_us", "first_byte_us", "complete_us"}) {
      end = std::max(end, detail_us(row.detail, key));
    }
    return end;
  };
  for (const TraceRow& row : rows) {
    if (row.layer == "browser" && row.kind == "object") {
      objects.push_back(&row);
      max_us = std::max(max_us, last_known(row));
    } else if (row.layer == "browser" && row.kind == "page") {
      max_us = std::max(
          max_us, row.t_us + static_cast<std::int64_t>(row.metric * 1000.0));
    }
  }
  if (objects.empty()) {
    return "no objects match the filter\n";
  }
  std::stable_sort(objects.begin(), objects.end(),
                   [](const TraceRow* a, const TraceRow* b) {
                     if (a->load != b->load) {
                       return a->load < b->load;
                     }
                     if (a->session != b->session) {
                       return a->session < b->session;
                     }
                     return a->t_us < b->t_us;
                   });

  const auto col = [&](std::int64_t t_us) {
    const std::int64_t c = t_us * kWidth / max_us;
    return static_cast<int>(std::min<std::int64_t>(c, kWidth - 1));
  };
  std::snprintf(line, sizeof line,
                "time axis: 0 .. %.1f ms  (%d columns; '.' queued  '-' dns  "
                "'+' connect  '=' request  '#' receive  '!' failed)\n",
                static_cast<double>(max_us) / 1e3, kWidth);
  out += line;
  for (const TraceRow* object : objects) {
    const std::int64_t start = object->t_us;
    const std::int64_t dns_start = detail_us(object->detail, "dns_start_us");
    const std::int64_t dns_done = detail_us(object->detail, "dns_done_us");
    const std::int64_t connect = detail_us(object->detail, "connect_us");
    const std::int64_t request = detail_us(object->detail, "request_us");
    const std::int64_t first_byte =
        detail_us(object->detail, "first_byte_us");
    const bool failed = detail_field(object->detail, "failed") == "1";
    const std::int64_t end = std::max(start, last_known(*object));

    // Column i shows the phase in progress at the column's start instant
    // (clamped into the object's span). Deciding each column independently
    // — instead of painting phase intervals over each other — means a
    // zero-duration phase cannot blot out its successor, it just claims no
    // column.
    const auto phase_at = [&](std::int64_t t) {
      if (first_byte >= 0 && t >= first_byte) {
        return '#';
      }
      if (request >= 0 && t >= request) {
        return '=';
      }
      if (dns_start >= 0 && t >= dns_start &&
          (dns_done < 0 || t < dns_done)) {
        return '-';
      }
      if (connect >= 0 && t < connect && (dns_done < 0 || t >= dns_done)) {
        return '+';
      }
      return '.';
    };
    std::string bar(kWidth, ' ');
    const int from = std::clamp(col(start), 0, kWidth - 1);
    const int to = std::clamp(std::max(col(end), from), 0, kWidth - 1);
    for (int i = from; i <= to; ++i) {
      const std::int64_t t =
          std::max(start, static_cast<std::int64_t>(i) * max_us / kWidth);
      bar[static_cast<std::size_t>(i)] = phase_at(t);
    }
    if (failed) {
      bar[static_cast<std::size_t>(to)] = '!';
    }

    std::string name = object->label;
    if (name.size() > 36) {
      name = "..." + name.substr(name.size() - 33);
    }
    const std::string attempts = detail_field(object->detail, "attempts");
    std::snprintf(line, sizeof line, "%2d/%-3d %-36s |%s| %8.1f ms%s%s\n",
                  object->load, object->session, name.c_str(), bar.c_str(),
                  static_cast<double>(end - start) / 1e3,
                  attempts != "1" && !attempts.empty()
                      ? (" x" + attempts).c_str()
                      : "",
                  failed ? "  FAILED" : "");
    out += line;
  }
  return out;
}

namespace {

/// Snapshot flattened to name → value, so counter/gauge/histogram deltas
/// rank on one scale.
std::map<std::string, double> flatten(const MetricsSnapshot& snap) {
  std::map<std::string, double> flat;
  for (const auto& [name, value] : snap.counters) {
    flat[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    flat[name] = value;
  }
  for (const auto& [name, h] : snap.histograms) {
    flat[name + ".count"] = static_cast<double>(h.count);
    flat[name + ".sum"] = h.sum;
    flat[name + ".p50"] = h.p50;
    flat[name + ".p99"] = h.p99;
    flat[name + ".max"] = h.max;
  }
  return flat;
}

CellDiff diff_cell(const ParsedTrace& a, const ParsedTrace& b) {
  CellDiff diff;
  diff.label = a.cell_label;

  // Divergence localization: first raw-line mismatch (the exact relation
  // a byte-compare of the two files would trip on, minus the header).
  const std::size_t common = std::min(a.rows.size(), b.rows.size());
  std::size_t divergence = common;
  for (std::size_t i = 0; i < common; ++i) {
    if (a.rows[i].raw != b.rows[i].raw) {
      divergence = i;
      break;
    }
  }
  if (divergence == common && a.rows.size() == b.rows.size()) {
    diff.identical = true;
    return diff;
  }
  diff.first_divergence = divergence;
  const TraceRow* witness = nullptr;
  if (divergence < a.rows.size()) {
    diff.a_line = a.rows[divergence].raw;
    witness = &a.rows[divergence];
  }
  if (divergence < b.rows.size()) {
    diff.b_line = b.rows[divergence].raw;
    if (witness == nullptr) {
      witness = &b.rows[divergence];
    }
  }
  if (witness != nullptr) {
    diff.layer = witness->layer;
    diff.kind = witness->kind;
    diff.t_us = witness->t_us;
    diff.flow = witness->flow;
  }

  std::map<std::string, std::pair<std::int64_t, std::int64_t>> counts;
  for (const TraceRow& row : a.rows) {
    ++counts[row.layer + "." + row.kind].first;
  }
  for (const TraceRow& row : b.rows) {
    ++counts[row.layer + "." + row.kind].second;
  }
  for (const auto& [key, pair] : counts) {
    if (pair.first != pair.second) {
      diff.count_deltas.push_back(
          CellDiff::CountDelta{key, pair.first, pair.second});
    }
  }
  std::stable_sort(diff.count_deltas.begin(), diff.count_deltas.end(),
                   [](const CellDiff::CountDelta& x,
                      const CellDiff::CountDelta& y) {
                     const std::int64_t dx = x.a > x.b ? x.a - x.b : x.b - x.a;
                     const std::int64_t dy = y.a > y.b ? y.a - y.b : y.b - y.a;
                     return dx > dy;
                   });

  const std::map<std::string, double> metrics_a =
      flatten(derive_cell_metrics(to_load_traces(a)));
  const std::map<std::string, double> metrics_b =
      flatten(derive_cell_metrics(to_load_traces(b)));
  std::map<std::string, std::pair<double, double>> merged;
  for (const auto& [name, value] : metrics_a) {
    merged[name].first = value;
  }
  for (const auto& [name, value] : metrics_b) {
    merged[name].second = value;
  }
  for (const auto& [name, pair] : merged) {
    if (pair.first == pair.second) {
      continue;
    }
    const double magnitude =
        std::max({pair.first < 0 ? -pair.first : pair.first,
                  pair.second < 0 ? -pair.second : pair.second, 1e-12});
    const double relative = (pair.second - pair.first) / magnitude;
    diff.metric_deltas.push_back(
        CellDiff::MetricDelta{name, pair.first, pair.second, relative});
  }
  std::stable_sort(
      diff.metric_deltas.begin(), diff.metric_deltas.end(),
      [](const CellDiff::MetricDelta& x, const CellDiff::MetricDelta& y) {
        const double rx = x.relative < 0 ? -x.relative : x.relative;
        const double ry = y.relative < 0 ? -y.relative : y.relative;
        return rx > ry;
      });
  return diff;
}

}  // namespace

TraceDiff diff_traces(const std::vector<ParsedTrace>& a,
                      const std::vector<ParsedTrace>& b) {
  TraceDiff diff;
  std::map<std::string, const ParsedTrace*> b_by_label;
  for (const ParsedTrace& trace : b) {
    b_by_label.emplace(trace.cell_label, &trace);
  }
  for (const ParsedTrace& trace : a) {
    const auto it = b_by_label.find(trace.cell_label);
    if (it == b_by_label.end()) {
      CellDiff missing;
      missing.label = trace.cell_label;
      missing.in_b = false;
      diff.cells.push_back(std::move(missing));
      diff.identical = false;
      continue;
    }
    CellDiff cell = diff_cell(trace, *it->second);
    diff.identical = diff.identical && cell.identical;
    diff.cells.push_back(std::move(cell));
    b_by_label.erase(it);
  }
  for (const ParsedTrace& trace : b) {
    if (b_by_label.count(trace.cell_label) != 0) {
      CellDiff missing;
      missing.label = trace.cell_label;
      missing.in_a = false;
      diff.cells.push_back(std::move(missing));
      diff.identical = false;
    }
  }
  return diff;
}

}  // namespace mahimahi::obs
