#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace mahimahi::obs {

class MetricsRegistry;

/// Which layer of the stack emitted an event. Layers double as filter keys
/// in mm_trace_dump and as thread lanes in the Chrome-trace export.
enum class Layer : std::uint8_t {
  kLink,
  kTcp,
  kDns,
  kFault,
  kBrowser,
  /// Experiment-runner lifecycle: journal appends/replays, watchdog
  /// expiries, cancelled tasks, worker retries. Watchdog events land in
  /// the task's own cell trace; the rest describe work *around* the
  /// simulations and are exported to the journal's events.csv instead, so
  /// resumed cell artifacts stay byte-identical to an uninterrupted run.
  kRunner,
};

/// What happened. One flat enum across layers keeps TraceEvent a single
/// compact struct; the Layer field disambiguates homonyms.
enum class EventKind : std::uint8_t {
  // link (label = "direction/reason" for drops, "direction" otherwise;
  // value = instantaneous queue depth in packets, metric = depth in bytes)
  kEnqueue,
  kDequeue,
  kDrop,
  // tcp (flow = tracer-allocated connection id)
  kTcpConnect,      // SYN sent / accepted (label = peer address)
  kTcpEstablished,  // handshake completed
  kTcpCwndSample,   // once per RTT sample: metric = cwnd bytes,
                    // value = ssthresh bytes (0 when still infinite)
  kTcpRttSample,    // metric = srtt ms, value = raw sample us
  kTcpRetransmit,   // fast/recovery retransmit, value = sequence number
  kTcpRto,          // retransmission timeout fired, value = consecutive RTOs
  kTcpClose,        // label = typed CloseReason string
  // dns (label = hostname)
  kDnsQuery,
  kDnsRetransmit,
  kDnsAnswer,  // value = 1 resolved / 0 failed
  // fault injections (label = "injector/detail", value = injector's own
  // event index within its decision stream)
  kFaultInjected,
  // browser (label = url; object spans live in ObjectRecord instead)
  kFetchStart,
  kFetchRetry,    // value = attempt number just failed
  kFetchTimeout,  // deadline expiry, value = attempt number
  // runner (label = task label "cell<i>/load<j>" or "cell<i>/probe";
  // value = global cell index)
  kJournalAppend,    // task result durably journaled
  kJournalReplay,    // task satisfied from the journal on --resume
  kWatchdogExpired,  // virtual-time deadline tripped; metric = deadline ms
  kTaskCancelled,    // task skipped after a cancellation request
  kTaskRetry,        // transient worker failure retried; value = attempt
};

[[nodiscard]] std::string_view to_string(Layer layer);
[[nodiscard]] std::string_view to_string(EventKind kind);

/// Reverse lookups for the CSV trace format (obs::parse_trace_csv).
/// Homonym kinds ("connect" names kTcpConnect only) resolve through the
/// same to_string table, so round-trips are exact. false = unknown name.
[[nodiscard]] bool layer_from_string(std::string_view name, Layer& layer);
[[nodiscard]] bool kind_from_string(std::string_view name, EventKind& kind);

/// One virtual-time-stamped point event. Events are recorded in event-loop
/// dispatch order, which is deterministic per simulation, so a buffer's
/// byte serialization is part of the determinism contract.
struct TraceEvent {
  Microseconds at{0};
  Layer layer{Layer::kBrowser};
  EventKind kind{EventKind::kFetchStart};
  /// Session index within the trace: the load's session (0 for single
  /// -session loads, the global fleet index in a mux, -1 for shared
  /// infrastructure that belongs to no one session).
  std::int32_t session{0};
  std::uint64_t flow{0};   // connection id, 0 = n/a
  std::uint64_t value{0};  // kind-specific integer payload
  double metric{0};        // kind-specific scalar payload
  std::string label;       // kind-specific tag (direction, url, reason...)
};

/// Per-object waterfall: the browser fills phases in as they happen.
/// Unset phases stay -1 (HAR's "not applicable" convention). On a retry
/// the per-attempt phases (request_sent onward) are overwritten by the
/// attempt that finally completes; fetch_start keeps the first attempt.
struct ObjectRecord {
  std::string url;
  std::string kind;  // resource kind ("html", "css"...), known at response
  std::int32_t session{0};
  Microseconds fetch_start{-1};
  Microseconds dns_start{-1};
  Microseconds dns_done{-1};
  /// Handshake completion of a connection this object waited on; -1 when
  /// every attempt rode an already-warm connection (HAR's "connect": -1).
  /// A multiplexed request queued pre-connect keeps its queue-time
  /// request_sent, so connect_done may exceed request_sent there.
  Microseconds connect_done{-1};
  Microseconds request_sent{-1};
  Microseconds first_byte{-1};
  Microseconds complete{-1};
  std::uint64_t bytes{0};
  std::uint32_t status{0};
  std::uint32_t attempts{1};
  bool failed{false};
  std::string error;  // terminal error for failed objects
};

/// One page load, the HAR "page" unit.
struct PageRecord {
  std::int32_t session{0};
  std::string url;
  Microseconds started_at{0};
  Microseconds plt{0};
  Microseconds degraded_plt{0};
  bool success{false};
};

/// Everything one load produced. Buffers are plain values: the experiment
/// runner keeps one per (cell, load) task and merges them by load index,
/// so the merged artifact is independent of thread/shard scheduling.
struct TraceBuffer {
  std::vector<TraceEvent> events;
  std::vector<ObjectRecord> objects;
  std::vector<PageRecord> pages;

  [[nodiscard]] bool empty() const {
    return events.empty() && objects.empty() && pages.empty();
  }
};

/// Collects events for ONE deterministic simulation (one load task, or one
/// whole shared-world mux — an indivisible simulation traces into a single
/// buffer). Not thread-safe; parallel tasks each own a Tracer, matching
/// the repo's one-Rng-per-task convention.
///
/// Every instrumented component takes a `Tracer*` and treats nullptr as
/// "tracing off" — the disabled path is a pointer test, pinned near-free
/// by bench_trace_overhead.
class Tracer {
 public:
  void record(TraceEvent event) {
    if (metrics_ != nullptr) {
      notify_metrics(event);
    }
    buffer_.events.push_back(std::move(event));
  }

  void event(Microseconds at, Layer layer, EventKind kind,
             std::int32_t session, std::uint64_t flow, std::uint64_t value,
             double metric, std::string label) {
    record(TraceEvent{at, layer, kind, session, flow, value, metric,
                      std::move(label)});
  }

  /// Live-population hook: every recorded event is also counted into
  /// `registry` (MetricsRegistry::observe_trace_event). Optional — the
  /// experiment runner instead derives metrics post-hoc from the buffer,
  /// which reproduces these counters exactly (tested), so journaled
  /// resumes need no registry state. nullptr detaches.
  void set_metrics(MetricsRegistry* registry) { metrics_ = registry; }

  /// Connection ids, handed out in construction order — deterministic
  /// because construction order is simulation order.
  [[nodiscard]] std::uint64_t allocate_flow_id() { return ++last_flow_id_; }

  /// Find-or-create the waterfall record for (session, url). Objects are
  /// unique per session within one load (the browser dedupes URLs).
  ObjectRecord& object(std::int32_t session, const std::string& url);

  /// Lookup without creating; nullptr when the object was never fetched.
  [[nodiscard]] ObjectRecord* find_object(std::int32_t session,
                                          const std::string& url);

  void page(PageRecord record) {
    buffer_.pages.push_back(std::move(record));
  }

  [[nodiscard]] const TraceBuffer& buffer() const { return buffer_; }

  /// Move the buffer out (runner harvest); the tracer is then spent.
  [[nodiscard]] TraceBuffer take() { return std::move(buffer_); }

 private:
  void notify_metrics(const TraceEvent& event);

  TraceBuffer buffer_;
  std::map<std::pair<std::int32_t, std::string>, std::size_t> object_index_;
  std::uint64_t last_flow_id_{0};
  MetricsRegistry* metrics_{nullptr};
};

}  // namespace mahimahi::obs
