#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mahimahi::obs {

/// One parsed row of a "mahimahi-obs-trace-v1" CSV. `raw` keeps the exact
/// line bytes — divergence localization is defined as the first raw-line
/// mismatch, the same relation CI's cmp-based byte checks test.
struct TraceRow {
  int load{0};
  std::int32_t session{0};
  std::int64_t t_us{0};
  std::string layer;
  std::string kind;
  std::uint64_t flow{0};
  std::uint64_t value{0};
  double metric{0};
  std::string label;
  std::string detail;
  std::string raw;
};

/// One cell's trace CSV: the header metadata plus every row in file order.
struct ParsedTrace {
  std::string experiment;
  std::string cell_label;
  int cell_index{-1};
  std::uint64_t seed{0};
  std::vector<TraceRow> rows;
};

/// Parse a trace CSV (header line, column line, rows). nullopt on a
/// malformed input, with a one-line reason in *error when given.
[[nodiscard]] std::optional<ParsedTrace> parse_trace_csv(
    std::istream& in, std::string* error = nullptr);
[[nodiscard]] std::optional<ParsedTrace> parse_trace_file(
    const std::string& path, std::string* error = nullptr);

/// Extract "key=value" from a ';'-separated detail blob; "" if absent.
[[nodiscard]] std::string detail_field(const std::string& detail,
                                       const std::string& key);
/// detail_field parsed as microseconds; -1 when absent/empty.
[[nodiscard]] std::int64_t detail_us(const std::string& detail,
                                     const std::string& key);

/// Rebuild LoadTraces from parsed rows (events, objects and pages grouped
/// by load index, preserving row order) — the derived-metric input of
/// mm_metrics and mm_trace_diff. Reconstruction inverts to_csv up to the
/// CSV's own precision: `metric` round-trips through %.6f and object/page
/// rows carry their phase timestamps in `detail`, which is exact for
/// every field the metric derivations consume.
[[nodiscard]] std::vector<LoadTrace> to_load_traces(const ParsedTrace& trace);

/// ASCII per-object waterfall over the loads' time axis (the body of
/// mm_trace_dump --waterfall). Each column shows the phase in progress at
/// that column's start instant — a phase shorter than one column simply
/// claims no column, and an object that died early ends its bar at its
/// last recorded timestamp instead of stretching to the axis end.
[[nodiscard]] std::string render_waterfall(const std::vector<TraceRow>& rows);

/// Everything mm_trace_diff reports about one aligned cell pair.
struct CellDiff {
  std::string label;  // cell label — the alignment key
  bool in_a{true};
  bool in_b{true};
  bool identical{false};
  /// First divergent row (raw-line compare): its index, the raw lines
  /// ("" = that stream ended first) and the divergent row's coordinates
  /// (taken from whichever side still has a row at that index).
  std::size_t first_divergence{0};
  std::string a_line;
  std::string b_line;
  std::string layer;
  std::string kind;
  std::int64_t t_us{0};
  std::uint64_t flow{0};
  /// Per-(layer.kind) row-count deltas, non-zero only, ranked by |delta|.
  struct CountDelta {
    std::string key;
    std::int64_t a{0};
    std::int64_t b{0};
  };
  std::vector<CountDelta> count_deltas;
  /// Derived-metric deltas (flattened snapshots), differing entries only,
  /// ranked by |relative delta|.
  struct MetricDelta {
    std::string name;
    double a{0};
    double b{0};
    double relative{0};
  };
  std::vector<MetricDelta> metric_deltas;
};

struct TraceDiff {
  bool identical{true};
  std::vector<CellDiff> cells;  // a's label order, then cells only in b
};

/// Align two runs' cells by label and compare each pair: byte-identical
/// streams, or the first divergent row plus ranked count/metric deltas.
/// A label present in only one run is itself a divergence.
[[nodiscard]] TraceDiff diff_traces(const std::vector<ParsedTrace>& a,
                                    const std::vector<ParsedTrace>& b);

}  // namespace mahimahi::obs
