#include "obs/trace.hpp"

#include "obs/metrics.hpp"

namespace mahimahi::obs {

// Out of line so trace.hpp needs only a forward declaration of
// MetricsRegistry (metrics.hpp includes trace.hpp for TraceEvent).
void Tracer::notify_metrics(const TraceEvent& event) {
  metrics_->observe_trace_event(event);
}

std::string_view to_string(Layer layer) {
  switch (layer) {
    case Layer::kLink:
      return "link";
    case Layer::kTcp:
      return "tcp";
    case Layer::kDns:
      return "dns";
    case Layer::kFault:
      return "fault";
    case Layer::kBrowser:
      return "browser";
    case Layer::kRunner:
      return "runner";
  }
  return "unknown";
}

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEnqueue:
      return "enqueue";
    case EventKind::kDequeue:
      return "dequeue";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kTcpConnect:
      return "connect";
    case EventKind::kTcpEstablished:
      return "established";
    case EventKind::kTcpCwndSample:
      return "cwnd";
    case EventKind::kTcpRttSample:
      return "rtt";
    case EventKind::kTcpRetransmit:
      return "retransmit";
    case EventKind::kTcpRto:
      return "rto";
    case EventKind::kTcpClose:
      return "close";
    case EventKind::kDnsQuery:
      return "query";
    case EventKind::kDnsRetransmit:
      return "dns-retransmit";
    case EventKind::kDnsAnswer:
      return "answer";
    case EventKind::kFaultInjected:
      return "injected";
    case EventKind::kFetchStart:
      return "fetch-start";
    case EventKind::kFetchRetry:
      return "fetch-retry";
    case EventKind::kFetchTimeout:
      return "fetch-timeout";
    case EventKind::kJournalAppend:
      return "journal-append";
    case EventKind::kJournalReplay:
      return "journal-replay";
    case EventKind::kWatchdogExpired:
      return "watchdog-expired";
    case EventKind::kTaskCancelled:
      return "task-cancelled";
    case EventKind::kTaskRetry:
      return "task-retry";
  }
  return "unknown";
}

bool layer_from_string(std::string_view name, Layer& layer) {
  for (int i = 0; i <= static_cast<int>(Layer::kRunner); ++i) {
    const auto candidate = static_cast<Layer>(i);
    if (to_string(candidate) == name) {
      layer = candidate;
      return true;
    }
  }
  return false;
}

bool kind_from_string(std::string_view name, EventKind& kind) {
  for (int i = 0; i <= static_cast<int>(EventKind::kTaskRetry); ++i) {
    const auto candidate = static_cast<EventKind>(i);
    if (to_string(candidate) == name) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

ObjectRecord& Tracer::object(std::int32_t session, const std::string& url) {
  const auto key = std::make_pair(session, url);
  const auto found = object_index_.find(key);
  if (found != object_index_.end()) {
    return buffer_.objects[found->second];
  }
  object_index_.emplace(key, buffer_.objects.size());
  ObjectRecord record;
  record.url = url;
  record.session = session;
  buffer_.objects.push_back(std::move(record));
  return buffer_.objects.back();
}

ObjectRecord* Tracer::find_object(std::int32_t session,
                                  const std::string& url) {
  const auto found = object_index_.find(std::make_pair(session, url));
  if (found == object_index_.end()) {
    return nullptr;
  }
  return &buffer_.objects[found->second];
}

}  // namespace mahimahi::obs
