#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mahimahi {

/// Thrown when an internal invariant is violated. Distinct from
/// std::invalid_argument (caller error) so tests can tell them apart.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream out;
  out << file << ':' << line << ": assertion `" << expr << "` failed";
  if (!msg.empty()) {
    out << ": " << msg;
  }
  throw InternalError{out.str()};
}

}  // namespace detail
}  // namespace mahimahi

/// Always-on invariant check (throws InternalError; never compiled out —
/// these guard simulator correctness, not hot paths).
#define MAHI_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::mahimahi::detail::assert_fail(#expr, __FILE__, __LINE__, {});      \
    }                                                                      \
  } while (false)

#define MAHI_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mahi_assert_out_;                                 \
      mahi_assert_out_ << msg;                                             \
      ::mahimahi::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                      mahi_assert_out_.str());             \
    }                                                                      \
  } while (false)
