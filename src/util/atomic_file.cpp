#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mahimahi::util {
namespace {

void warn(const std::string& path, const char* step) {
  std::fprintf(stderr, "[atomic-write] %s: %s failed: %s\n", path.c_str(),
               step, std::strerror(errno));
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& content) {
  // Temp file in the same directory (rename must not cross filesystems).
  // The pid suffix keeps concurrent processes writing the same artifact
  // from clobbering each other's in-progress bytes.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    warn(temp, "open");
    return false;
  }
  bool ok = write_all(fd, content.data(), content.size());
  if (!ok) {
    warn(temp, "write");
  }
  if (ok && ::fsync(fd) != 0) {
    warn(temp, "fsync");
    ok = false;
  }
  if (::close(fd) != 0 && ok) {
    warn(temp, "close");
    ok = false;
  }
  if (ok && ::rename(temp.c_str(), path.c_str()) != 0) {
    warn(path, "rename");
    ok = false;
  }
  if (!ok) {
    ::unlink(temp.c_str());
    return false;
  }
  // Persist the directory entry: without this, a crash right after the
  // rename can still lose the new name on some filesystems.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string{"."}
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    // A directory that refuses fsync (some network filesystems) is not a
    // failed write — the data and rename already succeeded.
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

}  // namespace mahimahi::util
