#include "util/random.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace mahimahi::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::string_view stream_name) const {
  // Combine current state with the stream name; the copy leaves *this intact.
  std::uint64_t mix = state_[0] ^ rotl(state_[3], 13);
  mix ^= fnv1a(stream_name);
  return Rng{mix};
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MAHI_ASSERT_MSG(lo <= hi, "uniform_int bounds inverted: " << lo << " > " << hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = next();
  while (draw >= limit) {
    draw = next();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw u1 away from zero to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  MAHI_ASSERT(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / lambda;
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

std::uint64_t derive_u64(std::uint64_t seed, std::string_view stream,
                         std::uint64_t index) {
  std::uint64_t x =
      seed ^ fnv1a(stream) ^ (index * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  return splitmix64(x);
}

double derive_uniform(std::uint64_t seed, std::string_view stream,
                      std::uint64_t index) {
  return static_cast<double>(derive_u64(seed, stream, index) >> 11) * 0x1.0p-53;
}

bool derive_chance(std::uint64_t seed, std::string_view stream,
                   std::uint64_t index, double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return derive_uniform(seed, stream, index) < p;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace mahimahi::util
