#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mahimahi::util {

/// Streaming mean / variance (Welford). Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x);

  /// Combine with another accumulator (Chan et al. parallel variance
  /// update) — merging per-task accumulators is exact, so statistics
  /// computed under a parallel fan-out match the sequential run.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// A batch of samples with percentile / CDF queries. Keeps every sample;
/// intended for experiment post-processing, not hot paths.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void add(double x);

  /// Append another batch's samples after this one, preserving both
  /// insertion orders. The order-preserving half of a parallel fan-out:
  /// merging per-task batches in load-index order reproduces the exact
  /// sample sequence of a sequential run.
  void append(const Samples& other);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Percentile p in [0, 100], linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Empirical CDF evaluated at x: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// (value, cumulative proportion) pairs at each sample point, for
  /// gnuplot-style CDF output like the paper's Figures 2 and 3.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_{false};
};

/// Concatenate sample batches in the given order (index-ordered merge of
/// per-task results from a parallel fan-out).
Samples merge_ordered(const std::vector<Samples>& parts);

/// Render a fixed-width table (rows of cells) — used by the bench harness
/// to print paper-style tables.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Percent difference of b relative to a: 100 * (b - a) / a.
double percent_difference(double a, double b);

/// Jain's fairness index over per-flow allocations (throughputs, shares —
/// any non-negative resource metric): (Σx)² / (n·Σx²). 1.0 = perfectly
/// equal, 1/n = one flow has everything. Returns 0 for an empty vector or
/// when every allocation is zero.
double jain_fairness_index(const std::vector<double>& allocations);

}  // namespace mahimahi::util
