#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mahimahi::util {

/// Split on a single-character delimiter. Keeps empty fields
/// ("a,,b" -> {"a", "", "b"}); splitting "" yields {""}.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Split on first occurrence only; returns {text, ""} when absent.
std::pair<std::string_view, std::string_view> split_once(std::string_view text,
                                                         char delim);

std::string_view trim(std::string_view text);

std::string to_lower(std::string_view text);

/// ASCII case-insensitive comparison (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Lowercase hex of a 64-bit value, zero-padded to 16 digits.
std::string to_hex(std::uint64_t value);

/// Parse a non-negative decimal integer; returns false on any non-digit or
/// overflow. (Strict on purpose: HTTP framing must not guess.)
bool parse_u64(std::string_view text, std::uint64_t& out);

/// Parse hex (no 0x prefix) as used by chunked transfer coding sizes.
bool parse_hex_u64(std::string_view text, std::uint64_t& out);

/// Human-friendly byte count, e.g. "1.4 KiB".
std::string format_bytes(std::uint64_t bytes);

}  // namespace mahimahi::util
