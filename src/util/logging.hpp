#pragma once

#include <sstream>
#include <string_view>

namespace mahimahi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded. Defaults to kWarn
/// so library users are not spammed; benches/examples raise or lower it.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr as "[level] component: message".
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_{level}, component_{component} {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, out_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream out_;
};

}  // namespace detail
}  // namespace mahimahi::util

#define MAHI_LOG(level, component)                                   \
  if (::mahimahi::util::log_level() <= ::mahimahi::util::LogLevel::level) \
  ::mahimahi::util::detail::LogStream{::mahimahi::util::LogLevel::level, component}

#define MAHI_DEBUG(component) MAHI_LOG(kDebug, component)
#define MAHI_INFO(component) MAHI_LOG(kInfo, component)
#define MAHI_WARN(component) MAHI_LOG(kWarn, component)
#define MAHI_ERROR(component) MAHI_LOG(kError, component)
