#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace mahimahi::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return min_; }

double RunningStats::max() const { return max_; }

Samples::Samples(std::vector<double> values) : values_{std::move(values)} {}

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::append(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::mean() const {
  MAHI_ASSERT(!values_.empty());
  double sum = 0.0;
  for (const double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  MAHI_ASSERT(!values_.empty());
  RunningStats stats;
  for (const double v : values_) {
    stats.add(v);
  }
  return stats.stddev();
}

double Samples::min() const {
  ensure_sorted();
  MAHI_ASSERT(!sorted_.empty());
  return sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  MAHI_ASSERT(!sorted_.empty());
  return sorted_.back();
}

double Samples::percentile(double p) const {
  MAHI_ASSERT_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  ensure_sorted();
  MAHI_ASSERT(!sorted_.empty());
  if (sorted_.size() == 1) {
    return sorted_.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::cdf_at(double x) const {
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Samples::cdf_points() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> points;
  points.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    points.emplace_back(sorted_[i],
                        static_cast<double>(i + 1) / static_cast<double>(sorted_.size()));
  }
  return points;
}

Samples merge_ordered(const std::vector<Samples>& parts) {
  std::size_t total = 0;
  for (const Samples& part : parts) {
    total += part.size();
  }
  std::vector<double> values;
  values.reserve(total);
  for (const Samples& part : parts) {
    values.insert(values.end(), part.values().begin(), part.values().end());
  }
  return Samples{std::move(values)};
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) {
      widths.resize(row.size(), 0);
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  }
  return out.str();
}

double percent_difference(double a, double b) {
  MAHI_ASSERT(a != 0.0);
  return 100.0 * (b - a) / a;
}

double jain_fairness_index(const std::vector<double>& allocations) {
  if (allocations.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : allocations) {
    MAHI_ASSERT(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 0.0;  // all-zero allocations: fairness is undefined, report 0
  }
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace mahimahi::util
