#pragma once

#include <cstdint>
#include <string_view>

namespace mahimahi::util {

/// Deterministic pseudo-random generator (xoshiro256**). Used instead of
/// std::mt19937 so that results are bit-identical across standard-library
/// implementations — reproducibility is this toolkit's reason to exist.
///
/// Satisfies UniformRandomBitGenerator, so it also plugs into <random>
/// distributions where exact cross-platform value sequences do not matter.
///
/// Threading contract (the parallel measurement engine relies on this):
/// an Rng is a plain value with no global or shared state, so distinct
/// instances may be used from different threads concurrently — one
/// instance per task, derived from (experiment seed, load index) before
/// dispatch, never one instance shared across tasks. A single instance is
/// not internally synchronized.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent named stream from this generator. Streams with
  /// different names never correlate; deriving does not disturb `*this`.
  /// This is how experiments hand out per-component randomness.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(N(mu, sigma)). Note mu/sigma parameterize the
  /// *underlying* normal, matching std::lognormal_distribution.
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

 private:
  std::uint64_t state_[4];
};

/// 64-bit FNV-1a — stable string hashing for stream derivation and
/// content-addressed file names in the record store.
std::uint64_t fnv1a(std::string_view bytes);

/// Stateless counter-mode derivation: a pure function of
/// (seed, stream, index) with no generator state to advance. This is the
/// primitive behind per-event fault decisions — any shard or thread can
/// ask "what happens at event #index of stream S?" and get the same answer
/// without replaying events 0..index-1.
std::uint64_t derive_u64(std::uint64_t seed, std::string_view stream,
                         std::uint64_t index);

/// derive_u64 mapped to a uniform double in [0, 1).
double derive_uniform(std::uint64_t seed, std::string_view stream,
                      std::uint64_t index);

/// Bernoulli trial with probability p, decided by (seed, stream, index).
bool derive_chance(std::uint64_t seed, std::string_view stream,
                   std::uint64_t index, double p);

}  // namespace mahimahi::util
