#include "util/strings.hpp"

#include <array>
#include <cctype>
#include <limits>
#include <sstream>

namespace mahimahi::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::pair<std::string_view, std::string_view> split_once(std::string_view text,
                                                         char delim) {
  const std::size_t pos = text.find(delim);
  if (pos == std::string_view::npos) {
    return {text, {}};
  }
  return {text.substr(0, pos), text.substr(pos + 1)};
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_hex_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits{"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream out;
  if (unit == 0) {
    out << bytes << " B";
  } else {
    out.precision(1);
    out << std::fixed << value << ' ' << kUnits[unit];
  }
  return out.str();
}

}  // namespace mahimahi::util
