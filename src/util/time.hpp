#pragma once

#include <cstdint>

namespace mahimahi {

/// Simulated time. All simulator clocks count microseconds from the start
/// of the experiment; 64 bits covers ~292k years, so overflow is not a
/// practical concern.
using Microseconds = std::int64_t;

namespace literals {

constexpr Microseconds operator""_us(unsigned long long v) {
  return static_cast<Microseconds>(v);
}
constexpr Microseconds operator""_ms(unsigned long long v) {
  return static_cast<Microseconds>(v) * 1000;
}
constexpr Microseconds operator""_s(unsigned long long v) {
  return static_cast<Microseconds>(v) * 1'000'000;
}

}  // namespace literals

/// Convert microseconds to floating-point milliseconds (for reporting).
constexpr double to_ms(Microseconds us) { return static_cast<double>(us) / 1000.0; }

/// Convert floating-point milliseconds to microseconds (round to nearest).
constexpr Microseconds from_ms(double ms) {
  return static_cast<Microseconds>(ms * 1000.0 + (ms >= 0 ? 0.5 : -0.5));
}

}  // namespace mahimahi
