#pragma once

#include <string>

namespace mahimahi::util {

/// Durably replace the file at `path` with `content`: write to a
/// temporary sibling (`path` + ".tmp.<pid>"), fsync the data, rename over
/// `path`, then fsync the containing directory so the rename itself
/// survives a crash. Readers therefore only ever observe the old bytes or
/// the complete new bytes — never a torn artifact, no matter when the
/// writing process dies.
///
/// Returns false (after a warning on stderr naming the path and errno)
/// when any step fails; a failed attempt unlinks its temporary file. This
/// matches the Report::write_file / PerfReport::write tool convention, so
/// every artifact writer in the repo can call it directly.
bool atomic_write_file(const std::string& path, const std::string& content);

}  // namespace mahimahi::util
