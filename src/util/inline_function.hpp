#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mahimahi::util {

/// Move-only `void()` callable with inline small-buffer storage: a callable
/// of at most `Capacity` bytes (and at most max_align_t alignment) is
/// stored inside the object itself — no heap allocation on construction,
/// move, or destruction. Larger callables transparently fall back to a
/// heap box. This is the EventLoop's callback type; the capacity is chosen
/// there so the packet-carrying lambdas on the simulation hot path all fit
/// inline (see the static_asserts at the capture sites).
template <std::size_t Capacity>
class InlineCallback {
  static_assert(Capacity >= sizeof(void*), "capacity must hold a pointer");

 public:
  /// True when callables of type F are stored inline (no allocation).
  /// Inline relocation runs the move constructor inside noexcept move
  /// ops, so types with a potentially-throwing move are boxed instead —
  /// a boxed relocate is a pointer copy and genuinely cannot throw.
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(std::decay_t<F>) <= Capacity &&
      alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct a callable directly in this object's storage, destroying
  /// any previous one — lets hot paths skip a move through a temporary.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held callable (and release its resources) immediately.
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {  // elided for trivially-destructible
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable from `from` into `to`, then destroy the
    /// source — a destructive relocate, so moved-from objects hold nothing.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*f));
        f->~Fn();
      },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kBoxedOps{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* from, void* to) {
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_{nullptr};
};

}  // namespace mahimahi::util
