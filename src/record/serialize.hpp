#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "record/exchange.hpp"

namespace mahimahi::record {

/// Serialization error (truncated/corrupt stored files).
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encode an exchange in MahiTLV: a little-endian tag-length-value format
/// standing in for the protobuf schema mahimahi uses on disk. The format
/// is versioned and self-framing, so stores survive library upgrades and
/// corrupt files fail loudly rather than silently.
std::string encode_exchange(const RecordedExchange& exchange);

/// Decode; throws SerializeError on any malformation.
RecordedExchange decode_exchange(std::string_view bytes);

/// Human-readable dump (debugging aid, mirrors `mm-dump`-style output).
std::string describe_exchange(const RecordedExchange& exchange);

}  // namespace mahimahi::record
