#pragma once

#include <string>

#include "http/message.hpp"
#include "net/address.hpp"
#include "util/time.hpp"

namespace mahimahi::record {

/// One recorded request/response pair — what RecordShell writes to disk
/// for every HTTP transaction it proxies (mahimahi stores one protobuf
/// file per pair; we store one MahiTLV file per pair).
struct RecordedExchange {
  http::Request request;
  http::Response response;
  std::string scheme{"http"};     // "http" or "https"
  net::Address server_address;    // the origin's real (IP, port)
  Microseconds recorded_at{0};    // when the response completed, in
                                  // record-session time

  bool operator==(const RecordedExchange&) const = default;

  /// Host (lowercased) this exchange belongs to, from the request.
  [[nodiscard]] std::string host() const { return request.host(); }

  /// Request path without the query string.
  [[nodiscard]] std::string path() const;

  /// Query string (may be empty).
  [[nodiscard]] std::string query() const;
};

}  // namespace mahimahi::record
