#include "record/proxy.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::record {

/// State for one accepted (intercepted) application connection. Requests
/// may arrive back-to-back on a keep-alive connection; responses must be
/// relayed in request order, so each request reserves a slot.
struct RecordingProxy::DownstreamSession {
  std::weak_ptr<net::TcpConnection> connection;
  net::Address original_destination;  // the origin the app meant to reach
  http::RequestParser parser;
  struct Slot {
    std::optional<http::Response> response;
    bool close_after{false};
  };
  std::deque<Slot> pipeline;
  /// Slots are addressed by absolute request number; flushed slots pop off
  /// the front, so slot i lives at pipeline[i - flushed].
  std::size_t flushed{0};
};

RecordingProxy::RecordingProxy(net::Fabric& inner, net::Fabric& outer,
                               RecordStore& store)
    : inner_{inner}, outer_{outer}, store_{store} {
  inner_.set_server_default(
      [this](net::Packet&& packet) { intercept(std::move(packet)); });
}

RecordingProxy::~RecordingProxy() { inner_.set_server_default({}); }

void RecordingProxy::intercept(net::Packet&& packet) {
  const net::Address destination = packet.dst;
  if (packet.protocol != net::Protocol::kTcp || listeners_.contains(destination)) {
    return;  // non-TCP noise, or a race after listener teardown
  }
  MAHI_DEBUG("record-proxy") << "intercepting " << destination.to_string();
  auto listener = std::make_unique<net::TcpListener>(
      inner_, destination,
      [this, destination](const std::shared_ptr<net::TcpConnection>& conn) {
        auto session = std::make_shared<DownstreamSession>();
        session->connection = conn;
        session->original_destination = destination;
        net::TcpConnection::Callbacks callbacks;
        callbacks.on_data = [this, session](std::string_view bytes) {
          on_downstream_data(session, bytes);
        };
        callbacks.on_peer_close = [session] {
          if (const auto c = session->connection.lock()) {
            c->close();
          }
        };
        return callbacks;
      });
  listeners_.emplace(destination, std::move(listener));
  // Replay the packet now that the address is bound.
  inner_.redeliver(net::Side::kServer, std::move(packet));
}

void RecordingProxy::on_downstream_data(
    const std::shared_ptr<DownstreamSession>& session, std::string_view bytes) {
  session->parser.push(bytes);
  if (session->parser.failed()) {
    MAHI_WARN("record-proxy") << "request parse failure: "
                              << session->parser.error_message();
    if (const auto c = session->connection.lock()) {
      c->abort();
    }
    return;
  }
  while (session->parser.has_message()) {
    forward_upstream(session, session->parser.pop());
  }
}

void RecordingProxy::forward_upstream(
    const std::shared_ptr<DownstreamSession>& session, http::Request request) {
  session->pipeline.emplace_back();
  const std::size_t slot_number =
      session->flushed + session->pipeline.size() - 1;
  const net::Address origin = session->original_destination;

  auto& upstream = upstream_for(origin);
  http::Request upstream_request = request;  // relayed verbatim
  upstream.fetch(
      std::move(upstream_request),
      [this, session, slot_number, origin, request](http::Response response) {
        // Record the pair exactly as seen on the wire.
        RecordedExchange exchange;
        exchange.request = request;
        exchange.response = response;
        exchange.server_address = origin;
        exchange.scheme = origin.port == 443 ? "https" : "http";
        exchange.recorded_at = inner_.loop().now();
        store_.add(std::move(exchange));
        ++recorded_;

        // Earlier slots may already have flushed off the front.
        MAHI_ASSERT(slot_number >= session->flushed);
        auto& slot = session->pipeline.at(slot_number - session->flushed);
        slot.close_after = !response.keep_alive();
        slot.response = std::move(response);
        flush_ready_responses(session);
      });
}

void RecordingProxy::flush_ready_responses(
    const std::shared_ptr<DownstreamSession>& session) {
  const auto connection = session->connection.lock();
  while (!session->pipeline.empty() &&
         session->pipeline.front().response.has_value()) {
    auto slot = std::move(session->pipeline.front());
    session->pipeline.pop_front();
    ++session->flushed;
    if (!connection) {
      continue;  // application went away; recording already happened
    }
    http::Response response = std::move(*slot.response);
    http::finalize_content_length(response);
    connection->send(http::to_bytes(response));
    if (slot.close_after) {
      connection->close();
    }
  }
}

net::HttpClientConnection& RecordingProxy::upstream_for(
    const net::Address& origin) {
  auto& pool = upstreams_[origin];
  // Reuse the first live idle connection; otherwise open a new one.
  for (auto& connection : pool.connections) {
    if (connection->alive() && connection->idle()) {
      return *connection;
    }
  }
  pool.connections.push_back(std::make_unique<net::HttpClientConnection>(
      outer_, origin, [this, origin](const std::string& reason) {
        ++failures_;
        MAHI_WARN("record-proxy")
            << "upstream to " << origin.to_string() << " failed: " << reason;
      }));
  return *pool.connections.back();
}

void RecordingProxy::retire_upstream(const net::Address& origin,
                                     net::HttpClientConnection* connection) {
  auto& pool = upstreams_[origin];
  std::erase_if(pool.connections,
                [connection](const std::unique_ptr<net::HttpClientConnection>& c) {
                  return c.get() == connection;
                });
}

}  // namespace mahimahi::record
