#include "record/serialize.hpp"

#include <sstream>

#include "http/status.hpp"
#include "util/strings.hpp"

namespace mahimahi::record {
namespace {

constexpr std::string_view kMagic = "MTLV";
constexpr std::uint8_t kVersion = 1;

// Field tags.
enum class Tag : std::uint8_t {
  kScheme = 1,
  kServerAddress = 2,
  kRecordedAt = 3,
  kRequestMethod = 10,
  kRequestTarget = 11,
  kRequestVersion = 12,
  kRequestHeader = 13,  // repeated; value is "name\0value"
  kRequestBody = 14,
  kResponseVersion = 20,
  kResponseStatus = 21,
  kResponseReason = 22,
  kResponseHeader = 23,  // repeated
  kResponseBody = 24,
};

class Writer {
 public:
  void field(Tag tag, std::string_view value) {
    out_ += static_cast<char>(tag);
    put_u32(static_cast<std::uint32_t>(value.size()));
    out_.append(value);
  }

  void field_u64(Tag tag, std::uint64_t value) {
    char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
    }
    field(tag, std::string_view{buf, 8});
  }

  void header_field(Tag tag, const http::HeaderField& header) {
    std::string packed = header.name;
    packed += '\0';
    packed += header.value;
    field(tag, packed);
  }

  std::string finish() && {
    std::string result{kMagic};
    result += static_cast<char>(kVersion);
    result += out_;
    return result;
  }

 private:
  void put_u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_ += static_cast<char>((value >> (8 * i)) & 0xFF);
    }
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_{bytes} {}

  bool done() const { return offset_ >= bytes_.size(); }

  std::pair<Tag, std::string_view> next() {
    if (offset_ + 5 > bytes_.size()) {
      throw SerializeError{"truncated field header"};
    }
    const Tag tag = static_cast<Tag>(bytes_[offset_]);
    ++offset_;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(
                    static_cast<unsigned char>(bytes_[offset_ + static_cast<std::size_t>(i)]))
                << (8 * i);
    }
    offset_ += 4;
    if (offset_ + length > bytes_.size()) {
      throw SerializeError{"field length exceeds buffer"};
    }
    const std::string_view value = bytes_.substr(offset_, length);
    offset_ += length;
    return {tag, value};
  }

 private:
  std::string_view bytes_;
  std::size_t offset_{0};
};

std::uint64_t read_u64(std::string_view value) {
  if (value.size() != 8) {
    throw SerializeError{"bad u64 field size"};
  }
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(value[static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  return out;
}

http::HeaderField unpack_header(std::string_view value) {
  const std::size_t nul = value.find('\0');
  if (nul == std::string_view::npos) {
    throw SerializeError{"header field missing separator"};
  }
  return http::HeaderField{std::string{value.substr(0, nul)},
                           std::string{value.substr(nul + 1)}};
}

}  // namespace

std::string encode_exchange(const RecordedExchange& exchange) {
  Writer writer;
  writer.field(Tag::kScheme, exchange.scheme);
  writer.field(Tag::kServerAddress, exchange.server_address.to_string());
  writer.field_u64(Tag::kRecordedAt,
                   static_cast<std::uint64_t>(exchange.recorded_at));

  writer.field(Tag::kRequestMethod, http::method_name(exchange.request.method));
  writer.field(Tag::kRequestTarget, exchange.request.target);
  writer.field(Tag::kRequestVersion, exchange.request.version);
  for (const auto& header : exchange.request.headers) {
    writer.header_field(Tag::kRequestHeader, header);
  }
  writer.field(Tag::kRequestBody, exchange.request.body);

  writer.field(Tag::kResponseVersion, exchange.response.version);
  writer.field_u64(Tag::kResponseStatus,
                   static_cast<std::uint64_t>(exchange.response.status));
  writer.field(Tag::kResponseReason, exchange.response.reason);
  for (const auto& header : exchange.response.headers) {
    writer.header_field(Tag::kResponseHeader, header);
  }
  writer.field(Tag::kResponseBody, exchange.response.body);
  return std::move(writer).finish();
}

RecordedExchange decode_exchange(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 1 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    throw SerializeError{"bad magic (not a MahiTLV file)"};
  }
  const auto version = static_cast<std::uint8_t>(bytes[kMagic.size()]);
  if (version != kVersion) {
    throw SerializeError{"unsupported MahiTLV version " + std::to_string(version)};
  }
  Reader reader{bytes.substr(kMagic.size() + 1)};
  RecordedExchange exchange;
  bool saw_method = false;
  bool saw_status = false;
  while (!reader.done()) {
    const auto [tag, value] = reader.next();
    switch (tag) {
      case Tag::kScheme:
        exchange.scheme = std::string{value};
        break;
      case Tag::kServerAddress: {
        const auto address = net::Address::parse(value);
        if (!address) {
          throw SerializeError{"bad server address: " + std::string{value}};
        }
        exchange.server_address = *address;
        break;
      }
      case Tag::kRecordedAt:
        exchange.recorded_at = static_cast<Microseconds>(read_u64(value));
        break;
      case Tag::kRequestMethod: {
        const auto method = http::parse_method(value);
        if (!method) {
          throw SerializeError{"bad method: " + std::string{value}};
        }
        exchange.request.method = *method;
        saw_method = true;
        break;
      }
      case Tag::kRequestTarget:
        exchange.request.target = std::string{value};
        break;
      case Tag::kRequestVersion:
        exchange.request.version = std::string{value};
        break;
      case Tag::kRequestHeader: {
        const auto header = unpack_header(value);
        exchange.request.headers.add(header.name, header.value);
        break;
      }
      case Tag::kRequestBody:
        exchange.request.body = std::string{value};
        break;
      case Tag::kResponseVersion:
        exchange.response.version = std::string{value};
        break;
      case Tag::kResponseStatus:
        exchange.response.status = static_cast<int>(read_u64(value));
        saw_status = true;
        break;
      case Tag::kResponseReason:
        exchange.response.reason = std::string{value};
        break;
      case Tag::kResponseHeader: {
        const auto header = unpack_header(value);
        exchange.response.headers.add(header.name, header.value);
        break;
      }
      case Tag::kResponseBody:
        exchange.response.body = std::string{value};
        break;
      default:
        // Unknown tags are skipped (forward compatibility).
        break;
    }
  }
  if (!saw_method || !saw_status) {
    throw SerializeError{"incomplete exchange (missing method or status)"};
  }
  return exchange;
}

std::string describe_exchange(const RecordedExchange& exchange) {
  std::ostringstream out;
  out << exchange.scheme << "://" << exchange.host() << exchange.request.target
      << " @ " << exchange.server_address.to_string() << "\n  "
      << http::method_name(exchange.request.method) << " -> "
      << exchange.response.status << ' ' << exchange.response.reason << " ("
      << util::format_bytes(exchange.response.body.size()) << ")";
  return out.str();
}

}  // namespace mahimahi::record
