#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/http_session.hpp"
#include "net/tcp.hpp"
#include "record/store.hpp"

namespace mahimahi::record {

/// RecordShell's man-in-the-middle proxy.
///
/// Sits between an inner fabric (where the application runs) and an outer
/// fabric (the live web). On the inner fabric it transparently intercepts
/// every TCP connection regardless of destination address — the analogue
/// of mahimahi's iptables REDIRECT — terminates it with an HTTP parser,
/// forwards each request upstream over its own connections on the outer
/// fabric, records the request/response pair, and relays the response.
///
/// Both fabrics must share one EventLoop. The application is unmodified:
/// it resolves real names, connects to real addresses, and never learns a
/// proxy exists — the property that makes RecordShell work with any
/// unmodified browser.
class RecordingProxy {
 public:
  RecordingProxy(net::Fabric& inner, net::Fabric& outer, RecordStore& store);
  ~RecordingProxy();

  RecordingProxy(const RecordingProxy&) = delete;
  RecordingProxy& operator=(const RecordingProxy&) = delete;

  [[nodiscard]] std::uint64_t exchanges_recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t upstream_failures() const { return failures_; }

 private:
  /// One intercepted destination address = one lazily-created listener.
  void intercept(net::Packet&& packet);

  /// Per accepted downstream connection.
  struct DownstreamSession;

  void on_downstream_data(const std::shared_ptr<DownstreamSession>& session,
                          std::string_view bytes);
  void forward_upstream(const std::shared_ptr<DownstreamSession>& session,
                        http::Request request);
  void flush_ready_responses(const std::shared_ptr<DownstreamSession>& session);

  /// Idle-connection pool to upstream origins, keyed by origin address.
  net::HttpClientConnection& upstream_for(const net::Address& origin);
  void retire_upstream(const net::Address& origin,
                       net::HttpClientConnection* connection);

  net::Fabric& inner_;
  net::Fabric& outer_;
  RecordStore& store_;
  std::map<net::Address, std::unique_ptr<net::TcpListener>> listeners_;

  struct UpstreamPool {
    std::vector<std::unique_ptr<net::HttpClientConnection>> connections;
  };
  std::map<net::Address, UpstreamPool> upstreams_;

  std::uint64_t recorded_{0};
  std::uint64_t failures_{0};
};

}  // namespace mahimahi::record
