#include "record/store.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "record/serialize.hpp"
#include "util/atomic_file.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"

namespace mahimahi::record {

std::string RecordedExchange::path() const {
  return std::string{util::split_once(request.target, '?').first};
}

std::string RecordedExchange::query() const {
  return std::string{util::split_once(request.target, '?').second};
}

void RecordStore::add(RecordedExchange exchange) {
  exchanges_.push_back(std::move(exchange));
}

std::vector<net::Address> RecordStore::distinct_servers() const {
  std::set<net::Address> servers;
  for (const auto& exchange : exchanges_) {
    servers.insert(exchange.server_address);
  }
  return {servers.begin(), servers.end()};
}

std::vector<std::pair<std::string, net::Ipv4>> RecordStore::host_bindings()
    const {
  std::map<std::string, net::Ipv4> bindings;
  for (const auto& exchange : exchanges_) {
    const std::string host = exchange.host();
    if (!host.empty()) {
      bindings.emplace(host, exchange.server_address.ip);
    }
  }
  return {bindings.begin(), bindings.end()};
}

std::vector<const RecordedExchange*> RecordStore::for_host(
    std::string_view host) const {
  const std::string wanted = util::to_lower(host);
  std::vector<const RecordedExchange*> matches;
  for (const auto& exchange : exchanges_) {
    if (exchange.host() == wanted) {
      matches.push_back(&exchange);
    }
  }
  return matches;
}

std::uint64_t RecordStore::total_response_bytes() const {
  std::uint64_t total = 0;
  for (const auto& exchange : exchanges_) {
    total += exchange.response.body.size();
  }
  return total;
}

void RecordStore::save(const std::filesystem::path& directory) const {
  std::filesystem::create_directories(directory);
  std::size_t index = 0;
  for (const auto& exchange : exchanges_) {
    const std::string encoded = encode_exchange(exchange);
    std::ostringstream name;
    name << "save_" << index++ << '_' << util::to_hex(util::fnv1a(encoded));
    // Atomic per file: an interrupted save never leaves a torn exchange
    // for a later load() to trip over.
    if (!util::atomic_write_file((directory / name.str()).string(),
                                 encoded)) {
      throw std::runtime_error{"cannot write record file in " +
                               directory.string()};
    }
  }
}

RecordStore RecordStore::load(const std::filesystem::path& directory) {
  if (!std::filesystem::is_directory(directory)) {
    throw std::runtime_error{"recorded folder does not exist: " +
                             directory.string()};
  }
  // Deterministic order: sort by the numeric index embedded in the name.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() &&
        util::starts_with(entry.path().filename().string(), "save_")) {
      files.push_back(entry.path());
    }
  }
  const auto index_of = [](const std::filesystem::path& p) {
    const std::string name = p.filename().string();  // keep alive for views
    const auto fields = util::split(name, '_');
    std::uint64_t index = 0;
    if (fields.size() >= 2) {
      (void)util::parse_u64(fields[1], index);
    }
    return index;
  };
  std::sort(files.begin(), files.end(),
            [&](const std::filesystem::path& a, const std::filesystem::path& b) {
              return index_of(a) < index_of(b);
            });
  RecordStore store;
  for (const auto& file : files) {
    std::ifstream in{file, std::ios::binary};
    std::ostringstream contents;
    contents << in.rdbuf();
    store.add(decode_exchange(contents.str()));
  }
  return store;
}

}  // namespace mahimahi::record
