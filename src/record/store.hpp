#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/dns.hpp"
#include "record/exchange.hpp"

namespace mahimahi::record {

/// A recorded site: the set of request/response pairs captured in one
/// record session, equivalent to mahimahi's recorded folder (one file per
/// exchange). Provides the origin inventory ReplayShell needs: the
/// distinct (IP, port) pairs seen while recording and the hostname -> IP
/// bindings observed via DNS.
class RecordStore {
 public:
  RecordStore() = default;

  void add(RecordedExchange exchange);

  [[nodiscard]] std::size_t size() const { return exchanges_.size(); }
  [[nodiscard]] bool empty() const { return exchanges_.empty(); }
  [[nodiscard]] const std::vector<RecordedExchange>& exchanges() const {
    return exchanges_;
  }

  /// Distinct origin servers seen while recording — what the paper counts
  /// as "physical servers per website" and what ReplayShell instantiates.
  [[nodiscard]] std::vector<net::Address> distinct_servers() const;

  /// Hostname -> recorded IP bindings (for ReplayShell's DNS).
  [[nodiscard]] std::vector<std::pair<std::string, net::Ipv4>> host_bindings()
      const;

  /// All exchanges recorded for `host` (lowercased match).
  [[nodiscard]] std::vector<const RecordedExchange*> for_host(
      std::string_view host) const;

  /// Total recorded response-body bytes (site weight).
  [[nodiscard]] std::uint64_t total_response_bytes() const;

  // --- persistence: a directory with one file per exchange ---
  /// Writes `save_<index>_<hash>` files plus nothing else; the directory
  /// is created if needed and must be empty of previous recordings.
  void save(const std::filesystem::path& directory) const;

  /// Load every `save_*` file in the directory. Throws SerializeError /
  /// std::runtime_error on corrupt or missing data.
  static RecordStore load(const std::filesystem::path& directory);

 private:
  std::vector<RecordedExchange> exchanges_;
};

}  // namespace mahimahi::record
