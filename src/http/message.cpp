#include "http/message.hpp"

#include <sstream>

#include "http/status.hpp"
#include "util/strings.hpp"

namespace mahimahi::http {
namespace {

bool message_keep_alive(const HeaderMap& headers, std::string_view version) {
  const auto connection = headers.get("Connection");
  if (connection && value_has_token(*connection, "close")) {
    return false;
  }
  if (version == "HTTP/1.0") {
    return connection && value_has_token(*connection, "keep-alive");
  }
  return true;  // HTTP/1.1 default
}

bool is_chunked(const HeaderMap& headers) {
  const auto te = headers.get("Transfer-Encoding");
  return te && value_has_token(*te, "chunked");
}

void append_headers(std::ostringstream& out, const HeaderMap& headers) {
  for (const auto& field : headers) {
    out << field.name << ": " << field.value << "\r\n";
  }
  out << "\r\n";
}

}  // namespace

std::string Request::host() const {
  const auto raw = headers.get("Host");
  if (!raw) {
    return {};
  }
  const auto [host_part, port_part] = util::split_once(*raw, ':');
  (void)port_part;
  return util::to_lower(util::trim(host_part));
}

Url Request::url() const {
  if (const auto absolute = parse_url(target); absolute && !absolute->host.empty()) {
    return *absolute;
  }
  Url url;
  url.scheme = "http";
  url.host = host();
  const auto raw_host = headers.get("Host");
  if (raw_host) {
    const auto [host_part, port_part] = util::split_once(*raw_host, ':');
    (void)host_part;
    std::uint64_t port = 0;
    if (!port_part.empty() && util::parse_u64(util::trim(port_part), port) &&
        port > 0 && port <= 65535) {
      url.port = static_cast<std::uint16_t>(port);
    }
  }
  if (const auto origin = parse_url(target)) {
    url.path = origin->path;
    url.query = origin->query;
  }
  return url;
}

bool Request::keep_alive() const { return message_keep_alive(headers, version); }

bool Response::keep_alive() const { return message_keep_alive(headers, version); }

std::string to_bytes(const Request& request) {
  std::ostringstream out;
  out << method_name(request.method) << ' ' << request.target << ' '
      << request.version << "\r\n";
  append_headers(out, request.headers);
  out << request.body;
  return out.str();
}

std::string to_bytes(const Response& response) {
  std::ostringstream out;
  out << response.version << ' ' << response.status << ' ' << response.reason
      << "\r\n";
  append_headers(out, response.headers);
  out << response.body;
  return out.str();
}

void finalize_content_length(Request& request) {
  // Requests without a body are self-framing (no length header needed).
  if (request.body.empty() || is_chunked(request.headers)) {
    return;
  }
  request.headers.set("Content-Length", std::to_string(request.body.size()));
}

void finalize_content_length(Response& response) {
  // Responses are different: a missing Content-Length means
  // read-until-close framing, so even empty bodies must be declared
  // (unless the status itself forbids a body).
  if (is_chunked(response.headers) || status_has_no_body(response.status)) {
    return;
  }
  response.headers.set("Content-Length", std::to_string(response.body.size()));
}

Request make_get(std::string_view url_text, const HeaderMap& extra) {
  Request request;
  request.method = Method::kGet;
  const auto url = parse_url(url_text);
  if (url && !url->host.empty()) {
    request.target = url->request_target();
    std::string host_value = url->host;
    if (url->port != 0) {
      host_value += ':';
      host_value += std::to_string(url->port);
    }
    request.headers.add("Host", host_value);
  } else {
    request.target = std::string{url_text};
  }
  for (const auto& field : extra) {
    request.headers.add(field.name, field.value);
  }
  return request;
}

Response make_ok(std::string body, std::string_view content_type) {
  Response response;
  response.status = 200;
  response.reason = std::string{reason_phrase(200)};
  response.headers.add("Content-Type", std::string{content_type});
  response.body = std::move(body);
  finalize_content_length(response);
  return response;
}

Response make_not_found(std::string_view target) {
  Response response;
  response.status = 404;
  response.reason = std::string{reason_phrase(404)};
  response.headers.add("Content-Type", "text/plain");
  response.body = "no recorded response for ";
  response.body += target;
  finalize_content_length(response);
  return response;
}

}  // namespace mahimahi::http
