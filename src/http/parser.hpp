#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "http/message.hpp"

namespace mahimahi::http {

/// Incremental (push) HTTP/1.1 message parser core.
///
/// Bytes arrive in arbitrary fragments via push(); complete messages are
/// queued and popped by the typed subclasses. Framing follows RFC 7230
/// §3.3.3: Transfer-Encoding: chunked, else Content-Length, else (responses
/// only) read-until-close. Multiple pipelined messages in one buffer are
/// handled.
///
/// On malformed input the parser latches into an error state; callers
/// (proxy, origin servers) translate that into a 400 or a dropped
/// connection, mirroring what Apache does.
class MessageParser {
 public:
  virtual ~MessageParser() = default;

  MessageParser(const MessageParser&) = delete;
  MessageParser& operator=(const MessageParser&) = delete;

  /// Feed wire bytes.
  void push(std::string_view bytes);

  /// Signal connection close (completes read-until-close responses).
  void on_close();

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error_message() const { return error_; }

  /// Number of complete messages waiting to be popped.
  [[nodiscard]] std::size_t pending() const { return complete_count_; }

  /// Bytes buffered but not yet part of a complete message.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

  /// Header-section size limit; guards against unbounded buffering.
  static constexpr std::size_t kMaxHeaderBytes = 1 << 20;

 protected:
  MessageParser() = default;

  // --- hooks implemented by Request/Response subclasses ---

  /// Parse the start line; return false (after calling fail()) on bad input.
  virtual bool handle_start_line(std::string_view line) = 0;

  /// Hand the subclass each parsed header field.
  virtual void handle_header(std::string name, std::string value) = 0;

  /// Body framing decision once headers are complete.
  struct Framing {
    enum class Kind { kNone, kContentLength, kChunked, kToClose } kind{Kind::kNone};
    std::uint64_t content_length{0};
  };
  virtual Framing decide_framing() = 0;

  /// Append body bytes to the in-progress message.
  virtual void handle_body(std::string_view bytes) = 0;

  /// The in-progress message is complete.
  virtual void handle_complete() = 0;

  void fail(std::string message);

  std::size_t complete_count_{0};

 private:
  enum class State {
    kStartLine,
    kHeaders,
    kBodyIdentity,
    kBodyChunkSize,
    kBodyChunkData,
    kBodyChunkCrlf,
    kBodyTrailers,
    kBodyToClose,
    kFailed,
  };

  void process();
  bool take_line(std::string& line);
  void begin_body();
  void finish_message();

  State state_{State::kStartLine};
  std::string buffer_;
  std::size_t header_bytes_{0};
  std::uint64_t remaining_{0};  // identity body or current chunk remaining
  bool closed_{false};
  bool failed_{false};
  std::string error_;
};

/// Parses a stream of HTTP requests (server / proxy side).
class RequestParser final : public MessageParser {
 public:
  [[nodiscard]] bool has_message() const { return !complete_.empty(); }
  Request pop();

 private:
  bool handle_start_line(std::string_view line) override;
  void handle_header(std::string name, std::string value) override;
  Framing decide_framing() override;
  void handle_body(std::string_view bytes) override;
  void handle_complete() override;

  Request current_;
  std::deque<Request> complete_;
};

/// Parses a stream of HTTP responses (client / proxy side).
///
/// Response framing depends on the request method (HEAD responses carry no
/// body), so callers must announce each request they send with
/// notify_request(); announcements are consumed FIFO, one per response.
class ResponseParser final : public MessageParser {
 public:
  void notify_request(Method method);

  [[nodiscard]] bool has_message() const { return !complete_.empty(); }
  Response pop();

 private:
  bool handle_start_line(std::string_view line) override;
  void handle_header(std::string name, std::string value) override;
  Framing decide_framing() override;
  void handle_body(std::string_view bytes) override;
  void handle_complete() override;

  Response current_;
  std::deque<Response> complete_;
  std::deque<Method> request_methods_;
};

}  // namespace mahimahi::http
