#include "http/method.hpp"

#include <array>
#include <utility>

namespace mahimahi::http {
namespace {

constexpr std::array<std::pair<Method, std::string_view>, 9> kMethods{{
    {Method::kGet, "GET"},
    {Method::kHead, "HEAD"},
    {Method::kPost, "POST"},
    {Method::kPut, "PUT"},
    {Method::kDelete, "DELETE"},
    {Method::kOptions, "OPTIONS"},
    {Method::kTrace, "TRACE"},
    {Method::kConnect, "CONNECT"},
    {Method::kPatch, "PATCH"},
}};

}  // namespace

std::string_view method_name(Method method) {
  for (const auto& [m, name] : kMethods) {
    if (m == method) {
      return name;
    }
  }
  return "GET";
}

std::optional<Method> parse_method(std::string_view token) {
  for (const auto& [m, name] : kMethods) {
    if (name == token) {
      return m;
    }
  }
  return std::nullopt;
}

bool response_has_no_body(Method method) { return method == Method::kHead; }

}  // namespace mahimahi::http
