#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mahimahi::http {

/// One header field. Name comparison is ASCII case-insensitive everywhere;
/// insertion order and original spelling are preserved (RecordShell must
/// store exactly what was on the wire).
struct HeaderField {
  std::string name;
  std::string value;

  bool operator==(const HeaderField&) const = default;
};

/// Ordered multimap of header fields.
class HeaderMap {
 public:
  HeaderMap() = default;
  HeaderMap(std::initializer_list<HeaderField> fields);

  void add(std::string name, std::string value);

  /// Replace the first field with this name (add if absent); removes any
  /// additional fields with the same name.
  void set(std::string_view name, std::string value);

  /// Remove every field with this name; returns how many were removed.
  std::size_t remove(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// First value for `name`, if any.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;

  /// All values for `name`, in insertion order.
  [[nodiscard]] std::vector<std::string_view> get_all(std::string_view name) const;

  /// First value, or `fallback` when absent.
  [[nodiscard]] std::string_view get_or(std::string_view name,
                                        std::string_view fallback) const;

  [[nodiscard]] std::size_t size() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const std::vector<HeaderField>& fields() const { return fields_; }

  [[nodiscard]] auto begin() const { return fields_.begin(); }
  [[nodiscard]] auto end() const { return fields_.end(); }

  bool operator==(const HeaderMap&) const = default;

 private:
  std::vector<HeaderField> fields_;
};

/// True if a comma-separated header value contains `token`
/// (case-insensitive) — e.g. Connection: keep-alive, Upgrade.
bool value_has_token(std::string_view header_value, std::string_view token);

}  // namespace mahimahi::http
