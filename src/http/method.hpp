#pragma once

#include <optional>
#include <string_view>

namespace mahimahi::http {

enum class Method {
  kGet,
  kHead,
  kPost,
  kPut,
  kDelete,
  kOptions,
  kTrace,
  kConnect,
  kPatch,
};

/// Canonical token ("GET", "HEAD", ...).
std::string_view method_name(Method method);

/// Parse a method token (exact, case-sensitive per RFC 7230 §3.1.1).
std::optional<Method> parse_method(std::string_view token);

/// True when responses to this method never carry a body (HEAD).
bool response_has_no_body(Method method);

}  // namespace mahimahi::http
