#include "http/mime.hpp"

#include "util/strings.hpp"

namespace mahimahi::http {

std::string_view resource_kind_name(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kHtml: return "html";
    case ResourceKind::kCss: return "css";
    case ResourceKind::kJavaScript: return "javascript";
    case ResourceKind::kImage: return "image";
    case ResourceKind::kFont: return "font";
    case ResourceKind::kJson: return "json";
    case ResourceKind::kOther: return "other";
  }
  return "other";
}

std::string_view content_type_for_path(std::string_view path) {
  // Strip query if a caller passed a full target.
  const auto [bare, query] = util::split_once(path, '?');
  (void)query;
  const std::size_t dot = bare.rfind('.');
  const std::size_t slash = bare.rfind('/');
  if (dot == std::string_view::npos ||
      (slash != std::string_view::npos && dot < slash)) {
    return "text/html";
  }
  const std::string ext = util::to_lower(bare.substr(dot + 1));
  if (ext == "html" || ext == "htm") return "text/html";
  if (ext == "css") return "text/css";
  if (ext == "js" || ext == "mjs") return "application/javascript";
  if (ext == "json") return "application/json";
  if (ext == "png") return "image/png";
  if (ext == "jpg" || ext == "jpeg") return "image/jpeg";
  if (ext == "gif") return "image/gif";
  if (ext == "webp") return "image/webp";
  if (ext == "svg") return "image/svg+xml";
  if (ext == "ico") return "image/x-icon";
  if (ext == "woff") return "font/woff";
  if (ext == "woff2") return "font/woff2";
  if (ext == "ttf") return "font/ttf";
  if (ext == "otf") return "font/otf";
  if (ext == "txt") return "text/plain";
  if (ext == "xml") return "application/xml";
  return "application/octet-stream";
}

ResourceKind classify_content_type(std::string_view content_type) {
  // Drop parameters: "text/html; charset=utf-8" -> "text/html".
  const auto [type_part, params] = util::split_once(content_type, ';');
  (void)params;
  const std::string type = util::to_lower(util::trim(type_part));
  if (type == "text/html" || type == "application/xhtml+xml") {
    return ResourceKind::kHtml;
  }
  if (type == "text/css") {
    return ResourceKind::kCss;
  }
  if (type == "application/javascript" || type == "text/javascript" ||
      type == "application/x-javascript") {
    return ResourceKind::kJavaScript;
  }
  if (type == "application/json") {
    return ResourceKind::kJson;
  }
  if (util::starts_with(type, "image/")) {
    return ResourceKind::kImage;
  }
  if (util::starts_with(type, "font/") || type == "application/font-woff") {
    return ResourceKind::kFont;
  }
  return ResourceKind::kOther;
}

std::string_view content_type_for_kind(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kHtml: return "text/html; charset=utf-8";
    case ResourceKind::kCss: return "text/css";
    case ResourceKind::kJavaScript: return "application/javascript";
    case ResourceKind::kImage: return "image/jpeg";
    case ResourceKind::kFont: return "font/woff2";
    case ResourceKind::kJson: return "application/json";
    case ResourceKind::kOther: return "application/octet-stream";
  }
  return "application/octet-stream";
}

std::string_view extension_for_kind(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kHtml: return ".html";
    case ResourceKind::kCss: return ".css";
    case ResourceKind::kJavaScript: return ".js";
    case ResourceKind::kImage: return ".jpg";
    case ResourceKind::kFont: return ".woff2";
    case ResourceKind::kJson: return ".json";
    case ResourceKind::kOther: return ".bin";
  }
  return ".bin";
}

}  // namespace mahimahi::http
