#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mahimahi::http {

/// Decomposed URL. Handles the two forms that appear on the wire:
/// absolute-form ("http://host:port/path?query", as sent to proxies) and
/// origin-form ("/path?query", as sent to origin servers).
struct Url {
  std::string scheme;  // "http" or "https"; empty for origin-form
  std::string host;    // empty for origin-form
  std::uint16_t port{0};  // 0 = scheme default
  std::string path;    // always starts with '/' (never empty)
  std::string query;   // without the '?'; empty if none

  /// Effective port: explicit, else 443 for https, else 80.
  [[nodiscard]] std::uint16_t effective_port() const;

  /// "/path?query" (what goes in an origin-form request line).
  [[nodiscard]] std::string request_target() const;

  /// Full round-trip: "scheme://host[:port]/path[?query]" when host is
  /// known, else the origin-form target.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Url&) const = default;
};

/// Parse either absolute-form or origin-form. Returns nullopt on anything
/// that is not a plausible http(s) URL.
std::optional<Url> parse_url(std::string_view text);

/// Resolve `ref` (absolute URL, scheme-relative "//h/p", absolute path, or
/// relative path) against `base`. This is what the browser does with hrefs.
Url resolve_reference(const Url& base, std::string_view ref);

}  // namespace mahimahi::http
