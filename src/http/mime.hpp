#pragma once

#include <string_view>

namespace mahimahi::http {

/// Coarse resource classes the browser model cares about. Classification
/// drives discovery (HTML/CSS/JS can reference further objects) and the
/// compute model (script/style cost more main-thread time than images).
enum class ResourceKind {
  kHtml,
  kCss,
  kJavaScript,
  kImage,
  kFont,
  kJson,
  kOther,
};

std::string_view resource_kind_name(ResourceKind kind);

/// Guess a Content-Type from a URL path extension ("/a/b.css" -> "text/css").
std::string_view content_type_for_path(std::string_view path);

/// Classify a Content-Type header value (parameters ignored).
ResourceKind classify_content_type(std::string_view content_type);

/// Canonical Content-Type for a resource kind (used by the corpus
/// generator when synthesizing origin content).
std::string_view content_type_for_kind(ResourceKind kind);

/// Conventional URL path extension for a kind (".js", ".png", ...).
std::string_view extension_for_kind(ResourceKind kind);

}  // namespace mahimahi::http
