#include "http/url.hpp"

#include "util/strings.hpp"

namespace mahimahi::http {
namespace {

/// Parse "host[:port]"; returns false on bad port.
bool parse_authority(std::string_view authority, std::string& host,
                     std::uint16_t& port) {
  const auto [host_part, port_part] = util::split_once(authority, ':');
  if (host_part.empty()) {
    return false;
  }
  host = std::string{host_part};
  if (port_part.empty()) {
    port = 0;
    return true;
  }
  std::uint64_t value = 0;
  if (!util::parse_u64(port_part, value) || value == 0 || value > 65535) {
    return false;
  }
  port = static_cast<std::uint16_t>(value);
  return true;
}

void split_path_query(std::string_view target, std::string& path, std::string& query) {
  const auto [path_part, query_part] = util::split_once(target, '?');
  path = path_part.empty() ? std::string{"/"} : std::string{path_part};
  query = std::string{query_part};
}

}  // namespace

std::uint16_t Url::effective_port() const {
  if (port != 0) {
    return port;
  }
  return scheme == "https" ? 443 : 80;
}

std::string Url::request_target() const {
  std::string target = path;
  if (!query.empty()) {
    target += '?';
    target += query;
  }
  return target;
}

std::string Url::to_string() const {
  if (host.empty()) {
    return request_target();
  }
  std::string out = scheme.empty() ? std::string{"http"} : scheme;
  out += "://";
  out += host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  out += request_target();
  return out;
}

std::optional<Url> parse_url(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  Url url;
  if (text.front() == '/') {  // origin-form
    split_path_query(text, url.path, url.query);
    return url;
  }
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    return std::nullopt;
  }
  url.scheme = util::to_lower(text.substr(0, scheme_end));
  if (url.scheme != "http" && url.scheme != "https") {
    return std::nullopt;
  }
  std::string_view rest = text.substr(scheme_end + 3);
  const std::size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  std::string_view target =
      path_start == std::string_view::npos ? std::string_view{"/"}
                                           : rest.substr(path_start);
  if (!parse_authority(authority, url.host, url.port)) {
    return std::nullopt;
  }
  url.host = util::to_lower(url.host);
  split_path_query(target, url.path, url.query);
  return url;
}

Url resolve_reference(const Url& base, std::string_view ref) {
  if (ref.empty()) {
    return base;
  }
  if (util::starts_with(ref, "//")) {  // scheme-relative
    std::string absolute = base.scheme.empty() ? "http" : base.scheme;
    absolute += ':';
    absolute += ref;
    if (const auto url = parse_url(absolute)) {
      return *url;
    }
    return base;
  }
  if (ref.find("://") != std::string_view::npos) {  // absolute
    if (const auto url = parse_url(ref)) {
      return *url;
    }
    return base;
  }
  Url out = base;
  out.query.clear();
  if (ref.front() == '/') {  // absolute path
    split_path_query(ref, out.path, out.query);
    return out;
  }
  // Relative path: resolve against the base path's directory.
  const std::size_t last_slash = base.path.rfind('/');
  const std::string dir =
      last_slash == std::string::npos ? "/" : base.path.substr(0, last_slash + 1);
  std::string target = dir;
  target += ref;
  split_path_query(target, out.path, out.query);
  return out;
}

}  // namespace mahimahi::http
