#include "http/status.hpp"

namespace mahimahi::http {

std::string_view reason_phrase(int status) {
  switch (status) {
    case 100: return "Continue";
    case 101: return "Switching Protocols";
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 203: return "Non-Authoritative Information";
    case 204: return "No Content";
    case 205: return "Reset Content";
    case 206: return "Partial Content";
    case 300: return "Multiple Choices";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 303: return "See Other";
    case 304: return "Not Modified";
    case 307: return "Temporary Redirect";
    case 308: return "Permanent Redirect";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 406: return "Not Acceptable";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 411: return "Length Required";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 415: return "Unsupported Media Type";
    case 416: return "Range Not Satisfiable";
    case 417: return "Expectation Failed";
    case 426: return "Upgrade Required";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

bool is_informational(int status) { return status >= 100 && status < 200; }
bool is_success(int status) { return status >= 200 && status < 300; }
bool is_redirect(int status) { return status >= 300 && status < 400; }
bool is_client_error(int status) { return status >= 400 && status < 500; }
bool is_server_error(int status) { return status >= 500 && status < 600; }

bool status_has_no_body(int status) {
  return is_informational(status) || status == 204 || status == 304;
}

}  // namespace mahimahi::http
