#pragma once

#include <string>
#include <string_view>

#include "http/headers.hpp"
#include "http/method.hpp"
#include "http/url.hpp"

namespace mahimahi::http {

/// A complete HTTP/1.1 request, body included.
struct Request {
  Method method{Method::kGet};
  std::string target{"/"};     // as it appeared on the request line
  std::string version{"HTTP/1.1"};
  HeaderMap headers;
  std::string body;

  /// Host header (lowercased, port stripped); empty if absent.
  [[nodiscard]] std::string host() const;

  /// Best-effort URL for this request: absolute-form target if present,
  /// else scheme://Host/target.
  [[nodiscard]] Url url() const;

  /// True when the client asked to keep the connection open
  /// (HTTP/1.1 default unless "Connection: close").
  [[nodiscard]] bool keep_alive() const;

  bool operator==(const Request&) const = default;
};

/// A complete HTTP/1.1 response, body included.
struct Response {
  std::string version{"HTTP/1.1"};
  int status{200};
  std::string reason{"OK"};
  HeaderMap headers;
  std::string body;

  [[nodiscard]] bool keep_alive() const;

  bool operator==(const Response&) const = default;
};

/// Serialize to wire bytes exactly as stored (headers are not invented;
/// call `finalize_content_length` first if the message needs framing).
std::string to_bytes(const Request& request);
std::string to_bytes(const Response& response);

/// Ensure the message is self-framing. Requests: set Content-Length when a
/// body is present (bodiless requests need no framing). Responses: always
/// set Content-Length — even zero — unless chunked or the status forbids a
/// body, because an unframed response means read-until-close.
void finalize_content_length(Request& request);
void finalize_content_length(Response& response);

/// Convenience factories used throughout tests/examples.
Request make_get(std::string_view url_text, const HeaderMap& extra = {});
Response make_ok(std::string body, std::string_view content_type = "text/html");
Response make_not_found(std::string_view target);

}  // namespace mahimahi::http
