#include "http/parser.hpp"

#include <algorithm>

#include "http/status.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mahimahi::http {

void MessageParser::push(std::string_view bytes) {
  if (failed_ || closed_) {
    return;
  }
  buffer_.append(bytes);
  process();
}

void MessageParser::on_close() {
  if (failed_ || closed_) {
    return;
  }
  closed_ = true;
  switch (state_) {
    case State::kBodyToClose:
      finish_message();
      break;
    case State::kStartLine:
      if (!buffer_.empty()) {
        fail("connection closed mid start-line");
      }
      break;
    case State::kFailed:
      break;
    default:
      fail("connection closed mid message");
      break;
  }
}

void MessageParser::fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  state_ = State::kFailed;
  buffer_.clear();
}

bool MessageParser::take_line(std::string& line) {
  const std::size_t lf = buffer_.find('\n');
  if (lf == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      fail("header line exceeds limit");
    }
    return false;
  }
  // Tolerate bare LF line endings the way real servers do.
  const std::size_t line_end = (lf > 0 && buffer_[lf - 1] == '\r') ? lf - 1 : lf;
  line = buffer_.substr(0, line_end);
  buffer_.erase(0, lf + 1);
  return true;
}

void MessageParser::begin_body() {
  const Framing framing = decide_framing();
  if (failed_) {
    return;
  }
  switch (framing.kind) {
    case Framing::Kind::kNone:
      finish_message();
      break;
    case Framing::Kind::kContentLength:
      remaining_ = framing.content_length;
      if (remaining_ == 0) {
        finish_message();
      } else {
        state_ = State::kBodyIdentity;
      }
      break;
    case Framing::Kind::kChunked:
      state_ = State::kBodyChunkSize;
      break;
    case Framing::Kind::kToClose:
      state_ = State::kBodyToClose;
      break;
  }
}

void MessageParser::finish_message() {
  handle_complete();
  ++complete_count_;
  state_ = State::kStartLine;
  header_bytes_ = 0;
  remaining_ = 0;
}

void MessageParser::process() {
  // Loop until no further progress is possible on the buffered bytes.
  while (!failed_) {
    switch (state_) {
      case State::kStartLine: {
        std::string line;
        if (!take_line(line)) {
          return;
        }
        if (line.empty()) {
          continue;  // tolerate leading blank lines (RFC 7230 §3.5)
        }
        header_bytes_ = line.size();
        if (!handle_start_line(line)) {
          return;  // subclass called fail()
        }
        state_ = State::kHeaders;
        break;
      }

      case State::kHeaders: {
        std::string line;
        if (!take_line(line)) {
          return;
        }
        header_bytes_ += line.size() + 2;
        if (header_bytes_ > kMaxHeaderBytes) {
          fail("header section exceeds limit");
          return;
        }
        if (line.empty()) {
          begin_body();
          continue;
        }
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
          fail("malformed header field: " + line);
          return;
        }
        std::string name = line.substr(0, colon);
        if (name.back() == ' ' || name.back() == '\t') {
          fail("whitespace before header colon: " + line);
          return;
        }
        std::string value{util::trim(std::string_view{line}.substr(colon + 1))};
        handle_header(std::move(name), std::move(value));
        break;
      }

      case State::kBodyIdentity: {
        if (buffer_.empty()) {
          return;
        }
        const std::size_t take =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining_, buffer_.size()));
        handle_body(std::string_view{buffer_}.substr(0, take));
        buffer_.erase(0, take);
        remaining_ -= take;
        if (remaining_ == 0) {
          finish_message();
        }
        break;
      }

      case State::kBodyChunkSize: {
        std::string line;
        if (!take_line(line)) {
          return;
        }
        // Strip chunk extensions (";ext=val").
        const auto [size_text, extensions] =
            util::split_once(util::trim(line), ';');
        (void)extensions;
        std::uint64_t size = 0;
        if (!util::parse_hex_u64(util::trim(size_text), size)) {
          fail("bad chunk size: " + line);
          return;
        }
        if (size == 0) {
          state_ = State::kBodyTrailers;
        } else {
          remaining_ = size;
          state_ = State::kBodyChunkData;
        }
        break;
      }

      case State::kBodyChunkData: {
        if (buffer_.empty()) {
          return;
        }
        const std::size_t take =
            static_cast<std::size_t>(std::min<std::uint64_t>(remaining_, buffer_.size()));
        handle_body(std::string_view{buffer_}.substr(0, take));
        buffer_.erase(0, take);
        remaining_ -= take;
        if (remaining_ == 0) {
          state_ = State::kBodyChunkCrlf;
        }
        break;
      }

      case State::kBodyChunkCrlf: {
        std::string line;
        if (!take_line(line)) {
          return;
        }
        if (!line.empty()) {
          fail("missing CRLF after chunk data");
          return;
        }
        state_ = State::kBodyChunkSize;
        break;
      }

      case State::kBodyTrailers: {
        std::string line;
        if (!take_line(line)) {
          return;
        }
        if (line.empty()) {
          finish_message();
          continue;
        }
        // Trailer fields are parsed and appended as ordinary headers.
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
          fail("malformed trailer field: " + line);
          return;
        }
        handle_header(line.substr(0, colon),
                      std::string{util::trim(std::string_view{line}.substr(colon + 1))});
        break;
      }

      case State::kBodyToClose: {
        if (buffer_.empty()) {
          return;
        }
        handle_body(buffer_);
        buffer_.clear();
        return;
      }

      case State::kFailed:
        return;
    }
  }
}

// --- RequestParser -------------------------------------------------------

Request RequestParser::pop() {
  MAHI_ASSERT_MSG(!complete_.empty(), "pop() with no complete request");
  Request request = std::move(complete_.front());
  complete_.pop_front();
  --complete_count_;
  return request;
}

bool RequestParser::handle_start_line(std::string_view line) {
  const auto fields = util::split(line, ' ');
  if (fields.size() != 3) {
    fail("malformed request line: " + std::string{line});
    return false;
  }
  const auto method = parse_method(fields[0]);
  if (!method) {
    fail("unknown method: " + std::string{fields[0]});
    return false;
  }
  if (fields[1].empty()) {
    fail("empty request target");
    return false;
  }
  if (!util::starts_with(fields[2], "HTTP/")) {
    fail("bad HTTP version: " + std::string{fields[2]});
    return false;
  }
  current_ = Request{};
  current_.method = *method;
  current_.target = std::string{fields[1]};
  current_.version = std::string{fields[2]};
  return true;
}

void RequestParser::handle_header(std::string name, std::string value) {
  current_.headers.add(std::move(name), std::move(value));
}

MessageParser::Framing RequestParser::decide_framing() {
  Framing framing;
  const auto te = current_.headers.get("Transfer-Encoding");
  if (te && value_has_token(*te, "chunked")) {
    framing.kind = Framing::Kind::kChunked;
    return framing;
  }
  if (const auto cl = current_.headers.get("Content-Length")) {
    std::uint64_t length = 0;
    if (!util::parse_u64(util::trim(*cl), length)) {
      fail("bad Content-Length: " + std::string{*cl});
      return framing;
    }
    framing.kind = Framing::Kind::kContentLength;
    framing.content_length = length;
    return framing;
  }
  framing.kind = Framing::Kind::kNone;  // requests never read-to-close
  return framing;
}

void RequestParser::handle_body(std::string_view bytes) {
  current_.body.append(bytes);
}

void RequestParser::handle_complete() {
  complete_.push_back(std::move(current_));
  current_ = Request{};
}

// --- ResponseParser ------------------------------------------------------

void ResponseParser::notify_request(Method method) {
  request_methods_.push_back(method);
}

Response ResponseParser::pop() {
  MAHI_ASSERT_MSG(!complete_.empty(), "pop() with no complete response");
  Response response = std::move(complete_.front());
  complete_.pop_front();
  --complete_count_;
  return response;
}

bool ResponseParser::handle_start_line(std::string_view line) {
  // status-line = HTTP-version SP status-code SP [reason-phrase]
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || !util::starts_with(line, "HTTP/")) {
    fail("malformed status line: " + std::string{line});
    return false;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code_text =
      sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::uint64_t code = 0;
  if (!util::parse_u64(code_text, code) || code < 100 || code > 599) {
    fail("bad status code: " + std::string{line});
    return false;
  }
  current_ = Response{};
  current_.version = std::string{line.substr(0, sp1)};
  current_.status = static_cast<int>(code);
  current_.reason =
      sp2 == std::string_view::npos ? std::string{} : std::string{line.substr(sp2 + 1)};
  return true;
}

void ResponseParser::handle_header(std::string name, std::string value) {
  current_.headers.add(std::move(name), std::move(value));
}

MessageParser::Framing ResponseParser::decide_framing() {
  Framing framing;
  Method request_method = Method::kGet;
  if (!request_methods_.empty()) {
    request_method = request_methods_.front();
    // 1xx responses are interim: the real response for this request is
    // still coming, so only consume the announcement on a final status.
    if (!is_informational(current_.status)) {
      request_methods_.pop_front();
    }
  }
  if (response_has_no_body(request_method) || status_has_no_body(current_.status)) {
    framing.kind = Framing::Kind::kNone;
    return framing;
  }
  const auto te = current_.headers.get("Transfer-Encoding");
  if (te && value_has_token(*te, "chunked")) {
    framing.kind = Framing::Kind::kChunked;
    return framing;
  }
  if (const auto cl = current_.headers.get("Content-Length")) {
    std::uint64_t length = 0;
    if (!util::parse_u64(util::trim(*cl), length)) {
      fail("bad Content-Length: " + std::string{*cl});
      return framing;
    }
    framing.kind = Framing::Kind::kContentLength;
    framing.content_length = length;
    return framing;
  }
  framing.kind = Framing::Kind::kToClose;
  return framing;
}

void ResponseParser::handle_body(std::string_view bytes) {
  current_.body.append(bytes);
}

void ResponseParser::handle_complete() {
  complete_.push_back(std::move(current_));
  current_ = Response{};
}

}  // namespace mahimahi::http
