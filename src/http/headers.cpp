#include "http/headers.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mahimahi::http {

HeaderMap::HeaderMap(std::initializer_list<HeaderField> fields) : fields_{fields} {}

void HeaderMap::add(std::string name, std::string value) {
  fields_.push_back(HeaderField{std::move(name), std::move(value)});
}

void HeaderMap::set(std::string_view name, std::string value) {
  bool replaced = false;
  for (auto it = fields_.begin(); it != fields_.end();) {
    if (util::iequals(it->name, name)) {
      if (!replaced) {
        it->value = std::move(value);
        replaced = true;
        ++it;
      } else {
        it = fields_.erase(it);
      }
    } else {
      ++it;
    }
  }
  if (!replaced) {
    add(std::string{name}, std::move(value));
  }
}

std::size_t HeaderMap::remove(std::string_view name) {
  const auto before = fields_.size();
  fields_.erase(std::remove_if(fields_.begin(), fields_.end(),
                               [&](const HeaderField& f) {
                                 return util::iequals(f.name, name);
                               }),
                fields_.end());
  return before - fields_.size();
}

bool HeaderMap::contains(std::string_view name) const {
  return get(name).has_value();
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& field : fields_) {
    if (util::iequals(field.name, name)) {
      return std::string_view{field.value};
    }
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> values;
  for (const auto& field : fields_) {
    if (util::iequals(field.name, name)) {
      values.emplace_back(field.value);
    }
  }
  return values;
}

std::string_view HeaderMap::get_or(std::string_view name,
                                   std::string_view fallback) const {
  const auto value = get(name);
  return value ? *value : fallback;
}

bool value_has_token(std::string_view header_value, std::string_view token) {
  for (const auto piece : util::split(header_value, ',')) {
    if (util::iequals(util::trim(piece), token)) {
      return true;
    }
  }
  return false;
}

}  // namespace mahimahi::http
