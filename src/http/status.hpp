#pragma once

#include <string_view>

namespace mahimahi::http {

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
/// Unknown codes map to "Unknown".
std::string_view reason_phrase(int status);

/// Status classes.
bool is_informational(int status);  // 1xx
bool is_success(int status);        // 2xx
bool is_redirect(int status);       // 3xx
bool is_client_error(int status);   // 4xx
bool is_server_error(int status);   // 5xx

/// True when a response with this status never carries a body
/// (1xx, 204 No Content, 304 Not Modified) per RFC 7230 §3.3.3.
bool status_has_no_body(int status);

}  // namespace mahimahi::http
