#pragma once

#include "trace/trace.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace mahimahi::trace {

/// Constant-bitrate trace, e.g. 1000 Mbit/s for the paper's Figure 2
/// LinkShell overhead experiment. Opportunities are spaced uniformly at
/// MTU*8/rate; the trace spans `duration` and then repeats.
PacketTrace constant_rate(double bits_per_second, Microseconds duration);

/// Time-varying "cellular-like" trace: the delivery rate follows a bounded
/// random walk between min_bps and max_bps, changing every `step`, like the
/// Verizon LTE traces shipped with mahimahi. Deterministic given `rng`.
PacketTrace cellular_like(util::Rng& rng, Microseconds duration,
                          double min_bps = 1e6, double max_bps = 24e6,
                          Microseconds step = 100'000);

/// Poisson arrivals of delivery opportunities at the given average rate —
/// useful as a stress case (bursty service) in tests and ablations.
PacketTrace poisson_rate(util::Rng& rng, double bits_per_second,
                         Microseconds duration);

/// Periodic on/off trace: full `bits_per_second` while on, nothing while
/// off (mahimahi's mm-onoff, an intermittent connectivity ablation).
PacketTrace on_off(double bits_per_second, Microseconds duration,
                   Microseconds on_period, Microseconds off_period);

}  // namespace mahimahi::trace
