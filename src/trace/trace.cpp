#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace mahimahi::trace {
namespace {
using namespace mahimahi::literals;
}

PacketTrace::PacketTrace(std::vector<Microseconds> opportunities)
    : opportunities_{std::move(opportunities)} {
  if (opportunities_.empty()) {
    throw std::invalid_argument{"packet trace must contain at least one opportunity"};
  }
  for (std::size_t i = 0; i < opportunities_.size(); ++i) {
    if (opportunities_[i] < 0) {
      throw std::invalid_argument{"packet trace timestamps must be non-negative"};
    }
    if (i > 0 && opportunities_[i] < opportunities_[i - 1]) {
      throw std::invalid_argument{"packet trace timestamps must be non-decreasing"};
    }
  }
  // The repeat period is the last timestamp (mahimahi semantics). A trace
  // whose last opportunity is at t=0 would repeat infinitely fast.
  period_ = opportunities_.back();
  if (period_ == 0) {
    throw std::invalid_argument{"packet trace must span a non-zero duration"};
  }
}

PacketTrace PacketTrace::parse(std::string_view text) {
  std::vector<Microseconds> opportunities;
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(util::split_once(raw_line, '#').first);
    if (line.empty()) {
      continue;
    }
    std::uint64_t ms = 0;
    if (!util::parse_u64(line, ms)) {
      throw std::invalid_argument{"bad trace line: " + std::string{raw_line}};
    }
    opportunities.push_back(static_cast<Microseconds>(ms) * 1000);
  }
  return PacketTrace{std::move(opportunities)};
}

PacketTrace PacketTrace::load(const std::filesystem::path& file) {
  std::ifstream in{file};
  if (!in) {
    throw std::runtime_error{"cannot open trace file: " + file.string()};
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return parse(contents.str());
}

std::string PacketTrace::to_text() const {
  std::ostringstream out;
  for (const auto t : opportunities_) {
    out << (t / 1000) << '\n';
  }
  return out.str();
}

void PacketTrace::save(const std::filesystem::path& file) const {
  if (!util::atomic_write_file(file.string(), to_text())) {
    throw std::runtime_error{"cannot write trace file: " + file.string()};
  }
}

Microseconds PacketTrace::opportunity_time(std::uint64_t index) const {
  const std::uint64_t lap = index / opportunities_.size();
  const std::uint64_t within = index % opportunities_.size();
  return static_cast<Microseconds>(lap) * period_ + opportunities_[within];
}

std::uint64_t PacketTrace::first_opportunity_at_or_after(Microseconds time) const {
  if (time <= opportunities_.front()) {
    return 0;
  }
  // A timestamp exactly on a lap boundary belongs to the *previous* lap's
  // final opportunity, so start the search one lap early.
  std::uint64_t lap = static_cast<std::uint64_t>(time / period_);
  if (lap > 0) {
    --lap;
  }
  while (true) {
    const Microseconds base = static_cast<Microseconds>(lap) * period_;
    if (time <= base + opportunities_.front()) {
      return lap * opportunities_.size();
    }
    const Microseconds offset = time - base;
    const auto it =
        std::lower_bound(opportunities_.begin(), opportunities_.end(), offset);
    if (it != opportunities_.end()) {
      return lap * opportunities_.size() +
             static_cast<std::uint64_t>(it - opportunities_.begin());
    }
    ++lap;  // answer lies in a later lap
  }
}

double PacketTrace::average_bits_per_second() const {
  const double bits =
      static_cast<double>(opportunities_.size()) * kOpportunityBytes * 8.0;
  return bits / (static_cast<double>(period_) / 1e6);
}

}  // namespace mahimahi::trace
