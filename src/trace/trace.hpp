#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace mahimahi::trace {

/// Bytes one delivery opportunity can carry — mahimahi's DATAGRAM_SIZE
/// (an MTU-sized packet).
inline constexpr std::uint64_t kOpportunityBytes = 1500;

/// A packet-delivery trace in mahimahi's format: one non-negative integer
/// per line, the time in *milliseconds* at which an MTU-sized packet can be
/// delivered. Timestamps must be non-decreasing; the file must contain at
/// least one opportunity and span a non-zero duration. When emulation runs
/// past the end, the trace repeats (each lap shifts by its total duration).
class PacketTrace {
 public:
  /// Build from opportunity timestamps (validates the invariants above).
  /// Throws std::invalid_argument on violation.
  explicit PacketTrace(std::vector<Microseconds> opportunities);

  /// Parse mahimahi's on-disk format. Lines are integer milliseconds;
  /// blank lines and '#' comments are ignored.
  static PacketTrace parse(std::string_view text);
  static PacketTrace load(const std::filesystem::path& file);

  /// Serialize back to the on-disk format (millisecond lines).
  [[nodiscard]] std::string to_text() const;
  void save(const std::filesystem::path& file) const;

  [[nodiscard]] std::size_t opportunity_count() const { return opportunities_.size(); }

  /// Duration of one lap through the trace. Repeating uses this period.
  [[nodiscard]] Microseconds period() const { return period_; }

  /// Timestamp of opportunity `index` (index may exceed one lap; the trace
  /// wraps by adding whole periods).
  [[nodiscard]] Microseconds opportunity_time(std::uint64_t index) const;

  /// Index of the first opportunity at or after `time`.
  [[nodiscard]] std::uint64_t first_opportunity_at_or_after(Microseconds time) const;

  /// Long-run average throughput implied by the trace, in bits/second.
  [[nodiscard]] double average_bits_per_second() const;

  [[nodiscard]] const std::vector<Microseconds>& opportunities() const {
    return opportunities_;
  }

 private:
  std::vector<Microseconds> opportunities_;
  Microseconds period_;
};

}  // namespace mahimahi::trace
