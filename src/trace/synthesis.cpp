#include "trace/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mahimahi::trace {
namespace {

/// Microseconds between MTU-sized opportunities at `bps`.
double opportunity_spacing_us(double bps) {
  return static_cast<double>(kOpportunityBytes) * 8.0 / bps * 1e6;
}

}  // namespace

PacketTrace constant_rate(double bits_per_second, Microseconds duration) {
  if (bits_per_second <= 0 || duration <= 0) {
    throw std::invalid_argument{"constant_rate needs positive rate and duration"};
  }
  const double spacing = opportunity_spacing_us(bits_per_second);
  std::vector<Microseconds> opportunities;
  opportunities.reserve(static_cast<std::size_t>(duration / spacing) + 2);
  // Opportunities at spacing, 2*spacing, ... — not at t=0, so a packet
  // arriving at t=0 waits (on average) half a spacing, like a real link.
  for (double t = spacing; t <= static_cast<double>(duration); t += spacing) {
    opportunities.push_back(static_cast<Microseconds>(std::llround(t)));
  }
  if (opportunities.empty() || opportunities.back() == 0) {
    // Rate so low that no opportunity falls inside duration: single
    // opportunity at the spacing (trace period = spacing).
    opportunities = {static_cast<Microseconds>(std::llround(spacing))};
  }
  return PacketTrace{std::move(opportunities)};
}

PacketTrace cellular_like(util::Rng& rng, Microseconds duration, double min_bps,
                          double max_bps, Microseconds step) {
  if (min_bps <= 0 || max_bps < min_bps || duration <= 0 || step <= 0) {
    throw std::invalid_argument{"cellular_like parameter out of range"};
  }
  std::vector<Microseconds> opportunities;
  double rate = rng.uniform(min_bps, max_bps);
  double next_opportunity = 0.0;
  for (Microseconds window = 0; window < duration; window += step) {
    // Multiplicative random walk, clamped — matches the bursty ramps seen
    // in cellular captures better than an additive walk.
    rate *= std::exp(rng.normal(0.0, 0.25));
    rate = std::clamp(rate, min_bps, max_bps);
    const double spacing = opportunity_spacing_us(rate);
    if (next_opportunity < static_cast<double>(window)) {
      next_opportunity = static_cast<double>(window);
    }
    const double window_end =
        static_cast<double>(std::min<Microseconds>(window + step, duration));
    while (next_opportunity < window_end) {
      next_opportunity += spacing;
      opportunities.push_back(
          static_cast<Microseconds>(std::llround(next_opportunity)));
    }
  }
  if (opportunities.empty()) {
    opportunities = {duration};
  }
  return PacketTrace{std::move(opportunities)};
}

PacketTrace poisson_rate(util::Rng& rng, double bits_per_second,
                         Microseconds duration) {
  if (bits_per_second <= 0 || duration <= 0) {
    throw std::invalid_argument{"poisson_rate needs positive rate and duration"};
  }
  const double mean_spacing = opportunity_spacing_us(bits_per_second);
  std::vector<Microseconds> opportunities;
  double t = rng.exponential(1.0 / mean_spacing);
  while (t <= static_cast<double>(duration)) {
    opportunities.push_back(static_cast<Microseconds>(std::llround(t)));
    t += rng.exponential(1.0 / mean_spacing);
  }
  if (opportunities.empty() || opportunities.back() == 0) {
    opportunities.push_back(duration);
  }
  return PacketTrace{std::move(opportunities)};
}

PacketTrace on_off(double bits_per_second, Microseconds duration,
                   Microseconds on_period, Microseconds off_period) {
  if (bits_per_second <= 0 || duration <= 0 || on_period <= 0 || off_period < 0) {
    throw std::invalid_argument{"on_off parameter out of range"};
  }
  const double spacing = opportunity_spacing_us(bits_per_second);
  std::vector<Microseconds> opportunities;
  Microseconds cycle_start = 0;
  while (cycle_start < duration) {
    const double on_end = static_cast<double>(
        std::min<Microseconds>(cycle_start + on_period, duration));
    for (double t = static_cast<double>(cycle_start) + spacing; t <= on_end;
         t += spacing) {
      opportunities.push_back(static_cast<Microseconds>(std::llround(t)));
    }
    cycle_start += on_period + off_period;
  }
  if (opportunities.empty() || opportunities.back() == 0) {
    opportunities.push_back(duration);
  }
  return PacketTrace{std::move(opportunities)};
}

}  // namespace mahimahi::trace
