#pragma once

#include <string>

#include "util/time.hpp"

namespace mahimahi::core {

/// Models the host machine running the toolkit — the source of the (small)
/// overheads Figure 2 measures and the cross-machine differences Table 1
/// bounds. Emulation overhead appears as a per-packet forwarding cost each
/// nested shell charges (TUN read/write + context switch in the real
/// system); compute differences scale the browser's main-thread costs.
struct HostProfile {
  std::string name{"machine"};
  /// Per-packet, per-shell forwarding cost. DelayShell's element does one
  /// queue hop; LinkShell's does strictly more work per packet.
  Microseconds delay_shell_packet_cost{9};
  Microseconds link_shell_packet_cost{66};
  Microseconds loss_shell_packet_cost{2};
  /// Relative main-thread speed (1.0 = reference machine).
  double compute_scale{1.0};
  /// Mixed into every per-load RNG stream so two machines never share
  /// jitter draws.
  std::uint64_t seed_salt{0};

  /// The two lab machines of Table 1: same class of hardware, slightly
  /// different clocks — means must agree within 0.5%.
  static HostProfile machine1();
  static HostProfile machine2();
};

inline HostProfile HostProfile::machine1() {
  HostProfile profile;
  profile.name = "machine-1";
  profile.seed_salt = 0x1111'1111;
  return profile;
}

inline HostProfile HostProfile::machine2() {
  HostProfile profile;
  profile.name = "machine-2";
  profile.delay_shell_packet_cost = 10;
  profile.link_shell_packet_cost = 68;
  profile.compute_scale = 1.003;  // ~0.3% slower clock
  profile.seed_salt = 0x2222'2222;
  return profile;
}

}  // namespace mahimahi::core
