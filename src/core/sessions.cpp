#include "core/sessions.hpp"

#include <stdexcept>

#include "record/proxy.hpp"
#include "replay/origin_servers.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::core {
namespace {

constexpr std::size_t kEventLimit = 200'000'000;

web::PageLoadResult run_load(net::EventLoop& loop, web::Browser& browser,
                             const std::string& url,
                             const SessionConfig& config = {}) {
  std::optional<web::PageLoadResult> result;
  browser.load(url, [&](web::PageLoadResult r) { result = std::move(r); });
  if (config.deadline > 0) {
    // Watchdog: run only up to the virtual deadline. A load that has not
    // finished by then is a runaway simulation — abort it with a typed
    // error rather than draining (possibly forever-rescheduling) events.
    loop.run_until(config.deadline);
    if (!result.has_value()) {
      if (config.tracer != nullptr) {
        config.tracer->event(config.deadline, obs::Layer::kRunner,
                             obs::EventKind::kWatchdogExpired,
                             config.trace_session, 0, 0,
                             to_ms(config.deadline), url);
      }
      throw WatchdogError{"watchdog: page load exceeded " +
                          std::to_string(config.deadline / 1000) +
                          " ms of virtual time (deadline)"};
    }
    return std::move(*result);
  }
  loop.run();
  if (!result.has_value()) {
    throw std::runtime_error{"page load never completed (event loop drained)"};
  }
  return std::move(*result);
}

/// Live-web config for one session: the congestion-control override
/// reaches the origin servers' side of every flow, not just the browser's.
corpus::LiveWebConfig session_live_web(const SessionConfig& config,
                                       corpus::LiveWebConfig web) {
  if (!config.congestion_control.empty()) {
    web.tcp.congestion_control = config.congestion_control;
  }
  return web;
}

}  // namespace

util::Rng session_load_rng(const SessionConfig& config, int load_index) {
  util::Rng root{config.seed ^ config.host.seed_salt};
  return root.fork("load-" + std::to_string(load_index));
}

web::BrowserConfig session_browser_config(const SessionConfig& config) {
  web::BrowserConfig browser = scaled_browser(config.browser, config.host);
  browser.tcp.tracer = config.tracer;
  browser.tcp.trace_session = config.trace_session;
  if (!config.congestion_control.empty()) {
    browser.tcp.congestion_control = config.congestion_control;
  }
  if (!config.cc_fleet.empty()) {
    browser.cc_fleet = config.cc_fleet;
  }
  if (config.fault.any() && !config.fault.client.no_retry) {
    // A faulted world gets the plan's client policy; "noretry" measures
    // the undefended baseline. Healthy sessions keep resilience off so
    // their event sequences are untouched.
    browser.resilience.request_deadline = config.fault.client.request_deadline;
    browser.resilience.max_retries = config.fault.client.max_retries;
    browser.resilience.backoff_base = config.fault.client.backoff_base;
    browser.resilience.backoff_max = config.fault.client.backoff_max;
    browser.resilience.backoff_jitter = config.fault.client.backoff_jitter;
  }
  return browser;
}

replay::OriginServerSet::Options session_origin_options(
    const SessionConfig& config,
    const replay::OriginServerSet::Options& base) {
  replay::OriginServerSet::Options options = base;
  options.tcp.tracer = config.tracer;
  options.tcp.trace_session = config.trace_session;
  if (!config.congestion_control.empty()) {
    options.tcp.congestion_control = config.congestion_control;
  }
  if (!config.cc_fleet.empty()) {
    options.cc_fleet = config.cc_fleet;
  }
  return options;
}

// --- ReplayWorld ---------------------------------------------------------

ReplayWorld::ReplayWorld(net::EventLoop& loop,
                         const record::RecordStore& store,
                         const SessionConfig& config,
                         const replay::OriginServerSet::Options& options,
                         int load_index) {
  util::Rng rng = session_load_rng(config, load_index);

  fabric_ = std::make_unique<net::Fabric>(loop);

  // Fault plan for this load: the spec bound to a seed forked from the
  // load RNG (fork is const, so a fault-free session draws nothing extra).
  const fault::FaultPlan plan{config.fault, rng.fork("fault-plan").next()};

  // ReplayShell: one server per recorded (IP, port) — or the
  // single-server ablation — plus a local DNS (dnsmasq equivalent). The
  // session-level congestion-control override reaches both flow ends.
  replay::OriginServerSet::Options origin_options =
      session_origin_options(config, options);
  if (plan.active()) {
    origin_options.fault = plan;
  }
  servers_ = std::make_unique<replay::OriginServerSet>(*fabric_, store,
                                                       origin_options);

  const net::Ipv4 dns_ip = fabric_->allocate_server_ip();
  dns_server_ = std::make_unique<net::DnsServer>(
      *fabric_, net::Address{dns_ip, net::kDnsPort}, servers_->dns_table());
  dns_server_->set_tracer(config.tracer, config.trace_session);
  if (plan.spec().dns.any()) {
    dns_server_->set_fault_hook(
        [plan](std::uint64_t query_index) { return plan.dns_query_fault(query_index); });
  }

  // Fault elements sit innermost (application side, chain index 0): the
  // flap blackhole and corruption hit browser traffic before any shell.
  if (plan.spec().flap.has_value()) {
    const auto& flap = *plan.spec().flap;
    auto box = std::make_unique<net::FlapBox>(loop, flap.period, flap.down,
                                              flap.offset);
    box->set_tracer(config.tracer, config.trace_session);
    fabric_->chain().push_back(std::move(box));
  }
  if (plan.spec().corrupt.has_value()) {
    auto box = std::make_unique<net::CorruptBox>(plan.plan_seed(),
                                                 plan.spec().corrupt->rate);
    box->set_tracer(config.tracer, config.trace_session, &loop);
    fabric_->chain().push_back(std::move(box));
  }

  // Nested shells between the application and the replayed servers.
  apply_shells(*fabric_, config.shells, config.host, rng, config.tracer,
               config.trace_session);

  browser_ = std::make_unique<web::Browser>(*fabric_, dns_server_->address(),
                                            session_browser_config(config),
                                            rng.fork("browser"));
}

ReplayWorld::~ReplayWorld() = default;

web::BrowserConfig scaled_browser(const web::BrowserConfig& base,
                                  const HostProfile& host) {
  web::BrowserConfig scaled = base;
  scaled.html_parse_us_per_byte *= host.compute_scale;
  scaled.css_parse_us_per_byte *= host.compute_scale;
  scaled.js_exec_us_per_byte *= host.compute_scale;
  scaled.image_decode_us_per_byte *= host.compute_scale;
  scaled.other_us_per_byte *= host.compute_scale;
  scaled.per_object_overhead = static_cast<Microseconds>(
      static_cast<double>(base.per_object_overhead) * host.compute_scale);
  scaled.request_issue_cost = static_cast<Microseconds>(
      static_cast<double>(base.request_issue_cost) * host.compute_scale);
  scaled.parallel_object_overhead = static_cast<Microseconds>(
      static_cast<double>(base.parallel_object_overhead) * host.compute_scale);
  scaled.final_layout_cost = static_cast<Microseconds>(
      static_cast<double>(base.final_layout_cost) * host.compute_scale);
  return scaled;
}

// --- ReplaySession -------------------------------------------------------

ReplaySession::ReplaySession(const record::RecordStore& store,
                             SessionConfig config, Options options)
    : store_{store}, config_{std::move(config)}, options_{options} {}

web::PageLoadResult ReplaySession::load_once(const std::string& url,
                                             int load_index) const {
  net::EventLoop loop;
  loop.set_event_limit(kEventLimit);
  ReplayWorld world{loop, store_, config_, options_, load_index};
  return run_load(loop, world.browser(), url, config_);
}

util::Samples ReplaySession::measure(const std::string& url, int count,
                                     ParallelRunner& runner) const {
  // Each load is fully isolated (fresh event loop, fabric, servers,
  // browser) and seeded from (seed, load_index) alone, so fanning the
  // loads across threads and merging by index reproduces the sequential
  // sample sequence exactly. Failure warnings are logged after the merge,
  // in load order, so diagnostic output is deterministic too.
  const auto results = runner.map(
      count, [this, &url](int i) { return load_once(url, i); });
  util::Samples samples;
  for (int i = 0; i < count; ++i) {
    const auto& result = results[static_cast<std::size_t>(i)];
    if (!result.success) {
      MAHI_WARN("replay-session")
          << "load " << i << " of " << url << " had failures ("
          << result.objects_failed << " objects)";
    }
    samples.add(to_ms(result.page_load_time));
  }
  return samples;
}

util::Samples ReplaySession::measure(const std::string& url, int count) const {
  return measure(url, count, ParallelRunner::shared());
}

// --- RecordSession -------------------------------------------------------

RecordSession::RecordSession(const corpus::GeneratedSite& site,
                             corpus::LiveWebConfig web, SessionConfig config)
    : site_{site}, web_{web}, config_{std::move(config)} {}

record::RecordStore RecordSession::record(web::PageLoadResult* result_out) {
  util::Rng rng = session_load_rng(config_, 0);

  net::EventLoop loop;
  loop.set_event_limit(kEventLimit);
  // Outer fabric: the Internet, with per-origin delays.
  net::Fabric outer{loop};
  corpus::LiveWeb live{outer, site_, session_live_web(config_, web_),
                       rng.fork("live-web")};
  // Inner fabric: the namespace the application runs in; shells may nest.
  net::Fabric inner{loop};
  apply_shells(inner, config_.shells, config_.host, rng);

  record::RecordStore store;
  record::RecordingProxy proxy{inner, outer, store};

  // The application's resolver: forwards the live web's bindings from
  // inside the namespace (the host stub resolver mahimahi exposes).
  const net::Ipv4 dns_ip = inner.allocate_server_ip();
  net::DnsServer dns_server{inner, net::Address{dns_ip, net::kDnsPort},
                            live.dns_table()};

  web::Browser browser{inner, dns_server.address(), session_browser_config(config_),
                       rng.fork("browser")};
  auto result = run_load(loop, browser, site_.primary_url());
  if (result_out != nullptr) {
    *result_out = std::move(result);
  }
  return store;
}

// --- LiveWebSession -------------------------------------------------------

LiveWebSession::LiveWebSession(const corpus::GeneratedSite& site,
                               corpus::LiveWebConfig web, SessionConfig config)
    : site_{site}, web_{web}, config_{std::move(config)} {}

LiveWebSession::LoadOutcome LiveWebSession::load_outcome(int load_index) const {
  util::Rng rng = session_load_rng(config_, load_index);
  net::EventLoop loop;
  loop.set_event_limit(kEventLimit);
  net::Fabric fabric{loop};
  corpus::LiveWeb live{fabric, site_, session_live_web(config_, web_),
                       rng.fork("live-web")};
  LoadOutcome outcome;
  outcome.primary_rtt = live.primary_rtt();
  apply_shells(fabric, config_.shells, config_.host, rng);
  web::Browser browser{fabric, live.dns_server_address(),
                       session_browser_config(config_), rng.fork("browser")};
  outcome.result = run_load(loop, browser, site_.primary_url());
  return outcome;
}

web::PageLoadResult LiveWebSession::load_once(int load_index) {
  LoadOutcome outcome = load_outcome(load_index);
  last_rtt_ = outcome.primary_rtt;
  return std::move(outcome.result);
}

util::Samples LiveWebSession::measure(int count, ParallelRunner& runner) {
  const auto outcomes =
      runner.map(count, [this](int i) { return load_outcome(i); });
  util::Samples samples;
  for (const LoadOutcome& outcome : outcomes) {
    samples.add(to_ms(outcome.result.page_load_time));
  }
  if (!outcomes.empty()) {
    last_rtt_ = outcomes.back().primary_rtt;  // as after a sequential run
  }
  return samples;
}

util::Samples LiveWebSession::measure(int count) {
  return measure(count, ParallelRunner::shared());
}

}  // namespace mahimahi::core
