#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/host_profile.hpp"
#include "core/parallel_runner.hpp"
#include "core/shells.hpp"
#include "corpus/live_web.hpp"
#include "fault/fault.hpp"
#include "record/store.hpp"
#include "replay/origin_servers.hpp"
#include "util/statistics.hpp"
#include "web/browser.hpp"

namespace mahimahi::core {

/// Common knobs for a measurement session.
struct SessionConfig {
  std::vector<ShellSpec> shells;  // outermost first; empty = bare shell
  HostProfile host{};
  web::BrowserConfig browser{};
  std::uint64_t seed{1};
  /// Congestion-controller registry name applied to *both* ends of every
  /// flow in the session (browser connections and replayed origin
  /// servers). Empty = leave whatever `browser.tcp` / server options say,
  /// i.e. the Reno default. Asymmetric setups configure the sides
  /// directly instead of using this knob.
  std::string congestion_control{};
  /// Mixed-fleet variant of the knob above (the ROADMAP's per-flow CC
  /// heterogeneity): when non-empty, browser connection k runs
  /// cc_fleet[k % size()] (per-connection-index, opening order) and
  /// replayed origin server j serves under cc_fleet[j % size()]
  /// (per-origin, spawn order) — e.g. {"bbr", "cubic"} alternates
  /// controllers across a shared bottleneck. Takes precedence over
  /// `congestion_control`.
  std::vector<std::string> cc_fleet;
  /// Deterministic fault injection for this session (default: none). Each
  /// load binds the spec to a plan seed forked from its load RNG, drives
  /// the link/origin/DNS injectors with it, and maps the spec's client
  /// policy onto the browser's resilience machinery.
  fault::FaultSpec fault{};
  /// Observability: when set, every layer of the load's world — link
  /// queues, TCP flows, DNS, fault injectors, browser waterfall — records
  /// into this tracer, tagged with `trace_session`. One Tracer per
  /// deterministic simulation (the caller injects a fresh one per task);
  /// null = tracing off, a pointer test on every hot path.
  obs::Tracer* tracer{nullptr};
  std::int32_t trace_session{0};
  /// Per-load virtual-time watchdog (0 = off): a load whose simulation
  /// passes this much virtual time without finishing is aborted with a
  /// typed WatchdogError instead of running the event loop dry — the
  /// experiment engine turns that into a failed report row, so one
  /// runaway cell can never hang a matrix. For a fleet cell the deadline
  /// covers the whole shared-world mux (one indivisible simulation).
  Microseconds deadline{0};
};

/// A load (or fleet) exceeded its virtual-time deadline. Typed so the
/// experiment runner can tell a deterministic runaway simulation from a
/// transient worker failure: watchdog trips are never retried.
class WatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Browser config for one session: host-scaled compute, plus the
/// session-level congestion-control override (single controller or mixed
/// fleet) when set.
web::BrowserConfig session_browser_config(const SessionConfig& config);

/// Replay origin-server options for one session: `base` with the
/// session-level congestion-control override applied to the server side
/// of every flow.
replay::OriginServerSet::Options session_origin_options(
    const SessionConfig& config, const replay::OriginServerSet::Options& base);

/// Root random stream for one load of a session: (seed, machine salt,
/// load index) — fixed before any simulation work, per the ParallelRunner
/// determinism contract.
util::Rng session_load_rng(const SessionConfig& config, int load_index);

/// One replay session's fully-materialized namespace stack — origin
/// server farm, DNS, nested shells and browser — on a *caller-owned*
/// event loop. ReplaySession::load_once builds one per load on a private
/// loop; fleet::SessionMux multiplexes many of them onto a shared loop
/// (each world is its own connection namespace: worlds share nothing but
/// the loop, so sessions cannot alias each other's sockets or timers).
class ReplayWorld {
 public:
  ReplayWorld(net::EventLoop& loop, const record::RecordStore& store,
              const SessionConfig& config,
              const replay::OriginServerSet::Options& options, int load_index);
  ~ReplayWorld();

  ReplayWorld(const ReplayWorld&) = delete;
  ReplayWorld& operator=(const ReplayWorld&) = delete;

  [[nodiscard]] web::Browser& browser() { return *browser_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const replay::OriginServerSet& servers() const {
    return *servers_;
  }

 private:
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<replay::OriginServerSet> servers_;
  std::unique_ptr<net::DnsServer> dns_server_;
  std::unique_ptr<web::Browser> browser_;
};

/// ReplayShell driver: loads a page from a recorded site, optionally under
/// nested delay/link/loss shells, and reports page load times. Every load
/// runs in a fresh, fully isolated namespace stack (fresh event loop,
/// fabric, servers, browser) — mirroring the paper's methodology of
/// repeated cold loads, and guaranteeing loads cannot contaminate each
/// other.
class ReplaySession {
 public:
  /// Server-farm knobs (single-server ablation, Apache prefork pool, CGI
  /// think time) are OriginServerSet options, passed through verbatim.
  using Options = replay::OriginServerSet::Options;

  ReplaySession(const record::RecordStore& store, SessionConfig config,
                Options options);
  ReplaySession(const record::RecordStore& store, SessionConfig config)
      : ReplaySession(store, std::move(config), Options{}) {}

  /// One measured load of `url` (load_index seeds the jitter stream).
  /// Const — every load builds its own event loop / fabric / servers, so
  /// concurrent loads of the same session never share mutable state.
  web::PageLoadResult load_once(const std::string& url, int load_index = 0) const;

  /// `count` loads fanned across `runner`'s threads; returns PLT samples
  /// in milliseconds, merged in load-index order. Per-load randomness is
  /// derived from (seed, load_index) alone, so the samples are
  /// bit-identical for any thread count.
  util::Samples measure(const std::string& url, int count,
                        ParallelRunner& runner) const;

  /// As above, fanned across the process-wide ParallelRunner::shared()
  /// pool (lazily spawned on first use, lives until process exit).
  util::Samples measure(const std::string& url, int count) const;

 private:
  const record::RecordStore& store_;
  SessionConfig config_;
  Options options_;
};

/// RecordShell driver: runs a browser against the (simulated) live web
/// through the recording proxy and returns the recorded site.
class RecordSession {
 public:
  RecordSession(const corpus::GeneratedSite& site, corpus::LiveWebConfig web,
                SessionConfig config);

  /// Load the site's primary URL once through the proxy; returns the
  /// store. `result_out`, if given, receives the load's metrics.
  record::RecordStore record(web::PageLoadResult* result_out = nullptr);

 private:
  const corpus::GeneratedSite& site_;
  corpus::LiveWebConfig web_;
  SessionConfig config_;
};

/// "Actual web" driver (Figure 3): the browser loads the site directly
/// from the simulated live Internet, no recording, no shells. Each load
/// re-draws network weather.
class LiveWebSession {
 public:
  /// One load's metrics plus the network weather it observed — returned
  /// by value so parallel loads never race on session state.
  struct LoadOutcome {
    web::PageLoadResult result{};
    Microseconds primary_rtt{0};
  };

  LiveWebSession(const corpus::GeneratedSite& site, corpus::LiveWebConfig web,
                 SessionConfig config);

  [[nodiscard]] LoadOutcome load_outcome(int load_index) const;

  web::PageLoadResult load_once(int load_index = 0);
  util::Samples measure(int count, ParallelRunner& runner);
  /// Uses the process-wide ParallelRunner::shared() pool.
  util::Samples measure(int count);

  /// Primary-origin RTT of the most recent load (what the paper feeds to
  /// DelayShell for the fair replay comparison).
  [[nodiscard]] Microseconds last_primary_rtt() const { return last_rtt_; }

 private:
  const corpus::GeneratedSite& site_;
  corpus::LiveWebConfig web_;
  SessionConfig config_;
  Microseconds last_rtt_{0};
};

/// Convenience: browser config scaled by a host profile's compute speed.
web::BrowserConfig scaled_browser(const web::BrowserConfig& base,
                                  const HostProfile& host);

}  // namespace mahimahi::core
