#include "core/shells.hpp"

#include "trace/synthesis.hpp"

namespace mahimahi::core {
namespace {
using namespace mahimahi::literals;
}

LinkShellSpec LinkShellSpec::constant_rate_mbps(double up_mbps, double down_mbps) {
  LinkShellSpec spec;
  spec.uplink = std::make_shared<const trace::PacketTrace>(
      trace::constant_rate(up_mbps * 1e6, 2_s));
  spec.downlink = std::make_shared<const trace::PacketTrace>(
      trace::constant_rate(down_mbps * 1e6, 2_s));
  return spec;
}

void apply_shells(net::Fabric& fabric, const std::vector<ShellSpec>& shells,
                  const HostProfile& host, util::Rng& rng,
                  obs::Tracer* tracer, std::int32_t trace_session) {
  // Innermost shell (last in command-line order) is nearest the app, so it
  // must be pushed first (chain index 0 is the application side).
  for (auto it = shells.rbegin(); it != shells.rend(); ++it) {
    Microseconds packet_cost = 0;
    if (std::holds_alternative<DelayShellSpec>(*it)) {
      packet_cost = host.delay_shell_packet_cost;
    } else if (std::holds_alternative<LinkShellSpec>(*it)) {
      packet_cost = host.link_shell_packet_cost;
    } else if (std::holds_alternative<LossShellSpec>(*it)) {
      packet_cost = host.loss_shell_packet_cost;
    }
    // Crossing a shell boundary costs one TUN hop on the host.
    if (packet_cost > 0) {
      fabric.chain().push_back(std::make_unique<net::ProcessingDelayBox>(
          fabric.loop(), packet_cost));
    }
    if (const auto* delay = std::get_if<DelayShellSpec>(&*it)) {
      fabric.chain().push_back(
          std::make_unique<net::DelayBox>(fabric.loop(), delay->one_way));
    } else if (const auto* link = std::get_if<LinkShellSpec>(&*it)) {
      auto trace_link = std::make_unique<net::TraceLink>(
          fabric.loop(), *link->uplink, *link->downlink, link->uplink_queue,
          link->downlink_queue);
      if (tracer != nullptr) {
        // Name by command-line position so nested shells stay tellable
        // apart in the exported trace.
        const auto shell_index = shells.rend() - it - 1;
        trace_link->set_tracer(tracer, trace_session,
                               "shell" + std::to_string(shell_index));
      }
      fabric.chain().push_back(std::move(trace_link));
    } else if (const auto* loss = std::get_if<LossShellSpec>(&*it)) {
      fabric.chain().push_back(std::make_unique<net::LossBox>(
          rng.fork("loss-shell"), loss->uplink_loss, loss->downlink_loss));
    }
  }
}

}  // namespace mahimahi::core
