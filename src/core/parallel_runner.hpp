#pragma once

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/statistics.hpp"

namespace mahimahi::core {

/// Fixed thread pool that fans N independent, index-addressed measurement
/// tasks across threads and merges their results in index order.
///
/// Determinism contract (the reason this exists — Table 1 depends on it):
///   - every task receives only its load index; any randomness it needs
///     must be derived from (experiment seed, load index) *before* any
///     simulation work, never from shared generator state or from wall
///     clock / scheduling order;
///   - results are merged strictly by index, so the output is
///     bit-identical for any thread count, including 1.
///
/// Error containment: an exception inside one task never disturbs sibling
/// tasks — every task runs to completion (or its own failure), and only
/// then is the lowest-index exception rethrown to the caller.
///
/// A runner may be shared across many map() calls; map() itself may be
/// called from several threads concurrently. Tasks must not call back
/// into the same runner (no nested fan-out), or they may deadlock waiting
/// for the worker slot they themselves occupy.
class ParallelRunner {
 public:
  /// `threads` <= 0 selects default_thread_count().
  explicit ParallelRunner(int threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int thread_count() const { return thread_count_; }

  /// MAHI_THREADS from the environment if set (>0), else the hardware
  /// concurrency, else 1.
  static int default_thread_count();

  /// Lazily constructed process-wide pool of default_thread_count()
  /// threads — the shared default for sessions and bench drivers, so a
  /// process never ends up with several competing full-size pools.
  static ParallelRunner& shared();

  /// Run `fn(i)` for every i in [0, count); returns the results in index
  /// order regardless of completion order. If any task threw, waits for
  /// all tasks, then rethrows the lowest-index exception.
  template <typename Fn>
  auto map(int count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, int>> {
    using Result = std::invoke_result_t<Fn&, int>;
    static_assert(std::is_default_constructible_v<Result>,
                  "map() slots are pre-allocated in index order");
    static_assert(!std::is_same_v<Result, bool>,
                  "std::vector<bool> packs elements into shared words, so "
                  "concurrent writes to distinct indices race — return "
                  "char/int instead");
    std::vector<Result> results(static_cast<std::size_t>(count < 0 ? 0 : count));
    run_indexed(count, [&results, &fn](int index) {
      results[static_cast<std::size_t>(index)] = fn(index);
    });
    return results;
  }

  /// map() for tasks producing one sample each: the per-index doubles are
  /// merged into a Samples batch in load-index order.
  template <typename Fn>
  util::Samples map_samples(int count, Fn&& fn) {
    return util::Samples{map(count, std::forward<Fn>(fn))};
  }

  /// Type-erased core of map(): runs task(i) for i in [0, count) on the
  /// pool, blocks until all complete, rethrows the lowest-index failure.
  void run_indexed(int count, const std::function<void(int)>& task);

 private:
  void worker_loop();

  int thread_count_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_{false};
};

}  // namespace mahimahi::core
