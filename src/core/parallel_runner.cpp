#include "core/parallel_runner.hpp"

#include <algorithm>

namespace mahimahi::core {

int ParallelRunner::default_thread_count() {
  if (const char* env = std::getenv("MAHI_THREADS"); env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

ParallelRunner& ParallelRunner::shared() {
  static ParallelRunner runner;
  return runner;
}

ParallelRunner::ParallelRunner(int threads)
    : thread_count_{threads > 0 ? threads : default_thread_count()} {
  workers_.reserve(static_cast<std::size_t>(thread_count_));
  for (int i = 0; i < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ParallelRunner::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ParallelRunner::run_indexed(int count, const std::function<void(int)>& task) {
  if (count <= 0) {
    return;
  }

  // Per-batch completion state, shared with the enqueued jobs. Exceptions
  // are captured per index so the *lowest* failing index is rethrown —
  // a deterministic choice, independent of which thread failed first.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    int remaining;
    std::vector<std::exception_ptr> errors;
  };
  Batch batch;
  batch.remaining = count;
  batch.errors.assign(static_cast<std::size_t>(count), nullptr);

  {
    const std::lock_guard<std::mutex> lock{mutex_};
    for (int i = 0; i < count; ++i) {
      queue_.emplace_back([&batch, &task, i] {
        try {
          task(i);
        } catch (...) {
          batch.errors[static_cast<std::size_t>(i)] = std::current_exception();
        }
        const std::lock_guard<std::mutex> batch_lock{batch.mutex};
        if (--batch.remaining == 0) {
          batch.done_cv.notify_all();
        }
      });
    }
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock{batch.mutex};
  batch.done_cv.wait(lock, [&batch] { return batch.remaining == 0; });

  const auto first_error = std::find_if(
      batch.errors.begin(), batch.errors.end(),
      [](const std::exception_ptr& e) { return e != nullptr; });
  if (first_error != batch.errors.end()) {
    std::rethrow_exception(*first_error);
  }
}

}  // namespace mahimahi::core
