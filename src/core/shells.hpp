#pragma once

#include <memory>
#include <variant>
#include <vector>

#include "core/host_profile.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "obs/trace.hpp"
#include "trace/trace.hpp"
#include "util/random.hpp"

namespace mahimahi::core {

/// mm-delay: fixed per-packet one-way delay in each direction.
struct DelayShellSpec {
  Microseconds one_way{0};
};

/// mm-link: trace-driven link, one packet-delivery trace per direction,
/// optional queue disciplines (droptail/drophead/codel/infinite).
struct LinkShellSpec {
  std::shared_ptr<const trace::PacketTrace> uplink;
  std::shared_ptr<const trace::PacketTrace> downlink;
  net::QueueSpec uplink_queue{};
  net::QueueSpec downlink_queue{};

  static LinkShellSpec constant_rate_mbps(double up_mbps, double down_mbps);
};

/// mm-loss: i.i.d. packet loss per direction.
struct LossShellSpec {
  double uplink_loss{0.0};
  double downlink_loss{0.0};
};

using ShellSpec = std::variant<DelayShellSpec, LinkShellSpec, LossShellSpec>;

/// Instantiate a stack of shells on a fabric's chain.
///
/// `shells` is listed in command-line order — `{mm-delay 30, mm-link u d}`
/// means `mm-delay 30 mm-link u d <app>` — so the *last* entry is the
/// innermost shell, nearest the application, exactly like nesting the real
/// tools. Each shell contributes its functional element plus a per-packet
/// forwarding cost from the host profile (the Figure 2 overhead).
///
/// When `tracer` is set, every link shell records queue events into it,
/// labeled "shell<i>/up|down" with i the shell's command-line index.
void apply_shells(net::Fabric& fabric, const std::vector<ShellSpec>& shells,
                  const HostProfile& host, util::Rng& rng,
                  obs::Tracer* tracer = nullptr,
                  std::int32_t trace_session = 0);

}  // namespace mahimahi::core
