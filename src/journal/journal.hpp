#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mahimahi::journal {

/// Crash-safe run journal: an append-only log of length-and-checksum
/// framed records plus a manifest that pins what the records mean.
///
/// Layout of a journal directory:
///   MANIFEST     — line-keyval provenance (atomic temp+rename+fsync):
///                  schema, experiment identity, matrix/spec/toolchain
///                  hashes. Resume refuses a journal whose manifest does
///                  not match the run being resumed.
///   journal.bin  — the record log. Each record is fsync'd as it is
///                  appended, so a SIGKILL loses at most the record being
///                  written — and that torn tail is detected (short frame
///                  or checksum mismatch) and discarded on reopen.
///   events.csv   — runner-level observability (mahimahi-obs-trace-v1):
///                  one row per task telling whether it was journaled,
///                  replayed, cancelled, retried or watchdog-killed.
///                  Written by the experiment runner, readable with
///                  mm_trace_dump.
///
/// Record framing (little-endian):
///   u32 magic 'MMJ1' | u32 payload_len | u32 crc32(payload) | payload
///
/// The journal layer is payload-agnostic — the experiment layer encodes
/// task results (see experiment/checkpoint.hpp); fleet cells journal
/// their per-session outcomes inside those payloads.

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the frame checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Identity of the binary for manifest fingerprinting: compiler version
/// plus ABI-relevant constants. Two builds that could deserialize each
/// other's records share a fingerprint; a journal written by a different
/// toolchain is refused on resume.
[[nodiscard]] std::string toolchain_fingerprint();

/// The journal's provenance, as ordered key/value lines. Values must be
/// single-line; keys are unique.
class Manifest {
 public:
  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::string get(const std::string& key) const;  // "" absent

  /// First key (in this manifest's insertion order) whose value differs
  /// from `other`'s, or "" when every key matches both ways. The caller
  /// turns a mismatch into an actionable error naming the field.
  [[nodiscard]] std::string first_mismatch(const Manifest& other) const;

  [[nodiscard]] std::string serialize() const;
  static Manifest parse(std::string_view text);

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Result of scanning a journal file.
struct ReadResult {
  std::vector<std::string> records;  // valid payloads, append order
  std::uint64_t valid_bytes{0};      // file offset after the last good frame
  bool torn_tail{false};             // trailing bytes discarded
};

/// Scan `path` front to back, validating each frame's magic, length and
/// CRC. Stops at the first invalid or incomplete frame: everything before
/// it is returned, everything from it on is the torn tail a crash left
/// behind. A missing file reads as an empty journal.
[[nodiscard]] ReadResult read_journal_file(const std::string& path);

/// Append-side of the journal. Thread-safe: the experiment runner's pool
/// workers append completed tasks concurrently. One process per journal
/// directory — appends from two processes would interleave frames.
class Writer {
 public:
  /// Open `dir`/journal.bin for appending. `truncate_to` is the valid
  /// prefix length from read_journal_file — any torn tail beyond it is
  /// cut off before the first new append, so the file never contains a
  /// mid-stream hole. Throws std::runtime_error on I/O failure.
  Writer(const std::string& dir, std::uint64_t truncate_to);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Frame, append and fsync one record. Returns false (after a warning
  /// on stderr) on I/O failure — the run continues; it just loses crash
  /// durability for this record.
  bool append(std::string_view payload);

  [[nodiscard]] std::size_t records_appended() const { return appended_; }

  static std::string journal_path(const std::string& dir);
  static std::string manifest_path(const std::string& dir);

 private:
  std::mutex mutex_;
  int fd_{-1};
  std::string path_;
  std::size_t appended_{0};
};

/// Write `manifest` atomically (temp + fsync + rename) to dir/MANIFEST.
/// Returns false after warning on failure.
bool write_manifest(const std::string& dir, const Manifest& manifest);

/// Read dir/MANIFEST; throws std::runtime_error when missing/unreadable
/// (a journal without a manifest cannot be trusted for resume).
[[nodiscard]] Manifest read_manifest(const std::string& dir);

// --- payload codec helpers -------------------------------------------------
// Little-endian, length-prefixed primitives shared by record encoders
// (experiment/checkpoint uses these). Doubles round-trip bit-exactly via
// their IEEE-754 bit pattern — the byte-identity contract depends on it.

void put_u8(std::string& out, std::uint8_t value);
void put_u32(std::string& out, std::uint32_t value);
void put_u64(std::string& out, std::uint64_t value);
void put_i64(std::string& out, std::int64_t value);
void put_double(std::string& out, double value);
void put_string(std::string& out, std::string_view value);

/// Cursor over an encoded payload. get_* throw std::runtime_error on
/// underrun — a decode failure means the record is corrupt, and the
/// caller treats it like a torn record.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_{bytes} {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_double();
  std::string get_string();

  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  void need(std::size_t count) const;

  std::string_view bytes_;
  std::size_t offset_{0};
};

}  // namespace mahimahi::journal
