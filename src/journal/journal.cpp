#include "journal/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"

namespace mahimahi::journal {
namespace {

constexpr std::uint32_t kFrameMagic = 0x314A4D4DU;  // "MMJ1" little-endian
constexpr std::size_t kFrameHeader = 12;            // magic + len + crc

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1U) != 0 ? 0xEDB88320U : 0U);
    }
    table[i] = value;
  }
  return table;
}

std::uint32_t read_le_u32(const char* bytes) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFU];
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string toolchain_fingerprint() {
#if defined(__clang__)
  const char* compiler = "clang ";
#elif defined(__GNUC__)
  const char* compiler = "gcc ";
#else
  const char* compiler = "cxx ";
#endif
  return std::string{compiler} + __VERSION__ + " ptr" +
         std::to_string(sizeof(void*) * 8);
}

// --- Manifest --------------------------------------------------------------

void Manifest::set(const std::string& key, const std::string& value) {
  for (auto& [existing_key, existing_value] : entries_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

std::string Manifest::get(const std::string& key) const {
  for (const auto& [existing_key, value] : entries_) {
    if (existing_key == key) {
      return value;
    }
  }
  return "";
}

std::string Manifest::first_mismatch(const Manifest& other) const {
  for (const auto& [key, value] : entries_) {
    if (other.get(key) != value) {
      return key;
    }
  }
  for (const auto& [key, value] : other.entries_) {
    if (get(key) != value) {
      return key;
    }
  }
  return "";
}

std::string Manifest::serialize() const {
  std::string out = "mahimahi-journal-v1\n";
  for (const auto& [key, value] : entries_) {
    out += key + " " + value + "\n";
  }
  return out;
}

Manifest Manifest::parse(std::string_view text) {
  Manifest manifest;
  bool first = true;
  for (const std::string_view raw : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw);
    if (line.empty()) {
      continue;
    }
    if (first) {
      if (line != "mahimahi-journal-v1") {
        throw std::runtime_error{
            "journal manifest: unknown schema line '" + std::string{line} +
            "' (expected mahimahi-journal-v1)"};
      }
      first = false;
      continue;
    }
    const auto [key, value] = util::split_once(line, ' ');
    manifest.set(std::string{key}, std::string{util::trim(value)});
  }
  if (first) {
    throw std::runtime_error{"journal manifest: empty file"};
  }
  return manifest;
}

// --- reading ---------------------------------------------------------------

ReadResult read_journal_file(const std::string& path) {
  ReadResult result;
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return result;  // no journal yet = empty journal
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  std::size_t offset = 0;
  while (offset + kFrameHeader <= bytes.size()) {
    const std::uint32_t magic = read_le_u32(bytes.data() + offset);
    const std::uint32_t length = read_le_u32(bytes.data() + offset + 4);
    const std::uint32_t expected_crc = read_le_u32(bytes.data() + offset + 8);
    if (magic != kFrameMagic ||
        offset + kFrameHeader + length > bytes.size()) {
      break;  // torn or foreign tail
    }
    const std::string_view payload{bytes.data() + offset + kFrameHeader,
                                   length};
    if (crc32(payload) != expected_crc) {
      break;  // the record being written when the process died
    }
    result.records.emplace_back(payload);
    offset += kFrameHeader + length;
  }
  result.valid_bytes = offset;
  result.torn_tail = offset != bytes.size();
  return result;
}

// --- Writer ----------------------------------------------------------------

std::string Writer::journal_path(const std::string& dir) {
  return dir + "/journal.bin";
}

std::string Writer::manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

Writer::Writer(const std::string& dir, std::uint64_t truncate_to)
    : path_{journal_path(dir)} {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error{"journal: cannot open " + path_ + ": " +
                             std::strerror(errno)};
  }
  // Cut off any torn tail before the first new frame: the file must be a
  // clean sequence of whole frames at all times.
  if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error{"journal: cannot truncate " + path_ + ": " +
                             error};
  }
}

Writer::~Writer() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool Writer::append(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32(frame, kFrameMagic);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.append(payload);

  const std::lock_guard<std::mutex> lock{mutex_};
  const char* data = frame.data();
  std::size_t remaining = frame.size();
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "[journal] append to %s failed: %s\n",
                   path_.c_str(), std::strerror(errno));
      return false;
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  // One fsync per record: a SIGKILL after this point cannot lose the
  // record; one during the write above loses only this record, and the
  // framing makes that torn tail detectable.
  if (::fsync(fd_) != 0) {
    std::fprintf(stderr, "[journal] fsync of %s failed: %s\n", path_.c_str(),
                 std::strerror(errno));
    return false;
  }
  ++appended_;
  return true;
}

bool write_manifest(const std::string& dir, const Manifest& manifest) {
  return util::atomic_write_file(Writer::manifest_path(dir),
                                 manifest.serialize());
}

Manifest read_manifest(const std::string& dir) {
  const std::string path = Writer::manifest_path(dir);
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{
        "journal: cannot read manifest " + path +
        " (not a journal directory, or the first run never started?)"};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return Manifest::parse(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error{path + ": " + e.what()};
  }
}

// --- payload codec ---------------------------------------------------------

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFU));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFU));
  }
}

void put_i64(std::string& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

void put_double(std::string& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, std::string_view value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

void Cursor::need(std::size_t count) const {
  if (offset_ + count > bytes_.size()) {
    throw std::runtime_error{"journal record truncated mid-field"};
  }
}

std::uint8_t Cursor::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[offset_++]);
}

std::uint32_t Cursor::get_u32() {
  need(4);
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[offset_++]))
             << shift;
  }
  return value;
}

std::uint64_t Cursor::get_u64() {
  need(8);
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[offset_++]))
             << shift;
  }
  return value;
}

std::int64_t Cursor::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double Cursor::get_double() {
  const std::uint64_t bits = get_u64();
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::string Cursor::get_string() {
  const std::uint32_t length = get_u32();
  need(length);
  std::string value{bytes_.substr(offset_, length)};
  offset_ += length;
  return value;
}

}  // namespace mahimahi::journal
