#pragma once

#include <vector>

#include "corpus/site_generator.hpp"
#include "util/random.hpp"

namespace mahimahi::corpus {

/// Servers-per-website distribution calibrated to the paper's measurement
/// of the Alexa U.S. Top 500 (§4): median 20, 95th percentile 51, and
/// exactly 9 single-server pages — i.e. ~98% of pages are multi-origin.
/// Deterministic given the rng.
std::vector<int> alexa_server_counts(util::Rng& rng, int site_count = 500);

/// Spec for corpus site `index` with the given server count: object count
/// and weight correlate with origin count the way real pages do.
SiteSpec alexa_site_spec(int index, int server_count, util::Rng& rng);

}  // namespace mahimahi::corpus
