#pragma once

#include <map>
#include <memory>
#include <vector>

#include "corpus/site_generator.hpp"
#include "net/dns.hpp"
#include "net/http_session.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace mahimahi::corpus {

/// How the simulated Internet places a site's origins relative to the
/// client. The crucial property for Figure 3: origins have heterogeneous
/// RTTs, and CDNs are often *closer* than the primary origin — which is
/// why replay (which pins every origin at the primary's min RTT) comes out
/// slightly slower than the live web.
struct LiveWebConfig {
  /// Primary origin one-way delay (e.g. www.nytimes.com from Boston).
  Microseconds primary_one_way{15'000};  // 30 ms RTT
  /// Third-party origins draw a lognormal one-way delay with this median;
  /// many land below the primary (CDN edges).
  Microseconds other_median_one_way{5'000};
  double other_sigma{0.75};
  Microseconds min_one_way{1'500};
  Microseconds max_one_way{60'000};
  /// Per-request server think time: mean of an exponential.
  Microseconds processing_mean{2'500};
  /// Load-to-load variability of the above (cross traffic, CDN churn):
  /// multiplies every delay, drawn once per LiveWeb instantiation.
  double variability_sigma{0.18};
  /// Transport knobs for every live-web origin's accepted connections
  /// (notably the congestion controller shaping response bytes).
  /// core::SessionConfig::congestion_control overrides the name here.
  net::TcpConnection::Config tcp{};
};

/// The "actual web" substrate: origin servers for one generated site,
/// each behind its own propagation delay, plus a DNS server that resolves
/// the site's hostnames to their "real" addresses. Fresh instantiations
/// (one per measured page load) re-draw delay variability, modelling the
/// churn a real client sees across repeated loads.
class LiveWeb {
 public:
  LiveWeb(net::Fabric& fabric, const GeneratedSite& site, LiveWebConfig config,
          util::Rng rng);

  /// DNS server address to hand to clients in this namespace.
  [[nodiscard]] net::Address dns_server_address() const {
    return dns_server_->address();
  }
  [[nodiscard]] const net::DnsTable& dns_table() const { return dns_; }

  /// The primary origin's round-trip time in this instantiation — what the
  /// paper measures with ping and feeds to DelayShell for Figure 3.
  [[nodiscard]] Microseconds primary_rtt() const { return 2 * primary_one_way_; }

  [[nodiscard]] std::size_t origin_count() const { return servers_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  net::DnsTable dns_;
  std::unique_ptr<net::DnsServer> dns_server_;
  std::vector<std::unique_ptr<net::HttpServer>> servers_;
  Microseconds primary_one_way_{0};
};

}  // namespace mahimahi::corpus
