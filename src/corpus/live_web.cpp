#include "corpus/live_web.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace mahimahi::corpus {

LiveWeb::LiveWeb(net::Fabric& fabric, const GeneratedSite& site,
                 LiveWebConfig config, util::Rng rng) {
  // One multiplicative draw models this load's overall network weather.
  const double weather = config.variability_sigma > 0
                             ? rng.lognormal(0.0, config.variability_sigma)
                             : 1.0;

  // Group the site's objects by hostname; one origin server per host.
  std::unordered_map<std::string, std::vector<const GeneratedObject*>> by_host;
  for (const auto& object : site.objects) {
    by_host[object.url.host].push_back(&object);
  }

  for (std::size_t h = 0; h < site.hostnames.size(); ++h) {
    const std::string& host = site.hostnames[h];
    const net::Ipv4 ip = fabric.allocate_server_ip();
    const net::Address address{ip, 80};
    dns_.add(host, ip);

    // Propagation: the primary origin gets its configured delay; others
    // draw from the lognormal (CDNs often closer than the primary).
    Microseconds one_way;
    if (h == 0) {
      one_way = static_cast<Microseconds>(
          static_cast<double>(config.primary_one_way) * weather);
      primary_one_way_ = one_way;
    } else {
      const double draw = static_cast<double>(config.other_median_one_way) *
                          rng.lognormal(0.0, config.other_sigma) * weather;
      one_way = static_cast<Microseconds>(draw);
    }
    one_way = std::clamp(one_way, config.min_one_way, config.max_one_way);
    fabric.set_server_delay(ip, one_way);

    // Build this origin's content table (exact target match).
    auto content = std::make_shared<
        std::unordered_map<std::string, const GeneratedObject*>>();
    if (const auto it = by_host.find(host); it != by_host.end()) {
      for (const auto* object : it->second) {
        content->emplace(object->url.request_target(), object);
      }
    }
    const Microseconds think = config.processing_mean > 0
                                   ? static_cast<Microseconds>(
                                         rng.exponential(1.0 / static_cast<double>(
                                                                   config.processing_mean)))
                                   : 0;
    servers_.push_back(std::make_unique<net::HttpServer>(
        fabric, address,
        [content](const http::Request& request) {
          const auto it = content->find(request.target);
          if (it == content->end()) {
            return http::make_not_found(request.target);
          }
          http::Response response;
          response.status = 200;
          response.reason = "OK";
          response.headers.add(
              "Content-Type",
              std::string{http::content_type_for_kind(it->second->kind)});
          response.headers.add("Server", "origin/1.0");
          response.body = it->second->body;
          http::finalize_content_length(response);
          return response;
        },
        think, config.tcp));
  }

  // The DNS server lives near the client's resolver (low-ish delay).
  const net::Ipv4 dns_ip = fabric.allocate_server_ip();
  fabric.set_server_delay(dns_ip, std::min<Microseconds>(
                                      primary_one_way_, 5'000));
  dns_server_ = std::make_unique<net::DnsServer>(
      fabric, net::Address{dns_ip, net::kDnsPort}, dns_);
}

std::uint64_t LiveWeb::requests_served() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->requests_served();
  }
  return total;
}

}  // namespace mahimahi::corpus
