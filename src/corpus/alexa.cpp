#include "corpus/alexa.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace mahimahi::corpus {

std::vector<int> alexa_server_counts(util::Rng& rng, int site_count) {
  MAHI_ASSERT(site_count >= 10);
  std::vector<int> counts;
  counts.reserve(static_cast<std::size_t>(site_count));

  // The paper reports 9 single-server pages out of 500; scale the count
  // proportionally for smaller corpora (at least one when site_count >= 56).
  const int singles = std::max(site_count >= 56 ? 1 : 0, site_count * 9 / 500);
  for (int i = 0; i < singles; ++i) {
    counts.push_back(1);
  }
  // Remaining sites: lognormal with median 20; sigma chosen so the 95th
  // percentile lands at 51 (ln(51/20)/1.645 ~= 0.569).
  const double mu = std::log(20.0);
  const double sigma = 0.569;
  while (counts.size() < static_cast<std::size_t>(site_count)) {
    const double draw = rng.lognormal(mu, sigma);
    const int servers = static_cast<int>(std::lround(std::clamp(draw, 2.0, 160.0)));
    counts.push_back(servers);
  }
  return counts;
}

SiteSpec alexa_site_spec(int index, int server_count, util::Rng& rng) {
  SiteSpec spec;
  std::ostringstream name;
  name << "site" << index;
  spec.name = name.str();
  spec.seed = 0xA1E7A000ULL + static_cast<std::uint64_t>(index) * 7919;
  spec.server_count = server_count;
  // Object count correlates with origin count (more origins, more widgets):
  // roughly 5 objects per origin with heavy-ish noise, clamped to sane
  // 2014-page bounds. Single-server pages stay small.
  const double base = 5.0 * server_count * rng.lognormal(0.0, 0.35);
  spec.object_count =
      static_cast<int>(std::clamp(base, 8.0, 420.0));
  if (server_count == 1) {
    spec.object_count = static_cast<int>(rng.uniform_int(4, 18));
  }
  // Page weight varies around 1.0.
  spec.size_scale = std::clamp(rng.lognormal(0.0, 0.30), 0.45, 2.6);
  return spec;
}

}  // namespace mahimahi::corpus
