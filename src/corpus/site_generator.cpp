#include "corpus/site_generator.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mahimahi::corpus {
namespace {

using http::ResourceKind;

/// Draw a resource kind for a non-root object (2014-web-like mix).
ResourceKind draw_kind(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.55) return ResourceKind::kImage;
  if (roll < 0.73) return ResourceKind::kJavaScript;
  if (roll < 0.83) return ResourceKind::kCss;
  if (roll < 0.88) return ResourceKind::kFont;
  if (roll < 0.96) return ResourceKind::kJson;
  return ResourceKind::kOther;
}

/// Median object sizes by kind (bytes), jittered lognormally. Calibrated
/// to 2014-era pages (HTTP Archive: median page ~1.2-1.7 MB, ~100 objects).
std::size_t draw_size(util::Rng& rng, ResourceKind kind, double scale) {
  double median = 3'000;
  double sigma = 0.8;
  switch (kind) {
    case ResourceKind::kHtml: median = 45'000; sigma = 0.45; break;
    case ResourceKind::kJavaScript: median = 13'000; sigma = 0.95; break;
    case ResourceKind::kCss: median = 9'000; sigma = 0.75; break;
    case ResourceKind::kImage: median = 7'500; sigma = 1.15; break;
    case ResourceKind::kFont: median = 18'000; sigma = 0.40; break;
    case ResourceKind::kJson: median = 1'600; sigma = 0.90; break;
    case ResourceKind::kOther: median = 2'500; sigma = 0.80; break;
  }
  const double size = median * scale * rng.lognormal(0.0, sigma);
  return static_cast<std::size_t>(std::clamp(size, 120.0, 2.0e6));
}

/// Filler text so bodies reach their target size (compressible, HTML-safe).
void pad_to(std::string& body, std::size_t target, std::string_view comment_open,
            std::string_view comment_close) {
  static constexpr std::string_view kFiller =
      "reproducible web measurement requires recording websites and "
      "replaying them under emulated network conditions ";
  if (body.size() + comment_open.size() + comment_close.size() >= target) {
    return;
  }
  body += comment_open;
  while (body.size() + comment_close.size() < target) {
    const std::size_t want = target - comment_close.size() - body.size();
    body.append(kFiller.substr(0, std::min(kFiller.size(), want)));
  }
  body += comment_close;
}

std::string reference_line(ResourceKind container, const std::string& url) {
  switch (container) {
    case ResourceKind::kHtml:
      break;  // handled below with kind-specific tags
    case ResourceKind::kCss:
      return ".c{background:url(" + url + ")}\n";
    case ResourceKind::kJavaScript:
      return "loadSubresource(\"" + url + "\");\n";
    default:
      MAHI_ASSERT_MSG(false, "container kind cannot reference");
  }
  return {};
}

std::string html_reference_line(ResourceKind target, const std::string& url) {
  switch (target) {
    case ResourceKind::kJavaScript:
      return "<script src=\"" + url + "\"></script>\n";
    case ResourceKind::kCss:
      return "<link rel=\"stylesheet\" href=\"" + url + "\">\n";
    default:
      return "<img src=\"" + url + "\">\n";
  }
}

}  // namespace

std::uint64_t GeneratedSite::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& object : objects) {
    total += object.body.size();
  }
  return total;
}

const GeneratedObject* GeneratedSite::find(const std::string& host,
                                           std::string_view target) const {
  for (const auto& object : objects) {
    if (object.url.host == host && object.url.request_target() == target) {
      return &object;
    }
  }
  return nullptr;
}

GeneratedSite generate_site(const SiteSpec& spec) {
  MAHI_ASSERT(spec.server_count >= 1);
  MAHI_ASSERT(spec.object_count >= 1);
  util::Rng rng{spec.seed};
  GeneratedSite site;
  site.spec = spec;

  // --- hostnames: primary + same-site subdomains + third parties --------
  site.hostnames.push_back("www." + spec.name + ".test");
  static constexpr const char* kSubdomainPrefixes[] = {"static", "img", "media",
                                                       "api", "assets"};
  static constexpr const char* kThirdParties[] = {
      "cdn%d.edgenet.test",   "ads%d.adnet.test",     "fonts%d.typekit.test",
      "metrics%d.track.test", "widgets%d.social.test"};
  for (int i = 1; i < spec.server_count; ++i) {
    if (rng.chance(0.4)) {
      std::ostringstream host;
      host << kSubdomainPrefixes[rng.uniform_int(0, 4)] << i << '.' << spec.name
           << ".test";
      site.hostnames.push_back(host.str());
    } else {
      char host[64];
      std::snprintf(host, sizeof host,
                    kThirdParties[static_cast<std::size_t>(rng.uniform_int(0, 4))],
                    i);
      site.hostnames.push_back(host);
    }
  }

  // --- objects: kinds, sizes, origins ------------------------------------
  struct Draft {
    ResourceKind kind;
    std::size_t host_index;
    std::size_t size;
    std::string path;
    std::vector<std::size_t> children;
  };
  std::vector<Draft> drafts(static_cast<std::size_t>(spec.object_count));
  drafts[0].kind = ResourceKind::kHtml;
  drafts[0].host_index = 0;
  drafts[0].size = draw_size(rng, ResourceKind::kHtml, spec.size_scale);
  drafts[0].path = "/";

  // Origin assignment: the primary origin serves ~30% of objects; the rest
  // spread over other hosts with zipf-ish weights. Every host serves at
  // least one object so the recorded server count equals spec.server_count.
  std::vector<double> weights(site.hostnames.size());
  weights[0] = 0.30 * static_cast<double>(site.hostnames.size());
  for (std::size_t h = 1; h < weights.size(); ++h) {
    weights[h] = 1.0 / static_cast<double>(h);
  }
  double weight_sum = 0;
  for (const double w : weights) {
    weight_sum += w;
  }

  for (std::size_t i = 1; i < drafts.size(); ++i) {
    auto& draft = drafts[i];
    draft.kind = draw_kind(rng);
    draft.size = draw_size(rng, draft.kind, spec.size_scale);
    if (i < site.hostnames.size()) {
      draft.host_index = i;  // guarantee coverage of every host
    } else {
      double roll = rng.uniform(0.0, weight_sum);
      std::size_t h = 0;
      while (h + 1 < weights.size() && roll > weights[h]) {
        roll -= weights[h];
        ++h;
      }
      draft.host_index = h;
    }
    std::ostringstream path;
    path << "/assets/obj" << i << http::extension_for_kind(draft.kind);
    if (rng.chance(0.25)) {
      path << "?v=" << rng.uniform_int(1, 9) << "&cb=" << rng.uniform_int(100, 999);
    }
    draft.path = path.str();
  }

  // --- dependency tree: who references whom ------------------------------
  // Containers are the root plus every CSS/JS object; each non-root object
  // hangs off one container, most off the root (depth <= 3 overall).
  std::vector<std::size_t> containers{0};
  for (std::size_t i = 1; i < drafts.size(); ++i) {
    if (drafts[i].kind == ResourceKind::kCss ||
        drafts[i].kind == ResourceKind::kJavaScript) {
      containers.push_back(i);
    }
  }
  for (std::size_t i = 1; i < drafts.size(); ++i) {
    std::size_t parent = 0;
    // ~72% of subresources referenced directly from the HTML; the rest
    // from an earlier CSS/JS container (never itself or a later one, which
    // keeps the graph acyclic).
    if (!containers.empty() && rng.chance(0.28)) {
      std::vector<std::size_t> eligible;
      for (const std::size_t c : containers) {
        if (c < i && drafts[c].kind != ResourceKind::kCss) {
          eligible.push_back(c);  // JS can load anything
        } else if (c < i && (drafts[i].kind == ResourceKind::kImage ||
                             drafts[i].kind == ResourceKind::kFont)) {
          eligible.push_back(c);  // CSS loads images/fonts
        }
      }
      if (!eligible.empty()) {
        parent = eligible[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1))];
      }
    }
    drafts[parent].children.push_back(i);
  }

  // --- materialize bodies -------------------------------------------------
  site.objects.resize(drafts.size());
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    const auto& draft = drafts[i];
    auto& object = site.objects[i];
    object.kind = draft.kind;
    object.url.scheme = "http";
    object.url.host = site.hostnames[draft.host_index];
    const auto [path_part, query_part] =
        util::split_once(std::string_view{draft.path}, '?');
    object.url.path = std::string{path_part};
    object.url.query = std::string{query_part};

    std::string& body = object.body;
    if (draft.kind == ResourceKind::kHtml) {
      body = "<html><head><title>" + spec.name + "</title></head><body>\n";
      for (const std::size_t child : draft.children) {
        const auto& target = drafts[child];
        const std::string url =
            "http://" + site.hostnames[target.host_index] + target.path;
        body += html_reference_line(target.kind, url);
      }
      pad_to(body, draft.size, "<!-- ", " -->");
      body += "</body></html>";
    } else if (draft.kind == ResourceKind::kCss ||
               draft.kind == ResourceKind::kJavaScript) {
      for (const std::size_t child : draft.children) {
        const auto& target = drafts[child];
        const std::string url =
            "http://" + site.hostnames[target.host_index] + target.path;
        body += reference_line(draft.kind, url);
      }
      pad_to(body, draft.size,
             draft.kind == ResourceKind::kCss ? "/* " : "// ",
             draft.kind == ResourceKind::kCss ? " */" : "\n");
    } else {
      MAHI_ASSERT(draft.children.empty());
      // Opaque payload (image/font/json bytes).
      body.assign(draft.size, '\0');
      for (std::size_t b = 0; b < body.size(); b += 7) {
        body[b] = static_cast<char>(rng.uniform_int(0, 255));
      }
    }
  }
  return site;
}

SiteSpec cnbc_like_spec() {
  // Heavy 2014 news front page: many origins, many objects, lots of script.
  SiteSpec spec;
  spec.name = "cnbc";
  spec.seed = 20140817;
  spec.server_count = 52;
  spec.object_count = 290;
  spec.size_scale = 0.80;
  return spec;
}

SiteSpec wikihow_like_spec() {
  SiteSpec spec;
  spec.name = "wikihow";
  spec.seed = 20140818;
  spec.server_count = 24;
  spec.object_count = 170;
  spec.size_scale = 0.98;
  return spec;
}

SiteSpec nytimes_like_spec() {
  SiteSpec spec;
  spec.name = "nytimes";
  spec.seed = 20140819;
  spec.server_count = 39;
  spec.object_count = 215;
  spec.size_scale = 0.75;
  return spec;
}

}  // namespace mahimahi::corpus
