#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/mime.hpp"
#include "http/url.hpp"
#include "util/random.hpp"

namespace mahimahi::corpus {

/// Parameters of one synthetic website.
struct SiteSpec {
  std::string name;        // "site042" -> primary host www.site042.test
  std::uint64_t seed{1};   // content is a pure function of the spec
  int server_count{20};    // distinct origins (the paper's key statistic)
  int object_count{100};   // total objects including the root HTML
  double size_scale{1.0};  // multiplies every object size (site weight)
};

/// One synthetic web object with real bytes. Bodies embed genuine
/// references (src=/href= in HTML, url() in CSS, loadSubresource() in JS),
/// so browsers discover the dependency graph by parsing delivered bytes —
/// exactly like replaying a real recorded site.
struct GeneratedObject {
  http::Url url;
  http::ResourceKind kind{http::ResourceKind::kOther};
  std::string body;
};

/// A complete generated site.
struct GeneratedSite {
  SiteSpec spec;
  std::vector<std::string> hostnames;     // [0] is the primary origin
  std::vector<GeneratedObject> objects;   // [0] is the root HTML

  [[nodiscard]] std::string primary_url() const {
    return "http://" + hostnames.at(0) + "/";
  }
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] const GeneratedObject* find(const std::string& host,
                                            std::string_view target) const;
};

/// Deterministically generate a site from its spec. Guarantees:
///   - exactly spec.server_count distinct hostnames, each referenced by at
///     least one object (so recording preserves the server count);
///   - every non-root object reachable from the root through reference
///     chains of depth <= 3;
///   - object sizes/kinds follow 2014-web-like distributions.
GeneratedSite generate_site(const SiteSpec& spec);

/// Named page profiles used by the paper's experiments. Scales follow the
/// pages' relative weights (CNBC heaviest, wikiHow lighter).
SiteSpec cnbc_like_spec();
SiteSpec wikihow_like_spec();
SiteSpec nytimes_like_spec();

}  // namespace mahimahi::corpus
