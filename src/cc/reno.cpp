#include "cc/reno.hpp"

#include <algorithm>

namespace mahimahi::cc {

void RenoNewReno::on_ack(const AckEvent& ack) {
  if (ack.newly_acked_bytes == 0) {
    if (ack.is_duplicate && ack.in_recovery) {
      cwnd_ += mss();  // window inflation: the dupack left the network
    }
    return;
  }
  if (ack.exiting_recovery) {
    cwnd_ = ssthresh_;  // deflate back to the post-loss operating point
    return;
  }
  if (ack.in_recovery) {
    // NewReno partial ack: deflate by what was acked, then re-inflate by
    // one MSS for the retransmission that is about to go out.
    cwnd_ = std::max(mss(),
                     cwnd_ - static_cast<double>(ack.newly_acked_bytes) + mss());
    return;
  }
  increase_on_ack(ack);
}

void RenoNewReno::increase_on_ack(const AckEvent& ack) {
  if (cwnd_ < ssthresh_) {
    // Slow start: grow by the bytes newly acknowledged (ABC), capped at
    // one MSS per ACK.
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(ack.newly_acked_bytes,
                                static_cast<std::uint64_t>(mss())));
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += mss() * mss() / cwnd_;
  }
}

void RenoNewReno::on_loss_event(const LossEvent& loss) {
  ssthresh_ =
      std::max(static_cast<double>(loss.bytes_in_flight) / 2.0, 2.0 * mss());
  cwnd_ = ssthresh_ + 3.0 * mss();  // the three dupacks have left the network
}

void RenoNewReno::on_rto(const RtoEvent& rto) {
  ssthresh_ =
      std::max(static_cast<double>(rto.bytes_in_flight) / 2.0, 2.0 * mss());
  cwnd_ = mss();  // collapse to one segment and slow-start again
}

void RenoNewReno::on_rtt_sample(Microseconds /*sample*/, Microseconds /*now*/) {
  // Loss-based: RTT samples do not move the window.
}

}  // namespace mahimahi::cc
