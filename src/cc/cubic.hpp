#pragma once

#include "cc/reno.hpp"

namespace mahimahi::cc {

/// CUBIC (RFC 8312): window growth is a cubic function of time since the
/// last loss, centred on the window where that loss happened (W_max), so
/// high-BDP paths re-fill the pipe in seconds where Reno needs minutes.
/// Includes fast convergence (release bandwidth when the loss point keeps
/// falling) and the TCP-friendly region (never slower than an ideal Reno
/// flow). Slow start and fast-recovery mechanics are inherited from
/// RenoNewReno; only the avoidance growth curve and the multiplicative
/// decrease differ.
class Cubic : public RenoNewReno {
 public:
  /// RFC 8312 constants: beta = 0.7 multiplicative decrease, C = 0.4
  /// (units of segments/second^3) cubic coefficient.
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;

  explicit Cubic(const Params& params) : RenoNewReno{params} {}

  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  void on_loss_event(const LossEvent& loss) override;
  void on_rto(const RtoEvent& rto) override;
  void on_rtt_sample(Microseconds sample, Microseconds now) override;

 protected:
  void increase_on_ack(const AckEvent& ack) override;

 private:
  void reset_epoch();

  double w_max_segments_{0};     // window (in MSS) at the last loss
  double k_seconds_{0};          // time for W_cubic to return to W_max
  Microseconds epoch_start_{0};  // 0 = epoch not started yet
  Microseconds last_rtt_{0};     // most recent RTT sample
};

}  // namespace mahimahi::cc
