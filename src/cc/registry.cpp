#include "cc/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "cc/bbr_lite.hpp"
#include "cc/cubic.hpp"
#include "cc/reno.hpp"
#include "cc/vegas.hpp"

namespace mahimahi::cc {
namespace {

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Factory>& registry() {
  static std::map<std::string, Factory> factories = [] {
    std::map<std::string, Factory> built_in;
    built_in["reno"] = [](const Params& p) {
      return std::make_unique<RenoNewReno>(p);
    };
    built_in["cubic"] = [](const Params& p) {
      return std::make_unique<Cubic>(p);
    };
    built_in["vegas"] = [](const Params& p) {
      return std::make_unique<Vegas>(p);
    };
    built_in["bbr"] = [](const Params& p) {
      return std::make_unique<BbrLite>(p);
    };
    return built_in;
  }();
  return factories;
}

}  // namespace

std::unique_ptr<CongestionController> make_controller(const std::string& name,
                                                      const Params& params) {
  const std::string& key = name.empty() ? kDefaultController : name;
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock{registry_mutex()};
    const auto it = registry().find(key);
    if (it == registry().end()) {
      std::string known;
      for (const auto& [registered, unused] : registry()) {
        known += known.empty() ? registered : ", " + registered;
      }
      throw std::invalid_argument{"unknown congestion controller '" + key +
                                  "' (registered: " + known + ")"};
    }
    factory = it->second;
  }
  return factory(params);
}

void register_controller(const std::string& name, Factory factory) {
  if (name.empty() || factory == nullptr) {
    throw std::invalid_argument{"controller registration needs a name and factory"};
  }
  const std::lock_guard<std::mutex> lock{registry_mutex()};
  registry()[name] = std::move(factory);
}

bool is_registered(const std::string& name) {
  const std::lock_guard<std::mutex> lock{registry_mutex()};
  return registry().count(name.empty() ? kDefaultController : name) != 0;
}

std::vector<std::string> registered_controllers() {
  std::vector<std::string> names;
  const std::lock_guard<std::mutex> lock{registry_mutex()};
  names.reserve(registry().size());
  for (const auto& [name, unused] : registry()) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::optional<std::string> controller_from_env(const char* env_var) {
  const char* value = std::getenv(env_var);
  const std::string name = value != nullptr ? value : "";
  if (name.empty() || is_registered(name)) {
    return name;
  }
  std::fprintf(stderr, "%s=%s is not a registered controller; choose one of:",
               env_var, name.c_str());
  for (const auto& registered : registered_controllers()) {
    std::fprintf(stderr, " %s", registered.c_str());
  }
  std::fprintf(stderr, "\n");
  return std::nullopt;
}

}  // namespace mahimahi::cc
