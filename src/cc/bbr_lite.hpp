#pragma once

#include <deque>
#include <utility>

#include "cc/congestion_controller.hpp"

namespace mahimahi::cc {

/// BBR-lite: a compact model of BBR v1's core idea — estimate the path's
/// bottleneck bandwidth (windowed max of delivery rate) and propagation
/// delay (windowed min RTT), then *pace* at gain × bandwidth with the
/// congestion window merely a safety cap of gain × BDP. Loss is not a
/// primary signal, so deep buffers never fill: queueing delay stays near
/// zero where loss-based controllers bloat the queue.
///
/// Phases, as in BBR v1:
///   - kStartup: pacing gain 2/ln2 ≈ 2.885, doubling the sending rate
///     each RTT until the bandwidth estimate stops growing (plateau for
///     three rounds);
///   - kDrain: inverse gain drains the queue startup built, until bytes
///     in flight fall to one BDP;
///   - kProbeBw: steady state, cycling pacing gains
///     [1.25, 0.75, 1, 1, 1, 1, 1, 1] one RTT each to probe for more
///     bandwidth and then drain what the probe queued.
///
/// Simplifications vs real BBR (hence "-lite"): delivery rate is measured
/// per RTT epoch from cumulative acks (no per-packet rate samples or
/// app-limited accounting), there is no ProbeRTT phase (flows here are
/// short), and RTO recovery is plain packet conservation. Everything is
/// driven by simulation events only — fully deterministic.
class BbrLite : public CongestionController {
 public:
  enum class Phase { kStartup, kDrain, kProbeBw };

  static constexpr double kStartupGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / kStartupGain;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kBwWindowRounds = 10;
  static constexpr Microseconds kMinRttWindow = 10'000'000;  // 10 s

  explicit BbrLite(const Params& params) : CongestionController{params} {}

  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  void on_ack(const AckEvent& ack) override;
  void on_loss_event(const LossEvent& loss) override;
  void on_rto(const RtoEvent& rto) override;
  void on_rtt_sample(Microseconds sample, Microseconds now) override;

  [[nodiscard]] double cwnd_bytes() const override;
  [[nodiscard]] double pacing_rate() const override;

  // --- introspection for tests ---
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] double bandwidth_estimate() const;  // bytes/second
  [[nodiscard]] Microseconds min_rtt() const { return min_rtt_; }

 private:
  [[nodiscard]] double bdp_bytes() const;
  [[nodiscard]] double pacing_gain() const;
  void advance_epoch(const AckEvent& ack);

  Phase phase_{Phase::kStartup};
  // Windowed-max bandwidth filter: delivery-rate samples (bytes/sec), one
  // per RTT epoch, newest last; capped at kBwWindowRounds entries.
  std::deque<double> bw_samples_;
  // Windowed-min RTT filter: (sample time, rtt) pairs within kMinRttWindow.
  std::deque<std::pair<Microseconds, Microseconds>> rtt_samples_;
  Microseconds min_rtt_{0};  // current windowed min; 0 = no sample yet
  Microseconds last_rtt_{0};

  Microseconds epoch_start_{0};       // current delivery-rate epoch
  std::uint64_t epoch_acked_bytes_{0};

  double full_bw_{0};     // startup plateau detection
  int full_bw_rounds_{0};
  int probe_cycle_index_{0};
  bool rto_collapse_{false};  // packet conservation until the next ack
};

}  // namespace mahimahi::cc
