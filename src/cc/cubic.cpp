#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace mahimahi::cc {

void Cubic::reset_epoch() { epoch_start_ = 0; }

void Cubic::on_rtt_sample(Microseconds sample, Microseconds now) {
  RenoNewReno::on_rtt_sample(sample, now);
  last_rtt_ = sample;
}

void Cubic::increase_on_ack(const AckEvent& ack) {
  if (cwnd_ < ssthresh_) {
    RenoNewReno::increase_on_ack(ack);  // standard slow start
    return;
  }
  const double cwnd_seg = cwnd_ / mss();
  if (epoch_start_ == 0) {
    // New avoidance epoch (first ack after a loss/RTO or after leaving
    // slow start): anchor the cubic curve on the last loss point.
    epoch_start_ = ack.now;
    if (w_max_segments_ < cwnd_seg) {
      w_max_segments_ = cwnd_seg;  // no memory of a higher window
      k_seconds_ = 0;
    } else {
      k_seconds_ = std::cbrt((w_max_segments_ - cwnd_seg) / kC);
    }
  }
  // Elapsed time into the epoch, advanced by one RTT (RFC 8312 computes
  // the target the window should reach one RTT from now).
  const double rtt_s = static_cast<double>(last_rtt_) / 1e6;
  const double t =
      static_cast<double>(ack.now - epoch_start_) / 1e6 + rtt_s;
  const double offs = t - k_seconds_;
  const double w_cubic = kC * offs * offs * offs + w_max_segments_;

  // Target for one RTT ahead, clamped: never shrink on an ack, never grow
  // more than 50% per RTT (RFC 8312 §4.1).
  double target = std::clamp(w_cubic, cwnd_seg, 1.5 * cwnd_seg);

  // TCP-friendly region (§4.2): at least what an ideal Reno flow with
  // beta=0.7 would have reached by time t.
  if (rtt_s > 0) {
    const double w_est = w_max_segments_ * kBeta +
                         (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t / rtt_s);
    target = std::max(target, std::min(w_est, 1.5 * cwnd_seg));
  }

  if (target > cwnd_seg) {
    // Spread the climb to the target over the ~cwnd acks of one RTT.
    cwnd_ += (target - cwnd_seg) / cwnd_seg * mss();
  }
}

void Cubic::on_loss_event(const LossEvent& /*loss*/) {
  const double cwnd_seg = cwnd_ / mss();
  if (cwnd_seg < w_max_segments_) {
    // Fast convergence: the loss point is falling (a new flow is taking
    // share) — release extra bandwidth by remembering a smaller W_max.
    w_max_segments_ = cwnd_seg * (1.0 + kBeta) / 2.0;
  } else {
    w_max_segments_ = cwnd_seg;
  }
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * mss());
  cwnd_ = ssthresh_ + 3.0 * mss();  // dupack inflation entry, as in Reno
  reset_epoch();
}

void Cubic::on_rto(const RtoEvent& /*rto*/) {
  const double cwnd_seg = cwnd_ / mss();
  w_max_segments_ = cwnd_seg < w_max_segments_
                        ? cwnd_seg * (1.0 + kBeta) / 2.0
                        : cwnd_seg;
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * mss());
  cwnd_ = mss();
  reset_epoch();
}

}  // namespace mahimahi::cc
