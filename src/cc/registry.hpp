#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/congestion_controller.hpp"

namespace mahimahi::cc {

/// Name the transport uses when a config leaves the controller unset.
inline constexpr const char* kDefaultController = "reno";

using Factory =
    std::function<std::unique_ptr<CongestionController>(const Params&)>;

/// Instantiate a controller by registry name ("reno", "cubic", "vegas",
/// "bbr", or anything added via register_controller). An empty name means
/// kDefaultController. Throws std::invalid_argument for unknown names,
/// listing what is registered.
std::unique_ptr<CongestionController> make_controller(const std::string& name,
                                                      const Params& params);

/// Register (or replace) a controller factory under `name`. Registration
/// is thread-safe, but to keep parallel measurement deterministic, custom
/// controllers should be registered before any sessions fan out.
void register_controller(const std::string& name, Factory factory);

/// True when `name` (or the default, for empty) resolves to a factory.
[[nodiscard]] bool is_registered(const std::string& name);

/// Registered controller names, sorted — the sweep axis for benches.
[[nodiscard]] std::vector<std::string> registered_controllers();

/// CLI convenience shared by bench/example knobs (MAHI_PROTO_CC and
/// friends): read a controller name from environment variable `env_var`.
/// Returns the value ("" when unset, meaning the default controller); on
/// an unregistered name, prints an error listing what is registered to
/// stderr and returns std::nullopt (callers exit 2).
[[nodiscard]] std::optional<std::string> controller_from_env(
    const char* env_var);

}  // namespace mahimahi::cc
