#pragma once

#include "cc/congestion_controller.hpp"

namespace mahimahi::cc {

/// Reno with NewReno fast recovery — a behavior-preserving port of the
/// window arithmetic that used to live inline in net::TcpConnection, and
/// the toolkit's default controller:
///   - slow start: cwnd += min(newly_acked, MSS) per ACK (ABC, RFC 3465)
///   - congestion avoidance: cwnd += MSS^2 / cwnd per ACK (~1 MSS / RTT)
///   - loss event: ssthresh = max(flight/2, 2 MSS), cwnd = ssthresh + 3 MSS
///   - recovery: +1 MSS per dupack (inflation), partial acks deflate by
///     bytes acked then add 1 MSS; exit restores cwnd = ssthresh
///   - RTO: ssthresh = max(flight/2, 2 MSS), cwnd = 1 MSS
///
/// Cubic and Vegas derive from this class and override the open-path
/// growth (`increase_on_ack`) and/or the loss response, keeping the
/// recovery bookkeeping identical — the genericCC layering.
class RenoNewReno : public CongestionController {
 public:
  explicit RenoNewReno(const Params& params)
      : CongestionController{params}, cwnd_{params.initial_cwnd_bytes} {}

  [[nodiscard]] std::string_view name() const override { return "reno"; }

  void on_ack(const AckEvent& ack) final;
  void on_loss_event(const LossEvent& loss) override;
  void on_rto(const RtoEvent& rto) override;
  void on_rtt_sample(Microseconds sample, Microseconds now) override;

  [[nodiscard]] double cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh_; }

 protected:
  /// Window growth outside recovery (slow start / congestion avoidance).
  /// The only ACK-path hook subclasses change; recovery inflation and
  /// deflation are protocol mechanics shared by every Reno-derived
  /// controller.
  virtual void increase_on_ack(const AckEvent& ack);

  double cwnd_;                       // bytes
  double ssthresh_{kInfiniteSsthresh};  // bytes
};

}  // namespace mahimahi::cc
