#include "cc/bbr_lite.hpp"

#include <algorithm>

namespace mahimahi::cc {
namespace {

constexpr double kProbeGainCycle[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kProbeCycleLength = 8;

}  // namespace

double BbrLite::bandwidth_estimate() const {
  double best = 0;
  for (const double sample : bw_samples_) {
    best = std::max(best, sample);
  }
  return best;
}

double BbrLite::bdp_bytes() const {
  if (min_rtt_ == 0) {
    return params().initial_cwnd_bytes;
  }
  const double bw = bandwidth_estimate();
  if (bw <= 0) {
    return params().initial_cwnd_bytes;
  }
  return bw * static_cast<double>(min_rtt_) / 1e6;
}

double BbrLite::pacing_gain() const {
  switch (phase_) {
    case Phase::kStartup:
      return kStartupGain;
    case Phase::kDrain:
      return kDrainGain;
    case Phase::kProbeBw:
      return kProbeGainCycle[probe_cycle_index_];
  }
  return 1.0;
}

double BbrLite::pacing_rate() const {
  const double bw = bandwidth_estimate();
  if (bw <= 0) {
    return 0.0;  // no estimate yet: unpaced until the handshake RTT lands
  }
  return pacing_gain() * bw;
}

double BbrLite::cwnd_bytes() const {
  if (rto_collapse_) {
    return mss();  // packet conservation after a timeout
  }
  if (bw_samples_.empty() || min_rtt_ == 0) {
    // No path model yet: plain initial window, like everyone else.
    return std::max(params().initial_cwnd_bytes, 4.0 * mss());
  }
  const double gain = phase_ == Phase::kStartup ? kStartupGain : kCwndGain;
  return std::max(gain * bdp_bytes(), 4.0 * mss());
}

void BbrLite::on_rtt_sample(Microseconds sample, Microseconds now) {
  last_rtt_ = sample;
  rtt_samples_.emplace_back(now, sample);
  while (!rtt_samples_.empty() &&
         now - rtt_samples_.front().first > kMinRttWindow) {
    rtt_samples_.pop_front();
  }
  min_rtt_ = 0;
  for (const auto& [at, rtt] : rtt_samples_) {
    if (min_rtt_ == 0 || rtt < min_rtt_) {
      min_rtt_ = rtt;
    }
  }
  if (bw_samples_.empty()) {
    // Seed the bandwidth filter from the handshake: one initial window
    // delivered per RTT — enough to start pacing before any data acks.
    bw_samples_.push_back(params().initial_cwnd_bytes /
                          (static_cast<double>(sample) / 1e6));
  }
}

void BbrLite::on_ack(const AckEvent& ack) {
  if (ack.newly_acked_bytes == 0) {
    return;  // dupacks carry no delivery-rate information here
  }
  rto_collapse_ = false;
  if (epoch_start_ == 0) {
    epoch_start_ = ack.now;
    epoch_acked_bytes_ = 0;
  }
  epoch_acked_bytes_ += ack.newly_acked_bytes;

  // Close the delivery-rate epoch once an RTT has elapsed.
  const Microseconds epoch_len =
      std::max<Microseconds>(last_rtt_ != 0 ? last_rtt_ : min_rtt_, 1'000);
  if (ack.now - epoch_start_ < epoch_len) {
    return;
  }
  const double elapsed_s =
      static_cast<double>(ack.now - epoch_start_) / 1e6;
  const double rate = static_cast<double>(epoch_acked_bytes_) / elapsed_s;
  bw_samples_.push_back(rate);
  while (bw_samples_.size() > static_cast<std::size_t>(kBwWindowRounds)) {
    bw_samples_.pop_front();
  }
  epoch_start_ = ack.now;
  epoch_acked_bytes_ = 0;
  advance_epoch(ack);
}

void BbrLite::advance_epoch(const AckEvent& ack) {
  switch (phase_) {
    case Phase::kStartup: {
      const double bw = bandwidth_estimate();
      if (bw > full_bw_ * 1.25) {
        full_bw_ = bw;  // still growing: keep doubling
        full_bw_rounds_ = 0;
      } else if (++full_bw_rounds_ >= 3) {
        phase_ = Phase::kDrain;  // pipe full: drain the startup queue
      }
      break;
    }
    case Phase::kDrain:
      if (static_cast<double>(ack.bytes_in_flight) <= bdp_bytes()) {
        phase_ = Phase::kProbeBw;
        probe_cycle_index_ = 0;
      }
      break;
    case Phase::kProbeBw:
      // One RTT per gain step; the 0.75 step lingers until the probe's
      // queue has drained (as BBR's cycle logic does).
      if (kProbeGainCycle[probe_cycle_index_] < 1.0 &&
          static_cast<double>(ack.bytes_in_flight) > bdp_bytes()) {
        break;
      }
      probe_cycle_index_ = (probe_cycle_index_ + 1) % kProbeCycleLength;
      break;
  }
}

void BbrLite::on_loss_event(const LossEvent& /*loss*/) {
  // Loss is not a primary signal for BBR: the model (bw x min_rtt) already
  // bounds the inflight, and isolated drops should not crater the rate.
}

void BbrLite::on_rto(const RtoEvent& /*rto*/) {
  rto_collapse_ = true;  // conserve packets until delivery resumes
}

}  // namespace mahimahi::cc
