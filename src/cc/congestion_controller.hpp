#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "util/time.hpp"

namespace mahimahi::cc {

/// Slow-start threshold sentinel for "not yet set": effectively infinite,
/// so a fresh connection stays in slow start until the first loss event.
/// Both cwnd and ssthresh are measured in BYTES of application payload
/// (header bytes are not charged against the window), matching Linux's
/// byte-counted windows rather than the segment-counted RFC exposition.
inline constexpr double kInfiniteSsthresh = std::numeric_limits<double>::max();

/// Static per-connection parameters handed to a controller at birth.
struct Params {
  /// Maximum payload bytes per segment (the transport's MSS).
  double mss_bytes{1448};
  /// Initial congestion window in bytes (IW10 by default upstream).
  double initial_cwnd_bytes{10 * 1448};
};

/// One cumulative or duplicate ACK, after the transport applied it.
struct AckEvent {
  /// Bytes newly acknowledged by this ACK; 0 for a duplicate ACK.
  std::uint64_t newly_acked_bytes{0};
  /// Bytes still in flight after this ACK was applied.
  std::uint64_t bytes_in_flight{0};
  /// Same cumulative ack repeated while data is in flight (dupack).
  bool is_duplicate{false};
  /// Fast recovery is active (set for the dupacks that inflate the window
  /// and for partial acks; clear once the recovery point is crossed).
  bool in_recovery{false};
  /// This ACK crossed the recovery point — fast recovery ends now.
  bool exiting_recovery{false};
  /// Simulated clock at delivery.
  Microseconds now{0};
};

/// Entering fast recovery: the transport saw three duplicate ACKs and is
/// about to fast-retransmit. `bytes_in_flight` is the flight size at the
/// moment of detection (what multiplicative decrease halves).
struct LossEvent {
  std::uint64_t bytes_in_flight{0};
  Microseconds now{0};
};

/// Retransmission timeout fired: the transport collapses to one segment
/// and retransmits from snd_una.
struct RtoEvent {
  std::uint64_t bytes_in_flight{0};
  Microseconds now{0};
};

/// Pluggable congestion-control policy for the simulated TCP: the
/// transport (net::TcpConnection) keeps all reliability mechanics —
/// sequence tracking, dupack counting, what to retransmit and when — and
/// delegates every window/rate decision here. The controller is a pure
/// per-connection state machine fed only by deterministic simulation
/// events (no wall clock, no randomness, no global state), which is what
/// preserves the toolkit's byte-identical 1-vs-N-thread determinism
/// contract: identical event sequences must yield identical windows.
///
/// Event order per incoming ACK, mirroring the transport's processing:
///   1. on_rtt_sample()  — if this ACK completed a timed segment
///   2. on_ack()         — window update (growth, inflation, deflation)
/// Loss is reported once per recovery episode via on_loss_event() (at the
/// third duplicate ACK, before the fast retransmit goes out) and via
/// on_rto() on timeout.
class CongestionController {
 public:
  explicit CongestionController(const Params& params) : params_{params} {}
  virtual ~CongestionController() = default;

  CongestionController(const CongestionController&) = delete;
  CongestionController& operator=(const CongestionController&) = delete;

  /// Registry name this controller was created under ("reno", "cubic"...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void on_ack(const AckEvent& ack) = 0;
  virtual void on_loss_event(const LossEvent& loss) = 0;
  virtual void on_rto(const RtoEvent& rto) = 0;
  virtual void on_rtt_sample(Microseconds sample, Microseconds now) = 0;

  /// Current congestion window in bytes. The transport sends while
  /// flight + segment <= cwnd. Must stay >= 1 MSS and finite, always.
  [[nodiscard]] virtual double cwnd_bytes() const = 0;

  /// Current slow-start threshold in bytes (kInfiniteSsthresh until the
  /// first loss for loss-based controllers; informational for others).
  [[nodiscard]] virtual double ssthresh_bytes() const {
    return kInfiniteSsthresh;
  }

  /// Pacing rate in payload bytes per second; 0 disables pacing (the
  /// transport then emits window-limited bursts, classic TCP style).
  /// Rate-based controllers (BBR) return a positive rate and the
  /// transport spaces data segments accordingly.
  [[nodiscard]] virtual double pacing_rate() const { return 0.0; }

  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  [[nodiscard]] double mss() const { return params_.mss_bytes; }

 private:
  Params params_;
};

}  // namespace mahimahi::cc
