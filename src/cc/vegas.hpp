#pragma once

#include "cc/congestion_controller.hpp"
#include "cc/reno.hpp"

namespace mahimahi::cc {

/// TCP Vegas: delay-based avoidance. Tracks baseRTT (the smallest RTT
/// ever seen — the propagation delay) and once per RTT compares how much
/// data the window *should* deliver at baseRTT with what it actually
/// delivers at the current RTT; the difference is the backlog this flow
/// keeps in the bottleneck queue. The window nudges up below `alpha`
/// segments of backlog, down above `beta`, so a Vegas flow sits at a few
/// packets of queue instead of filling the buffer — far lower queueing
/// delay than loss-based controllers on deep-buffered links. Slow start
/// checks the same signal against `gamma` and exits before the first
/// loss. Loss handling (rare for Vegas) falls back to Reno's, inherited.
class Vegas : public RenoNewReno {
 public:
  /// Backlog thresholds in segments (the classic 2/4/1 tuning).
  static constexpr double kAlpha = 2.0;
  static constexpr double kBeta = 4.0;
  static constexpr double kGamma = 1.0;

  explicit Vegas(const Params& params) : RenoNewReno{params} {}

  [[nodiscard]] std::string_view name() const override { return "vegas"; }

  void on_rtt_sample(Microseconds sample, Microseconds now) override;

  /// Propagation-delay estimate (introspection for tests).
  [[nodiscard]] Microseconds base_rtt() const { return base_rtt_; }

 protected:
  void increase_on_ack(const AckEvent& ack) override;

 private:
  Microseconds base_rtt_{0};       // min RTT ever seen; 0 = none yet
  Microseconds epoch_min_rtt_{0};  // min RTT sample this epoch
  Microseconds epoch_start_{0};    // current once-per-RTT epoch
  bool grow_this_epoch_{false};    // slow start doubles every *other* RTT
};

}  // namespace mahimahi::cc
