#include "cc/vegas.hpp"

#include <algorithm>

namespace mahimahi::cc {

void Vegas::on_rtt_sample(Microseconds sample, Microseconds now) {
  RenoNewReno::on_rtt_sample(sample, now);
  if (base_rtt_ == 0 || sample < base_rtt_) {
    base_rtt_ = sample;
  }
  if (epoch_min_rtt_ == 0 || sample < epoch_min_rtt_) {
    epoch_min_rtt_ = sample;
  }
}

void Vegas::increase_on_ack(const AckEvent& ack) {
  if (base_rtt_ == 0) {
    // No RTT signal yet (handshake sample lost to Karn): act like Reno
    // until the first sample arrives.
    RenoNewReno::increase_on_ack(ack);
    return;
  }
  if (epoch_start_ == 0) {
    epoch_start_ = ack.now;
    epoch_min_rtt_ = 0;
    grow_this_epoch_ = true;
  }
  const bool in_slow_start = cwnd_ < ssthresh_;
  if (in_slow_start && grow_this_epoch_) {
    // Vegas slow start: double only every other RTT, so alternate epochs
    // measure the queue at a stable window.
    cwnd_ += static_cast<double>(
        std::min<std::uint64_t>(ack.newly_acked_bytes,
                                static_cast<std::uint64_t>(mss())));
  }

  // Evaluate the delay signal once per base RTT.
  if (ack.now - epoch_start_ < base_rtt_ || epoch_min_rtt_ == 0) {
    return;
  }
  const double rtt = static_cast<double>(epoch_min_rtt_);
  const double base = static_cast<double>(base_rtt_);
  // Bytes this flow keeps queued at the bottleneck: the gap between the
  // throughput the window would get at propagation delay and what it
  // actually gets at the measured RTT.
  const double backlog_segments = (cwnd_ / mss()) * (rtt - base) / rtt;

  if (in_slow_start) {
    if (backlog_segments > kGamma) {
      // Queue is building before any loss: exit slow start onto the
      // window the path can actually carry.
      const double target = cwnd_ * base / rtt;
      cwnd_ = std::max(2.0 * mss(), std::min(cwnd_, target + mss()));
      ssthresh_ = std::min(ssthresh_, cwnd_);
    }
  } else if (backlog_segments < kAlpha) {
    cwnd_ += mss();  // too little queued: the pipe has headroom
  } else if (backlog_segments > kBeta) {
    cwnd_ = std::max(2.0 * mss(), cwnd_ - mss());  // draining the queue
  }
  epoch_start_ = ack.now;
  epoch_min_rtt_ = 0;
  grow_this_epoch_ = !grow_this_epoch_;
}

}  // namespace mahimahi::cc
