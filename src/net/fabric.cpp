#include "net/fabric.hpp"

#include <stdexcept>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::net {
namespace {

constexpr std::size_t side_index(Side side) {
  return side == Side::kClient ? 0 : 1;
}

}  // namespace

Fabric::Fabric(EventLoop& loop) : loop_{loop} {
  chain_.set_outputs(
      // Uplink exit: deliver on the server side.
      [this](Packet&& p) { deliver(Side::kServer, std::move(p)); },
      // Downlink exit: deliver on the client side.
      [this](Packet&& p) { deliver(Side::kClient, std::move(p)); });
}

void Fabric::bind(Side side, const Address& address, Handler handler) {
  MAHI_ASSERT(handler != nullptr);
  auto& table = endpoints_[side_index(side)];
  if (table.contains(address)) {
    throw std::invalid_argument{"address already bound: " + address.to_string()};
  }
  table.emplace(address, std::move(handler));
}

void Fabric::unbind(Side side, const Address& address) {
  endpoints_[side_index(side)].erase(address);
}

bool Fabric::bound(Side side, const Address& address) const {
  return endpoints_[side_index(side)].contains(address);
}

void Fabric::send(Side from, Packet&& packet) {
  packet.id = next_packet_id();
  // Injection always goes through the event queue: a packet can never be
  // delivered before send() returns (as in a physical network). This bars
  // endpoint re-entrancy even when the chain itself adds zero latency.
  // Packets leaving a delayed server pay that origin's one-way delay here.
  const Microseconds delay =
      from == Side::kServer ? server_delay(packet.src.ip) : 0;
  auto inject = [this, from, p = std::move(packet)]() mutable {
    if (from == Side::kClient) {
      chain_.send_uplink(std::move(p));
    } else {
      chain_.send_downlink(std::move(p));
    }
  };
  // The per-packet event must use the loop's inline callback storage —
  // a heap allocation here would be one per simulated packet.
  static_assert(EventLoop::Action::kFitsInline<decltype(inject)>,
                "fabric packet lambda exceeds the inline callback buffer");
  loop_.schedule_in(delay, std::move(inject));
}

void Fabric::set_server_default(Handler handler) {
  server_default_ = std::move(handler);
}

void Fabric::redeliver(Side side, Packet&& packet) {
  dispatch(side, std::move(packet), /*allow_default=*/false);
}

void Fabric::set_server_delay(Ipv4 ip, Microseconds one_way) {
  MAHI_ASSERT(one_way >= 0);
  server_delays_[ip] = one_way;
}

Microseconds Fabric::server_delay(Ipv4 ip) const {
  const auto it = server_delays_.find(ip);
  return it == server_delays_.end() ? 0 : it->second;
}

void Fabric::deliver(Side side, Packet&& packet) {
  // Packets arriving at a delayed server pay that origin's one-way delay.
  const Microseconds delay =
      side == Side::kServer ? server_delay(packet.dst.ip) : 0;
  if (delay > 0) {
    auto deferred = [this, side, p = std::move(packet)]() mutable {
      dispatch(side, std::move(p), /*allow_default=*/true);
    };
    static_assert(EventLoop::Action::kFitsInline<decltype(deferred)>,
                  "fabric packet lambda exceeds the inline callback buffer");
    loop_.schedule_in(delay, std::move(deferred));
    return;
  }
  dispatch(side, std::move(packet), /*allow_default=*/true);
}

void Fabric::dispatch(Side side, Packet&& packet, bool allow_default) {
  auto& table = endpoints_[side_index(side)];
  const auto it = table.find(packet.dst);
  if (it == table.end()) {
    if (side == Side::kServer && allow_default && server_default_) {
      server_default_(std::move(packet));
      return;
    }
    ++undeliverable_;
    MAHI_DEBUG("fabric") << "undeliverable packet to " << packet.dst.to_string();
    return;
  }
  ++delivered_[side_index(side)];
  // The handler may unbind itself (connection close) — copy the handler
  // out so erasure during the call stays safe.
  const Handler handler = it->second;
  handler(std::move(packet));
}

Address Fabric::allocate_client_address() {
  MAHI_ASSERT_MSG(next_client_port_ != 0, "ephemeral ports exhausted");
  return Address{client_ip_, next_client_port_++};
}

Ipv4 Fabric::allocate_server_ip() { return server_ips_.next_ip(); }

}  // namespace mahimahi::net
