#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/event_loop.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "util/random.hpp"

namespace mahimahi::net {

/// A bidirectional packet-processing stage. Shells (delay, link, loss)
/// compose by chaining elements between the application side and the
/// origin-server side — the in-process analogue of nesting mahimahi
/// namespaces. Packets enter via process() and exit via the per-direction
/// forward handler installed by the Chain (or by tests).
class NetworkElement {
 public:
  using Forward = std::function<void(Packet&&)>;

  virtual ~NetworkElement() = default;
  NetworkElement(const NetworkElement&) = delete;
  NetworkElement& operator=(const NetworkElement&) = delete;

  /// Handle a packet travelling in `direction`.
  virtual void process(Packet&& packet, Direction direction) = 0;

  /// Install the egress handler for packets exiting in `direction`.
  void set_forward(Direction direction, Forward forward) {
    forward_[index(direction)] = std::move(forward);
  }

 protected:
  NetworkElement() = default;

  /// Emit a packet out of this element. Dropping is just "don't emit".
  void emit(Packet&& packet, Direction direction) {
    auto& forward = forward_[index(direction)];
    if (forward) {
      forward(std::move(packet));
    }
  }

 private:
  static constexpr std::size_t index(Direction d) {
    return d == Direction::kUplink ? 0 : 1;
  }
  Forward forward_[2];
};

/// Passes packets through untouched — the empty shell stack.
class PassthroughElement final : public NetworkElement {
 public:
  void process(Packet&& packet, Direction direction) override {
    emit(std::move(packet), direction);
  }
};

/// DelayShell's element: every packet, in both directions, is released
/// exactly `delay` after it entered (a fixed per-packet one-way delay).
/// FIFO order is preserved by the event loop's same-time tie-break.
class DelayBox final : public NetworkElement {
 public:
  DelayBox(EventLoop& loop, Microseconds delay);

  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] Microseconds delay() const { return delay_; }

 private:
  EventLoop& loop_;
  Microseconds delay_;
};

/// mm-loss: drops packets i.i.d. with the configured probability per
/// direction. Deterministic given the fork of the experiment RNG it owns.
class LossBox final : public NetworkElement {
 public:
  LossBox(util::Rng rng, double uplink_loss, double downlink_loss);

  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] std::uint64_t dropped(Direction direction) const {
    return dropped_[direction == Direction::kUplink ? 0 : 1];
  }

 private:
  util::Rng rng_;
  double loss_[2];
  std::uint64_t dropped_[2]{0, 0};
};

/// Counts packets and bytes per direction (mm-link --meter-*; also the
/// workhorse of isolation and conservation tests).
class MeterBox final : public NetworkElement {
 public:
  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] std::uint64_t packets(Direction direction) const {
    return packets_[idx(direction)];
  }
  [[nodiscard]] std::uint64_t bytes(Direction direction) const {
    return bytes_[idx(direction)];
  }

 private:
  static constexpr std::size_t idx(Direction d) {
    return d == Direction::kUplink ? 0 : 1;
  }
  std::uint64_t packets_[2]{0, 0};
  std::uint64_t bytes_[2]{0, 0};
};

/// Models the host's per-packet forwarding cost for one nested shell: a
/// single-server FIFO whose service time is the per-packet overhead. This
/// is the mechanism behind Figure 2 — each shell a packet traverses adds a
/// little processing latency on the host machine.
class ProcessingDelayBox final : public NetworkElement {
 public:
  ProcessingDelayBox(EventLoop& loop, Microseconds per_packet_cost);

  void process(Packet&& packet, Direction direction) override;

 private:
  EventLoop& loop_;
  Microseconds cost_;
  // Per-direction time at which the "forwarding CPU" frees up.
  Microseconds busy_until_[2]{0, 0};
};

/// Adds i.i.d. extra delay per packet, uniform in [0, max_extra] — a
/// reordering stressor (packets overtaking each other), not shipped by
/// mahimahi but invaluable for hardening TCP reassembly. Deterministic
/// given its RNG fork.
class ReorderBox final : public NetworkElement {
 public:
  ReorderBox(EventLoop& loop, util::Rng rng, Microseconds max_extra);

  void process(Packet&& packet, Direction direction) override;

 private:
  EventLoop& loop_;
  util::Rng rng_;
  Microseconds max_extra_;
};

/// Periodic link outage (fault injection): both directions drop every
/// packet while the link is down. Down iff some k >= 0 has
/// offset + k*period <= now < offset + k*period + down — a pure function
/// of simulated time, so flaps are identical at any thread/shard count.
class FlapBox final : public NetworkElement {
 public:
  FlapBox(EventLoop& loop, Microseconds period, Microseconds down,
          Microseconds offset);

  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] bool link_down() const;
  [[nodiscard]] std::uint64_t dropped(Direction direction) const {
    return dropped_[direction == Direction::kUplink ? 0 : 1];
  }

  /// Observability: each outage drop becomes a fault-layer event labeled
  /// "flap/<direction>" with the box's running drop index.
  void set_tracer(obs::Tracer* tracer, std::int32_t session) {
    tracer_ = tracer;
    trace_session_ = session;
  }

 private:
  EventLoop& loop_;
  Microseconds period_;
  Microseconds down_;
  Microseconds offset_;
  std::uint64_t dropped_[2]{0, 0};
  obs::Tracer* tracer_{nullptr};
  std::int32_t trace_session_{0};
};

/// Payload-corruption fault: per-direction packet counters feed the
/// stateless (seed, stream, index) hash, so whether packet #i is corrupted
/// never depends on other traffic. A corrupted packet is dropped — the
/// simulator has no checksum path, and a bad frame is discarded either way.
class CorruptBox final : public NetworkElement {
 public:
  CorruptBox(std::uint64_t seed, double rate);

  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] std::uint64_t corrupted(Direction direction) const {
    return corrupted_[direction == Direction::kUplink ? 0 : 1];
  }

  /// Observability: corruption drops become fault-layer events labeled
  /// "corrupt/<direction>". The box is clockless, so the caller lends it
  /// the loop for timestamps.
  void set_tracer(obs::Tracer* tracer, std::int32_t session,
                  const EventLoop* loop) {
    tracer_ = tracer;
    trace_session_ = session;
    trace_loop_ = loop;
  }

 private:
  std::uint64_t seed_;
  double rate_;
  std::uint64_t seen_[2]{0, 0};
  std::uint64_t corrupted_[2]{0, 0};
  obs::Tracer* tracer_{nullptr};
  std::int32_t trace_session_{0};
  const EventLoop* trace_loop_{nullptr};
};

/// An ordered stack of elements wired together. Uplink packets traverse
/// element 0 → N-1 and exit via `uplink_out`; downlink packets traverse
/// N-1 → 0 and exit via `downlink_out`. An empty chain forwards directly.
class Chain {
 public:
  /// Append an element (application side is index 0).
  void push_back(std::unique_ptr<NetworkElement> element);

  /// Install the chain's endpoints and (re)wire all elements.
  void set_outputs(NetworkElement::Forward uplink_out,
                   NetworkElement::Forward downlink_out);

  /// Inject a packet at the application side, travelling uplink.
  void send_uplink(Packet&& packet);

  /// Inject a packet at the network side, travelling downlink.
  void send_downlink(Packet&& packet);

  [[nodiscard]] std::size_t size() const { return elements_.size(); }
  [[nodiscard]] NetworkElement& element(std::size_t i) { return *elements_.at(i); }

 private:
  void rewire();

  std::vector<std::unique_ptr<NetworkElement>> elements_;
  NetworkElement::Forward uplink_out_;
  NetworkElement::Forward downlink_out_;
};

}  // namespace mahimahi::net
