#include "net/queue.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace mahimahi::net {

// --- InfiniteQueue --------------------------------------------------------

void InfiniteQueue::enqueue(Packet&& packet, Microseconds now) {
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> InfiniteQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- DropTailQueue ---------------------------------------------------------

DropTailQueue::DropTailQueue(std::size_t max_packets, std::size_t max_bytes)
    : max_packets_{max_packets}, max_bytes_{max_bytes} {
  if (max_packets_ == 0 && max_bytes_ == 0) {
    throw std::invalid_argument{"droptail queue needs a packet or byte bound"};
  }
}

bool DropTailQueue::would_overflow(const Packet& packet) const {
  if (max_packets_ != 0 && queue_.size() + 1 > max_packets_) {
    return true;
  }
  return max_bytes_ != 0 && bytes_ + packet.wire_size() > max_bytes_;
}

void DropTailQueue::enqueue(Packet&& packet, Microseconds now) {
  if (would_overflow(packet)) {
    ++drops_;
    return;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> DropTailQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- DropHeadQueue ----------------------------------------------------------

DropHeadQueue::DropHeadQueue(std::size_t max_packets, std::size_t max_bytes)
    : max_packets_{max_packets}, max_bytes_{max_bytes} {
  if (max_packets_ == 0 && max_bytes_ == 0) {
    throw std::invalid_argument{"drophead queue needs a packet or byte bound"};
  }
}

void DropHeadQueue::enqueue(Packet&& packet, Microseconds now) {
  // Evict from the head until the new packet fits. A packet larger than
  // the byte bound itself can never fit; count it dropped.
  if (max_bytes_ != 0 && packet.wire_size() > max_bytes_) {
    ++drops_;
    return;
  }
  while ((max_packets_ != 0 && queue_.size() + 1 > max_packets_) ||
         (max_bytes_ != 0 && bytes_ + packet.wire_size() > max_bytes_)) {
    MAHI_ASSERT(!queue_.empty());
    bytes_ -= queue_.front().wire_size();
    queue_.pop_front();
    ++drops_;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> DropHeadQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- CoDelQueue -------------------------------------------------------------

CoDelQueue::CoDelQueue(Microseconds target, Microseconds interval,
                       std::size_t max_packets)
    : target_{target}, interval_{interval}, max_packets_{max_packets} {
  if (target_ <= 0 || interval_ <= 0) {
    throw std::invalid_argument{"codel target/interval must be positive"};
  }
}

void CoDelQueue::enqueue(Packet&& packet, Microseconds now) {
  if (max_packets_ != 0 && queue_.size() >= max_packets_) {
    ++drops_;
    return;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

bool CoDelQueue::should_drop(const Packet& packet, Microseconds now) {
  const Microseconds sojourn = now - packet.queued_at;
  if (sojourn < target_ || queue_.size() <= 1) {
    first_above_time_ = 0;
    return false;
  }
  if (first_above_time_ == 0) {
    first_above_time_ = now + interval_;
    return false;
  }
  return now >= first_above_time_;
}

std::optional<Packet> CoDelQueue::dequeue(Microseconds now) {
  while (!queue_.empty()) {
    Packet packet = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= packet.wire_size();

    const bool above = should_drop(packet, now);
    if (!dropping_) {
      if (above && now >= drop_next_) {
        // Enter dropping state; control law restarts (RFC 8289 §5.2).
        dropping_ = true;
        drop_count_ = drop_count_ > 2 ? drop_count_ - 2 : 1;
        drop_next_ = now + static_cast<Microseconds>(
                               static_cast<double>(interval_) /
                               std::sqrt(static_cast<double>(drop_count_)));
        ++drops_;
        continue;  // drop this packet, try the next
      }
      return packet;
    }
    // In dropping state.
    if (!above) {
      dropping_ = false;
      return packet;
    }
    if (now >= drop_next_) {
      ++drop_count_;
      drop_next_ += static_cast<Microseconds>(
          static_cast<double>(interval_) /
          std::sqrt(static_cast<double>(drop_count_)));
      ++drops_;
      continue;
    }
    return packet;
  }
  return std::nullopt;
}

std::unique_ptr<PacketQueue> make_queue(const QueueSpec& spec) {
  if (spec.discipline == "infinite") {
    return std::make_unique<InfiniteQueue>();
  }
  if (spec.discipline == "droptail") {
    return std::make_unique<DropTailQueue>(spec.max_packets, spec.max_bytes);
  }
  if (spec.discipline == "drophead") {
    return std::make_unique<DropHeadQueue>(spec.max_packets, spec.max_bytes);
  }
  if (spec.discipline == "codel") {
    return std::make_unique<CoDelQueue>(spec.codel_target, spec.codel_interval,
                                        spec.max_packets);
  }
  throw std::invalid_argument{"unknown queue discipline: " + spec.discipline};
}

}  // namespace mahimahi::net
