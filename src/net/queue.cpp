#include "net/queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace mahimahi::net {

// --- InfiniteQueue --------------------------------------------------------

void InfiniteQueue::enqueue(Packet&& packet, Microseconds now) {
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> InfiniteQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- DropTailQueue ---------------------------------------------------------

DropTailQueue::DropTailQueue(std::size_t max_packets, std::size_t max_bytes)
    : max_packets_{max_packets}, max_bytes_{max_bytes} {
  if (max_packets_ == 0 && max_bytes_ == 0) {
    throw std::invalid_argument{"droptail queue needs a packet or byte bound"};
  }
}

bool DropTailQueue::would_overflow(const Packet& packet) const {
  if (max_packets_ != 0 && queue_.size() + 1 > max_packets_) {
    return true;
  }
  return max_bytes_ != 0 && bytes_ + packet.wire_size() > max_bytes_;
}

void DropTailQueue::enqueue(Packet&& packet, Microseconds now) {
  if (would_overflow(packet)) {
    ++drops_;
    return;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> DropTailQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- DropHeadQueue ----------------------------------------------------------

DropHeadQueue::DropHeadQueue(std::size_t max_packets, std::size_t max_bytes)
    : max_packets_{max_packets}, max_bytes_{max_bytes} {
  if (max_packets_ == 0 && max_bytes_ == 0) {
    throw std::invalid_argument{"drophead queue needs a packet or byte bound"};
  }
}

void DropHeadQueue::enqueue(Packet&& packet, Microseconds now) {
  // Evict from the head until the new packet fits. A packet larger than
  // the byte bound itself can never fit; count it dropped.
  if (max_bytes_ != 0 && packet.wire_size() > max_bytes_) {
    ++drops_;
    return;
  }
  while ((max_packets_ != 0 && queue_.size() + 1 > max_packets_) ||
         (max_bytes_ != 0 && bytes_ + packet.wire_size() > max_bytes_)) {
    MAHI_ASSERT(!queue_.empty());
    bytes_ -= queue_.front().wire_size();
    queue_.pop_front();
    ++drops_;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> DropHeadQueue::dequeue(Microseconds /*now*/) {
  if (queue_.empty()) {
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

// --- CoDelQueue -------------------------------------------------------------

CoDelQueue::CoDelQueue(Microseconds target, Microseconds interval,
                       std::size_t max_packets)
    : target_{target}, interval_{interval}, max_packets_{max_packets} {
  if (target_ <= 0 || interval_ <= 0) {
    throw std::invalid_argument{"codel target/interval must be positive"};
  }
}

void CoDelQueue::enqueue(Packet&& packet, Microseconds now) {
  if (max_packets_ != 0 && queue_.size() >= max_packets_) {
    ++overflow_drops_;
    return;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

bool CoDelQueue::should_drop(const Packet& packet, Microseconds now) {
  const Microseconds sojourn = now - packet.queued_at;
  if (sojourn < target_ || queue_.size() <= 1) {
    first_above_time_ = 0;
    return false;
  }
  if (first_above_time_ == 0) {
    first_above_time_ = now + interval_;
    return false;
  }
  return now >= first_above_time_;
}

std::optional<Packet> CoDelQueue::dequeue(Microseconds now) {
  while (!queue_.empty()) {
    Packet packet = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= packet.wire_size();

    const bool above = should_drop(packet, now);
    if (!dropping_) {
      if (above && now >= drop_next_) {
        // Enter dropping state; control law restarts (RFC 8289 §5.2).
        dropping_ = true;
        drop_count_ = drop_count_ > 2 ? drop_count_ - 2 : 1;
        drop_next_ = now + static_cast<Microseconds>(
                               static_cast<double>(interval_) /
                               std::sqrt(static_cast<double>(drop_count_)));
        ++aqm_drops_;
        continue;  // drop this packet, try the next
      }
      return packet;
    }
    // In dropping state.
    if (!above) {
      dropping_ = false;
      return packet;
    }
    if (now >= drop_next_) {
      ++drop_count_;
      drop_next_ += static_cast<Microseconds>(
          static_cast<double>(interval_) /
          std::sqrt(static_cast<double>(drop_count_)));
      ++aqm_drops_;
      continue;
    }
    return packet;
  }
  return std::nullopt;
}

// --- PieQueue ---------------------------------------------------------------

PieQueue::PieQueue(Microseconds target, Microseconds tupdate,
                   std::size_t max_packets, std::uint64_t seed)
    : target_{target},
      tupdate_{tupdate},
      max_packets_{max_packets},
      rng_{seed} {
  if (target_ <= 0 || tupdate_ <= 0) {
    throw std::invalid_argument{"pie target/tupdate must be positive"};
  }
}

void PieQueue::maybe_update(Microseconds now) {
  if (!update_armed_) {
    // First packet since (re)idle: controller wakes with the queue.
    next_update_ = now + tupdate_;
    update_armed_ = true;
    return;
  }
  while (now >= next_update_) {
    // Sojourn of the current head approximates the queueing delay a new
    // arrival will see (RFC 8033 §5.2's timestamp alternative to
    // departure-rate estimation).
    const Microseconds qdelay =
        queue_.empty() ? 0 : next_update_ - queue_.front().queued_at;

    // Auto-tuning: shrink the control steps while p is small so the
    // controller stays stable near zero (RFC 8033 §5.1 scale table).
    double scale = 1.0;
    if (p_ < 0.000001) {
      scale = 1.0 / 2048;
    } else if (p_ < 0.00001) {
      scale = 1.0 / 512;
    } else if (p_ < 0.0001) {
      scale = 1.0 / 128;
    } else if (p_ < 0.001) {
      scale = 1.0 / 32;
    } else if (p_ < 0.01) {
      scale = 1.0 / 8;
    } else if (p_ < 0.1) {
      scale = 1.0 / 2;
    }
    p_ += scale * (kAlpha * static_cast<double>(qdelay - target_) +
                   kBeta * static_cast<double>(qdelay - qdelay_old_)) /
          1e6;
    // Decay toward zero while the standing queue is gone, so a long-idle
    // queue does not greet the next burst with a stale drop rate.
    if (qdelay == 0 && qdelay_old_ == 0) {
      p_ *= 0.98;
    }
    p_ = std::min(1.0, std::max(0.0, p_));
    // Re-arm the burst allowance once the controller has fully relaxed.
    if (p_ == 0.0 && qdelay < target_ / 2 && qdelay_old_ < target_ / 2) {
      burst_allowance_ = kMaxBurst;
    } else if (burst_allowance_ > 0) {
      burst_allowance_ = burst_allowance_ > tupdate_
                             ? burst_allowance_ - tupdate_
                             : 0;
    }
    qdelay_old_ = qdelay;
    next_update_ += tupdate_;
  }
}

bool PieQueue::should_drop(const Packet& packet) {
  (void)packet;
  if (burst_allowance_ > 0) {
    return false;  // let short bursts through untouched (RFC 8033 §4.4)
  }
  // Safeguards (§4.1): never random-drop when the delay is clearly under
  // control or the queue is nearly empty — avoids starving slow flows.
  if ((qdelay_old_ < target_ / 2 && p_ < 0.2) || queue_.size() <= 2) {
    return false;
  }
  return rng_.chance(p_);
}

void PieQueue::enqueue(Packet&& packet, Microseconds now) {
  maybe_update(now);
  if (max_packets_ != 0 && queue_.size() >= max_packets_) {
    ++overflow_drops_;  // hard tail limit, like the RFC's TAIL_DROP backstop
    return;
  }
  if (should_drop(packet)) {
    ++aqm_drops_;
    return;
  }
  packet.queued_at = now;
  bytes_ += packet.wire_size();
  queue_.push_back(std::move(packet));
}

std::optional<Packet> PieQueue::dequeue(Microseconds now) {
  maybe_update(now);
  if (queue_.empty()) {
    // Idle: disarm so the next arrival restarts the update clock instead
    // of replaying every missed tupdate tick.
    update_armed_ = false;
    return std::nullopt;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= packet.wire_size();
  return packet;
}

std::vector<std::string> known_queue_disciplines() {
  return {"codel", "drophead", "droptail", "infinite", "pie"};
}

std::unique_ptr<PacketQueue> make_queue(const QueueSpec& spec) {
  if (spec.discipline == "infinite") {
    return std::make_unique<InfiniteQueue>();
  }
  if (spec.discipline == "droptail" || spec.discipline == "drophead") {
    if (spec.max_packets == 0 && spec.max_bytes == 0) {
      throw std::invalid_argument{
          spec.discipline +
          " spec needs max_packets or max_bytes (a bound-less bounded queue "
          "would silently behave as infinite)"};
    }
    if (spec.discipline == "droptail") {
      return std::make_unique<DropTailQueue>(spec.max_packets, spec.max_bytes);
    }
    return std::make_unique<DropHeadQueue>(spec.max_packets, spec.max_bytes);
  }
  if (spec.discipline == "codel") {
    if (spec.codel_target <= 0 || spec.codel_interval <= 0) {
      throw std::invalid_argument{"codel spec needs positive target/interval"};
    }
    return std::make_unique<CoDelQueue>(spec.codel_target, spec.codel_interval,
                                        spec.max_packets);
  }
  if (spec.discipline == "pie") {
    if (spec.pie_target <= 0 || spec.pie_tupdate <= 0) {
      throw std::invalid_argument{"pie spec needs positive target/tupdate"};
    }
    return std::make_unique<PieQueue>(spec.pie_target, spec.pie_tupdate,
                                      spec.max_packets, spec.pie_seed);
  }
  std::string known;
  for (const std::string& name : known_queue_disciplines()) {
    known += known.empty() ? name : ", " + name;
  }
  throw std::invalid_argument{"unknown queue discipline '" + spec.discipline +
                              "' (known: " + known + ")"};
}

}  // namespace mahimahi::net
