#include "net/mux.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::net::mux {
namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4;

/// Keep at most this much unacknowledged response data in the TCP send
/// buffer; the writer tops it up on send progress (epoll-writability).
constexpr std::uint64_t kWriterHighWater = 64 * 1024;

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

std::uint32_t read_u32(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string encode_frame_header(std::uint32_t stream_id, Frame::Type type,
                                std::uint32_t payload_length) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  put_u32(out, stream_id);
  out += static_cast<char>(type);
  put_u32(out, payload_length);
  return out;
}

std::string encode_frame(const Frame& frame) {
  std::string out = encode_frame_header(
      frame.stream_id, frame.type,
      static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void FrameParser::push(std::string_view bytes) {
  if (failed_) {
    return;
  }
  buffer_.append(bytes);
  while (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    const char* head = buffer_.data() + consumed_;
    const std::uint32_t stream_id = read_u32(head);
    const auto type = static_cast<Frame::Type>(head[4]);
    const std::uint32_t length = read_u32(head + 5);
    if (type != Frame::Type::kRequest && type != Frame::Type::kData &&
        type != Frame::Type::kEnd) {
      failed_ = true;
      return;
    }
    if (length > kMaxPayload) {
      failed_ = true;
      return;
    }
    if (buffer_.size() - consumed_ < kFrameHeaderBytes + length) {
      break;  // wait for the rest
    }
    Frame frame;
    frame.stream_id = stream_id;
    frame.type = type;
    frame.payload = buffer_.substr(consumed_ + kFrameHeaderBytes, length);
    consumed_ += kFrameHeaderBytes + length;
    frames_.push_back(std::move(frame));
  }
  // Compact lazily: drop the parsed prefix only when it dominates the
  // buffer, so steady-state parsing does no per-frame memmove.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > buffer_.size() / 2 && consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

Frame FrameParser::pop() {
  MAHI_ASSERT(!frames_.empty());
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

// --- MuxServer ------------------------------------------------------------------

MuxServer::MuxServer(Fabric& fabric, Address local, Handler handler,
                     Microseconds processing_delay, std::size_t chunk_bytes,
                     TcpConnection::Config config)
    : fabric_{fabric},
      handler_{std::move(handler)},
      processing_delay_{processing_delay},
      chunk_bytes_{chunk_bytes},
      listener_{fabric, local,
                [this](const std::shared_ptr<TcpConnection>& c) {
                  return make_callbacks(c);
                },
                std::move(config)} {
  MAHI_ASSERT(handler_ != nullptr);
  MAHI_ASSERT(chunk_bytes_ > 0);
}

TcpConnection::Callbacks MuxServer::make_callbacks(
    const std::shared_ptr<TcpConnection>& connection) {
  auto session = std::make_shared<Session>();
  session->connection = connection;
  TcpConnection::Callbacks callbacks;
  callbacks.on_data = [this, session](std::string_view bytes) {
    on_data(session, bytes);
  };
  callbacks.on_peer_close = [session] {
    if (const auto conn = session->connection.lock()) {
      conn->close();
    }
  };
  callbacks.on_send_progress = [this, session] { pump_writer(session); };
  return callbacks;
}

void MuxServer::on_data(const std::shared_ptr<Session>& session,
                        std::string_view bytes) {
  session->parser.push(bytes);
  if (session->parser.failed()) {
    MAHI_WARN("mux-server") << "frame parse failure; aborting connection";
    if (const auto conn = session->connection.lock()) {
      conn->abort();
    }
    return;
  }
  while (session->parser.has_frame()) {
    const Frame frame = session->parser.pop();
    if (frame.type != Frame::Type::kRequest) {
      continue;  // clients only send requests
    }
    http::RequestParser request_parser;
    request_parser.push(frame.payload);
    if (request_parser.failed() || !request_parser.has_message()) {
      MAHI_WARN("mux-server") << "bad request in stream " << frame.stream_id;
      continue;
    }
    ServerFault fault;
    if (fault_hook_) {
      fault = fault_hook_(requests_seen_);
    }
    ++requests_seen_;
    if (fault.kind == ServerFault::Kind::kStall) {
      // Accept-and-stall: the stream never sees a data frame.
      ++faults_injected_;
      continue;
    }
    http::Response response = handler_(request_parser.pop());
    http::finalize_content_length(response);
    ++requests_served_;
    const Microseconds delay = processing_delay_ + fault.extra_delay;
    if (fault.kind == ServerFault::Kind::kCrash) {
      // Crash mid-response: one partial data frame, then RST. Every other
      // stream on the connection dies with it — shared-fate, as real.
      ++faults_injected_;
      std::string wire = http::to_bytes(response);
      const double fraction = std::clamp(fault.fraction, 0.0, 1.0);
      const auto cut = static_cast<std::size_t>(
          static_cast<double>(wire.size()) * fraction);
      wire.resize(std::max<std::size_t>(1, std::min(cut, wire.size())));
      auto crash = [session, id = frame.stream_id, wire = std::move(wire)] {
        if (const auto conn = session->connection.lock()) {
          conn->send(encode_frame_header(
              id, Frame::Type::kData, static_cast<std::uint32_t>(wire.size())));
          conn->send(wire);
          conn->abort();
        }
      };
      if (delay > 0) {
        fabric_.loop().schedule_in(delay, std::move(crash));
      } else {
        crash();
      }
      return;  // the connection is (about to be) gone
    }
    if (delay > 0) {
      fabric_.loop().schedule_in(
          delay, [this, session, id = frame.stream_id,
                  r = std::move(response)]() mutable {
            start_response(session, id, std::move(r));
          });
    } else {
      start_response(session, frame.stream_id, std::move(response));
    }
  }
}

void MuxServer::start_response(const std::shared_ptr<Session>& session,
                               std::uint32_t stream_id,
                               http::Response response) {
  // One shared buffer per response; every data frame below aliases it.
  session->pending_streams[stream_id] = Payload{http::to_bytes(response)};
  session->next_stream = session->pending_streams.begin();
  pump_writer(session);
}

void MuxServer::pump_writer(const std::shared_ptr<Session>& session) {
  const auto connection = session->connection.lock();
  if (!connection || connection->closed()) {
    return;
  }
  // Round-robin one chunk per active stream while the send buffer has
  // room — this is what interleaves large and small responses.
  while (!session->pending_streams.empty() &&
         connection->unacked_send_bytes() < kWriterHighWater) {
    if (session->next_stream == session->pending_streams.end()) {
      session->next_stream = session->pending_streams.begin();
    }
    auto it = session->next_stream;
    Payload& remaining = it->second;
    const std::size_t take = std::min(chunk_bytes_, remaining.size());
    // Zero-copy: 9 header bytes are fresh; the payload chunk is an
    // aliasing slice of the response buffer, and draining advances the
    // view instead of erasing bytes.
    connection->send(encode_frame_header(it->first, Frame::Type::kData,
                                         static_cast<std::uint32_t>(take)));
    connection->send(remaining.slice(0, take));
    remaining = remaining.without_prefix(take);
    if (remaining.empty()) {
      connection->send(encode_frame_header(it->first, Frame::Type::kEnd, 0));
      session->next_stream = session->pending_streams.erase(it);
    } else {
      ++session->next_stream;
    }
  }
}

// --- MuxClientConnection ----------------------------------------------------------

MuxClientConnection::MuxClientConnection(Fabric& fabric, Address server,
                                         ErrorCallback on_error,
                                         TcpConnection::Config config)
    : fabric_{fabric},
      on_error_{std::move(on_error)},
      client_{fabric, server,
              TcpConnection::Callbacks{
                  .on_connected =
                      [this] {
                        connected_ = true;
                        // Streams opened pre-connect all waited on this
                        // handshake; later streams find connected_ set and
                        // never get the callback (warm connection).
                        for (auto& [id, stream] : streams_) {
                          if (stream.hooks.on_connected) {
                            auto cb = std::move(stream.hooks.on_connected);
                            stream.hooks.on_connected = nullptr;
                            cb();
                          }
                        }
                        for (auto& frame : queued_frames_) {
                          client_.connection().send(std::move(frame));
                        }
                        queued_frames_.clear();
                      },
                  .on_data = [this](std::string_view b) { on_data(b); },
                  .on_peer_close =
                      [this] {
                        if (!streams_.empty()) {
                          fail("connection closed with streams open");
                        }
                        alive_ = false;
                      },
                  .on_reset =
                      [this] {
                        switch (client_.connection().close_reason()) {
                          case TcpConnection::CloseReason::kSynTimeout:
                          case TcpConnection::CloseReason::kRetransmitExhausted:
                            fail(std::string{to_string(
                                client_.connection().close_reason())});
                            break;
                          default:
                            fail("connection reset");
                            break;
                        }
                      }},
              std::move(config)} {}

void MuxClientConnection::fetch(http::Request request,
                                ResponseCallback callback, FetchHooks hooks) {
  MAHI_ASSERT(callback != nullptr);
  if (!alive_) {
    if (on_error_) {
      on_error_("fetch on dead mux connection");
    }
    return;
  }
  const std::uint32_t id = next_stream_id_++;
  auto& stream = streams_[id];
  stream.callback = std::move(callback);
  stream.hooks = std::move(hooks);
  stream.parser.notify_request(request.method);

  http::finalize_content_length(request);
  Frame frame;
  frame.stream_id = id;
  frame.type = Frame::Type::kRequest;
  frame.payload = http::to_bytes(request);
  std::string wire = encode_frame(frame);
  // "Sent" = handed to the transport (or its pre-connect queue), matching
  // the HTTP/1.1 client's notion of the request leaving the application.
  // Copied out first: the stream map must not be touched after send().
  const auto on_sent = stream.hooks.on_sent;
  if (connected_) {
    client_.connection().send(std::move(wire));
  } else {
    queued_frames_.push_back(std::move(wire));
  }
  if (on_sent) {
    on_sent();
  }
}

void MuxClientConnection::on_data(std::string_view bytes) {
  parser_.push(bytes);
  if (parser_.failed()) {
    fail("mux frame parse failure");
    return;
  }
  while (parser_.has_frame()) {
    const Frame frame = parser_.pop();
    const auto it = streams_.find(frame.stream_id);
    if (it == streams_.end()) {
      continue;  // stale frame for a cancelled stream
    }
    Stream& stream = it->second;
    if (frame.type == Frame::Type::kData) {
      if (!frame.payload.empty() && stream.hooks.on_first_byte) {
        auto first_byte = std::move(stream.hooks.on_first_byte);
        stream.hooks.on_first_byte = nullptr;
        first_byte();
      }
      stream.parser.push(frame.payload);
      if (stream.parser.failed()) {
        fail("response parse failure on stream " +
             std::to_string(frame.stream_id));
        return;
      }
    } else if (frame.type == Frame::Type::kEnd) {
      stream.parser.on_close();
      if (!stream.parser.has_message()) {
        fail("stream ended without a complete response");
        return;
      }
      ResponseCallback callback = std::move(stream.callback);
      http::Response response = stream.parser.pop();
      streams_.erase(it);
      callback(std::move(response));
    }
  }
}

void MuxClientConnection::fail(const std::string& reason) {
  if (!alive_ && streams_.empty()) {
    return;
  }
  alive_ = false;
  streams_.clear();
  if (on_error_) {
    on_error_(reason);
  }
}

}  // namespace mahimahi::net::mux
