#pragma once

#include <functional>

namespace mahimahi::net {

/// Optional per-request observability callbacks, shared by the HTTP/1.1
/// and multiplexed client connections. All members may be null (the
/// default — zero overhead). The browser uses these to timestamp the
/// request→first-byte edges of its per-object waterfall.
struct FetchHooks {
  /// The carrying connection completed its handshake after this request
  /// was queued. Never fires for a request queued on an already-warm
  /// connection — HAR's "connect": -1 convention. Fires once.
  std::function<void()> on_connected;
  /// Request bytes were handed to the transport.
  std::function<void()> on_sent;
  /// First bytes of this request's response arrived.
  std::function<void()> on_first_byte;
};

}  // namespace mahimahi::net
