#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/fault_hooks.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Hostname -> IP mapping for one namespace. ReplayShell fills this with
/// one entry per recorded hostname (what mahimahi's dnsmasq serves);
/// LiveWeb fills it with the "real" internet addresses.
class DnsTable {
 public:
  void add(std::string hostname, Ipv4 ip);
  [[nodiscard]] std::optional<Ipv4> lookup(std::string_view hostname) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, Ipv4> entries_;
};

/// Well-known DNS server port.
inline constexpr std::uint16_t kDnsPort = 53;

/// A DNS server endpoint on the server side of the fabric. Queries and
/// answers are real packets that traverse the emulated chain, so DNS
/// lookups pay the same delay/bandwidth the browser's HTTP traffic does —
/// exactly as in mahimahi, where the browser inside mm-delay reaches
/// dnsmasq through the emulated link.
class DnsServer {
 public:
  DnsServer(Fabric& fabric, Address local, const DnsTable& table);
  ~DnsServer();

  DnsServer(const DnsServer&) = delete;
  DnsServer& operator=(const DnsServer&) = delete;

  [[nodiscard]] Address address() const { return local_; }
  [[nodiscard]] std::uint64_t queries_served() const { return queries_served_; }
  [[nodiscard]] std::uint64_t faults_injected() const { return faults_injected_; }

  /// Fault injection: consulted once per arriving query (indexed in arrival
  /// order) before the answer is formed. Null = no faults.
  void set_fault_hook(DnsFaultHook hook) { fault_hook_ = std::move(hook); }

  /// Observability: injected DNS faults are recorded as fault-layer
  /// events tagged "dns/drop" or "dns/fail" with the query index.
  void set_tracer(obs::Tracer* tracer, std::int32_t session) {
    tracer_ = tracer;
    trace_session_ = session;
  }

 private:
  void handle_packet(Packet&& packet);

  Fabric& fabric_;
  Address local_;
  const DnsTable& table_;
  std::uint64_t queries_served_{0};
  std::uint64_t faults_injected_{0};
  DnsFaultHook fault_hook_;
  obs::Tracer* tracer_{nullptr};
  std::int32_t trace_session_{0};
};

/// Stub resolver with a cache and retry-on-timeout, used by the browser.
class DnsClient {
 public:
  using ResolveCallback =
      std::function<void(std::optional<Ipv4>)>;  // nullopt = NXDOMAIN/timeout

  DnsClient(Fabric& fabric, Address server, Microseconds query_timeout = 3'000'000,
            int max_retries = 2);
  ~DnsClient();

  DnsClient(const DnsClient&) = delete;
  DnsClient& operator=(const DnsClient&) = delete;

  /// Resolve a hostname. Cached answers complete synchronously.
  void resolve(const std::string& hostname, ResolveCallback callback);

  /// Observability: queries, timeout retransmits and answers become
  /// dns-layer events labeled with the hostname.
  void set_tracer(obs::Tracer* tracer, std::int32_t session) {
    tracer_ = tracer;
    trace_session_ = session;
  }

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  struct Pending {
    std::vector<ResolveCallback> callbacks;
    int retries_left{0};
    EventLoop::EventId timeout_event{0};
  };

  void send_query(const std::string& hostname);
  void handle_packet(Packet&& packet);
  void on_timeout(const std::string& hostname);
  void complete(const std::string& hostname, std::optional<Ipv4> answer);

  Fabric& fabric_;
  Address local_;
  Address server_;
  Microseconds query_timeout_;
  int max_retries_;
  std::unordered_map<std::string, Ipv4> cache_;
  std::unordered_map<std::string, Pending> pending_;
  std::uint64_t cache_hits_{0};
  std::uint64_t queries_sent_{0};
  obs::Tracer* tracer_{nullptr};
  std::int32_t trace_session_{0};
};

}  // namespace mahimahi::net
