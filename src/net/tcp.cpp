#include "net/tcp.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "cc/registry.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::net {
namespace {

constexpr double kMssBytes = static_cast<double>(kMss);

}  // namespace

// --- SendBuffer ---------------------------------------------------------------

void SendBuffer::push(Payload data) {
  if (data.empty()) {
    return;
  }
  staging_.reset();  // seal: sequence space after the tail is taken
  const std::uint64_t start = end_;
  end_ += data.size();
  chunks_.push_back(Chunk{start, std::move(data)});
}

void SendBuffer::push_bytes(std::string data) {
  if (data.empty()) {
    return;
  }
  if (data.size() >= kMss) {
    push(Payload{std::move(data)});  // big write: its own zero-copy chunk
    return;
  }
  // Small write: coalesce into the staging tail (a fixed-capacity array
  // filled in place — outstanding views stay valid by construction).
  if (staging_ != nullptr && staging_size_ + data.size() > staging_capacity_) {
    // Consecutive small writes keep overflowing: give the next staging
    // chunk more headroom (fewer boundaries, fewer materialized slices).
    staging_reserve_ = std::min(staging_reserve_ * 4, kMaxStagingBytes);
    staging_.reset();
  }
  if (staging_ == nullptr) {
    staging_capacity_ = std::max(staging_reserve_, data.size());
    staging_ = std::make_shared_for_overwrite<char[]>(staging_capacity_);
    staging_size_ = 0;
    chunks_.push_back(Chunk{end_, Payload{}});
  }
  std::memcpy(staging_.get() + staging_size_, data.data(), data.size());
  staging_size_ += data.size();
  end_ += data.size();
  // Refresh the tail chunk's view to cover the written prefix (aliasing
  // owner handle: the array outlives every view).
  chunks_.back().bytes = Payload::from_storage(
      std::shared_ptr<const void>{staging_, staging_.get()}, staging_.get(),
      staging_size_);
}

void SendBuffer::ack_to(std::uint64_t seq) {
  if (seq <= base_) {
    return;
  }
  MAHI_ASSERT_MSG(seq <= end_, "ack beyond buffered data");
  base_ = seq;
  while (!chunks_.empty()) {
    const Chunk& front = chunks_.front();
    if (front.start + front.bytes.size() > base_) {
      break;  // partially acked; keep until its last byte is acked
    }
    chunks_.pop_front();
  }
  if (chunks_.empty()) {
    staging_.reset();  // the staging chunk was fully acked and released
  }
}

Payload SendBuffer::slice(std::uint64_t seq, std::size_t length) const {
  MAHI_ASSERT_MSG(seq >= base_ && seq + length <= end_,
                  "slice outside buffered data");
  if (length == 0) {
    return {};
  }
  // Chunks are sorted by start; find the first whose end covers `seq`.
  const auto it = std::partition_point(
      chunks_.begin(), chunks_.end(), [seq](const Chunk& chunk) {
        return chunk.start + chunk.bytes.size() <= seq;
      });
  const std::size_t offset = static_cast<std::size_t>(seq - it->start);
  if (offset + length <= it->bytes.size()) {
    return it->bytes.slice(offset, length);  // common case: aliasing view
  }
  // Rare: the segment spans a chunk boundary; materialize one buffer.
  std::string joined;
  joined.reserve(length);
  std::uint64_t pos = seq;
  for (auto chunk = it; joined.size() < length; ++chunk) {
    const auto chunk_offset = static_cast<std::size_t>(pos - chunk->start);
    const std::string_view piece =
        chunk->bytes.view().substr(chunk_offset, length - joined.size());
    joined.append(piece);
    pos += piece.size();
  }
  copied_bytes_ += length;
  return Payload{std::move(joined)};
}

// --- TcpConnection ------------------------------------------------------------

TcpConnection::TcpConnection(Fabric& fabric, Side side, Address local,
                             Address remote, Callbacks callbacks, Config config)
    : fabric_{fabric},
      loop_{fabric.loop()},
      side_{side},
      local_{local},
      remote_{remote},
      callbacks_{std::move(callbacks)},
      config_{std::move(config)} {
  cc::Params params;
  params.mss_bytes = kMssBytes;
  params.initial_cwnd_bytes = config_.initial_window_segments * kMssBytes;
  cc_ = cc::make_controller(config_.congestion_control, params);
  if (config_.tracer != nullptr) {
    // Flow ids are allocated in construction order, which is simulation
    // order — deterministic per the event-loop contract.
    flow_id_ = config_.tracer->allocate_flow_id();
  }
}

void TcpConnection::trace(obs::EventKind kind, std::uint64_t value,
                          double metric, std::string label) {
  if (config_.tracer == nullptr) {
    return;
  }
  config_.tracer->event(loop_.now(), obs::Layer::kTcp, kind,
                        config_.trace_session, flow_id_, value, metric,
                        std::move(label));
}

void TcpConnection::start() { send_syn(); }

void TcpConnection::accept_syn(const TcpSegment& syn) {
  MAHI_ASSERT(syn.syn && !syn.has_ack);
  state_ = State::kSynReceived;
  trace(obs::EventKind::kTcpConnect, 0, 0, remote_.to_string());
  snd_una_ = 0;
  snd_nxt_ = 1;  // our SYN-ACK's SYN consumes sequence 0
  rcv_nxt_ = syn.seq + 1;
  syn_sent_at_ = loop_.now();
  TcpSegment syn_ack;
  syn_ack.seq = 0;
  syn_ack.syn = true;
  syn_ack.ack = rcv_nxt_;
  syn_ack.has_ack = true;
  emit_segment(std::move(syn_ack));
  arm_retransmit_timer();
}

TcpConnection::~TcpConnection() {
  disarm_retransmit_timer();
  disarm_pacing_timer();
}

Microseconds TcpConnection::rto() const {
  if (backoff_rto_ != 0) {
    return backoff_rto_;
  }
  if (srtt_ == 0) {
    return config_.initial_rto;
  }
  const Microseconds computed = srtt_ + std::max<Microseconds>(4 * rttvar_, 1'000);
  return std::clamp(computed, config_.min_rto, config_.max_rto);
}

void TcpConnection::emit_segment(TcpSegment segment) {
  Packet packet;
  packet.src = local_;
  packet.dst = remote_;
  packet.protocol = Protocol::kTcp;
  packet.tcp = std::move(segment);
  ++segments_sent_;
  fabric_.send(side_, std::move(packet));
}

void TcpConnection::send_syn() {
  state_ = State::kSynSent;
  trace(obs::EventKind::kTcpConnect, 0, 0, remote_.to_string());
  snd_una_ = 0;
  snd_nxt_ = 1;  // SYN consumes sequence 0
  syn_sent_at_ = loop_.now();
  TcpSegment syn;
  syn.seq = 0;
  syn.syn = true;
  emit_segment(std::move(syn));
  arm_retransmit_timer();
}

void TcpConnection::send_pure_ack() {
  TcpSegment ack;
  ack.seq = snd_nxt_;
  ack.ack = rcv_nxt_;
  ack.has_ack = true;
  emit_segment(std::move(ack));
}

void TcpConnection::send(std::string data) {
  MAHI_ASSERT_MSG(!fin_queued_, "send() after close()");
  if (data.empty() || state_ == State::kClosed) {
    return;
  }
  bytes_sent_app_ += data.size();
  send_buffer_.push_bytes(std::move(data));  // sub-MSS writes coalesce
  if (established()) {
    try_send_data();
  }
}

void TcpConnection::send(Payload data) {
  MAHI_ASSERT_MSG(!fin_queued_, "send() after close()");
  if (data.empty() || state_ == State::kClosed) {
    return;
  }
  bytes_sent_app_ += data.size();
  send_buffer_.push(std::move(data));
  if (established()) {
    try_send_data();
  }
}

void TcpConnection::close() {
  if (fin_queued_ || state_ == State::kClosed) {
    return;
  }
  fin_queued_ = true;
  if (established()) {
    try_send_data();
  }
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) {
    return;
  }
  close_reason_ = CloseReason::kLocalAbort;
  TcpSegment rst;
  rst.seq = snd_nxt_;
  rst.rst = true;
  emit_segment(std::move(rst));
  become_closed();
}

void TcpConnection::try_send_data() {
  if (!established() && state_ != State::kFinSent) {
    return;
  }
  const std::uint64_t data_end = send_buffer_.end();
  while (snd_nxt_ < data_end) {
    const std::size_t available = static_cast<std::size_t>(data_end - snd_nxt_);
    const std::size_t length = std::min<std::size_t>(kMss, available);
    if (static_cast<double>(flight_size() + length) > cc_->cwnd_bytes()) {
      break;  // congestion window full
    }
    if (!pacing_admits(length)) {
      break;  // pacing timer armed; try_send_data resumes on release
    }
    send_data_segment(snd_nxt_, length, /*retransmit=*/false);
    snd_nxt_ += length;
  }
  // FIN goes out once all data is sent (it consumes one sequence number).
  if (fin_queued_ && !fin_sent_ && snd_nxt_ == data_end) {
    fin_seq_ = snd_nxt_;
    TcpSegment fin;
    fin.seq = fin_seq_;
    fin.fin = true;
    fin.ack = rcv_nxt_;
    fin.has_ack = true;
    emit_segment(std::move(fin));
    snd_nxt_ += 1;
    fin_sent_ = true;
    if (state_ == State::kEstablished || state_ == State::kCloseWait) {
      state_ = State::kFinSent;
    }
  }
  if (flight_size() > 0) {
    arm_retransmit_timer();
  }
}

bool TcpConnection::pacing_admits(std::size_t length) {
  const double rate = cc_->pacing_rate();  // payload bytes per second
  if (rate <= 0) {
    return true;  // window-limited controller: burst freely
  }
  const Microseconds now = loop_.now();
  if (pace_release_ > now) {
    if (pace_event_ == 0) {
      pace_event_ = loop_.schedule_at(pace_release_, [this] {
        pace_event_ = 0;
        try_send_data();
      });
    }
    return false;
  }
  const auto gap = static_cast<Microseconds>(
      static_cast<double>(length) * 1e6 / rate);
  pace_release_ = std::max(pace_release_, now) + std::max<Microseconds>(gap, 1);
  return true;
}

void TcpConnection::disarm_pacing_timer() {
  if (pace_event_ != 0) {
    loop_.cancel(pace_event_);
    pace_event_ = 0;
  }
}

void TcpConnection::send_data_segment(std::uint64_t seq, std::size_t length,
                                      bool retransmit) {
  TcpSegment seg;
  seg.seq = seq;
  seg.ack = rcv_nxt_;
  seg.has_ack = true;
  // Zero-copy: the segment aliases the buffered chunk (transmission and
  // retransmission alike); SendBuffer::slice asserts the range is buffered.
  seg.payload = send_buffer_.slice(seq, length);
  emit_segment(std::move(seg));
  if (retransmit) {
    ++retransmissions_;
    trace(obs::EventKind::kTcpRetransmit, seq, 0, {});
    // Karn's algorithm: samples spanning a retransmission are invalid.
    rtt_sample_pending_ = false;
  } else if (!rtt_sample_pending_) {
    rtt_sample_pending_ = true;
    rtt_sample_end_seq_ = seq + length;
    rtt_sample_sent_at_ = loop_.now();
  }
}

void TcpConnection::handle_packet(Packet&& packet) {
  if (state_ == State::kClosed) {
    // A closed endpoint answers anything but RST with RST, so a peer
    // stuck retransmitting learns quickly instead of backing off forever.
    if (!packet.tcp.rst) {
      TcpSegment rst;
      rst.seq = snd_nxt_;
      rst.rst = true;
      emit_segment(std::move(rst));
    }
    return;
  }
  const TcpSegment& seg = packet.tcp;

  if (seg.rst) {
    close_reason_ = CloseReason::kPeerReset;
    if (callbacks_.on_reset) {
      callbacks_.on_reset();
    }
    become_closed();
    return;
  }

  // --- handshake states ---
  if (state_ == State::kSynSent) {
    if (seg.syn && seg.has_ack && seg.ack == 1) {
      snd_una_ = 1;
      rcv_nxt_ = seg.seq + 1;
      state_ = State::kEstablished;
      trace(obs::EventKind::kTcpEstablished, 0, 0, {});
      backoff_rto_ = 0;
      if (syn_retries_ == 0) {  // Karn: no sample across a retransmitted SYN
        rtt_sample(loop_.now() - syn_sent_at_);
      }
      syn_retries_ = 0;
      disarm_retransmit_timer();
      send_pure_ack();
      if (callbacks_.on_connected) {
        callbacks_.on_connected();
      }
      try_send_data();
    }
    return;
  }

  if (state_ == State::kSynReceived) {
    if (seg.syn && !seg.has_ack) {
      // Duplicate SYN (our SYN-ACK was lost): resend it.
      TcpSegment syn_ack;
      syn_ack.seq = 0;
      syn_ack.syn = true;
      syn_ack.ack = rcv_nxt_;
      syn_ack.has_ack = true;
      emit_segment(std::move(syn_ack));
      return;
    }
    if (seg.has_ack && seg.ack >= 1) {
      snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
      state_ = State::kEstablished;
      trace(obs::EventKind::kTcpEstablished, 0, 0, {});
      backoff_rto_ = 0;
      if (syn_retries_ == 0) {
        rtt_sample(loop_.now() - syn_sent_at_);
      }
      syn_retries_ = 0;
      disarm_retransmit_timer();
      if (callbacks_.on_connected) {
        callbacks_.on_connected();
      }
      // Fall through: the ACK may carry data (or more ack info).
    } else {
      return;
    }
  }

  // A retransmitted SYN-ACK after we are established: our handshake ACK
  // was lost; re-acknowledge.
  if (seg.syn) {
    send_pure_ack();
    return;
  }

  if (seg.has_ack) {
    handle_ack(seg);
    if (state_ == State::kClosed) {
      return;  // handle_ack may complete a close
    }
  }
  if (!seg.payload.empty() || seg.fin) {
    handle_payload(packet);
  }
}

void TcpConnection::handle_ack(const TcpSegment& seg) {
  if (seg.ack > snd_nxt_) {
    return;  // acks data we never sent; ignore
  }
  if (seg.ack > snd_una_) {
    const std::uint64_t newly_acked = seg.ack - snd_una_;
    snd_una_ = seg.ack;
    dup_acks_ = 0;
    backoff_rto_ = 0;
    consecutive_rtos_ = 0;

    // Release acknowledged bytes from the send buffer (data seq space
    // only). Whole chunks are dropped in O(1) — no byte shuffling.
    const std::uint64_t data_end = send_buffer_.end();
    send_buffer_.ack_to(std::min(snd_una_, data_end));

    if (rtt_sample_pending_ && seg.ack >= rtt_sample_end_seq_) {
      rtt_sample_pending_ = false;
      rtt_sample(loop_.now() - rtt_sample_sent_at_);
    }

    // Recovery mechanics stay in the transport; the window response is
    // the controller's (Reno deflates/exits, CUBIC re-anchors its curve).
    cc::AckEvent ack_event;
    ack_event.newly_acked_bytes = newly_acked;
    ack_event.now = loop_.now();
    if (in_recovery_) {
      if (seg.ack >= recovery_point_) {
        in_recovery_ = false;
        ack_event.exiting_recovery = true;
      } else {
        ack_event.in_recovery = true;
        // NewReno partial ack: retransmit the next hole immediately.
        const std::uint64_t hole_len =
            std::min<std::uint64_t>(kMss, data_end - snd_una_);
        if (hole_len > 0 && snd_una_ >= send_buffer_.base()) {
          send_data_segment(snd_una_, static_cast<std::size_t>(hole_len), true);
        }
      }
    }
    ack_event.bytes_in_flight = flight_size();
    cc_->on_ack(ack_event);

    if (fin_sent_ && seg.ack > fin_seq_) {
      our_fin_acked_ = true;
    }

    if (flight_size() > 0) {
      arm_retransmit_timer();
    } else {
      disarm_retransmit_timer();
    }
    maybe_finish_close();
    if (state_ != State::kClosed) {
      try_send_data();
      if (callbacks_.on_send_progress) {
        callbacks_.on_send_progress();
      }
    }
    return;
  }

  // Duplicate ACK (no window update modelling, so any same-ack counts
  // when data is in flight and the segment carries no payload/fin).
  if (seg.ack == snd_una_ && flight_size() > 0 && seg.payload.empty() &&
      !seg.fin) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      enter_recovery();
    } else {
      cc::AckEvent dup;
      dup.is_duplicate = true;
      dup.bytes_in_flight = flight_size();
      dup.in_recovery = in_recovery_;
      dup.now = loop_.now();
      cc_->on_ack(dup);  // Reno inflates during recovery; others observe
      if (in_recovery_) {
        try_send_data();
      }
    }
  }
}

void TcpConnection::enter_recovery() {
  cc::LossEvent loss;
  loss.bytes_in_flight = flight_size();
  loss.now = loop_.now();
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  cc_->on_loss_event(loss);
  const std::uint64_t data_end = send_buffer_.end();
  if (snd_una_ < data_end) {
    const std::uint64_t len = std::min<std::uint64_t>(kMss, data_end - snd_una_);
    send_data_segment(snd_una_, static_cast<std::size_t>(len), true);
  } else if (fin_sent_ && snd_una_ == fin_seq_) {
    TcpSegment fin;
    fin.seq = fin_seq_;
    fin.fin = true;
    fin.ack = rcv_nxt_;
    fin.has_ack = true;
    ++retransmissions_;
    emit_segment(std::move(fin));
  }
  arm_retransmit_timer();
}

void TcpConnection::handle_payload(const Packet& packet) {
  const TcpSegment& seg = packet.tcp;
  if (!seg.payload.empty()) {
    const std::uint64_t seg_end = seg.seq + seg.payload.size();
    if (seg_end > rcv_nxt_) {
      // Keep only the part at/after rcv_nxt_ if the segment overlaps
      // already-received data. Stored as payload views — reassembly holds
      // references into the sender's buffers, never copies.
      std::uint64_t start = seg.seq;
      Payload payload = seg.payload;
      if (start < rcv_nxt_) {
        payload = payload.without_prefix(static_cast<std::size_t>(rcv_nxt_ - start));
        start = rcv_nxt_;
      }
      const auto [it, inserted] = out_of_order_.try_emplace(start, payload);
      if (!inserted && it->second.size() < payload.size()) {
        it->second = std::move(payload);
      }
      deliver_in_order();
    }
  }
  if (seg.fin) {
    peer_fin_seen_ = true;
    peer_fin_seq_ = seg.seq + seg.payload.size();
    deliver_in_order();
  }
  // Immediate ACK for every received segment (no delayed-ACK modelling).
  send_pure_ack();
  maybe_finish_close();
}

void TcpConnection::deliver_in_order() {
  // The on_data callback may synchronously trigger more packets (zero-
  // latency chains) and re-enter this function; the guard makes the outer
  // frame the only one that drains, which is safe because the loop
  // re-reads begin() each pass.
  if (delivering_) {
    return;
  }
  delivering_ = true;
  while (true) {
    const auto it = out_of_order_.begin();
    if (it == out_of_order_.end() || it->first > rcv_nxt_) {
      break;
    }
    const std::uint64_t start = it->first;
    const Payload chunk = std::move(it->second);  // keeps the buffer alive
    out_of_order_.erase(it);  // erase before the callback: re-entrancy
    const std::uint64_t end = start + chunk.size();
    if (end <= rcv_nxt_) {
      continue;  // stale duplicate
    }
    const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - start);
    const std::string_view fresh = chunk.view().substr(skip);
    bytes_received_app_ += fresh.size();
    rcv_nxt_ = end;
    if (callbacks_.on_data) {
      callbacks_.on_data(fresh);
      if (state_ == State::kClosed) {
        delivering_ = false;
        return;  // callback closed the connection
      }
    }
  }
  delivering_ = false;
  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;  // FIN consumes one sequence number
    if (state_ == State::kEstablished) {
      state_ = State::kCloseWait;
    }
    if (callbacks_.on_peer_close) {
      callbacks_.on_peer_close();
    }
  }
}

void TcpConnection::on_rto_expired() {
  rto_event_ = 0;
  if (state_ == State::kClosed) {
    return;
  }
  trace(obs::EventKind::kTcpRto,
        static_cast<std::uint64_t>(consecutive_rtos_ + 1), to_ms(rto()), {});
  // Back off the timer (RFC 6298 §5.5).
  backoff_rto_ = std::min<Microseconds>(rto() * 2, config_.max_rto);

  if (state_ == State::kSynSent || state_ == State::kSynReceived) {
    if (++syn_retries_ > config_.max_syn_retries) {
      close_reason_ = CloseReason::kSynTimeout;
      if (callbacks_.on_reset) {
        callbacks_.on_reset();
      }
      become_closed();
      return;
    }
    TcpSegment syn;
    syn.seq = 0;
    syn.syn = true;
    if (state_ == State::kSynReceived) {
      syn.ack = rcv_nxt_;
      syn.has_ack = true;
    }
    ++retransmissions_;
    emit_segment(std::move(syn));
    arm_retransmit_timer();
    return;
  }

  if (flight_size() == 0) {
    return;  // stale timer
  }
  if (++consecutive_rtos_ > config_.max_rto_retries) {
    // The peer is unreachable (or gone): give up like tcp_retries2.
    close_reason_ = CloseReason::kRetransmitExhausted;
    if (callbacks_.on_reset) {
      callbacks_.on_reset();
    }
    become_closed();
    return;
  }
  // Collapse to one segment; the controller decides where slow start
  // resumes from.
  cc::RtoEvent rto_event;
  rto_event.bytes_in_flight = flight_size();
  rto_event.now = loop_.now();
  cc_->on_rto(rto_event);
  in_recovery_ = false;
  dup_acks_ = 0;
  const std::uint64_t data_end = send_buffer_.end();
  if (snd_una_ < data_end) {
    const std::uint64_t len = std::min<std::uint64_t>(kMss, data_end - snd_una_);
    send_data_segment(snd_una_, static_cast<std::size_t>(len), true);
  } else if (fin_sent_ && snd_una_ == fin_seq_) {
    TcpSegment fin;
    fin.seq = fin_seq_;
    fin.fin = true;
    fin.ack = rcv_nxt_;
    fin.has_ack = true;
    ++retransmissions_;
    emit_segment(std::move(fin));
  }
  arm_retransmit_timer();
}

void TcpConnection::arm_retransmit_timer() {
  disarm_retransmit_timer();
  rto_event_ = loop_.schedule_in(rto(), [this] { on_rto_expired(); });
}

void TcpConnection::disarm_retransmit_timer() {
  if (rto_event_ != 0) {
    loop_.cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpConnection::rtt_sample(Microseconds sample) {
  sample = std::max<Microseconds>(sample, 1);
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Microseconds err = std::abs(srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  cc_->on_rtt_sample(sample, loop_.now());
  if (config_.tracer != nullptr) {
    // One cwnd/srtt sample per accepted RTT measurement — bounds trace
    // volume to O(RTTs) instead of O(segments).
    const double ssthresh = cc_->ssthresh_bytes();
    trace(obs::EventKind::kTcpCwndSample,
          ssthresh >= cc::kInfiniteSsthresh
              ? 0
              : static_cast<std::uint64_t>(ssthresh),
          cc_->cwnd_bytes(), {});
    trace(obs::EventKind::kTcpRttSample, static_cast<std::uint64_t>(sample),
          to_ms(srtt_), {});
  }
}

void TcpConnection::maybe_finish_close() {
  if (state_ == State::kClosed) {
    return;
  }
  const bool peer_done = peer_fin_seen_ && rcv_nxt_ > peer_fin_seq_;
  if (our_fin_acked_ && peer_done) {
    become_closed();  // TIME_WAIT elided: structural demux makes it unnecessary
  }
}

void TcpConnection::become_closed() {
  state_ = State::kClosed;
  if (close_reason_ == CloseReason::kNone) {
    close_reason_ = CloseReason::kNormal;
  }
  trace(obs::EventKind::kTcpClose, 0, 0,
        std::string(to_string(close_reason_)));
  disarm_retransmit_timer();
  disarm_pacing_timer();
  if (on_destroyed) {
    on_destroyed();
  }
}

// --- TcpClient ---------------------------------------------------------------

TcpClient::TcpClient(Fabric& fabric, Address remote,
                     TcpConnection::Callbacks callbacks,
                     TcpConnection::Config config)
    : fabric_{fabric}, local_{fabric.allocate_client_address()} {
  connection_ = std::make_unique<TcpConnection>(fabric, Side::kClient, local_,
                                                remote, std::move(callbacks),
                                                config);
  fabric_.bind(Side::kClient, local_, [conn = connection_.get()](Packet&& p) {
    conn->handle_packet(std::move(p));
  });
  connection_->start();
}

TcpClient::~TcpClient() { fabric_.unbind(Side::kClient, local_); }

// --- TcpListener --------------------------------------------------------------

TcpListener::TcpListener(Fabric& fabric, Address local, AcceptHandler on_accept,
                         TcpConnection::Config config)
    : fabric_{fabric},
      local_{local},
      on_accept_{std::move(on_accept)},
      config_{config} {
  MAHI_ASSERT(on_accept_ != nullptr);
  fabric_.bind(Side::kServer, local_,
               [this](Packet&& p) { handle_packet(std::move(p)); });
}

TcpListener::~TcpListener() { fabric_.unbind(Side::kServer, local_); }

void TcpListener::handle_packet(Packet&& packet) {
  const Address peer = packet.src;
  const auto it = connections_.find(peer);
  if (it != connections_.end()) {
    it->second->handle_packet(std::move(packet));
    return;
  }
  if (!packet.tcp.syn || packet.tcp.has_ack) {
    // Not a new connection attempt: answer with RST like a real stack.
    if (!packet.tcp.rst) {
      Packet rst;
      rst.src = local_;
      rst.dst = peer;
      rst.protocol = Protocol::kTcp;
      rst.tcp.rst = true;
      fabric_.send(Side::kServer, std::move(rst));
    }
    return;
  }
  // New connection.
  auto connection = std::make_shared<TcpConnection>(
      fabric_, Side::kServer, local_, peer, TcpConnection::Callbacks{}, config_);
  connection->set_callbacks(on_accept_(connection));
  connection->on_destroyed = [this, peer] {
    // Defer erasure: we may be inside this connection's own call stack.
    fabric_.loop().schedule_in(0, [this, peer] { connections_.erase(peer); });
  };
  connections_.emplace(peer, connection);
  ++total_accepted_;
  connection->accept_syn(packet.tcp);
}

std::string_view to_string(TcpConnection::CloseReason reason) {
  switch (reason) {
    case TcpConnection::CloseReason::kNone:
      return "open";
    case TcpConnection::CloseReason::kNormal:
      return "closed";
    case TcpConnection::CloseReason::kPeerReset:
      return "peer reset";
    case TcpConnection::CloseReason::kSynTimeout:
      return "connect timeout (SYN retransmit limit)";
    case TcpConnection::CloseReason::kRetransmitExhausted:
      return "retransmit limit exhausted";
    case TcpConnection::CloseReason::kLocalAbort:
      return "local abort";
  }
  return "unknown";
}

}  // namespace mahimahi::net
