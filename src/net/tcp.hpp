#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cc/congestion_controller.hpp"
#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Zero-copy retransmission buffer: a FIFO of immutable shared chunks
/// addressed by absolute sequence number. Each send() becomes one chunk;
/// slicing a segment that lies within a single chunk returns an aliasing
/// Payload view (the common case — a bulk transfer is one chunk), so
/// transmissions and retransmissions alike copy nothing. Only a slice
/// spanning a chunk boundary materializes bytes, which copied_bytes()
/// exposes for tests and benchmarks. Acked prefixes release whole chunks
/// in O(1) — no byte shuffling on the ACK path.
class SendBuffer {
 public:
  explicit SendBuffer(std::uint64_t base) : base_{base}, end_{base} {}

  /// Append a chunk at the end of sequence space. Seals any staging chunk
  /// (an already-shared payload always stands alone).
  void push(Payload data);

  /// Append raw bytes. Writes below one MSS coalesce into an append-only
  /// staging chunk (one small copy now, like a kernel send buffer) so they
  /// do not litter sequence space with boundaries that every later
  /// segment slice would have to materialize across. Larger writes become
  /// their own zero-copy chunk.
  void push_bytes(std::string data);

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t end() const { return end_; }
  [[nodiscard]] std::uint64_t size() const { return end_ - base_; }

  /// Drop bytes below `seq` (cumulative ack). Fully-acked chunks are
  /// released; a partially-acked chunk stays until its last byte is acked.
  void ack_to(std::uint64_t seq);

  /// Payload view of [seq, seq + length) — zero-copy within one chunk.
  [[nodiscard]] Payload slice(std::uint64_t seq, std::size_t length) const;

  /// Bytes materialized by chunk-boundary-spanning slices (the only copies).
  [[nodiscard]] std::uint64_t copied_bytes() const { return copied_bytes_; }

 private:
  struct Chunk {
    std::uint64_t start;
    Payload bytes;
  };

  /// Staging chunks are fixed-capacity character arrays filled in place —
  /// appending never moves storage, so views into already-written bytes
  /// stay valid by construction (the written prefix is immutable; only
  /// the unwritten tail is touched). The capacity adapts: it starts small
  /// (an isolated 9-byte frame header should not pin a large buffer) and
  /// scales up to the max while consecutive small writes keep overflowing
  /// staging chunks.
  static constexpr std::size_t kMinStagingBytes = 512;
  static constexpr std::size_t kMaxStagingBytes = 16 * 1024;

  std::deque<Chunk> chunks_;
  std::uint64_t base_;
  std::uint64_t end_;
  /// Appendable tail chunk's storage; null when the tail is sealed.
  std::shared_ptr<char[]> staging_;
  std::size_t staging_capacity_{0};
  std::size_t staging_size_{0};
  std::size_t staging_reserve_{kMinStagingBytes};
  mutable std::uint64_t copied_bytes_{0};
};

/// Simulated TCP with the mechanisms that shape page-load time: three-way
/// handshake, pluggable congestion control (slow start, avoidance and the
/// loss response live in a cc::CongestionController — Reno/NewReno by
/// default, CUBIC/Vegas/BBR-lite by name via Config::congestion_control),
/// fast retransmit/recovery with NewReno partial-ack retransmission,
/// RFC 6298 RTO estimation with exponential backoff, cumulative ACKs,
/// out-of-order reassembly, and optional pacing (segments are spaced at
/// the controller's pacing_rate() when it advertises one, as BBR does).
/// Flow control (rwnd) is not modelled — the receiver is assumed able to
/// keep up, which holds for page loads.
///
/// Windows are byte-denominated throughout: cwnd_bytes() and the
/// controller's ssthresh count application payload bytes (headers are
/// free), with cc::kInfiniteSsthresh marking "no loss seen yet".
///
/// Segments are modelled structurally (see TcpSegment); payload bytes are
/// real, so HTTP messages cross the emulated network byte-for-byte.
class TcpConnection {
 public:
  /// Why a connection reached kClosed. Set once at the closing transition;
  /// the resilience layer upstack (HTTP/mux clients, the browser's retry
  /// policy) keys error handling off this instead of parsing strings.
  enum class CloseReason : std::uint8_t {
    kNone,                  ///< still open
    kNormal,                ///< orderly FIN/FIN-ACK exchange
    kPeerReset,             ///< RST arrived from the peer
    kSynTimeout,            ///< handshake gave up after max_syn_retries
    kRetransmitExhausted,   ///< data RTO gave up after max_rto_retries
    kLocalAbort,            ///< our side called abort()
  };

  struct Callbacks {
    std::function<void()> on_connected;            // handshake complete
    std::function<void(std::string_view)> on_data; // in-order payload bytes
    std::function<void()> on_peer_close;           // peer's FIN arrived
    std::function<void()> on_reset;                // RST or handshake failure
    /// New data was acknowledged — the hook application-level writers use
    /// to pace themselves against the send buffer (epoll-writability
    /// equivalent). Optional.
    std::function<void()> on_send_progress;
  };

  struct Config {
    std::uint32_t initial_window_segments{10};  // IW10 (RFC 6928)
    Microseconds min_rto{200'000};              // Linux's 200 ms floor
    Microseconds initial_rto{1'000'000};        // RFC 6298 §2.1
    Microseconds max_rto{60'000'000};
    int max_syn_retries{6};
    int max_rto_retries{8};  // consecutive timeouts before giving up
    /// Congestion-controller registry name ("reno", "cubic", "vegas",
    /// "bbr", ...); empty selects cc::kDefaultController. Unknown names
    /// throw std::invalid_argument at connection construction.
    std::string congestion_control{};
    /// Observability: when set, the connection records state transitions,
    /// per-RTT cwnd/ssthresh/srtt samples, retransmits and its typed
    /// close reason under `trace_session`, with a flow id allocated from
    /// the tracer at construction. Null = tracing off (the near-free
    /// default; see bench_trace_overhead).
    obs::Tracer* tracer{nullptr};
    std::int32_t trace_session{0};
  };

  /// Constructs an idle connection. The caller's wrapper binds `local` in
  /// the fabric, then calls start() (active open, client) or accept_syn()
  /// (passive open, listener). See TcpClient / TcpListener below.
  TcpConnection(Fabric& fabric, Side side, Address local, Address remote,
                Callbacks callbacks, Config config);

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Active open: send the SYN. Call after the local address is bound.
  void start();

  /// Passive open: consume the peer's SYN and answer SYN-ACK.
  void accept_syn(const TcpSegment& syn);

  /// Install callbacks after construction (listener accept path).
  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Queue application bytes for transmission.
  void send(std::string data);

  /// Queue an already-shared payload for transmission — the zero-copy
  /// path: the connection's segments alias the caller's buffer, which must
  /// stay immutable (see the Payload contract).
  void send(Payload data);

  /// Disambiguates string literals between the two overloads above.
  void send(const char* data) { send(std::string{data}); }

  /// Close the send side once queued data is delivered (FIN).
  void close();

  /// Abort: send RST, drop all state.
  void abort();

  /// Feed an incoming packet (called by TcpClient/TcpListener demux).
  void handle_packet(Packet&& packet);

  [[nodiscard]] bool established() const { return state_ == State::kEstablished ||
                                                  state_ == State::kCloseWait; }
  [[nodiscard]] bool closed() const { return state_ == State::kClosed; }
  /// kNone until the connection closes; then the reason it closed. Valid
  /// to read from inside on_reset / on_peer_close callbacks.
  [[nodiscard]] CloseReason close_reason() const { return close_reason_; }
  [[nodiscard]] bool send_side_closed() const { return fin_queued_; }
  [[nodiscard]] Address local_address() const { return local_; }
  [[nodiscard]] Address remote_address() const { return remote_; }

  /// Application bytes accepted by send() but not yet acknowledged by the
  /// peer (send-buffer occupancy).
  [[nodiscard]] std::uint64_t unacked_send_bytes() const {
    return send_buffer_.size();
  }

  // --- introspection for tests and meters ---
  [[nodiscard]] std::uint64_t bytes_sent_app() const { return bytes_sent_app_; }
  [[nodiscard]] std::uint64_t bytes_received_app() const { return bytes_received_app_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  /// Payload bytes the send path had to materialize (chunk-boundary
  /// slices); 0 for a single-chunk bulk transfer — the zero-copy proof.
  [[nodiscard]] std::uint64_t payload_copy_bytes() const {
    return send_buffer_.copied_bytes();
  }
  [[nodiscard]] double cwnd_bytes() const { return cc_->cwnd_bytes(); }
  [[nodiscard]] Microseconds smoothed_rtt() const { return srtt_; }
  /// The congestion-control state machine driving this connection —
  /// meters read its name(), ssthresh_bytes() and pacing_rate().
  [[nodiscard]] const cc::CongestionController& congestion() const {
    return *cc_;
  }

  /// Called when this connection fully closes; wrappers use it to unbind.
  std::function<void()> on_destroyed;

 private:
  enum class State {
    kSynSent,
    kSynReceived,
    kEstablished,
    kCloseWait,   // peer FIN received, we may still send
    kFinSent,     // our FIN sent, waiting for its ACK
    kClosed,
  };

  void emit_segment(TcpSegment segment);
  void send_syn();
  void send_pure_ack();
  void try_send_data();
  /// Pacing gate: true = this segment may go out now (and its serialization
  /// time is charged); false = the pacing timer is armed and try_send_data
  /// resumes at the next release time. Always true for unpaced controllers.
  bool pacing_admits(std::size_t length);
  void disarm_pacing_timer();
  void send_data_segment(std::uint64_t seq, std::size_t length, bool retransmit);
  void handle_ack(const TcpSegment& seg);
  void handle_payload(const Packet& packet);
  void deliver_in_order();
  void enter_recovery();
  void on_rto_expired();
  void arm_retransmit_timer();
  void disarm_retransmit_timer();
  void rtt_sample(Microseconds sample);
  void maybe_finish_close();
  void become_closed();

  /// Record one obs event for this flow; no-op when tracing is off.
  void trace(obs::EventKind kind, std::uint64_t value, double metric,
             std::string label);

  [[nodiscard]] std::uint64_t flight_size() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] Microseconds rto() const;

  Fabric& fabric_;
  EventLoop& loop_;
  Side side_;
  Address local_;
  Address remote_;
  Callbacks callbacks_;
  Config config_;
  State state_{State::kClosed};
  CloseReason close_reason_{CloseReason::kNone};
  std::uint64_t flow_id_{0};  // tracer-allocated; 0 when tracing is off

  // --- send side ---
  // Sequence numbering: SYN consumes seq 0; application data starts at 1.
  SendBuffer send_buffer_{1};      // bytes [base, end) queued/unacked
  std::uint64_t snd_una_{0};
  std::uint64_t snd_nxt_{0};
  bool fin_queued_{false};
  bool fin_sent_{false};
  std::uint64_t fin_seq_{0};
  // Congestion control: all window/rate policy is delegated; the fields
  // below are reliability mechanics (what to retransmit, when), which stay
  // in the transport regardless of controller.
  std::unique_ptr<cc::CongestionController> cc_;
  int dup_acks_{0};
  bool in_recovery_{false};
  std::uint64_t recovery_point_{0};
  // Pacing (active only when cc_->pacing_rate() > 0).
  Microseconds pace_release_{0};
  EventLoop::EventId pace_event_{0};
  // RTT estimation (Karn's algorithm via a single untimed-on-retransmit sample).
  bool rtt_sample_pending_{false};
  std::uint64_t rtt_sample_end_seq_{0};
  Microseconds rtt_sample_sent_at_{0};
  Microseconds syn_sent_at_{0};  // handshake RTT sample
  Microseconds srtt_{0};
  Microseconds rttvar_{0};
  Microseconds backoff_rto_{0};  // nonzero while backing off
  EventLoop::EventId rto_event_{0};
  int syn_retries_{0};
  int consecutive_rtos_{0};

  // --- receive side ---
  std::uint64_t rcv_nxt_{0};
  std::map<std::uint64_t, Payload> out_of_order_;  // payload views, not copies
  bool delivering_{false};  // re-entrancy guard for deliver_in_order()
  bool peer_fin_seen_{false};
  std::uint64_t peer_fin_seq_{0};
  bool our_fin_acked_{false};

  // --- counters ---
  std::uint64_t bytes_sent_app_{0};
  std::uint64_t bytes_received_app_{0};
  std::uint64_t segments_sent_{0};
  std::uint64_t retransmissions_{0};
};

/// Client-side convenience: allocates an ephemeral address, binds it in the
/// fabric, owns the connection, and unbinds on close.
class TcpClient {
 public:
  TcpClient(Fabric& fabric, Address remote, TcpConnection::Callbacks callbacks,
            TcpConnection::Config config = {});
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  [[nodiscard]] TcpConnection& connection() { return *connection_; }
  [[nodiscard]] const TcpConnection& connection() const { return *connection_; }

 private:
  Fabric& fabric_;
  Address local_;
  std::unique_ptr<TcpConnection> connection_;
};

/// Server-side listener: binds a server address, accepts SYNs, demuxes
/// packets to per-peer connections.
class TcpListener {
 public:
  /// Called for each new connection, before the SYN-ACK goes out; returns
  /// the callbacks to install — practically, the handler wires an HTTP
  /// server session around the connection. The shared_ptr lets sessions
  /// hold weak references that outlive nothing.
  using AcceptHandler = std::function<TcpConnection::Callbacks(
      const std::shared_ptr<TcpConnection>& connection)>;

  TcpListener(Fabric& fabric, Address local, AcceptHandler on_accept,
              TcpConnection::Config config = {});
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] Address local_address() const { return local_; }
  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }
  [[nodiscard]] std::uint64_t total_accepted() const { return total_accepted_; }

 private:
  void handle_packet(Packet&& packet);

  Fabric& fabric_;
  Address local_;
  AcceptHandler on_accept_;
  TcpConnection::Config config_;
  std::map<Address, std::shared_ptr<TcpConnection>> connections_;
  std::uint64_t total_accepted_{0};
};

/// Stable human-readable label ("peer reset", "retransmit limit
/// exhausted", ...) — used in page-load error strings, so the wording is
/// part of the report byte-determinism contract.
std::string_view to_string(TcpConnection::CloseReason reason);

}  // namespace mahimahi::net
