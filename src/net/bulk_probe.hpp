#pragma once

#include <cstdint>
#include <string>

#include "net/link_log.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Reference single-flow rig shared by bench_cc_comparison and
/// mm_link_report --cc: one TCP bulk transfer through a fixed one-way
/// delay and a constant-rate bottleneck with a deep (unbounded) buffer,
/// optionally lossy, under a named congestion controller. Isolates the
/// controller's transport behaviour — completion time and the queue it
/// parks at the bottleneck — with no application model on top. Fully
/// deterministic for a given spec.
struct BulkFlowSpec {
  std::string congestion_control{};  // "" = the default controller (reno)
  std::size_t bytes{3 * 1000 * 1000};
  double link_mbps{8.0};             // symmetric bottleneck rate
  Microseconds one_way_delay{20'000};
  double loss{0.0};                  // i.i.d. per-packet, both directions
  std::uint64_t loss_seed{99};
  Microseconds trace_duration{300'000'000};  // must exceed the transfer
};

struct BulkFlowReport {
  bool complete{false};        // every byte delivered in order
  Microseconds completed_at{0};
  std::uint64_t segments_sent{0};
  std::uint64_t retransmissions{0};
  // Final sender-side transport state, read just before teardown.
  std::string controller;
  Microseconds final_srtt{0};
  double final_cwnd_bytes{0};
  double final_pacing_rate{0};  // 0 = unpaced controller
  // Queueing the flow induced at the bottleneck (uplink direction).
  LinkLogSummary uplink;
};

BulkFlowReport run_bulk_flow(const BulkFlowSpec& spec);

}  // namespace mahimahi::net
