#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link_log.hpp"
#include "net/queue.hpp"
#include "net/tcp.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Reference single-flow rig shared by bench_cc_comparison and
/// mm_link_report --cc: one TCP bulk transfer through a fixed one-way
/// delay and a constant-rate bottleneck with a deep (unbounded) buffer,
/// optionally lossy, under a named congestion controller. Isolates the
/// controller's transport behaviour — completion time and the queue it
/// parks at the bottleneck — with no application model on top. Fully
/// deterministic for a given spec.
struct BulkFlowSpec {
  std::string congestion_control{};  // "" = the default controller (reno)
  std::size_t bytes{3 * 1000 * 1000};
  double link_mbps{8.0};             // symmetric bottleneck rate
  Microseconds one_way_delay{20'000};
  double loss{0.0};                  // i.i.d. per-packet, both directions
  std::uint64_t loss_seed{99};
  Microseconds trace_duration{300'000'000};  // must exceed the transfer
};

struct BulkFlowReport {
  bool complete{false};        // every byte delivered in order
  Microseconds completed_at{0};
  std::uint64_t segments_sent{0};
  std::uint64_t retransmissions{0};
  // Final sender-side transport state, read just before teardown.
  std::string controller;
  Microseconds final_srtt{0};
  double final_cwnd_bytes{0};
  double final_pacing_rate{0};  // 0 = unpaced controller
  /// How the transport ended — the typed reason (normal close, SYN
  /// timeout, retransmit exhaustion...), not a bare "closed".
  TcpConnection::CloseReason close_reason{TcpConnection::CloseReason::kNone};
  // Queueing the flow induced at the bottleneck (uplink direction).
  LinkLogSummary uplink;
};

BulkFlowReport run_bulk_flow(const BulkFlowSpec& spec);

/// Multi-flow fairness rig: N long-lived bulk flows — one per entry in
/// `controllers`, each under its own congestion controller — share one
/// bottleneck (constant-rate or trace-driven, with a configurable queue
/// discipline). Data flows *server → client*, mirroring web responses, so
/// the downlink trace/queue is the contested resource. Every sender keeps
/// its pipe full until the measurement window closes; the report carries
/// each flow's delivered bytes, throughput and share of the total, plus
/// Jain's fairness index and the bottleneck's queueing-delay summary.
/// Fully deterministic for a given spec (single event loop, seeded loss,
/// seeded AQM) — thread count and wall clock never enter.
struct MultiBulkFlowSpec {
  /// One flow per entry; the name configures the *sender* (server) side,
  /// the side whose controller governs the contested direction. "" = the
  /// default controller (reno).
  std::vector<std::string> controllers;
  /// Measurement window: shares are delivered-byte counts at this instant.
  Microseconds duration{20'000'000};
  /// Bottleneck: traces when set, else a symmetric constant `link_mbps`.
  std::shared_ptr<const trace::PacketTrace> uplink_trace;
  std::shared_ptr<const trace::PacketTrace> downlink_trace;
  double link_mbps{8.0};
  /// Queue discipline at the bottleneck, both directions.
  QueueSpec queue{};
  Microseconds one_way_delay{20'000};
  double loss{0.0};  // i.i.d. per-packet, both directions
  std::uint64_t loss_seed{99};
  /// Flow i opens its connection at i * start_stagger (0 = all at once).
  Microseconds start_stagger{0};
};

struct MultiBulkFlowReport {
  struct Flow {
    std::string controller;
    std::uint64_t bytes_delivered{0};  // in-order bytes at the receiver
    double throughput_bps{0};
    double share{0};  // bytes_delivered / total across flows
    Microseconds final_srtt{0};
    double final_cwnd_bytes{0};
    std::uint64_t retransmissions{0};
  };
  std::vector<Flow> flows;
  double jain_index{0};  // over per-flow throughputs, in [1/n, 1]
  /// Bottleneck behaviour in the contested (downlink) direction.
  LinkLogSummary bottleneck;
};

MultiBulkFlowReport run_multi_bulk_flow(const MultiBulkFlowSpec& spec);

}  // namespace mahimahi::net
