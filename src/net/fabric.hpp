#pragma once

#include <functional>
#include <unordered_map>

#include "net/address.hpp"
#include "net/element.hpp"
#include "net/packet.hpp"

namespace mahimahi::net {

/// Which side of the element chain an endpoint lives on. The application
/// (browser, recorded client) is on the client side; origin servers and
/// the DNS server are on the server side — matching mahimahi, where the
/// innermost namespace holds the application and replayed servers sit
/// outside the emulated link.
enum class Side : std::uint8_t { kClient, kServer };

/// The wiring of one experiment: endpoints on both sides of an element
/// Chain, with address-based delivery. This is the in-process equivalent
/// of a stack of network namespaces connected by veth pairs.
///
/// Isolation holds by construction: a Fabric owns its address maps and its
/// chain; two Fabrics share nothing but the process.
class Fabric {
 public:
  using Handler = std::function<void(Packet&&)>;

  explicit Fabric(EventLoop& loop);

  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] Chain& chain() { return chain_; }

  /// Attach a packet handler for `address` on `side`. Throws
  /// std::invalid_argument if the address is taken (mirrors bind(2) EADDRINUSE).
  void bind(Side side, const Address& address, Handler handler);
  void unbind(Side side, const Address& address);
  [[nodiscard]] bool bound(Side side, const Address& address) const;

  /// Handler for packets whose server-side destination is unbound — the
  /// in-process analogue of an iptables REDIRECT rule. RecordShell's
  /// transparent proxy uses this to intercept connections to arbitrary
  /// origin addresses. The handler typically binds the address (e.g.
  /// spawns a listener) and calls redeliver().
  void set_server_default(Handler handler);

  /// Re-run destination lookup for a packet (used by the default handler
  /// after binding the address). Packets that still match no endpoint are
  /// counted undeliverable.
  void redeliver(Side side, Packet&& packet);

  /// Extra one-way propagation delay for a specific server IP, applied to
  /// packets entering and leaving that server — this is how LiveWeb gives
  /// each origin its own RTT while sharing one chain.
  void set_server_delay(Ipv4 ip, Microseconds one_way);
  [[nodiscard]] Microseconds server_delay(Ipv4 ip) const;

  /// Inject a packet from an endpoint on `from`; it traverses the chain
  /// and is delivered to the destination on the other side. Packets to
  /// unbound addresses are counted and dropped (tests assert on this).
  void send(Side from, Packet&& packet);

  /// Allocate a fresh client-side address (one IP per fabric client,
  /// ephemeral ports counting up from 49152).
  Address allocate_client_address();

  /// Allocate a fresh server-side IP (the replay shell's virtual
  /// interfaces; one per recorded origin).
  Ipv4 allocate_server_ip();

  [[nodiscard]] std::uint64_t next_packet_id() { return next_packet_id_++; }

  [[nodiscard]] std::uint64_t undeliverable_packets() const {
    return undeliverable_;
  }
  [[nodiscard]] std::uint64_t delivered_packets(Side side) const {
    return delivered_[side == Side::kClient ? 0 : 1];
  }

  /// The client's IP (all browser sockets share it, like one host).
  [[nodiscard]] Ipv4 client_ip() const { return client_ip_; }

 private:
  void deliver(Side side, Packet&& packet);
  void dispatch(Side side, Packet&& packet, bool allow_default);

  EventLoop& loop_;
  Chain chain_;
  std::unordered_map<Address, Handler> endpoints_[2];
  Handler server_default_;
  std::unordered_map<Ipv4, Microseconds> server_delays_;
  Ipv4 client_ip_{Ipv4{100, 64, 0, 2}};
  std::uint16_t next_client_port_{49152};
  AddressAllocator server_ips_{Ipv4{10, 0, 0, 1}};
  std::uint64_t next_packet_id_{1};
  std::uint64_t undeliverable_{0};
  std::uint64_t delivered_[2]{0, 0};
};

}  // namespace mahimahi::net
