#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace mahimahi::net {

/// Discrete-event scheduler with a virtual clock.
///
/// Determinism: events at the same timestamp run in scheduling order
/// (monotonic sequence number tie-break), so a simulation is a pure
/// function of its inputs and seeds — the property the whole toolkit's
/// "reproducible measurement" claim rests on.
class EventLoop {
 public:
  using EventId = std::uint64_t;
  using Action = std::function<void()>;

  [[nodiscard]] Microseconds now() const { return now_; }

  /// Schedule `action` at absolute time `at` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Microseconds at, Action action);

  /// Schedule `action` after a relative delay (>= 0).
  EventId schedule_in(Microseconds delay, Action action);

  /// Cancel a pending event. Cancelling an already-run or unknown id is a
  /// no-op (timers race with the events that would cancel them).
  void cancel(EventId id);

  /// Run until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Run events with time <= deadline; afterwards now() == deadline.
  std::size_t run_until(Microseconds deadline);

  /// True when no runnable events remain.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] std::size_t pending_events() const;

  /// Safety valve for tests: run() throws after this many events
  /// (default: effectively unlimited).
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }

 private:
  struct Entry {
    Microseconds at;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  bool pop_one();

  Microseconds now_{0};
  EventId next_id_{1};
  std::size_t event_limit_{~0ULL};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled but still in queue_
};

}  // namespace mahimahi::net
