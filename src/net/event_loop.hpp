#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"
#include "util/inline_function.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Discrete-event scheduler with a virtual clock.
///
/// Determinism: events at the same timestamp run in scheduling order
/// (monotonic sequence number tie-break), so a simulation is a pure
/// function of its inputs and seeds — the property the whole toolkit's
/// "reproducible measurement" claim rests on.
///
/// Hot-path design: the pending set is a flat 4-ary min-heap of 24-byte
/// POD keys ordered by (time, sequence), fed through an unsorted inbox —
/// newly scheduled events pay for heap insertion only at the next
/// dispatch, so an event cancelled before then (the dominant fate of
/// batch-armed timers) never touches the heap. Callbacks live in a
/// chunked slot arena with stable addresses — growth never moves a
/// callable, and dispatch invokes in place. Cancellation is lazy:
/// cancel() bumps the slot's generation (destroying the callback
/// immediately to release captured resources) and the dead entry is
/// discarded when it surfaces. EventIds encode (slot, generation), so cancelling an
/// already-run or reused id is a safe no-op. With callbacks that fit the
/// inline buffer, a schedule/run cycle performs zero heap allocations once
/// the arena is warm.
class EventLoop {
 public:
  using EventId = std::uint64_t;

  /// Inline capacity of the callback type, sized for the largest hot-path
  /// lambda (the in-flight packet captures — see the static_asserts in
  /// fabric.cpp and element.cpp). Larger callables still work; they
  /// heap-allocate.
  static constexpr std::size_t kInlineActionBytes = 168;
  using Action = util::InlineCallback<kInlineActionBytes>;

  [[nodiscard]] Microseconds now() const { return now_; }

  /// Schedule a callable at absolute time `at` (>= now). Returns an id
  /// usable with cancel(); ids are never zero. The callable is constructed
  /// directly in its arena slot — no temporary, no move.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, Action> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventId schedule_at(Microseconds at, F&& f) {
    if constexpr (requires { static_cast<bool>(f); }) {
      // Catch empty std::functions (and null function pointers) at the
      // schedule site instead of a bad_function_call mid-run.
      MAHI_ASSERT_MSG(static_cast<bool>(f), "null action");
    }
    MAHI_ASSERT_MSG(at >= now_, "scheduling into the past: " << at << " < " << now_);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    // Fill the slot before publishing the heap entry: if the callable's
    // constructor throws, no event is visible to the dispatch loop (the
    // slot sits out until the loop is destroyed — benign, never UB).
    s.action.emplace(std::forward<F>(f));
    publish_event(at, slot);
    return make_id(slot, s.generation);
  }

  /// Schedule an already-type-erased Action (moved into the slot).
  EventId schedule_at(Microseconds at, Action action);

  /// Schedule after a relative delay (>= 0).
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, Action> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventId schedule_in(Microseconds delay, F&& f) {
    check_delay(delay);
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  EventId schedule_in(Microseconds delay, Action action);

  /// Cancel a pending event. Cancelling an already-run or unknown id is a
  /// no-op (timers race with the events that would cancel them).
  void cancel(EventId id);

  /// Run until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Run events with time <= deadline; afterwards now() == deadline.
  std::size_t run_until(Microseconds deadline);

  /// True when no runnable events remain.
  [[nodiscard]] bool idle() const { return live_count_ == 0; }

  [[nodiscard]] std::size_t pending_events() const { return live_count_; }

  /// Safety valve for tests: run() throws after this many events
  /// (default: effectively unlimited).
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }

 private:
  struct HeapEntry {
    Microseconds at;
    std::uint64_t seq;         // FIFO tie-break among same-time events
    std::uint32_t slot;        // index into the slot arena
    std::uint32_t generation;  // live iff it matches the slot's generation
  };

  /// A pending event's callback plus the generation stamp that validates
  /// ids. Invariant: slot generation == heap-entry generation exactly
  /// while the event is pending; cancel and dispatch both bump it.
  struct Slot {
    Action action;
    std::uint32_t generation{0};
    std::uint32_t next_free{kNoFreeSlot};
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFF'FFFF;
  static constexpr std::size_t kSlotChunkShift = 8;  // 256 slots per chunk
  static constexpr std::size_t kSlotChunkSize = std::size_t{1} << kSlotChunkShift;

  static constexpr bool earlier(const HeapEntry& a, const HeapEntry& b) {
    // Lexicographic (at, seq) as one 128-bit compare — branchless, which
    // matters in the sift loops where the outcome is data-dependent.
    // `at` is never negative (schedule_at asserts at >= now_ >= 0).
    using Key = unsigned __int128;
    return ((Key{static_cast<std::uint64_t>(a.at)} << 64) | a.seq) <
           ((Key{static_cast<std::uint64_t>(b.at)} << 64) | b.seq);
  }
  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }
  static void bump_generation(Slot& slot) {
    if (++slot.generation == 0) {
      ++slot.generation;  // generation 0 is reserved so ids are never zero
    }
  }

  [[nodiscard]] Slot& slot_at(std::uint32_t index) {
    return slot_chunks_[index >> kSlotChunkShift][index & (kSlotChunkSize - 1)];
  }

  /// Record the entry for an acquired slot whose action is already in
  /// place, making the event live. Entries land in the unsorted inbox and
  /// only pay for heap insertion at the next dispatch — an event
  /// cancelled before then never touches the heap at all (the dominant
  /// fate of batch-armed timers).
  void publish_event(Microseconds at, std::uint32_t slot);
  /// Move inbox entries into the heap, skipping (and releasing) ones
  /// already cancelled.
  void drain_inbox();
  static void check_delay(Microseconds delay);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t index);
  void pop_top();
  /// Discard tombstoned entries at the heap top; afterwards the top (if
  /// any) is a live event.
  void drop_dead_top();
  bool pop_one();
  void check_limit(std::size_t executed) const;

  Microseconds now_{0};
  std::uint64_t next_seq_{1};
  std::size_t live_count_{0};
  std::size_t event_limit_{~0ULL};
  std::vector<HeapEntry> heap_;   // 4-ary min-heap on (at, seq)
  std::vector<HeapEntry> inbox_;  // scheduled since the last dispatch
  /// Chunked arena: addresses are stable across growth, so callbacks are
  /// never moved by other events being scheduled (dispatch relies on this).
  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::size_t slot_count_{0};
  std::uint32_t free_head_{kNoFreeSlot};
};

/// A session-scoped view of a shared loop's clock: time zero is the
/// moment the session was admitted, so code multiplexing many sessions
/// onto one EventLoop (fleet::SessionMux) can report per-session
/// timestamps that are independent of where the session sits in the
/// fleet's arrival schedule. Durations measured on a SessionClock equal
/// durations measured on the underlying loop — the view only shifts the
/// epoch, never the rate.
class SessionClock {
 public:
  SessionClock() = default;
  SessionClock(const EventLoop& loop, Microseconds origin)
      : loop_{&loop}, origin_{origin} {
    MAHI_ASSERT_MSG(origin >= 0, "session epoch before the loop epoch");
  }

  /// Microseconds since this session's epoch (>= 0 once the session runs).
  [[nodiscard]] Microseconds now() const { return loop_->now() - origin_; }

  /// The session's epoch on the shared loop's clock.
  [[nodiscard]] Microseconds origin() const { return origin_; }

 private:
  const EventLoop* loop_{nullptr};
  Microseconds origin_{0};
};

}  // namespace mahimahi::net
