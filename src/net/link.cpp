#include "net/link.hpp"

#include "util/assert.hpp"

namespace mahimahi::net {

LinkQueue::LinkQueue(EventLoop& loop, trace::PacketTrace trace,
                     std::unique_ptr<PacketQueue> queue, Deliver deliver)
    : loop_{loop},
      trace_{std::move(trace)},
      queue_{std::move(queue)},
      deliver_{std::move(deliver)} {
  MAHI_ASSERT(queue_ != nullptr);
  MAHI_ASSERT(deliver_ != nullptr);
}

void LinkQueue::accept(Packet&& packet) {
  const std::uint32_t bytes = static_cast<std::uint32_t>(packet.wire_size());
  const std::uint64_t id = packet.id;
  if (log_ != nullptr) {
    log_->arrival(loop_.now(), bytes, id);
  }
  const std::uint64_t drops_before = queue_->drops();
  const std::uint64_t overflow_before = queue_->overflow_drops();
  queue_->enqueue(std::move(packet), loop_.now());
  if (queue_->drops() > drops_before) {
    const DropReason reason = queue_->overflow_drops() > overflow_before
                                  ? DropReason::kOverflow
                                  : DropReason::kAqm;
    if (log_ != nullptr) {
      log_->drop(loop_.now(), bytes, id, reason);
    }
    if (tracer_ != nullptr) {
      tracer_->event(loop_.now(), obs::Layer::kLink, obs::EventKind::kDrop,
                     trace_session_, id, queue_->packet_count(),
                     static_cast<double>(queue_->byte_count()),
                     trace_label_ + "/" + std::string(to_string(reason)));
    }
  } else if (tracer_ != nullptr) {
    tracer_->event(loop_.now(), obs::Layer::kLink, obs::EventKind::kEnqueue,
                   trace_session_, id, queue_->packet_count(),
                   static_cast<double>(queue_->byte_count()), trace_label_);
  }
  schedule_next_opportunity();
}

void LinkQueue::schedule_next_opportunity() {
  if (pending_event_ != 0) {
    return;  // an opportunity is already scheduled
  }
  if (!in_service_ && queue_->empty()) {
    return;  // nothing to deliver; the link idles until the next arrival
  }
  // The next usable opportunity never moves backwards: an idle period
  // cannot bank opportunities (mahimahi discards unused ones).
  const std::uint64_t candidate =
      trace_.first_opportunity_at_or_after(loop_.now());
  if (candidate > next_opportunity_) {
    next_opportunity_ = candidate;
  }
  const Microseconds at = trace_.opportunity_time(next_opportunity_);
  pending_event_ = loop_.schedule_at(at, [this] {
    pending_event_ = 0;
    use_opportunity();
  });
}

void LinkQueue::use_opportunity() {
  ++next_opportunity_;  // this opportunity is consumed regardless of use
  if (!in_service_) {
    const std::uint64_t drops_before = queue_->drops();
    const std::size_t bytes_before = queue_->byte_count();
    auto head = queue_->dequeue(loop_.now());
    const std::uint64_t dropped = queue_->drops() - drops_before;
    if (dropped > 0 && (log_ != nullptr || tracer_ != nullptr)) {
      // Dequeue-time AQM drops (CoDel). The discipline pops them
      // internally, so individual sizes and ids are not observable; the
      // first record carries the aggregate dropped bytes, the rest zero —
      // packet counts stay exact, byte depth stays consistent.
      const std::size_t head_bytes = head ? head->wire_size() : 0;
      const std::size_t dropped_bytes =
          bytes_before - queue_->byte_count() - head_bytes;
      for (std::uint64_t i = 0; i < dropped; ++i) {
        const auto bytes =
            static_cast<std::uint32_t>(i == 0 ? dropped_bytes : 0);
        if (log_ != nullptr) {
          log_->drop(loop_.now(), bytes, 0, DropReason::kAqm);
        }
        if (tracer_ != nullptr) {
          tracer_->event(loop_.now(), obs::Layer::kLink,
                         obs::EventKind::kDrop, trace_session_, 0,
                         queue_->packet_count(),
                         static_cast<double>(queue_->byte_count()),
                         trace_label_ + "/aqm");
        }
      }
    }
    if (!head) {
      return;  // AQM drained the queue; idle until the next arrival
    }
    in_service_ = std::move(head);
    in_service_remaining_ = in_service_->wire_size();
  }
  const std::size_t delivered =
      std::min<std::size_t>(in_service_remaining_, trace::kOpportunityBytes);
  in_service_remaining_ -= delivered;
  if (in_service_remaining_ == 0) {
    delivered_bytes_ += in_service_->wire_size();
    ++delivered_packets_;
    if (log_ != nullptr) {
      log_->departure(loop_.now(),
                      static_cast<std::uint32_t>(in_service_->wire_size()),
                      in_service_->id);
    }
    if (tracer_ != nullptr) {
      tracer_->event(loop_.now(), obs::Layer::kLink, obs::EventKind::kDequeue,
                     trace_session_, in_service_->id, queue_->packet_count(),
                     static_cast<double>(queue_->byte_count()), trace_label_);
    }
    deliver_(std::move(*in_service_));
    in_service_.reset();
  }
  schedule_next_opportunity();
}

TraceLink::TraceLink(EventLoop& loop, trace::PacketTrace uplink_trace,
                     trace::PacketTrace downlink_trace, QueueSpec uplink_queue,
                     QueueSpec downlink_queue) {
  uplink_ = std::make_unique<LinkQueue>(
      loop, std::move(uplink_trace), make_queue(uplink_queue),
      [this](Packet&& p) { emit(std::move(p), Direction::kUplink); });
  downlink_ = std::make_unique<LinkQueue>(
      loop, std::move(downlink_trace), make_queue(downlink_queue),
      [this](Packet&& p) { emit(std::move(p), Direction::kDownlink); });
}

void TraceLink::process(Packet&& packet, Direction direction) {
  if (direction == Direction::kUplink) {
    uplink_->accept(std::move(packet));
  } else {
    downlink_->accept(std::move(packet));
  }
}

void TraceLink::enable_logging() {
  for (auto& log : logs_) {
    if (log == nullptr) {
      log = std::make_unique<LinkLog>();
    }
  }
  uplink_->set_log(logs_[0].get());
  downlink_->set_log(logs_[1].get());
}

void TraceLink::set_tracer(obs::Tracer* tracer, std::int32_t session,
                           const std::string& name) {
  uplink_->set_tracer(tracer, session, name + "/up");
  downlink_->set_tracer(tracer, session, name + "/down");
}

const LinkLog& TraceLink::log(Direction direction) const {
  const auto& log = logs_[direction == Direction::kUplink ? 0 : 1];
  MAHI_ASSERT_MSG(log != nullptr, "TraceLink logging not enabled");
  return *log;
}

}  // namespace mahimahi::net
