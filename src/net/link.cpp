#include "net/link.hpp"

#include "util/assert.hpp"

namespace mahimahi::net {

LinkQueue::LinkQueue(EventLoop& loop, trace::PacketTrace trace,
                     std::unique_ptr<PacketQueue> queue, Deliver deliver)
    : loop_{loop},
      trace_{std::move(trace)},
      queue_{std::move(queue)},
      deliver_{std::move(deliver)} {
  MAHI_ASSERT(queue_ != nullptr);
  MAHI_ASSERT(deliver_ != nullptr);
}

void LinkQueue::accept(Packet&& packet) {
  const std::uint32_t bytes = static_cast<std::uint32_t>(packet.wire_size());
  const std::uint64_t id = packet.id;
  if (log_ != nullptr) {
    log_->arrival(loop_.now(), bytes, id);
  }
  const std::uint64_t drops_before = queue_->drops();
  queue_->enqueue(std::move(packet), loop_.now());
  if (log_ != nullptr && queue_->drops() > drops_before) {
    log_->drop(loop_.now(), bytes, id);
  }
  schedule_next_opportunity();
}

void LinkQueue::schedule_next_opportunity() {
  if (pending_event_ != 0) {
    return;  // an opportunity is already scheduled
  }
  if (!in_service_ && queue_->empty()) {
    return;  // nothing to deliver; the link idles until the next arrival
  }
  // The next usable opportunity never moves backwards: an idle period
  // cannot bank opportunities (mahimahi discards unused ones).
  const std::uint64_t candidate =
      trace_.first_opportunity_at_or_after(loop_.now());
  if (candidate > next_opportunity_) {
    next_opportunity_ = candidate;
  }
  const Microseconds at = trace_.opportunity_time(next_opportunity_);
  pending_event_ = loop_.schedule_at(at, [this] {
    pending_event_ = 0;
    use_opportunity();
  });
}

void LinkQueue::use_opportunity() {
  ++next_opportunity_;  // this opportunity is consumed regardless of use
  if (!in_service_) {
    auto head = queue_->dequeue(loop_.now());
    if (!head) {
      return;  // AQM drained the queue; idle until the next arrival
    }
    in_service_ = std::move(head);
    in_service_remaining_ = in_service_->wire_size();
  }
  const std::size_t delivered =
      std::min<std::size_t>(in_service_remaining_, trace::kOpportunityBytes);
  in_service_remaining_ -= delivered;
  if (in_service_remaining_ == 0) {
    delivered_bytes_ += in_service_->wire_size();
    ++delivered_packets_;
    if (log_ != nullptr) {
      log_->departure(loop_.now(),
                      static_cast<std::uint32_t>(in_service_->wire_size()),
                      in_service_->id);
    }
    deliver_(std::move(*in_service_));
    in_service_.reset();
  }
  schedule_next_opportunity();
}

TraceLink::TraceLink(EventLoop& loop, trace::PacketTrace uplink_trace,
                     trace::PacketTrace downlink_trace, QueueSpec uplink_queue,
                     QueueSpec downlink_queue) {
  uplink_ = std::make_unique<LinkQueue>(
      loop, std::move(uplink_trace), make_queue(uplink_queue),
      [this](Packet&& p) { emit(std::move(p), Direction::kUplink); });
  downlink_ = std::make_unique<LinkQueue>(
      loop, std::move(downlink_trace), make_queue(downlink_queue),
      [this](Packet&& p) { emit(std::move(p), Direction::kDownlink); });
}

void TraceLink::process(Packet&& packet, Direction direction) {
  if (direction == Direction::kUplink) {
    uplink_->accept(std::move(packet));
  } else {
    downlink_->accept(std::move(packet));
  }
}

void TraceLink::enable_logging() {
  for (auto& log : logs_) {
    if (log == nullptr) {
      log = std::make_unique<LinkLog>();
    }
  }
  uplink_->set_log(logs_[0].get());
  downlink_->set_log(logs_[1].get());
}

const LinkLog& TraceLink::log(Direction direction) const {
  const auto& log = logs_[direction == Direction::kUplink ? 0 : 1];
  MAHI_ASSERT_MSG(log != nullptr, "TraceLink logging not enabled");
  return *log;
}

}  // namespace mahimahi::net
