#include "net/address.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace mahimahi::net {

std::string Ipv4::to_string() const {
  std::ostringstream out;
  out << ((value_ >> 24) & 0xFF) << '.' << ((value_ >> 16) & 0xFF) << '.'
      << ((value_ >> 8) & 0xFF) << '.' << (value_ & 0xFF);
  return out.str();
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  for (const auto part : parts) {
    std::uint64_t octet = 0;
    if (!util::parse_u64(part, octet) || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4{value};
}

std::string Address::to_string() const {
  return ip.to_string() + ':' + std::to_string(port);
}

std::optional<Address> Address::parse(std::string_view text) {
  const auto [ip_part, port_part] = util::split_once(text, ':');
  const auto ip = Ipv4::parse(ip_part);
  if (!ip || port_part.empty()) {
    return std::nullopt;
  }
  std::uint64_t port = 0;
  if (!util::parse_u64(port_part, port) || port > 65535) {
    return std::nullopt;
  }
  return Address{*ip, static_cast<std::uint16_t>(port)};
}

AddressAllocator::AddressAllocator(Ipv4 base) : next_{base.value()} {}

Ipv4 AddressAllocator::next_ip() { return Ipv4{next_++}; }

}  // namespace mahimahi::net
