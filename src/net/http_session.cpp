#include "net/http_session.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mahimahi::net {

// --- HttpServer ---------------------------------------------------------------

HttpServer::HttpServer(Fabric& fabric, Address local, Handler handler,
                       Microseconds processing_delay,
                       TcpConnection::Config config)
    : fabric_{fabric},
      handler_{std::move(handler)},
      processing_delay_{processing_delay},
      listener_{fabric, local,
                [this](const std::shared_ptr<TcpConnection>& c) {
                  return make_callbacks(c);
                },
                std::move(config)} {
  MAHI_ASSERT(handler_ != nullptr);
  workers_spawned_ = pool_.initial_workers;
}

void HttpServer::set_worker_pool(const WorkerPool& pool) {
  MAHI_ASSERT(pool.initial_workers >= 1);
  MAHI_ASSERT(pool.max_workers >= pool.initial_workers);
  MAHI_ASSERT(pool.spawn_interval > 0);
  pool_ = pool;
  workers_spawned_ = pool_.initial_workers;
}

TcpConnection::Callbacks HttpServer::make_callbacks(
    const std::shared_ptr<TcpConnection>& connection) {
  auto session = std::make_shared<Session>();
  session->connection = connection;
  TcpConnection::Callbacks callbacks;
  callbacks.on_data = [this, session](std::string_view bytes) {
    on_data(session, bytes);
  };
  callbacks.on_peer_close = [this, session] {
    // Client half-closed; finish sending whatever is queued, then FIN,
    // and return this connection's worker to the pool.
    if (const auto conn = session->connection.lock()) {
      conn->close();
    }
    release_worker(session);
  };
  callbacks.on_reset = [this, session] { release_worker(session); };
  // A worker is claimed at accept time (Apache prefork: the process is
  // bound to the connection for its lifetime, keep-alive included).
  request_worker(session);
  return callbacks;
}

void HttpServer::request_worker(const std::shared_ptr<Session>& session) {
  if (workers_busy_ < workers_spawned_) {
    ++workers_busy_;
    session->has_worker = true;
    return;
  }
  ++worker_waits_;
  waiting_.push_back(session);
  arm_spawn_timer();
}

void HttpServer::release_worker(const std::shared_ptr<Session>& session) {
  if (session->worker_released) {
    return;
  }
  session->worker_released = true;
  if (!session->has_worker) {
    // Still waiting: just drop it from the queue lazily (grant_workers
    // skips released sessions).
    return;
  }
  session->has_worker = false;
  MAHI_ASSERT(workers_busy_ > 0);
  --workers_busy_;
  grant_workers();
}

void HttpServer::grant_workers() {
  while (!waiting_.empty() && workers_busy_ < workers_spawned_) {
    auto session = std::move(waiting_.front());
    waiting_.pop_front();
    if (session->worker_released || session->connection.expired()) {
      continue;  // died while waiting
    }
    ++workers_busy_;
    session->has_worker = true;
    drain_requests(session);  // serve anything that arrived while waiting
  }
  if (!waiting_.empty()) {
    arm_spawn_timer();
  }
}

void HttpServer::arm_spawn_timer() {
  if (spawn_event_ != 0 || workers_spawned_ >= pool_.max_workers) {
    return;
  }
  spawn_event_ = fabric_.loop().schedule_in(pool_.spawn_interval, [this] {
    spawn_event_ = 0;
    if (workers_spawned_ < pool_.max_workers) {
      ++workers_spawned_;
    }
    grant_workers();
  });
}

void HttpServer::on_data(const std::shared_ptr<Session>& session,
                         std::string_view bytes) {
  session->parser.push(bytes);
  if (session->has_worker) {
    drain_requests(session);
  }
  // Without a worker, requests accumulate in the parser until one is
  // granted — the kernel buffers, Apache just hasn't accepted yet.
}

void HttpServer::drain_requests(const std::shared_ptr<Session>& session) {
  const auto connection = session->connection.lock();
  if (!connection) {
    return;
  }
  if (session->parser.failed()) {
    if (!session->closing) {
      session->closing = true;
      MAHI_WARN("http-server") << "parse failure: "
                               << session->parser.error_message();
      http::Response bad;
      bad.status = 400;
      bad.reason = "Bad Request";
      bad.headers.add("Connection", "close");
      http::finalize_content_length(bad);
      connection->send(http::to_bytes(bad));
      connection->close();
    }
    return;
  }
  while (session->parser.has_message()) {
    const http::Request request = session->parser.pop();
    ServerFault fault;
    if (fault_hook_) {
      fault = fault_hook_(requests_seen_);
    }
    ++requests_seen_;
    if (fault.kind == ServerFault::Kind::kStall) {
      // Accept-and-stall: the request is swallowed, no response ever comes,
      // and the worker stays pinned (a hung Apache child).
      ++faults_injected_;
      continue;
    }
    const bool keep_alive = request.keep_alive();
    http::Response response = handler_(request);
    http::finalize_content_length(response);
    ++requests_served_;
    if (observer_) {
      observer_(request, response);
    }
    std::string wire = http::to_bytes(response);
    const Microseconds delay = processing_delay_ + fault.extra_delay;
    if (fault.kind == ServerFault::Kind::kCrash) {
      // Crash mid-response: emit a prefix of the wire bytes, then RST.
      // The crashed worker's slot is freed (the process died).
      ++faults_injected_;
      const double fraction = std::clamp(fault.fraction, 0.0, 1.0);
      const auto cut = static_cast<std::size_t>(
          static_cast<double>(wire.size()) * fraction);
      wire.resize(std::max<std::size_t>(1, std::min(cut, wire.size())));
      const std::weak_ptr<TcpConnection> weak = session->connection;
      auto crash = [this, weak, session, wire = std::move(wire)] {
        if (const auto conn = weak.lock()) {
          conn->send(wire);
          conn->abort();
        }
        release_worker(session);
      };
      if (delay > 0) {
        fabric_.loop().schedule_in(delay, std::move(crash));
      } else {
        crash();
      }
      return;  // the connection is (about to be) gone
    }
    if (delay > 0) {
      // Simulated server think time (first-byte latency); overlaps freely
      // across requests.
      const std::weak_ptr<TcpConnection> weak = session->connection;
      fabric_.loop().schedule_in(
          delay, [weak, wire = std::move(wire), keep_alive] {
            if (const auto conn = weak.lock()) {
              conn->send(wire);
              if (!keep_alive) {
                conn->close();
              }
            }
          });
    } else {
      connection->send(std::move(wire));
      if (!keep_alive) {
        connection->close();
      }
    }
  }
}

// --- HttpClientConnection -------------------------------------------------------

HttpClientConnection::HttpClientConnection(Fabric& fabric, Address server,
                                           ErrorCallback on_error,
                                           TcpConnection::Config config)
    : fabric_{fabric},
      on_error_{std::move(on_error)},
      client_{fabric, server,
              TcpConnection::Callbacks{
                  .on_connected =
                      [this] {
                        connected_ = true;
                        notify_connected();
                        maybe_send_next();
                      },
                  .on_data = [this](std::string_view bytes) { on_data(bytes); },
                  .on_peer_close =
                      [this] {
                        // Server closed: completes read-until-close bodies.
                        parser_.on_close();
                        on_data({});
                        if (outstanding_ > 0 || !queue_.empty()) {
                          fail("connection closed by server");
                        } else {
                          alive_ = false;
                        }
                      },
                  .on_reset =
                      [this] {
                        // Typed close reason from TCP: a deadline-driven
                        // resilience layer treats "server crashed" and
                        // "network unreachable" differently.
                        switch (client_.connection().close_reason()) {
                          case TcpConnection::CloseReason::kSynTimeout:
                          case TcpConnection::CloseReason::kRetransmitExhausted:
                            fail(std::string{to_string(
                                client_.connection().close_reason())});
                            break;
                          default:
                            fail("connection reset");
                            break;
                        }
                      }},
              config} {}

void HttpClientConnection::fetch(http::Request request,
                                 ResponseCallback callback, FetchHooks hooks) {
  MAHI_ASSERT(callback != nullptr);
  if (!alive_) {
    if (on_error_) {
      on_error_("fetch on dead connection");
    }
    return;
  }
  queue_.push_back(PendingRequest{std::move(request), std::move(callback),
                                  std::move(hooks)});
  maybe_send_next();
}

void HttpClientConnection::close_when_idle() {
  close_when_idle_ = true;
  if (idle() && alive_) {
    alive_ = false;
    client_.connection().close();
  }
}

void HttpClientConnection::abort() {
  alive_ = false;
  outstanding_ = 0;
  queue_.clear();
  in_flight_callbacks_.clear();
  current_hooks_ = {};
  client_.connection().abort();
}

void HttpClientConnection::notify_connected() {
  // Every queued request was waiting on this handshake (requests only
  // queue pre-connect or behind an outstanding response, and the latter
  // implies an established connection). Fire-once per hook set.
  for (PendingRequest& pending : queue_) {
    if (pending.hooks.on_connected) {
      auto connected = std::move(pending.hooks.on_connected);
      pending.hooks.on_connected = nullptr;
      connected();
    }
  }
}

void HttpClientConnection::maybe_send_next() {
  if (!connected_ || !alive_ || outstanding_ > 0 || queue_.empty()) {
    return;
  }
  PendingRequest next = std::move(queue_.front());
  queue_.pop_front();
  http::finalize_content_length(next.request);
  parser_.notify_request(next.request.method);
  in_flight_callbacks_.push_back(std::move(next.callback));
  current_hooks_ = std::move(next.hooks);
  outstanding_ = 1;
  client_.connection().send(http::to_bytes(next.request));
  if (current_hooks_.on_sent) {
    current_hooks_.on_sent();
  }
}

void HttpClientConnection::on_data(std::string_view bytes) {
  if (!bytes.empty() && outstanding_ > 0 && current_hooks_.on_first_byte) {
    // First response bytes for the outstanding request (no pipelining, so
    // any arriving data belongs to it). Fire once, then disarm.
    auto first_byte = std::move(current_hooks_.on_first_byte);
    current_hooks_.on_first_byte = nullptr;
    first_byte();
  }
  if (!bytes.empty()) {
    parser_.push(bytes);
  }
  if (parser_.failed()) {
    fail("response parse failure: " + parser_.error_message());
    return;
  }
  while (parser_.has_message()) {
    http::Response response = parser_.pop();
    MAHI_ASSERT_MSG(!in_flight_callbacks_.empty(),
                    "response with no outstanding request");
    ResponseCallback callback = std::move(in_flight_callbacks_.front());
    in_flight_callbacks_.pop_front();
    outstanding_ = 0;
    const bool server_closing = !response.keep_alive();
    callback(std::move(response));
    if (server_closing) {
      alive_ = false;
      client_.connection().close();
      if (!queue_.empty()) {
        fail("server closed with requests queued");
      }
      return;
    }
    maybe_send_next();
  }
  if (close_when_idle_ && idle() && alive_) {
    alive_ = false;
    client_.connection().close();
  }
}

void HttpClientConnection::fail(const std::string& reason) {
  if (!alive_ && outstanding_ == 0 && queue_.empty()) {
    return;
  }
  alive_ = false;
  outstanding_ = 0;
  queue_.clear();
  in_flight_callbacks_.clear();
  current_hooks_ = {};
  if (on_error_) {
    on_error_(reason);
  }
}

}  // namespace mahimahi::net
