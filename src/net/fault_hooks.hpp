#pragma once

// Fault-injection hook types shared by the origin servers (HTTP + mux) and
// the DNS server. The servers only *consume* these — deciding which request
// or query misbehaves is the fault layer's job (src/fault/), which hands a
// hook down through the server options. Keeping the types here (dep-free)
// lets src/net stay below src/fault in the layering.

#include <cstdint>
#include <functional>

#include "util/time.hpp"

namespace mahimahi::net {

/// What an origin server should do with one incoming request.
struct ServerFault {
  enum class Kind : std::uint8_t {
    kNone,   ///< serve normally
    kCrash,  ///< send a prefix of the response bytes, then RST the connection
    kStall,  ///< accept the request and never respond
  };
  Kind kind{Kind::kNone};
  /// kCrash: fraction of the wire bytes sent before the reset (clamped so at
  /// least one byte goes out — a crash mid-response, not a refused request).
  double fraction{0.5};
  /// Added to the server's processing delay (slow-start / brown-out faults).
  Microseconds extra_delay{0};
};

/// Decides the fault for request number `request_index` (0-based, in the
/// order the server parses requests). Must be a pure function of the index
/// so injected faults are identical at any thread or shard count.
using ServerFaultHook = std::function<ServerFault(std::uint64_t request_index)>;

/// What the DNS server should do with one incoming query.
enum class DnsFault : std::uint8_t {
  kNone,  ///< answer normally
  kDrop,  ///< swallow the query (client sees a timeout and retries)
  kFail,  ///< reply NXDOMAIN even for known names
};

/// Decides the fault for query number `query_index` (0-based arrival order).
using DnsFaultHook = std::function<DnsFault(std::uint64_t query_index)>;

}  // namespace mahimahi::net
