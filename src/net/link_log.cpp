#include "net/link_log.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/strings.hpp"

namespace mahimahi::net {

std::string_view to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kOverflow:
      return "overflow";
    case DropReason::kAqm:
      return "aqm";
    case DropReason::kUnknown:
      break;
  }
  return "unknown";
}

void LinkLog::add(Microseconds at, LinkLogEvent::Kind kind, std::uint32_t bytes,
                  std::uint64_t id, DropReason reason) {
  events_.push_back(LinkLogEvent{at, kind, bytes, id, reason});
}

void LinkLog::arrival(Microseconds at, std::uint32_t bytes, std::uint64_t id) {
  add(at, LinkLogEvent::Kind::kArrival, bytes, id);
}

void LinkLog::departure(Microseconds at, std::uint32_t bytes, std::uint64_t id) {
  add(at, LinkLogEvent::Kind::kDeparture, bytes, id);
}

void LinkLog::drop(Microseconds at, std::uint32_t bytes, std::uint64_t id,
                   DropReason reason) {
  add(at, LinkLogEvent::Kind::kDrop, bytes, id, reason);
}

std::string LinkLog::to_text() const {
  std::ostringstream out;
  for (const auto& event : events_) {
    out << (event.at / 1000) << ' ' << static_cast<char>(event.kind) << ' '
        << event.bytes << '\n';
  }
  return out.str();
}

LinkLog LinkLog::parse(std::string_view text) {
  LinkLog log;
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto fields = util::split(line, ' ');
    if (fields.size() != 3) {
      throw std::invalid_argument{"bad link log line: " + std::string{line}};
    }
    std::uint64_t ms = 0;
    std::uint64_t bytes = 0;
    if (!util::parse_u64(fields[0], ms) || !util::parse_u64(fields[2], bytes) ||
        fields[1].size() != 1) {
      throw std::invalid_argument{"bad link log line: " + std::string{line}};
    }
    const char kind_char = fields[1][0];
    LinkLogEvent::Kind kind;
    switch (kind_char) {
      case '+': kind = LinkLogEvent::Kind::kArrival; break;
      case '-': kind = LinkLogEvent::Kind::kDeparture; break;
      case 'd': kind = LinkLogEvent::Kind::kDrop; break;
      default:
        throw std::invalid_argument{"bad link log event kind: " +
                                    std::string{line}};
    }
    log.add(static_cast<Microseconds>(ms) * 1000, kind,
            static_cast<std::uint32_t>(bytes), 0);
  }
  return log;
}

LinkLogSummary summarize_link_log(const LinkLog& log, Microseconds bin_width) {
  LinkLogSummary summary;
  summary.bin_width = bin_width;
  if (log.events().empty()) {
    return summary;
  }
  // Match departures to arrivals: by packet id when available, else FIFO.
  std::unordered_map<std::uint64_t, Microseconds> by_id;
  std::deque<Microseconds> fifo;
  util::Samples delays_ms;
  Microseconds last_time = 0;
  // Instantaneous queue depth, replayed from the event stream: +1 at
  // arrival, -1 at departure or drop.
  std::uint64_t depth_packets = 0;
  std::uint64_t depth_bytes = 0;

  for (const auto& event : log.events()) {
    last_time = std::max(last_time, event.at);
    switch (event.kind) {
      case LinkLogEvent::Kind::kArrival:
        ++summary.arrivals;
        ++depth_packets;
        depth_bytes += event.bytes;
        summary.queue_high_water_packets =
            std::max(summary.queue_high_water_packets, depth_packets);
        summary.queue_high_water_bytes =
            std::max(summary.queue_high_water_bytes, depth_bytes);
        if (event.packet_id != 0) {
          by_id[event.packet_id] = event.at;
        } else {
          fifo.push_back(event.at);
        }
        break;
      case LinkLogEvent::Kind::kDeparture: {
        ++summary.departures;
        summary.bytes_delivered += event.bytes;
        if (depth_packets > 0) {
          --depth_packets;
        }
        depth_bytes -= std::min<std::uint64_t>(depth_bytes, event.bytes);
        Microseconds arrived = -1;
        if (event.packet_id != 0) {
          if (const auto it = by_id.find(event.packet_id); it != by_id.end()) {
            arrived = it->second;
            by_id.erase(it);
          }
        } else if (!fifo.empty()) {
          arrived = fifo.front();
          fifo.pop_front();
        }
        if (arrived >= 0) {
          delays_ms.add(to_ms(event.at - arrived));
        }
        break;
      }
      case LinkLogEvent::Kind::kDrop:
        ++summary.drops;
        switch (event.reason) {
          case DropReason::kOverflow:
            ++summary.drops_overflow;
            break;
          case DropReason::kAqm:
            ++summary.drops_aqm;
            break;
          case DropReason::kUnknown:
            ++summary.drops_unknown;
            break;
        }
        if (depth_packets > 0) {
          --depth_packets;
        }
        depth_bytes -= std::min<std::uint64_t>(depth_bytes, event.bytes);
        break;
    }
  }

  if (!delays_ms.empty()) {
    summary.delay_p50_ms = delays_ms.median();
    summary.delay_p95_ms = delays_ms.percentile(95);
    summary.delay_max_ms = delays_ms.max();
  }
  if (last_time > 0) {
    summary.average_throughput_bps =
        static_cast<double>(summary.bytes_delivered) * 8.0 /
        (static_cast<double>(last_time) / 1e6);
    const std::size_t bins =
        static_cast<std::size_t>(last_time / bin_width) + 1;
    summary.throughput_bins_bps.assign(bins, 0.0);
    for (const auto& event : log.events()) {
      if (event.kind == LinkLogEvent::Kind::kDeparture) {
        summary.throughput_bins_bps[static_cast<std::size_t>(event.at / bin_width)] +=
            static_cast<double>(event.bytes) * 8.0;
      }
    }
    for (double& bin : summary.throughput_bins_bps) {
      bin /= static_cast<double>(bin_width) / 1e6;
    }
  }
  return summary;
}

void LoggingTap::process(Packet&& packet, Direction direction) {
  const Microseconds now = loop_ != nullptr ? loop_->now() : 0;
  auto& log = logs_[direction == Direction::kUplink ? 0 : 1];
  // A tap is not a queue: the packet arrives and departs instantly; both
  // events are recorded so summaries see counts and bytes.
  log.arrival(now, static_cast<std::uint32_t>(packet.wire_size()), packet.id);
  log.departure(now, static_cast<std::uint32_t>(packet.wire_size()), packet.id);
  emit(std::move(packet), direction);
}

}  // namespace mahimahi::net
