#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "net/address.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Wire MTU used throughout (matches mahimahi's DATAGRAM_SIZE).
inline constexpr std::size_t kMtuBytes = 1500;

/// Bytes of IP + TCP header accounted per segment (20 IP + 32 TCP with
/// timestamp options — what Linux actually puts on the wire).
inline constexpr std::size_t kTcpHeaderBytes = 52;

/// Bytes of IP + UDP header per datagram.
inline constexpr std::size_t kUdpHeaderBytes = 28;

/// Maximum TCP payload per segment.
inline constexpr std::size_t kMss = kMtuBytes - kTcpHeaderBytes;  // 1448

enum class Protocol : std::uint8_t { kTcp, kUdp };

/// Immutable shared payload buffer plus a (pointer, length) view into it —
/// the zero-copy substrate currency. Slicing, copying, and moving a
/// Payload never copies bytes: every segment of a TCP transfer aliases the
/// sender's buffered chunk, and a packet copy is a reference-count bump.
///
/// Ownership is type-erased: the view points into storage kept alive by a
/// shared owner handle (a std::string, a raw character array, anything).
///
/// Contract: bytes reachable through any view are immutable for the
/// owner's lifetime. Producers hand ownership of a std::string to the
/// Payload (or share storage already wrapped) and never mutate the viewed
/// bytes afterwards; consumers read through string_view and may hold the
/// view only while they hold the Payload.
class Payload {
 public:
  Payload() = default;

  /// Wrap a byte string into a freshly shared buffer. Implicit so
  /// structural code (tests, DNS wire formats) can assign strings
  /// directly; empty strings allocate nothing.
  Payload(std::string bytes) {  // NOLINT(google-explicit-constructor)
    if (!bytes.empty()) {
      auto buffer = std::make_shared<const std::string>(std::move(bytes));
      data_ = buffer->data();
      length_ = buffer->size();
      owner_ = std::move(buffer);
    }
  }

  Payload(const char* bytes)  // NOLINT(google-explicit-constructor)
      : Payload{std::string{bytes}} {}

  /// View an entire already-shared buffer (no copy, shared ownership).
  explicit Payload(std::shared_ptr<const std::string> buffer) {
    if (buffer != nullptr && !buffer->empty()) {
      data_ = buffer->data();
      length_ = buffer->size();
      owner_ = std::move(buffer);
    }
  }

  /// View `length` bytes at `data`, kept alive by `owner` — the hook for
  /// non-string storage (e.g. the TCP send buffer's staging array). The
  /// caller guarantees [data, data + length) stays valid and immutable
  /// for the owner's lifetime.
  static Payload from_storage(std::shared_ptr<const void> owner,
                              const char* data, std::size_t length) {
    Payload payload;
    if (length != 0) {
      payload.owner_ = std::move(owner);
      payload.data_ = data;
      payload.length_ = length;
    }
    return payload;
  }

  [[nodiscard]] std::size_t size() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }

  [[nodiscard]] std::string_view view() const {
    return std::string_view{data_, length_};
  }
  operator std::string_view() const { return view(); }  // NOLINT

  /// Sub-view sharing the same storage — the zero-copy slice. `offset`
  /// and `length` are clamped to the payload's bounds.
  [[nodiscard]] Payload slice(std::size_t offset, std::size_t length) const {
    Payload sliced;
    if (offset >= length_) {
      return sliced;
    }
    sliced.owner_ = owner_;
    sliced.data_ = data_ + offset;
    sliced.length_ = std::min(length, length_ - offset);
    return sliced;
  }

  /// The view starting `n` bytes in (clamped) — reassembly overlap trim.
  [[nodiscard]] Payload without_prefix(std::size_t n) const {
    return slice(n, length_ - std::min(n, length_));
  }

  /// True when both payloads share the same underlying storage — the
  /// introspection hook zero-copy tests assert on.
  [[nodiscard]] bool same_buffer(const Payload& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

 private:
  const char* data_{""};  // never null: view() is always a valid range
  std::size_t length_{0};
  std::shared_ptr<const void> owner_;
};

/// TCP segment fields. Segments are modelled structurally (no header-byte
/// serialization) — the emulation elements only care about sizes and the
/// endpoints only care about these fields.
struct TcpSegment {
  std::uint64_t seq{0};   // byte offset of first payload byte (SYN/FIN consume one)
  std::uint64_t ack{0};   // next byte expected (valid when has_ack)
  bool syn{false};
  bool fin{false};
  bool rst{false};
  bool has_ack{false};
  Payload payload;
};

/// One simulated IP packet.
struct Packet {
  Address src;
  Address dst;
  Protocol protocol{Protocol::kTcp};
  TcpSegment tcp;    // valid when protocol == kTcp
  Payload payload;   // valid when protocol == kUdp
  std::uint64_t id{0};  // unique per fabric, for logs/tests
  Microseconds queued_at{0};  // set by elements for queue-delay logging

  /// Total bytes this packet occupies on the wire (headers included) —
  /// what delivery opportunities are charged against.
  [[nodiscard]] std::size_t wire_size() const {
    if (protocol == Protocol::kTcp) {
      return kTcpHeaderBytes + tcp.payload.size();
    }
    return kUdpHeaderBytes + payload.size();
  }
};

/// Which way a packet is travelling through an element chain:
/// uplink = away from the application (client), toward origin servers.
enum class Direction : std::uint8_t { kUplink, kDownlink };

constexpr Direction opposite(Direction d) {
  return d == Direction::kUplink ? Direction::kDownlink : Direction::kUplink;
}

constexpr const char* direction_name(Direction d) {
  return d == Direction::kUplink ? "uplink" : "downlink";
}

}  // namespace mahimahi::net
