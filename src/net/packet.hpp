#pragma once

#include <cstdint>
#include <string>

#include "net/address.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Wire MTU used throughout (matches mahimahi's DATAGRAM_SIZE).
inline constexpr std::size_t kMtuBytes = 1500;

/// Bytes of IP + TCP header accounted per segment (20 IP + 32 TCP with
/// timestamp options — what Linux actually puts on the wire).
inline constexpr std::size_t kTcpHeaderBytes = 52;

/// Bytes of IP + UDP header per datagram.
inline constexpr std::size_t kUdpHeaderBytes = 28;

/// Maximum TCP payload per segment.
inline constexpr std::size_t kMss = kMtuBytes - kTcpHeaderBytes;  // 1448

enum class Protocol : std::uint8_t { kTcp, kUdp };

/// TCP segment fields. Segments are modelled structurally (no header-byte
/// serialization) — the emulation elements only care about sizes and the
/// endpoints only care about these fields.
struct TcpSegment {
  std::uint64_t seq{0};   // byte offset of first payload byte (SYN/FIN consume one)
  std::uint64_t ack{0};   // next byte expected (valid when has_ack)
  bool syn{false};
  bool fin{false};
  bool rst{false};
  bool has_ack{false};
  std::string payload;
};

/// One simulated IP packet.
struct Packet {
  Address src;
  Address dst;
  Protocol protocol{Protocol::kTcp};
  TcpSegment tcp;       // valid when protocol == kTcp
  std::string payload;  // valid when protocol == kUdp
  std::uint64_t id{0};  // unique per fabric, for logs/tests
  Microseconds queued_at{0};  // set by elements for queue-delay logging

  /// Total bytes this packet occupies on the wire (headers included) —
  /// what delivery opportunities are charged against.
  [[nodiscard]] std::size_t wire_size() const {
    if (protocol == Protocol::kTcp) {
      return kTcpHeaderBytes + tcp.payload.size();
    }
    return kUdpHeaderBytes + payload.size();
  }
};

/// Which way a packet is travelling through an element chain:
/// uplink = away from the application (client), toward origin servers.
enum class Direction : std::uint8_t { kUplink, kDownlink };

constexpr Direction opposite(Direction d) {
  return d == Direction::kUplink ? Direction::kDownlink : Direction::kUplink;
}

constexpr const char* direction_name(Direction d) {
  return d == Direction::kUplink ? "uplink" : "downlink";
}

}  // namespace mahimahi::net
