#pragma once

#include <memory>
#include <optional>
#include <string>

#include "net/element.hpp"
#include "net/link_log.hpp"
#include "net/queue.hpp"
#include "obs/trace.hpp"
#include "trace/trace.hpp"

namespace mahimahi::net {

/// One direction of a trace-driven link: an arrival queue drained by the
/// trace's packet-delivery opportunities (mahimahi's link_queue).
///
/// Each opportunity can carry up to trace::kOpportunityBytes of the head
/// packet; a packet departs at the opportunity that delivers its last byte
/// (packets above the MTU would consume several opportunities; TCP
/// segmentation keeps everything at or below one).
class LinkQueue {
 public:
  using Deliver = std::function<void(Packet&&)>;

  LinkQueue(EventLoop& loop, trace::PacketTrace trace,
            std::unique_ptr<PacketQueue> queue, Deliver deliver);

  /// Packet arrives at the link.
  void accept(Packet&& packet);

  /// Record arrivals/departures/drops into `log` (mm-link --*-log).
  void set_log(LinkLog* log) { log_ = log; }

  /// Mirror enqueue/dequeue/drop events (with instantaneous queue depth)
  /// into an obs tracer. `label` names this queue in the trace, e.g.
  /// "shell0/up"; drops append their reason ("label/overflow"). Null
  /// tracer disables (the default, near-free path).
  void set_tracer(obs::Tracer* tracer, std::int32_t session,
                  std::string label) {
    tracer_ = tracer;
    trace_session_ = session;
    trace_label_ = std::move(label);
  }

  [[nodiscard]] const PacketQueue& queue() const { return *queue_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }

 private:
  void schedule_next_opportunity();
  void use_opportunity();

  EventLoop& loop_;
  trace::PacketTrace trace_;
  std::unique_ptr<PacketQueue> queue_;
  Deliver deliver_;
  LinkLog* log_{nullptr};
  obs::Tracer* tracer_{nullptr};
  std::int32_t trace_session_{0};
  std::string trace_label_;

  std::uint64_t next_opportunity_{0};      // index into the (repeating) trace
  EventLoop::EventId pending_event_{0};    // scheduled opportunity, 0 = none
  std::optional<Packet> in_service_;       // head packet partially delivered
  std::size_t in_service_remaining_{0};    // bytes still to deliver
  std::uint64_t delivered_packets_{0};
  std::uint64_t delivered_bytes_{0};
};

/// LinkShell's element: an uplink LinkQueue and a downlink LinkQueue fed
/// from (possibly different) packet-delivery traces.
class TraceLink final : public NetworkElement {
 public:
  TraceLink(EventLoop& loop, trace::PacketTrace uplink_trace,
            trace::PacketTrace downlink_trace, QueueSpec uplink_queue = {},
            QueueSpec downlink_queue = {});

  void process(Packet&& packet, Direction direction) override;

  /// Turn on per-direction logging (kept by the link; see logs()).
  void enable_logging();
  [[nodiscard]] const LinkLog& log(Direction direction) const;

  /// Trace both directions into `tracer`; queues are labeled
  /// "<name>/up" and "<name>/down".
  void set_tracer(obs::Tracer* tracer, std::int32_t session,
                  const std::string& name);

  [[nodiscard]] const LinkQueue& uplink() const { return *uplink_; }
  [[nodiscard]] const LinkQueue& downlink() const { return *downlink_; }

 private:
  std::unique_ptr<LinkQueue> uplink_;
  std::unique_ptr<LinkQueue> downlink_;
  std::unique_ptr<LinkLog> logs_[2];
};

}  // namespace mahimahi::net
