#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Packet queue discipline, as selected by mm-link's --uplink-queue= /
/// --downlink-queue= options. Implementations decide what to do on
/// overflow; dequeue order is FIFO for all shipped disciplines.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Offer a packet at time `now`. The queue may drop it (or another
  /// queued packet) according to its discipline.
  virtual void enqueue(Packet&& packet, Microseconds now) = 0;

  /// Remove the head packet, if any. `now` lets AQMs (CoDel) decide drops.
  virtual std::optional<Packet> dequeue(Microseconds now) = 0;

  [[nodiscard]] virtual std::size_t packet_count() const = 0;
  [[nodiscard]] virtual std::size_t byte_count() const = 0;
  [[nodiscard]] bool empty() const { return packet_count() == 0; }

  /// Packets dropped so far (overflow or AQM).
  [[nodiscard]] virtual std::uint64_t drops() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Unbounded FIFO — mm-link's default (and DelayShell's only) queue.
class InfiniteQueue final : public PacketQueue {
 public:
  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "infinite"; }

 private:
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
};

/// Bounded FIFO that drops arriving packets when full (tail drop).
/// Capacity may be expressed in packets, bytes, or both (0 = unlimited,
/// but at least one bound must be set).
class DropTailQueue final : public PacketQueue {
 public:
  DropTailQueue(std::size_t max_packets, std::size_t max_bytes);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::string name() const override { return "droptail"; }

 private:
  [[nodiscard]] bool would_overflow(const Packet& packet) const;

  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
};

/// Bounded FIFO that evicts the *oldest* packet to admit a new one.
class DropHeadQueue final : public PacketQueue {
 public:
  DropHeadQueue(std::size_t max_packets, std::size_t max_bytes);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::string name() const override { return "drophead"; }

 private:
  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
};

/// CoDel AQM (RFC 8289) — mahimahi's mm-link --*-queue=codel. Drops at
/// dequeue when packets have sat longer than `target` for at least an
/// `interval`, with the standard sqrt-rate control law.
class CoDelQueue final : public PacketQueue {
 public:
  explicit CoDelQueue(Microseconds target = 5'000 /* 5 ms */,
                      Microseconds interval = 100'000 /* 100 ms */,
                      std::size_t max_packets = 0 /* 0 = unbounded */);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::string name() const override { return "codel"; }

 private:
  [[nodiscard]] bool should_drop(const Packet& packet, Microseconds now);

  Microseconds target_;
  Microseconds interval_;
  std::size_t max_packets_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
  // CoDel state machine.
  bool dropping_{false};
  Microseconds first_above_time_{0};
  Microseconds drop_next_{0};
  std::uint32_t drop_count_{0};
};

/// Construct a queue from mm-link-style spec: "infinite", "droptail",
/// "drophead" (with packet/byte limits), or "codel".
struct QueueSpec {
  std::string discipline{"infinite"};
  std::size_t max_packets{0};
  std::size_t max_bytes{0};
  Microseconds codel_target{5'000};
  Microseconds codel_interval{100'000};
};

std::unique_ptr<PacketQueue> make_queue(const QueueSpec& spec);

}  // namespace mahimahi::net
