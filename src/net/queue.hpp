#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Packet queue discipline, as selected by mm-link's --uplink-queue= /
/// --downlink-queue= options. Implementations decide what to do on
/// overflow; dequeue order is FIFO for all shipped disciplines.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Offer a packet at time `now`. The queue may drop it (or another
  /// queued packet) according to its discipline.
  virtual void enqueue(Packet&& packet, Microseconds now) = 0;

  /// Remove the head packet, if any. `now` lets AQMs (CoDel) decide drops.
  virtual std::optional<Packet> dequeue(Microseconds now) = 0;

  [[nodiscard]] virtual std::size_t packet_count() const = 0;
  [[nodiscard]] virtual std::size_t byte_count() const = 0;
  [[nodiscard]] bool empty() const { return packet_count() == 0; }

  /// Packets dropped so far (overflow or AQM).
  [[nodiscard]] virtual std::uint64_t drops() const = 0;

  /// Drop attribution: capacity-overflow drops vs AQM control-law drops.
  /// For every shipped discipline overflow_drops() + aqm_drops() equals
  /// drops() — link instrumentation relies on the deltas to label each
  /// drop with its reason.
  [[nodiscard]] virtual std::uint64_t overflow_drops() const { return 0; }
  [[nodiscard]] virtual std::uint64_t aqm_drops() const { return 0; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Unbounded FIFO — mm-link's default (and DelayShell's only) queue.
class InfiniteQueue final : public PacketQueue {
 public:
  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "infinite"; }

 private:
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
};

/// Bounded FIFO that drops arriving packets when full (tail drop).
/// Capacity may be expressed in packets, bytes, or both (0 = unlimited,
/// but at least one bound must be set).
class DropTailQueue final : public PacketQueue {
 public:
  DropTailQueue(std::size_t max_packets, std::size_t max_bytes);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t overflow_drops() const override { return drops_; }
  [[nodiscard]] std::string name() const override { return "droptail"; }

 private:
  [[nodiscard]] bool would_overflow(const Packet& packet) const;

  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
};

/// Bounded FIFO that evicts the *oldest* packet to admit a new one.
class DropHeadQueue final : public PacketQueue {
 public:
  DropHeadQueue(std::size_t max_packets, std::size_t max_bytes);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override { return drops_; }
  [[nodiscard]] std::uint64_t overflow_drops() const override { return drops_; }
  [[nodiscard]] std::string name() const override { return "drophead"; }

 private:
  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t drops_{0};
};

/// CoDel AQM (RFC 8289) — mahimahi's mm-link --*-queue=codel. Drops at
/// dequeue when packets have sat longer than `target` for at least an
/// `interval`, with the standard sqrt-rate control law.
class CoDelQueue final : public PacketQueue {
 public:
  explicit CoDelQueue(Microseconds target = 5'000 /* 5 ms */,
                      Microseconds interval = 100'000 /* 100 ms */,
                      std::size_t max_packets = 0 /* 0 = unbounded */);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override {
    return overflow_drops_ + aqm_drops_;
  }
  [[nodiscard]] std::uint64_t overflow_drops() const override {
    return overflow_drops_;
  }
  [[nodiscard]] std::uint64_t aqm_drops() const override { return aqm_drops_; }
  [[nodiscard]] std::string name() const override { return "codel"; }

 private:
  [[nodiscard]] bool should_drop(const Packet& packet, Microseconds now);

  Microseconds target_;
  Microseconds interval_;
  std::size_t max_packets_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t overflow_drops_{0};  // hard max_packets bound at enqueue
  std::uint64_t aqm_drops_{0};       // control-law drops at dequeue
  // CoDel state machine.
  bool dropping_{false};
  Microseconds first_above_time_{0};
  Microseconds drop_next_{0};
  std::uint32_t drop_count_{0};
};

/// PIE AQM (RFC 8033) — Proportional Integral controller Enhanced, the
/// DOCSIS-favoured alternative to CoDel. Drops at *enqueue* with a
/// probability the controller updates every `tupdate` from the head
/// packet's sojourn time (the RFC 8033 §5.2 timestamp variant, which fits
/// a simulator where every packet carries its arrival time):
///
///   p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)
///
/// with the RFC's auto-tuned step scaling, burst allowance, the §5.1
/// small-queue safeguard, and exponential decay of p when the queue
/// drains. The drop coin comes from a self-contained util::Rng seeded
/// from the spec, so a PIE queue is bit-deterministic: same packet
/// arrival sequence, same drops — thread count and wall clock never
/// enter.
class PieQueue final : public PacketQueue {
 public:
  explicit PieQueue(Microseconds target = 15'000 /* 15 ms */,
                    Microseconds tupdate = 15'000 /* 15 ms */,
                    std::size_t max_packets = 0 /* 0 = unbounded */,
                    std::uint64_t seed = 0x91E);

  void enqueue(Packet&& packet, Microseconds now) override;
  std::optional<Packet> dequeue(Microseconds now) override;
  [[nodiscard]] std::size_t packet_count() const override { return queue_.size(); }
  [[nodiscard]] std::size_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const override {
    return overflow_drops_ + aqm_drops_;
  }
  [[nodiscard]] std::uint64_t overflow_drops() const override {
    return overflow_drops_;
  }
  [[nodiscard]] std::uint64_t aqm_drops() const override { return aqm_drops_; }
  [[nodiscard]] std::string name() const override { return "pie"; }

  /// Current drop probability (test/meter introspection).
  [[nodiscard]] double drop_probability() const { return p_; }

 private:
  static constexpr Microseconds kMaxBurst = 150'000;  // RFC 8033 §4.4
  static constexpr double kAlpha = 0.125;             // Hz, RFC 8033 §4.2
  static constexpr double kBeta = 1.25;

  void maybe_update(Microseconds now);
  [[nodiscard]] bool should_drop(const Packet& packet);

  Microseconds target_;
  Microseconds tupdate_;
  std::size_t max_packets_;
  util::Rng rng_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  std::uint64_t overflow_drops_{0};  // hard max_packets bound
  std::uint64_t aqm_drops_{0};       // probabilistic controller drops
  // Controller state.
  double p_{0.0};
  Microseconds qdelay_old_{0};
  Microseconds burst_allowance_{kMaxBurst};
  Microseconds next_update_{0};
  bool update_armed_{false};
};

/// Construct a queue from mm-link-style spec: "infinite", "droptail",
/// "drophead" (with packet/byte limits), "codel", or "pie".
struct QueueSpec {
  std::string discipline{"infinite"};
  std::size_t max_packets{0};
  std::size_t max_bytes{0};
  Microseconds codel_target{5'000};
  Microseconds codel_interval{100'000};
  Microseconds pie_target{15'000};
  Microseconds pie_tupdate{15'000};
  /// Seed of PIE's drop coin. Callers instantiating several PIE queues
  /// (two link directions, many experiment cells) should derive distinct
  /// seeds here, or their random drops correlate artificially.
  std::uint64_t pie_seed{0x91E};
};

/// Validating factory. Throws std::invalid_argument with an actionable
/// message for an unknown discipline (listing what exists), a droptail/
/// drophead spec with neither a packet nor a byte bound, or non-positive
/// AQM timing parameters — a misspelled spec must never silently fall
/// back to a different queue than the experiment asked for.
std::unique_ptr<PacketQueue> make_queue(const QueueSpec& spec);

/// The discipline names make_queue accepts, sorted (error messages and
/// the experiment engine's axis validation share this list).
[[nodiscard]] std::vector<std::string> known_queue_disciplines();

}  // namespace mahimahi::net
