#include "net/dns.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace mahimahi::net {
namespace {

// Query wire format: "q:<hostname>"; answer: "a:<hostname>:<dotted-quad>"
// or "nx:<hostname>". Minimal, but real bytes over real packets.
constexpr std::string_view kQueryPrefix = "q:";
constexpr std::string_view kAnswerPrefix = "a:";
constexpr std::string_view kNxPrefix = "nx:";

}  // namespace

void DnsTable::add(std::string hostname, Ipv4 ip) {
  entries_[util::to_lower(hostname)] = ip;
}

std::optional<Ipv4> DnsTable::lookup(std::string_view hostname) const {
  const auto it = entries_.find(util::to_lower(hostname));
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

// --- DnsServer ---------------------------------------------------------------

DnsServer::DnsServer(Fabric& fabric, Address local, const DnsTable& table)
    : fabric_{fabric}, local_{local}, table_{table} {
  fabric_.bind(Side::kServer, local_,
               [this](Packet&& p) { handle_packet(std::move(p)); });
}

DnsServer::~DnsServer() { fabric_.unbind(Side::kServer, local_); }

void DnsServer::handle_packet(Packet&& packet) {
  if (packet.protocol != Protocol::kUdp ||
      !util::starts_with(packet.payload, kQueryPrefix)) {
    return;
  }
  const std::string hostname{
      std::string_view{packet.payload}.substr(kQueryPrefix.size())};
  const std::uint64_t query_index = queries_served_++;

  DnsFault fault = DnsFault::kNone;
  if (fault_hook_) {
    fault = fault_hook_(query_index);
  }
  if (tracer_ != nullptr && fault != DnsFault::kNone) {
    tracer_->event(fabric_.loop().now(), obs::Layer::kFault,
                   obs::EventKind::kFaultInjected, trace_session_, 0,
                   query_index, 0,
                   fault == DnsFault::kDrop ? "dns/drop" : "dns/fail");
  }
  if (fault == DnsFault::kDrop) {
    ++faults_injected_;
    return;  // swallow the query; the client times out and retries
  }

  Packet answer;
  answer.protocol = Protocol::kUdp;
  answer.src = local_;
  answer.dst = packet.src;
  if (fault == DnsFault::kFail) {
    ++faults_injected_;
    answer.payload = std::string{kNxPrefix} + hostname;
  } else if (const auto ip = table_.lookup(hostname)) {
    answer.payload = std::string{kAnswerPrefix} + hostname + ':' + ip->to_string();
  } else {
    answer.payload = std::string{kNxPrefix} + hostname;
  }
  fabric_.send(Side::kServer, std::move(answer));
}

// --- DnsClient ---------------------------------------------------------------

DnsClient::DnsClient(Fabric& fabric, Address server, Microseconds query_timeout,
                     int max_retries)
    : fabric_{fabric},
      local_{fabric.allocate_client_address()},
      server_{server},
      query_timeout_{query_timeout},
      max_retries_{max_retries} {
  fabric_.bind(Side::kClient, local_,
               [this](Packet&& p) { handle_packet(std::move(p)); });
}

DnsClient::~DnsClient() {
  for (auto& [hostname, pending] : pending_) {
    if (pending.timeout_event != 0) {
      fabric_.loop().cancel(pending.timeout_event);
    }
  }
  fabric_.unbind(Side::kClient, local_);
}

void DnsClient::resolve(const std::string& hostname, ResolveCallback callback) {
  MAHI_ASSERT(callback != nullptr);
  const std::string key = util::to_lower(hostname);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    callback(it->second);
    return;
  }
  auto& pending = pending_[key];
  pending.callbacks.push_back(std::move(callback));
  if (pending.callbacks.size() > 1) {
    return;  // query already in flight; coalesce
  }
  pending.retries_left = max_retries_;
  if (tracer_ != nullptr) {
    tracer_->event(fabric_.loop().now(), obs::Layer::kDns,
                   obs::EventKind::kDnsQuery, trace_session_, 0, 0, 0, key);
  }
  send_query(key);
}

void DnsClient::send_query(const std::string& hostname) {
  auto& pending = pending_.at(hostname);
  Packet query;
  query.protocol = Protocol::kUdp;
  query.src = local_;
  query.dst = server_;
  query.payload = std::string{kQueryPrefix} + hostname;
  ++queries_sent_;
  fabric_.send(Side::kClient, std::move(query));
  pending.timeout_event = fabric_.loop().schedule_in(
      query_timeout_, [this, hostname] { on_timeout(hostname); });
}

void DnsClient::on_timeout(const std::string& hostname) {
  const auto it = pending_.find(hostname);
  if (it == pending_.end()) {
    return;
  }
  it->second.timeout_event = 0;
  if (it->second.retries_left-- > 0) {
    if (tracer_ != nullptr) {
      tracer_->event(fabric_.loop().now(), obs::Layer::kDns,
                     obs::EventKind::kDnsRetransmit, trace_session_, 0, 0, 0,
                     hostname);
    }
    send_query(hostname);
    return;
  }
  complete(hostname, std::nullopt);
}

void DnsClient::handle_packet(Packet&& packet) {
  if (packet.protocol != Protocol::kUdp) {
    return;
  }
  std::string_view payload{packet.payload};
  if (util::starts_with(payload, kAnswerPrefix)) {
    payload.remove_prefix(kAnswerPrefix.size());
    const auto [hostname, ip_text] = util::split_once(payload, ':');
    const auto ip = Ipv4::parse(ip_text);
    if (!ip) {
      return;
    }
    const std::string key{hostname};
    cache_[key] = *ip;
    complete(key, *ip);
  } else if (util::starts_with(payload, kNxPrefix)) {
    complete(std::string{payload.substr(kNxPrefix.size())}, std::nullopt);
  }
}

void DnsClient::complete(const std::string& hostname, std::optional<Ipv4> answer) {
  const auto it = pending_.find(hostname);
  if (it == pending_.end()) {
    return;  // duplicate answer (retry raced the original)
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  if (pending.timeout_event != 0) {
    fabric_.loop().cancel(pending.timeout_event);
  }
  if (tracer_ != nullptr) {
    tracer_->event(fabric_.loop().now(), obs::Layer::kDns,
                   obs::EventKind::kDnsAnswer, trace_session_, 0,
                   answer ? 1 : 0, 0, hostname);
  }
  for (auto& callback : pending.callbacks) {
    callback(answer);
  }
}

}  // namespace mahimahi::net
