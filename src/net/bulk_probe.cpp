#include "net/bulk_probe.hpp"

#include <memory>

#include "cc/registry.hpp"
#include "net/element.hpp"
#include "net/event_loop.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"
#include "util/statistics.hpp"

namespace mahimahi::net {

BulkFlowReport run_bulk_flow(const BulkFlowSpec& spec) {
  EventLoop loop;
  loop.set_event_limit(50'000'000);
  Fabric fabric{loop};
  fabric.chain().push_back(
      std::make_unique<DelayBox>(loop, spec.one_way_delay));
  auto link = std::make_unique<TraceLink>(
      loop, trace::constant_rate(spec.link_mbps * 1e6, spec.trace_duration),
      trace::constant_rate(spec.link_mbps * 1e6, spec.trace_duration));
  TraceLink& link_ref = *link;
  link_ref.enable_logging();
  fabric.chain().push_back(std::move(link));
  if (spec.loss > 0) {
    fabric.chain().push_back(std::make_unique<LossBox>(
        util::Rng{spec.loss_seed}, spec.loss, spec.loss));
  }

  const Address server_addr{Ipv4{10, 0, 0, 1}, 80};
  std::size_t received = 0;
  std::shared_ptr<TcpConnection> server_conn;  // keeps the acceptee alive
  TcpListener listener{fabric, server_addr,
                       [&](const std::shared_ptr<TcpConnection>& conn) {
                         server_conn = conn;
                         TcpConnection::Callbacks cb;
                         cb.on_data = [&received](std::string_view b) {
                           received += b.size();
                         };
                         cb.on_peer_close = [raw = conn.get()] {
                           raw->close();
                         };
                         return cb;
                       }};
  TcpConnection::Config config;
  config.congestion_control = spec.congestion_control;
  TcpClient client{fabric, server_addr, {}, config};
  client.connection().send(std::string(spec.bytes, 'x'));
  client.connection().close();
  loop.run();

  const TcpConnection& conn = client.connection();
  BulkFlowReport report;
  report.complete = received == spec.bytes;
  report.completed_at = loop.now();
  report.segments_sent = conn.segments_sent();
  report.retransmissions = conn.retransmissions();
  report.controller = std::string{conn.congestion().name()};
  report.final_srtt = conn.smoothed_rtt();
  report.final_cwnd_bytes = conn.cwnd_bytes();
  report.final_pacing_rate = conn.congestion().pacing_rate();
  report.close_reason = conn.close_reason();
  report.uplink = summarize_link_log(link_ref.log(Direction::kUplink));
  return report;
}

MultiBulkFlowReport run_multi_bulk_flow(const MultiBulkFlowSpec& spec) {
  // Senders keep at most kHighWater unacked bytes buffered, topping up in
  // kChunk pieces — enough to keep any bottleneck here saturated without
  // queueing unbounded payload in memory.
  constexpr std::size_t kChunk = 128 * 1024;
  constexpr std::size_t kHighWater = 512 * 1024;
  const std::size_t n = spec.controllers.size();

  EventLoop loop;
  loop.set_event_limit(200'000'000);
  Fabric fabric{loop};
  fabric.chain().push_back(
      std::make_unique<DelayBox>(loop, spec.one_way_delay));
  const trace::PacketTrace up =
      spec.uplink_trace ? *spec.uplink_trace
                        : trace::constant_rate(spec.link_mbps * 1e6, 2'000'000);
  const trace::PacketTrace down =
      spec.downlink_trace
          ? *spec.downlink_trace
          : trace::constant_rate(spec.link_mbps * 1e6, 2'000'000);
  // Same discipline both ways, but distinct AQM drop coins per direction.
  QueueSpec uplink_queue = spec.queue;
  uplink_queue.pie_seed = spec.queue.pie_seed ^ 0x5EED;
  auto link =
      std::make_unique<TraceLink>(loop, up, down, uplink_queue, spec.queue);
  TraceLink& link_ref = *link;
  link_ref.enable_logging();
  fabric.chain().push_back(std::move(link));
  if (spec.loss > 0) {
    fabric.chain().push_back(std::make_unique<LossBox>(
        util::Rng{spec.loss_seed}, spec.loss, spec.loss));
  }

  bool measuring = true;  // senders stop topping up once the window closes
  std::vector<std::shared_ptr<TcpConnection>> senders(n);
  std::vector<std::unique_ptr<TcpListener>> listeners;
  std::vector<std::unique_ptr<TcpClient>> clients(n);
  listeners.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const Address server_addr{Ipv4{10, 0, 0, 1},
                              static_cast<std::uint16_t>(8000 + i)};
    TcpConnection::Config server_config;
    server_config.congestion_control = spec.controllers[i];
    listeners.push_back(std::make_unique<TcpListener>(
        fabric, server_addr,
        [&, i](const std::shared_ptr<TcpConnection>& conn) {
          senders[i] = conn;
          // Keep the pipe full: a top-up on every ack while measuring.
          const auto top_up = [&measuring, &loop, &spec,
                               raw = conn.get()] {
            if (!measuring || loop.now() >= spec.duration) {
              return;
            }
            while (raw->established() &&
                   raw->unacked_send_bytes() < kHighWater) {
              raw->send(std::string(kChunk, 'x'));
            }
          };
          TcpConnection::Callbacks cb;
          cb.on_connected = top_up;
          cb.on_send_progress = top_up;
          return cb;
        },
        server_config));
  }

  // Clients (receivers) open at i * start_stagger; they never send payload.
  const auto open_client = [&](std::size_t i) {
    const Address server_addr{Ipv4{10, 0, 0, 1},
                              static_cast<std::uint16_t>(8000 + i)};
    clients[i] = std::make_unique<TcpClient>(fabric, server_addr,
                                             TcpConnection::Callbacks{},
                                             TcpConnection::Config{});
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Microseconds at =
        static_cast<Microseconds>(i) * spec.start_stagger;
    if (at <= 0) {
      open_client(i);
    } else {
      loop.schedule_at(at, [&open_client, i] { open_client(i); });
    }
  }

  // Close of the measurement window: snapshot, then tear everything down
  // so the loop drains (in-flight packets die against unbound addresses).
  MultiBulkFlowReport report;
  report.flows.resize(n);
  loop.schedule_at(spec.duration, [&] {
    measuring = false;
    for (std::size_t i = 0; i < n; ++i) {
      MultiBulkFlowReport::Flow& flow = report.flows[i];
      flow.controller = spec.controllers[i].empty() ? cc::kDefaultController
                                                    : spec.controllers[i];
      if (senders[i] != nullptr) {
        flow.controller = std::string{senders[i]->congestion().name()};
        flow.final_srtt = senders[i]->smoothed_rtt();
        flow.final_cwnd_bytes = senders[i]->cwnd_bytes();
        flow.retransmissions = senders[i]->retransmissions();
      }
      if (clients[i] != nullptr) {
        flow.bytes_delivered = clients[i]->connection().bytes_received_app();
      }
      flow.throughput_bps = spec.duration > 0
                                ? static_cast<double>(flow.bytes_delivered) *
                                      8e6 /
                                      static_cast<double>(spec.duration)
                                : 0.0;
    }
    for (auto& sender : senders) {
      if (sender != nullptr) {
        sender->abort();
      }
    }
    for (auto& client : clients) {
      if (client != nullptr) {
        client->connection().abort();
      }
    }
  });
  loop.run();

  std::uint64_t total_bytes = 0;
  std::vector<double> throughputs;
  throughputs.reserve(n);
  for (const auto& flow : report.flows) {
    total_bytes += flow.bytes_delivered;
    throughputs.push_back(flow.throughput_bps);
  }
  for (auto& flow : report.flows) {
    flow.share = total_bytes > 0 ? static_cast<double>(flow.bytes_delivered) /
                                       static_cast<double>(total_bytes)
                                 : 0.0;
  }
  report.jain_index = util::jain_fairness_index(throughputs);
  report.bottleneck = summarize_link_log(link_ref.log(Direction::kDownlink));
  return report;
}

}  // namespace mahimahi::net
