#include "net/bulk_probe.hpp"

#include <memory>

#include "net/element.hpp"
#include "net/event_loop.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::net {

BulkFlowReport run_bulk_flow(const BulkFlowSpec& spec) {
  EventLoop loop;
  loop.set_event_limit(50'000'000);
  Fabric fabric{loop};
  fabric.chain().push_back(
      std::make_unique<DelayBox>(loop, spec.one_way_delay));
  auto link = std::make_unique<TraceLink>(
      loop, trace::constant_rate(spec.link_mbps * 1e6, spec.trace_duration),
      trace::constant_rate(spec.link_mbps * 1e6, spec.trace_duration));
  TraceLink& link_ref = *link;
  link_ref.enable_logging();
  fabric.chain().push_back(std::move(link));
  if (spec.loss > 0) {
    fabric.chain().push_back(std::make_unique<LossBox>(
        util::Rng{spec.loss_seed}, spec.loss, spec.loss));
  }

  const Address server_addr{Ipv4{10, 0, 0, 1}, 80};
  std::size_t received = 0;
  std::shared_ptr<TcpConnection> server_conn;  // keeps the acceptee alive
  TcpListener listener{fabric, server_addr,
                       [&](const std::shared_ptr<TcpConnection>& conn) {
                         server_conn = conn;
                         TcpConnection::Callbacks cb;
                         cb.on_data = [&received](std::string_view b) {
                           received += b.size();
                         };
                         cb.on_peer_close = [raw = conn.get()] {
                           raw->close();
                         };
                         return cb;
                       }};
  TcpConnection::Config config;
  config.congestion_control = spec.congestion_control;
  TcpClient client{fabric, server_addr, {}, config};
  client.connection().send(std::string(spec.bytes, 'x'));
  client.connection().close();
  loop.run();

  const TcpConnection& conn = client.connection();
  BulkFlowReport report;
  report.complete = received == spec.bytes;
  report.completed_at = loop.now();
  report.segments_sent = conn.segments_sent();
  report.retransmissions = conn.retransmissions();
  report.controller = std::string{conn.congestion().name()};
  report.final_srtt = conn.smoothed_rtt();
  report.final_cwnd_bytes = conn.cwnd_bytes();
  report.final_pacing_rate = conn.congestion().pacing_rate();
  report.uplink = summarize_link_log(link_ref.log(Direction::kUplink));
  return report;
}

}  // namespace mahimahi::net
