#pragma once

#include <deque>
#include <map>
#include <memory>

#include "http/parser.hpp"
#include "net/fault_hooks.hpp"
#include "net/fetch_hooks.hpp"
#include "net/tcp.hpp"

namespace mahimahi::net::mux {

/// A SPDY-like multiplexing protocol over one TCP connection per origin —
/// the kind of "new multiplexing protocol" the paper's introduction says
/// the toolkit exists to evaluate.
///
/// Wire format (little-endian): stream_id u32 | type u8 | length u32 |
/// payload. A kRequest frame carries one serialized HTTP request; the
/// server answers with kData frames carrying the serialized HTTP response
/// in chunks, interleaved round-robin across active streams and paced
/// against the TCP send buffer, then a kEnd frame. Many streams share one
/// connection: no per-request handshakes, no six-connection limit — and
/// full exposure to TCP head-of-line blocking under loss.
struct Frame {
  enum class Type : std::uint8_t { kRequest = 1, kData = 2, kEnd = 3 };
  std::uint32_t stream_id{0};
  Type type{Type::kData};
  std::string payload;

  bool operator==(const Frame&) const = default;
};

std::string encode_frame(const Frame& frame);

/// Just the 9-byte frame header — the zero-copy send path writes the
/// header and then hands the payload to TCP as an aliasing Payload slice,
/// so response bytes are never copied into a wire string.
std::string encode_frame_header(std::uint32_t stream_id, Frame::Type type,
                                std::uint32_t payload_length);

/// Incremental frame decoder (arbitrary fragmentation). Parsed bytes are
/// consumed by advancing an offset; the buffer compacts lazily instead of
/// memmoving its tail after every frame.
class FrameParser {
 public:
  void push(std::string_view bytes);
  [[nodiscard]] bool has_frame() const { return !frames_.empty(); }
  Frame pop();
  [[nodiscard]] bool failed() const { return failed_; }

  /// Frames above this payload size indicate a corrupt stream.
  static constexpr std::uint32_t kMaxPayload = 8u << 20;

 private:
  std::string buffer_;
  std::size_t consumed_{0};  // parsed prefix of buffer_ awaiting compaction
  std::deque<Frame> frames_;
  bool failed_{false};
};

/// Server side: binds an origin address and answers mux-framed HTTP
/// requests with the same Handler signature HttpServer uses.
class MuxServer {
 public:
  using Handler = std::function<http::Response(const http::Request&)>;

  static constexpr std::size_t kDefaultChunkBytes = 16 * 1024;

  MuxServer(Fabric& fabric, Address local, Handler handler,
            Microseconds processing_delay = 0,
            std::size_t chunk_bytes = kDefaultChunkBytes,
            TcpConnection::Config config = {});

  [[nodiscard]] Address address() const { return listener_.local_address(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_served_; }
  [[nodiscard]] std::uint64_t total_accepted() const {
    return listener_.total_accepted();
  }
  [[nodiscard]] std::uint64_t faults_injected() const { return faults_injected_; }

  /// Fault injection: consulted once per parsed request frame (indexed in
  /// parse order, including requests that end up faulted). Null = none.
  void set_fault_hook(ServerFaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  struct Session {
    std::weak_ptr<TcpConnection> connection;
    FrameParser parser;
    /// Per-stream unsent response bytes (aliasing views into the
    /// serialized response — draining advances the view, copying nothing),
    /// round-robin interleaved.
    std::map<std::uint32_t, Payload> pending_streams;
    std::map<std::uint32_t, Payload>::iterator next_stream;
    bool writer_scheduled{false};

    Session() : next_stream{pending_streams.end()} {}
  };

  TcpConnection::Callbacks make_callbacks(
      const std::shared_ptr<TcpConnection>& connection);
  void on_data(const std::shared_ptr<Session>& session, std::string_view bytes);
  void start_response(const std::shared_ptr<Session>& session,
                      std::uint32_t stream_id, http::Response response);
  void pump_writer(const std::shared_ptr<Session>& session);

  Fabric& fabric_;
  Handler handler_;
  Microseconds processing_delay_;
  std::size_t chunk_bytes_;
  std::uint64_t requests_served_{0};
  std::uint64_t requests_seen_{0};  // fault-hook index (includes faulted)
  std::uint64_t faults_injected_{0};
  ServerFaultHook fault_hook_;
  TcpListener listener_;
};

/// Client side: one connection, many concurrent fetches.
class MuxClientConnection {
 public:
  using ResponseCallback = std::function<void(http::Response)>;
  using ErrorCallback = std::function<void(const std::string& reason)>;

  MuxClientConnection(Fabric& fabric, Address server,
                      ErrorCallback on_error = {},
                      TcpConnection::Config config = {});

  MuxClientConnection(const MuxClientConnection&) = delete;
  MuxClientConnection& operator=(const MuxClientConnection&) = delete;

  /// Issue a request; unlike HTTP/1.1, any number may be outstanding.
  /// `hooks` (optional) observe this stream's transport edges.
  void fetch(http::Request request, ResponseCallback callback,
             FetchHooks hooks = {});

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::size_t outstanding() const { return streams_.size(); }
  [[nodiscard]] const TcpConnection& connection() const {
    return client_.connection();
  }

 private:
  struct Stream {
    http::ResponseParser parser;
    ResponseCallback callback;
    FetchHooks hooks;  // on_first_byte disarmed after the first kData frame
  };

  void on_data(std::string_view bytes);
  void fail(const std::string& reason);

  Fabric& fabric_;
  FrameParser parser_;
  std::map<std::uint32_t, Stream> streams_;
  std::uint32_t next_stream_id_{1};
  bool connected_{false};
  bool alive_{true};
  std::deque<std::string> queued_frames_;  // sent once connected
  ErrorCallback on_error_;
  TcpClient client_;  // declared last: callbacks reference the above
};

}  // namespace mahimahi::net::mux
