#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/element.hpp"
#include "util/statistics.hpp"
#include "util/time.hpp"

namespace mahimahi::net {

/// Why a queue dropped a packet: capacity overflow (droptail/drophead/
/// bounded-AQM tail limits) vs an AQM control-law decision (CoDel, PIE).
/// Logs parsed back from text carry kUnknown (the text format predates
/// reasons and stays mahimahi-compatible).
enum class DropReason : std::uint8_t { kUnknown, kOverflow, kAqm };

[[nodiscard]] std::string_view to_string(DropReason reason);

/// One event in a link log — mahimahi's mm-link --uplink-log/--downlink-log
/// records arrivals (+), departures (-) and drops (d) with millisecond
/// timestamps and byte counts.
struct LinkLogEvent {
  enum class Kind : char { kArrival = '+', kDeparture = '-', kDrop = 'd' };
  Microseconds at{0};
  Kind kind{Kind::kArrival};
  std::uint32_t bytes{0};
  std::uint64_t packet_id{0};
  DropReason reason{DropReason::kUnknown};  // meaningful for kDrop only
};

/// In-memory per-direction link log with mahimahi-compatible text output.
class LinkLog {
 public:
  void arrival(Microseconds at, std::uint32_t bytes, std::uint64_t id);
  void departure(Microseconds at, std::uint32_t bytes, std::uint64_t id);
  void drop(Microseconds at, std::uint32_t bytes, std::uint64_t id,
            DropReason reason = DropReason::kUnknown);

  [[nodiscard]] const std::vector<LinkLogEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// mahimahi log format: one event per line, "<ms> <+|-|d> <bytes>".
  [[nodiscard]] std::string to_text() const;

  /// Parse the text format back (round-trip; packet ids are not stored).
  static LinkLog parse(std::string_view text);

 private:
  void add(Microseconds at, LinkLogEvent::Kind kind, std::uint32_t bytes,
           std::uint64_t id, DropReason reason = DropReason::kUnknown);
  std::vector<LinkLogEvent> events_;
};

/// Summary statistics computed from a link log — what mm-throughput-graph
/// and mm-delay-graph plot.
struct LinkLogSummary {
  std::uint64_t arrivals{0};
  std::uint64_t departures{0};
  std::uint64_t drops{0};
  /// Drops split by reason (drops == overflow + aqm + unknown; parsed
  /// text logs land in unknown).
  std::uint64_t drops_overflow{0};
  std::uint64_t drops_aqm{0};
  std::uint64_t drops_unknown{0};
  /// High-water mark of the queue, reconstructed by replaying the event
  /// stream (+1 at arrival, -1 at departure/drop). The arriving packet
  /// counts at its arrival instant, so a droptail overflow registers the
  /// full queue plus the packet it turned away.
  std::uint64_t queue_high_water_packets{0};
  std::uint64_t queue_high_water_bytes{0};
  std::uint64_t bytes_delivered{0};
  double average_throughput_bps{0};
  /// Per-packet queueing delay (arrival -> departure) percentiles, ms.
  double delay_p50_ms{0};
  double delay_p95_ms{0};
  double delay_max_ms{0};
  /// Throughput per time bin (bps), for plotting.
  std::vector<double> throughput_bins_bps;
  Microseconds bin_width{0};
};

/// Analyze a log. Delays are matched arrival->departure by packet id when
/// ids are present, else FIFO order (the disciplines shipped are FIFO).
LinkLogSummary summarize_link_log(const LinkLog& log,
                                  Microseconds bin_width = 500'000);

/// A transparent element that logs everything crossing it, per direction —
/// wrap it around a TraceLink to get mm-link's logs.
class LoggingTap final : public NetworkElement {
 public:
  void process(Packet&& packet, Direction direction) override;

  [[nodiscard]] const LinkLog& log(Direction direction) const {
    return logs_[direction == Direction::kUplink ? 0 : 1];
  }

  /// Install a clock source (defaults to zero timestamps if unset).
  void set_clock(const EventLoop* loop) { loop_ = loop; }

 private:
  const EventLoop* loop_{nullptr};
  LinkLog logs_[2];
};

}  // namespace mahimahi::net
