#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace mahimahi::net {

/// IPv4 address as a host-order 32-bit value.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_{value} {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d} {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad ("10.0.0.1").
  static std::optional<Ipv4> parse(std::string_view text);

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_{0};
};

/// Transport endpoint address (IP + port).
struct Address {
  Ipv4 ip;
  std::uint16_t port{0};

  [[nodiscard]] std::string to_string() const;

  /// Parse "10.0.0.1:80".
  static std::optional<Address> parse(std::string_view text);

  auto operator<=>(const Address&) const = default;
};

/// Allocates unique addresses in a private subnet — the simulator's
/// equivalent of mahimahi assigning 100.64/10 addresses to its virtual
/// interfaces. Each Namespace owns one.
class AddressAllocator {
 public:
  /// `base` is the first address handed out, e.g. 100.64.0.1.
  explicit AddressAllocator(Ipv4 base = Ipv4{100, 64, 0, 1});

  /// Next never-before-returned IP in the subnet.
  Ipv4 next_ip();

 private:
  std::uint32_t next_;
};

}  // namespace mahimahi::net

template <>
struct std::hash<mahimahi::net::Ipv4> {
  std::size_t operator()(const mahimahi::net::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};

template <>
struct std::hash<mahimahi::net::Address> {
  std::size_t operator()(const mahimahi::net::Address& a) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{a.ip.value()} << 16) | a.port);
  }
};
