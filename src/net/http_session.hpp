#pragma once

#include <functional>
#include <memory>
#include <string>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "net/fault_hooks.hpp"
#include "net/fetch_hooks.hpp"
#include "net/tcp.hpp"

namespace mahimahi::net {

/// Prefork-style worker pool semantics for one server instance: each live
/// connection holds a worker for its whole lifetime (Apache prefork with
/// keep-alive); when the pool is exhausted, further connections wait while
/// the server spawns workers at a bounded rate. Collapsing a 20-origin
/// site onto one server funnels ~60+ simultaneous browser connections
/// into one cold pool — the mechanism behind the paper's Table 2 and
/// Figure 3 single-server penalty. A multi-origin replay gives each origin
/// its own pool, and per-origin demand (<= 6 connections) never starves.
struct WorkerPool {
  int initial_workers{1024};  // effectively uncontended by default
  int max_workers{4096};
  /// One extra worker is spawned per interval while connections wait.
  Microseconds spawn_interval{25'000};
};

/// An HTTP/1.1 origin server running over simulated TCP. Each accepted
/// connection gets a RequestParser; complete requests are answered by the
/// handler in arrival order, honouring keep-alive. Both RecordShell's
/// upstream origins (LiveWeb) and ReplayShell's origin servers are built
/// on this. `processing_delay` is pure per-request latency (think time);
/// connection concurrency is governed by the WorkerPool.
class HttpServer {
 public:
  /// Maps a request to its response. Runs once per complete request.
  using Handler = std::function<http::Response(const http::Request&)>;

  /// Called for every request after the response is computed — the hook
  /// RecordShell's proxy uses to store request/response pairs.
  using Observer =
      std::function<void(const http::Request&, const http::Response&)>;

  /// `config` applies to every accepted connection — notably the
  /// congestion controller serving this origin's responses.
  HttpServer(Fabric& fabric, Address local, Handler handler,
             Microseconds processing_delay = 0,
             TcpConnection::Config config = {});

  /// Install prefork-style concurrency limits. Call before traffic arrives.
  void set_worker_pool(const WorkerPool& pool);

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] Address address() const { return listener_.local_address(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_served_; }
  [[nodiscard]] std::size_t active_connections() const {
    return listener_.active_connections();
  }
  [[nodiscard]] std::uint64_t total_accepted() const {
    return listener_.total_accepted();
  }
  /// Connections that had to wait for a worker (starvation indicator).
  [[nodiscard]] std::uint64_t worker_waits() const { return worker_waits_; }
  [[nodiscard]] std::uint64_t faults_injected() const { return faults_injected_; }

  /// Fault injection: consulted once per parsed request (indexed in parse
  /// order, including requests that end up faulted). Null = no faults.
  void set_fault_hook(ServerFaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  struct Session {
    std::weak_ptr<TcpConnection> connection;
    http::RequestParser parser;
    bool closing{false};
    bool has_worker{false};
    bool worker_released{false};
  };

  TcpConnection::Callbacks make_callbacks(
      const std::shared_ptr<TcpConnection>& connection);
  void on_data(const std::shared_ptr<Session>& session, std::string_view bytes);
  void drain_requests(const std::shared_ptr<Session>& session);
  void request_worker(const std::shared_ptr<Session>& session);
  void release_worker(const std::shared_ptr<Session>& session);
  void grant_workers();
  void arm_spawn_timer();

  Fabric& fabric_;
  Handler handler_;
  Observer observer_;
  Microseconds processing_delay_;
  WorkerPool pool_;
  int workers_spawned_{0};   // current pool size
  int workers_busy_{0};
  std::deque<std::shared_ptr<Session>> waiting_;
  EventLoop::EventId spawn_event_{0};
  std::uint64_t worker_waits_{0};
  std::uint64_t requests_served_{0};
  std::uint64_t requests_seen_{0};  // fault-hook index (includes faulted)
  std::uint64_t faults_injected_{0};
  ServerFaultHook fault_hook_;
  TcpListener listener_;  // must outlive nothing: declared last
};

/// One HTTP/1.1 client connection over simulated TCP with keep-alive and
/// request queuing (no pipelining: the next request goes out when the
/// previous response has fully arrived — matching 2014 browsers).
class HttpClientConnection {
 public:
  using ResponseCallback = std::function<void(http::Response)>;
  /// Connection failed or died before/while a request was outstanding.
  using ErrorCallback = std::function<void(const std::string& reason)>;

  HttpClientConnection(Fabric& fabric, Address server,
                       ErrorCallback on_error = {},
                       TcpConnection::Config config = {});

  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  /// Queue a request; `callback` fires with the complete response.
  /// `hooks` (optional) observe the request's transport edges.
  void fetch(http::Request request, ResponseCallback callback,
             FetchHooks hooks = {});

  /// Half-close after the queue drains (Connection: close semantics).
  void close_when_idle();

  /// Hard-kill the connection (RST) without invoking the error callback —
  /// the caller has already decided this request's fate (deadline expiry).
  void abort();

  [[nodiscard]] bool idle() const { return outstanding_ == 0 && queue_.empty(); }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size() + outstanding_; }
  [[nodiscard]] const TcpConnection& connection() const {
    return client_.connection();
  }

 private:
  struct PendingRequest {
    http::Request request;
    ResponseCallback callback;
    FetchHooks hooks;
  };

  void notify_connected();
  void maybe_send_next();
  void on_data(std::string_view bytes);
  void fail(const std::string& reason);

  Fabric& fabric_;
  http::ResponseParser parser_;
  std::deque<PendingRequest> queue_;
  std::deque<ResponseCallback> in_flight_callbacks_;
  /// Hooks of the single outstanding request (no pipelining, so one set).
  FetchHooks current_hooks_;
  std::size_t outstanding_{0};
  bool connected_{false};
  bool alive_{true};
  bool close_when_idle_{false};
  ErrorCallback on_error_;
  TcpClient client_;  // declared last: its callbacks reference the above
};

}  // namespace mahimahi::net
