#include "net/element.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mahimahi::net {

// --- DelayBox ---------------------------------------------------------------

DelayBox::DelayBox(EventLoop& loop, Microseconds delay)
    : loop_{loop}, delay_{delay} {
  MAHI_ASSERT_MSG(delay >= 0, "negative delay");
}

void DelayBox::process(Packet&& packet, Direction direction) {
  if (delay_ == 0) {
    emit(std::move(packet), direction);
    return;
  }
  auto release = [this, packet = std::move(packet), direction]() mutable {
    emit(std::move(packet), direction);
  };
  // Per-packet event on the hottest shell path (DelayShell wraps every
  // experiment) — must use the loop's inline callback storage.
  static_assert(EventLoop::Action::kFitsInline<decltype(release)>,
                "delay-box packet lambda exceeds the inline callback buffer");
  loop_.schedule_in(delay_, std::move(release));
}

// --- LossBox ----------------------------------------------------------------

LossBox::LossBox(util::Rng rng, double uplink_loss, double downlink_loss)
    : rng_{std::move(rng)}, loss_{uplink_loss, downlink_loss} {
  MAHI_ASSERT(uplink_loss >= 0.0 && uplink_loss <= 1.0);
  MAHI_ASSERT(downlink_loss >= 0.0 && downlink_loss <= 1.0);
}

void LossBox::process(Packet&& packet, Direction direction) {
  const std::size_t i = direction == Direction::kUplink ? 0 : 1;
  if (rng_.chance(loss_[i])) {
    ++dropped_[i];
    return;  // dropped
  }
  emit(std::move(packet), direction);
}

// --- MeterBox ---------------------------------------------------------------

void MeterBox::process(Packet&& packet, Direction direction) {
  ++packets_[idx(direction)];
  bytes_[idx(direction)] += packet.wire_size();
  emit(std::move(packet), direction);
}

// --- ProcessingDelayBox -------------------------------------------------------

ProcessingDelayBox::ProcessingDelayBox(EventLoop& loop, Microseconds per_packet_cost)
    : loop_{loop}, cost_{per_packet_cost} {
  MAHI_ASSERT(per_packet_cost >= 0);
}

void ProcessingDelayBox::process(Packet&& packet, Direction direction) {
  if (cost_ == 0) {
    emit(std::move(packet), direction);
    return;
  }
  const std::size_t i = direction == Direction::kUplink ? 0 : 1;
  const Microseconds start = std::max(loop_.now(), busy_until_[i]);
  const Microseconds done = start + cost_;
  busy_until_[i] = done;
  loop_.schedule_at(done, [this, packet = std::move(packet), direction]() mutable {
    emit(std::move(packet), direction);
  });
}

// --- ReorderBox ----------------------------------------------------------------

ReorderBox::ReorderBox(EventLoop& loop, util::Rng rng, Microseconds max_extra)
    : loop_{loop}, rng_{std::move(rng)}, max_extra_{max_extra} {
  MAHI_ASSERT(max_extra >= 0);
}

void ReorderBox::process(Packet&& packet, Direction direction) {
  const Microseconds extra =
      max_extra_ == 0 ? 0 : rng_.uniform_int(0, max_extra_);
  if (extra == 0) {
    emit(std::move(packet), direction);
    return;
  }
  loop_.schedule_in(extra,
                    [this, packet = std::move(packet), direction]() mutable {
                      emit(std::move(packet), direction);
                    });
}

// --- FlapBox ----------------------------------------------------------------

FlapBox::FlapBox(EventLoop& loop, Microseconds period, Microseconds down,
                 Microseconds offset)
    : loop_{loop}, period_{period}, down_{down}, offset_{offset} {
  MAHI_ASSERT_MSG(period > 0 && down > 0 && down < period,
                  "flap needs 0 < down < period");
  MAHI_ASSERT(offset >= 0);
}

bool FlapBox::link_down() const {
  const Microseconds now = loop_.now();
  if (now < offset_) {
    return false;
  }
  return (now - offset_) % period_ < down_;
}

void FlapBox::process(Packet&& packet, Direction direction) {
  if (link_down()) {
    const std::size_t i = direction == Direction::kUplink ? 0 : 1;
    const std::uint64_t index = dropped_[i]++;
    if (tracer_ != nullptr) {
      tracer_->event(loop_.now(), obs::Layer::kFault,
                     obs::EventKind::kFaultInjected, trace_session_,
                     packet.id, index, 0,
                     i == 0 ? "flap/up" : "flap/down");
    }
    return;  // blackhole while the link is down
  }
  emit(std::move(packet), direction);
}

// --- CorruptBox -------------------------------------------------------------

CorruptBox::CorruptBox(std::uint64_t seed, double rate)
    : seed_{seed}, rate_{rate} {
  MAHI_ASSERT(rate >= 0.0 && rate <= 1.0);
}

void CorruptBox::process(Packet&& packet, Direction direction) {
  const std::size_t i = direction == Direction::kUplink ? 0 : 1;
  const std::uint64_t index = seen_[i]++;
  if (util::derive_chance(seed_, i == 0 ? "corrupt-up" : "corrupt-down", index,
                          rate_)) {
    ++corrupted_[i];
    if (tracer_ != nullptr) {
      tracer_->event(trace_loop_ != nullptr ? trace_loop_->now() : 0,
                     obs::Layer::kFault, obs::EventKind::kFaultInjected,
                     trace_session_, packet.id, index, 0,
                     i == 0 ? "corrupt/up" : "corrupt/down");
    }
    return;  // corrupted frame: receiver would discard it
  }
  emit(std::move(packet), direction);
}

// --- Chain ------------------------------------------------------------------

void Chain::push_back(std::unique_ptr<NetworkElement> element) {
  MAHI_ASSERT(element != nullptr);
  elements_.push_back(std::move(element));
  rewire();
}

void Chain::set_outputs(NetworkElement::Forward uplink_out,
                        NetworkElement::Forward downlink_out) {
  uplink_out_ = std::move(uplink_out);
  downlink_out_ = std::move(downlink_out);
  rewire();
}

void Chain::rewire() {
  if (elements_.empty()) {
    return;
  }
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    // Uplink egress of element i feeds element i+1, or exits the chain.
    if (i + 1 < elements_.size()) {
      NetworkElement* next = elements_[i + 1].get();
      elements_[i]->set_forward(Direction::kUplink, [next](Packet&& p) {
        next->process(std::move(p), Direction::kUplink);
      });
    } else {
      // Copy the handler: rewire() runs again whenever the chain grows.
      auto out = uplink_out_;
      elements_[i]->set_forward(Direction::kUplink, [out](Packet&& p) {
        if (out) {
          out(std::move(p));
        }
      });
    }
    // Downlink egress of element i feeds element i-1, or exits the chain.
    if (i > 0) {
      NetworkElement* prev = elements_[i - 1].get();
      elements_[i]->set_forward(Direction::kDownlink, [prev](Packet&& p) {
        prev->process(std::move(p), Direction::kDownlink);
      });
    } else {
      auto out = downlink_out_;
      elements_[i]->set_forward(Direction::kDownlink, [out](Packet&& p) {
        if (out) {
          out(std::move(p));
        }
      });
    }
  }
}

void Chain::send_uplink(Packet&& packet) {
  if (elements_.empty()) {
    if (uplink_out_) {
      uplink_out_(std::move(packet));
    }
    return;
  }
  elements_.front()->process(std::move(packet), Direction::kUplink);
}

void Chain::send_downlink(Packet&& packet) {
  if (elements_.empty()) {
    if (downlink_out_) {
      downlink_out_(std::move(packet));
    }
    return;
  }
  elements_.back()->process(std::move(packet), Direction::kDownlink);
}

}  // namespace mahimahi::net
