#include "net/event_loop.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace mahimahi::net {

EventLoop::EventId EventLoop::schedule_at(Microseconds at, Action action) {
  MAHI_ASSERT_MSG(at >= now_, "scheduling into the past: " << at << " < " << now_);
  MAHI_ASSERT(action != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  return id;
}

EventLoop::EventId EventLoop::schedule_in(Microseconds delay, Action action) {
  MAHI_ASSERT_MSG(delay >= 0, "negative delay: " << delay);
  return schedule_at(now_ + delay, std::move(action));
}

void EventLoop::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) {
    return;  // already ran, already cancelled, or never existed
  }
  live_.erase(it);
  cancelled_.insert(id);
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    if (const auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // priority_queue::top() is const; move the entry out before running
    // because the action may schedule or cancel further events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    live_.erase(entry.id);
    now_ = entry.at;
    entry.action();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (pop_one()) {
    if (++executed > event_limit_) {
      throw std::runtime_error{"EventLoop exceeded event limit (runaway simulation?)"};
    }
  }
  return executed;
}

std::size_t EventLoop::run_until(Microseconds deadline) {
  MAHI_ASSERT(deadline >= now_);
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Drop cancelled entries at the head so the deadline check sees a live
    // event.
    if (const auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) {
      break;
    }
    pop_one();
    if (++executed > event_limit_) {
      throw std::runtime_error{"EventLoop exceeded event limit (runaway simulation?)"};
    }
  }
  now_ = deadline;
  return executed;
}

bool EventLoop::idle() const { return pending_events() == 0; }

std::size_t EventLoop::pending_events() const { return live_.size(); }

}  // namespace mahimahi::net
