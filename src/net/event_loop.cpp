#include "net/event_loop.hpp"

#include <stdexcept>

#include "util/assert.hpp"

namespace mahimahi::net {
namespace {

constexpr std::size_t kHeapArity = 4;

}  // namespace

void EventLoop::publish_event(Microseconds at, std::uint32_t slot) {
  inbox_.push_back(HeapEntry{at, next_seq_++, slot, slot_at(slot).generation});
  ++live_count_;
}

void EventLoop::drain_inbox() {
  for (const HeapEntry& entry : inbox_) {
    if (slot_at(entry.slot).generation != entry.generation) {
      release_slot(entry.slot);  // cancelled before ever entering the heap
      continue;
    }
    heap_.push_back(entry);
    sift_up(heap_.size() - 1);
  }
  inbox_.clear();
}

void EventLoop::check_delay(Microseconds delay) {
  MAHI_ASSERT_MSG(delay >= 0, "negative delay: " << delay);
}

EventLoop::EventId EventLoop::schedule_at(Microseconds at, Action action) {
  MAHI_ASSERT_MSG(static_cast<bool>(action), "null action");
  MAHI_ASSERT_MSG(at >= now_, "scheduling into the past: " << at << " < " << now_);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_at(slot);
  s.action = std::move(action);  // noexcept: fill before publishing
  publish_event(at, slot);
  return make_id(slot, s.generation);
}

EventLoop::EventId EventLoop::schedule_in(Microseconds delay, Action action) {
  check_delay(delay);
  return schedule_at(now_ + delay, std::move(action));
}

void EventLoop::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id);
  if (slot >= slot_count_) {
    return;  // never existed
  }
  Slot& s = slot_at(slot);
  if (s.generation != generation) {
    return;  // already ran, already cancelled, or the slot was reused
  }
  // Tombstone: the heap entry stays until it surfaces (its generation no
  // longer matches), but the callback and whatever it captured are
  // released right now. The slot rejoins the free list only when the dead
  // entry pops, so it cannot be reused while the entry is in the heap.
  bump_generation(s);
  s.action.reset();
  --live_count_;
}

std::uint32_t EventLoop::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slot_at(slot).next_free;
    bump_generation(slot_at(slot));
    return slot;
  }
  MAHI_ASSERT_MSG(slot_count_ < kNoFreeSlot, "slot arena exhausted");
  if (slot_count_ == slot_chunks_.size() * kSlotChunkSize) {
    // for_overwrite: default-init only — no 47 KB zero-fill per chunk
    // (Slot's members have initializers; the inline buffer needs none).
    slot_chunks_.push_back(std::make_unique_for_overwrite<Slot[]>(kSlotChunkSize));
  }
  const auto slot = static_cast<std::uint32_t>(slot_count_++);
  bump_generation(slot_at(slot));
  return slot;
}

void EventLoop::release_slot(std::uint32_t slot) {
  Slot& s = slot_at(slot);
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventLoop::sift_up(std::size_t index) {
  const HeapEntry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kHeapArity;
    if (!earlier(entry, heap_[parent])) {
      break;
    }
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void EventLoop::pop_top() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) {
    return;
  }
  // Hole-based delete-min: walk the hole to a leaf promoting the smallest
  // child (no compare against `last` per level), then place `last` and
  // restore upward — `last` came from the bottom, so the up-pass almost
  // always stops immediately.
  std::size_t hole = 0;
  while (true) {
    const std::size_t first_child = hole * kHeapArity + 1;
    if (first_child >= n) {
      break;
    }
    std::size_t best = first_child;
    const std::size_t end_child = std::min(first_child + kHeapArity, n);
    for (std::size_t child = first_child + 1; child < end_child; ++child) {
      if (earlier(heap_[child], heap_[best])) {
        best = child;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
  sift_up(hole);
}

void EventLoop::drop_dead_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slot_at(top.slot).generation == top.generation) {
      return;  // live
    }
    const std::uint32_t slot = top.slot;
    pop_top();
    release_slot(slot);
  }
}

bool EventLoop::pop_one() {
  if (!inbox_.empty()) {
    drain_inbox();
  }
  drop_dead_top();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry top = heap_.front();
  Slot& s = slot_at(top.slot);  // stable across arena growth
  pop_top();
  // Invalidate the id before dispatch: a cancel of this event from
  // inside its own callback (or anything the callback triggers) is a
  // no-op, exactly as if the event had already finished.
  bump_generation(s);
  --live_count_;
  now_ = top.at;
  // Invoke in place — no callback move. The action may schedule events
  // (the chunked arena never relocates this slot) or cancel anything.
  try {
    s.action();
  } catch (...) {
    s.action.reset();
    release_slot(top.slot);
    throw;
  }
  s.action.reset();
  release_slot(top.slot);
  return true;
}

void EventLoop::check_limit(std::size_t executed) const {
  if (executed > event_limit_) {
    throw std::runtime_error{"EventLoop exceeded event limit (runaway simulation?)"};
  }
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (pop_one()) {
    check_limit(++executed);
  }
  return executed;
}

std::size_t EventLoop::run_until(Microseconds deadline) {
  MAHI_ASSERT(deadline >= now_);
  std::size_t executed = 0;
  while (true) {
    if (!inbox_.empty()) {
      drain_inbox();
    }
    // Drop tombstones at the head so the deadline check sees a live event.
    drop_dead_top();
    if (heap_.empty() || heap_.front().at > deadline) {
      break;
    }
    pop_one();
    check_limit(++executed);
  }
  now_ = deadline;
  return executed;
}

}  // namespace mahimahi::net
