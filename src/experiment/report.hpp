#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/statistics.hpp"

namespace mahimahi::experiment {

/// One flow of a cell's transport probe.
struct FlowResult {
  std::string controller;
  std::uint64_t bytes_delivered{0};
  double throughput_bps{0};
  double share{0};
  std::uint64_t retransmissions{0};
};

/// Everything measured for one cell.
struct CellResult {
  int index{0};  // global (unsharded) matrix index
  std::string site;
  std::string protocol;
  std::string shell;
  std::string queue;
  std::string cc;
  std::string fleet;
  /// Concurrent users per load (the offered-load axis); 1 = classic
  /// single-user cell.
  int fleet_sessions{1};
  /// Fault-axis label ("none" = healthy control).
  std::string fault{"none"};
  /// Page-load times in (load-index, session-index) order — one sample
  /// per load for a single-user cell, fleet_sessions per load otherwise.
  util::Samples plt_ms;
  std::size_t failed_loads{0};
  /// Graceful-degradation PLT per load (== plt_ms for clean loads) and
  /// resilience totals across the cell's loads. Serialized only when the
  /// report's fault axis is on, so healthy reports keep their exact
  /// pre-fault byte layout.
  util::Samples degraded_plt_ms;
  std::uint64_t objects_failed{0};
  std::uint64_t retries{0};
  std::uint64_t timeouts{0};
  /// Worker-task failures (exceptions) per load, in load order — failed
  /// rows instead of a torn-down run.
  std::vector<std::string> load_errors;
  /// Completion accounting for interrupted runs: how many of the cell's
  /// load tasks finished before cancellation stopped admission. Equal when
  /// the cell completed; serialized only in interrupted reports.
  int loads_done{0};
  int loads_expected{0};
  /// Pre-serialized derived-metrics snapshot for this cell (one-line JSON,
  /// obs::MetricsSnapshot::to_json_inline). Filled only when the run asked
  /// for metrics (RunOptions::metrics); empty = the "metrics" key is
  /// absent, keeping non-metrics reports byte-identical to pre-metrics
  /// builds — the same gating idiom as load_errors.
  std::string metrics_json;
  /// Transport probe: one bulk flow per fleet entry over the cell's
  /// bottleneck. probe_ran is false when probes were disabled.
  bool probe_ran{false};
  double queue_delay_p95_ms{0};
  double jain_index{0};
  std::vector<FlowResult> flows;
};

/// The experiment's result set with deterministic serializations: every
/// number is formatted with fixed precision and cells are emitted in
/// index order, so two runs of the same spec — at any thread count —
/// produce byte-identical JSON and CSV. That byte-identity is the
/// engine's reproducibility check (mm_experiment --selfcheck).
class Report {
 public:
  std::string name;
  std::uint64_t seed{0};
  int loads_per_cell{0};
  int total_cells{0};  // full matrix size (>= cells.size() when sharded)
  int shard_index{0};
  int shard_count{1};
  /// True when the spec declared a fault axis: gates the fault label,
  /// degraded-PLT and resilience fields in every serialization. Off, the
  /// outputs are byte-identical to a report built before the fault axis
  /// existed — the fault-none compatibility contract.
  bool fault_axis{false};
  /// True when a cancellation request (SIGINT/SIGTERM) stopped the run
  /// before every task finished: the report is partial. Gates the
  /// "interrupted" key and per-cell completion counts in to_json, so
  /// complete runs keep their exact byte layout. An interrupted run's
  /// artifacts are overwritten by the --resume that completes it.
  bool interrupted{false};
  std::vector<CellResult> cells;

  /// Schema "mahimahi-experiment-v1": metadata + one object per cell with
  /// full PLT samples, summary stats and the fairness block.
  [[nodiscard]] std::string to_json() const;

  /// One row per cell: labels, PLT summary stats, queue-delay p95, Jain's
  /// index, and per-flow shares packed "controller:share|..." .
  [[nodiscard]] std::string to_csv() const;

  /// The repo-wide "mahimahi-bench-v1" perf-row schema (BENCH_*.json):
  /// median PLT, queue p95 and Jain rows per cell, diffable across PRs.
  [[nodiscard]] std::string to_bench_json() const;

  /// Write `content` to `path` atomically (temp + fsync + rename — a
  /// crash never leaves a half-written artifact); warns on stderr and
  /// returns false on failure (bench/tool convention).
  static bool write_file(const std::string& path, const std::string& content);
};

}  // namespace mahimahi::experiment
