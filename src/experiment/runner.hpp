#pragma once

#include "core/parallel_runner.hpp"
#include "experiment/matrix.hpp"
#include "experiment/report.hpp"
#include "experiment/spec.hpp"

namespace mahimahi::experiment {

/// Execution knobs — everything here changes *what* runs or *where*, never
/// the measured numbers of a cell that runs.
struct RunOptions {
  /// Thread pool; null = the process-wide ParallelRunner::shared().
  core::ParallelRunner* runner{nullptr};
  /// CI sharding: run only cells with index % shard_count == shard_index.
  /// Cell indices and seeds come from the full matrix, so shard results
  /// are the exact rows the unsharded run would produce.
  int shard_index{0};
  int shard_count{1};
  /// > 0 replaces spec.loads_per_cell (CLI/CI scale cap). Changing it
  /// changes which loads run, not the value of any (cell, load) sample.
  int loads_override{0};
  /// Run the per-cell transport probe (throughput shares, Jain's index,
  /// queue-delay p95). Off = page loads only.
  bool transport_probes{true};
  /// When non-empty: every load task records a full obs trace, and each
  /// cell exports three artifacts into this directory — cell<index>.trace
  /// .json (Chrome trace-event / Perfetto), cell<index>.har (HAR 1.2) and
  /// cell<index>.csv (time series, the mm_trace_dump input). Tracing
  /// follows the same determinism contract as the report: one Tracer per
  /// task, buffers merged by load index, so artifact bytes are identical
  /// at any thread or shard count. Off (empty) = zero tracing overhead.
  std::string trace_dir{};
};

/// Expand the spec's matrix, record each corpus site once, fan every
/// (cell, load) page load and every per-cell transport probe as an
/// independent task across the pool, and assemble the Report in cell
/// order.
///
/// Determinism contract: each site records under a seed forked from
/// (spec.seed, site label); each cell's SessionConfig.seed is forked from
/// (spec.seed, cell index); each load forks (cell seed, load index)
/// inside the session layer. A fleet cell (offered-load axis,
/// fleet_sessions > 1) runs each load as one shared-world
/// fleet::SessionMux inside its task — one indivisible simulation, seeded
/// the same way. No task reads shared mutable state, and results merge by
/// index — so the Report (and its JSON/CSV bytes) is identical at any
/// thread count.
Report run_experiment(const ExperimentSpec& spec,
                      const RunOptions& options = {});

}  // namespace mahimahi::experiment
