#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "core/parallel_runner.hpp"
#include "experiment/matrix.hpp"
#include "experiment/report.hpp"
#include "experiment/spec.hpp"

namespace mahimahi::experiment {

/// Execution knobs — everything here changes *what* runs or *where*, never
/// the measured numbers of a cell that runs.
struct RunOptions {
  /// Thread pool; null = the process-wide ParallelRunner::shared().
  core::ParallelRunner* runner{nullptr};
  /// CI sharding: run only cells with index % shard_count == shard_index.
  /// Cell indices and seeds come from the full matrix, so shard results
  /// are the exact rows the unsharded run would produce.
  int shard_index{0};
  int shard_count{1};
  /// > 0 replaces spec.loads_per_cell (CLI/CI scale cap). Changing it
  /// changes which loads run, not the value of any (cell, load) sample.
  int loads_override{0};
  /// Run the per-cell transport probe (throughput shares, Jain's index,
  /// queue-delay p95). Off = page loads only.
  bool transport_probes{true};
  /// When non-empty: every load task records a full obs trace, and each
  /// cell exports three artifacts into this directory — cell<index>.trace
  /// .json (Chrome trace-event / Perfetto), cell<index>.har (HAR 1.2) and
  /// cell<index>.csv (time series, the mm_trace_dump input). Tracing
  /// follows the same determinism contract as the report: one Tracer per
  /// task, buffers merged by load index, so artifact bytes are identical
  /// at any thread or shard count. Off (empty) = zero tracing overhead.
  std::string trace_dir{};
  /// Derive per-cell metrics (counters / gauges / log-bucketed histograms:
  /// queue residence, cwnd convergence, retransmit bursts, PLT critical
  /// path, fault recovery) and attach each cell's snapshot to the Report
  /// as a "metrics" block. Implies tracing internally — every load task
  /// records a trace buffer even when trace_dir is empty — but artifacts
  /// are only exported when trace_dir is set. Metrics derive from the
  /// merged per-cell traces (load-index order), so they obey the same
  /// byte-determinism contract as the report and survive --resume.
  bool metrics{false};
  /// Progress callback (tasks_done, tasks_total, cells_done, cells_total),
  /// invoked from worker threads after every finished task. Observation
  /// only: it sees completion counts, never results, so it cannot perturb
  /// any artifact. Callers throttle/render (mm_experiment --progress).
  std::function<void(int, int, int, int)> on_progress{};
  /// When non-empty: crash-safe execution. The directory receives a
  /// MANIFEST pinning the run's identity (spec/matrix/toolchain hashes), a
  /// journal.bin with one fsync'd checksummed record per completed task,
  /// and an events.csv of runner-lifecycle events (mm_trace_dump input).
  /// A fresh run (resume == false) starts the journal over.
  std::string journal_dir{};
  /// Replay journaled task results into their global-index slots and run
  /// only the missing work. Requires journal_dir; refuses (with the
  /// offending field named) a journal whose manifest does not match this
  /// run. Journal keys are global (cell, load) indices, so a journal
  /// written sharded resumes unsharded and vice versa. The completed
  /// report, CSV, bench-JSON and trace artifacts are byte-identical to an
  /// uninterrupted run at any thread or shard count.
  bool resume{false};
  /// Fingerprint of the spec's source text (mm_experiment hashes the spec
  /// file; "-" = programmatic spec). Pinned in the journal manifest.
  std::string spec_fingerprint{"-"};
  /// Graceful-cancellation token (e.g. flipped by a SIGINT handler): when
  /// it becomes true, tasks that have not started are skipped — in-flight
  /// ones drain normally — and the report comes back partial with
  /// Report::interrupted set and per-cell completion counts. With a
  /// journal, every finished task is already durable, so a later --resume
  /// completes the run.
  const std::atomic<bool>* cancel{nullptr};
  /// Test hook: pre-simulation transient-failure injection. Called per
  /// attempt with (cell index, load index, is_probe, attempt [1-based]);
  /// returning true makes that attempt fail with a typed transient error,
  /// exercising the bounded-retry path without touching any simulation.
  std::function<bool(int, int, bool, std::uint32_t)> transient_fault{};
};

/// Expand the spec's matrix, record each corpus site once, fan every
/// (cell, load) page load and every per-cell transport probe as an
/// independent task across the pool, and assemble the Report in cell
/// order.
///
/// Determinism contract: each site records under a seed forked from
/// (spec.seed, site label); each cell's SessionConfig.seed is forked from
/// (spec.seed, cell index); each load forks (cell seed, load index)
/// inside the session layer. A fleet cell (offered-load axis,
/// fleet_sessions > 1) runs each load as one shared-world
/// fleet::SessionMux inside its task — one indivisible simulation, seeded
/// the same way. No task reads shared mutable state, and results merge by
/// index — so the Report (and its JSON/CSV bytes) is identical at any
/// thread count.
Report run_experiment(const ExperimentSpec& spec,
                      const RunOptions& options = {});

}  // namespace mahimahi::experiment
