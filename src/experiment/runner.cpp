#include "experiment/runner.hpp"

#include <map>
#include <stdexcept>

#include "core/sessions.hpp"
#include "net/bulk_probe.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace mahimahi::experiment {
namespace {

/// Work unit: one page load of one cell, or one transport probe.
struct Task {
  std::size_t cell_pos{0};  // position in the sharded cell list
  int load_index{0};
  bool is_probe{false};
};

/// Result slot — default-constructible so ParallelRunner can preallocate.
struct TaskOutcome {
  double plt_ms{0};
  char load_ok{1};
  net::MultiBulkFlowReport probe{};
};

core::SessionConfig cell_session_config(const Cell& cell,
                                        const MaterializedCell& materialized) {
  core::SessionConfig config;
  config.seed = cell.cell_seed;
  config.shells = materialized.shells;
  config.browser.protocol = cell.protocol;
  if (cell.cc.fleet.size() == 1) {
    config.congestion_control = cell.cc.fleet.front();
  } else {
    config.cc_fleet = cell.cc.fleet;
  }
  return config;
}

replay::OriginServerSet::Options cell_origin_options(const Cell& cell) {
  replay::OriginServerSet::Options options;
  options.multiplexed = cell.protocol == web::AppProtocol::kMultiplexed;
  return options;
}

net::MultiBulkFlowSpec cell_probe_spec(const Cell& cell,
                                       const MaterializedCell& materialized,
                                       Microseconds duration) {
  net::MultiBulkFlowSpec probe;
  probe.controllers = cell.cc.fleet;
  probe.duration = duration;
  probe.queue = cell.queue.queue;
  probe.one_way_delay = materialized.total_one_way_delay;
  probe.loss = materialized.loss;
  // The probe's random streams (loss coin, AQM drop coin) must differ per
  // cell but never per thread.
  probe.loss_seed = cell.cell_seed ^ 0x1055;
  probe.queue.pie_seed = cell.cell_seed ^ 0xC37;
  if (materialized.uplink != nullptr) {
    probe.uplink_trace = materialized.uplink;
    probe.downlink_trace = materialized.downlink;
  } else {
    // No link layer: an effectively-unshaped bottleneck so the probe
    // still reports shares (the queue axis is inert without a link).
    probe.link_mbps = 1000.0;
  }
  return probe;
}

}  // namespace

Report run_experiment(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count) {
    throw std::invalid_argument{
        "experiment shard must satisfy 0 <= index < count"};
  }
  core::ParallelRunner& pool =
      options.runner != nullptr ? *options.runner
                                : core::ParallelRunner::shared();
  const int loads = options.loads_override > 0 ? options.loads_override
                                               : spec.loads_per_cell;

  const std::vector<Cell> matrix = expand_matrix(spec);
  std::vector<Cell> cells;
  for (const Cell& cell : matrix) {
    if (cell.index % options.shard_count == options.shard_index) {
      cells.push_back(cell);
    }
  }

  // --- record each referenced site once (they are shared, read-only) ----
  // Distinct site labels in first-appearance order; recording seeds fork
  // from (spec.seed, label), so the corpus is independent of the axis
  // order and of which shard runs.
  std::vector<const SiteAxis*> distinct_sites;
  std::map<std::string, std::size_t> site_pos;
  for (const Cell& cell : cells) {
    if (site_pos.emplace(cell.site.label, distinct_sites.size()).second) {
      distinct_sites.push_back(&cell.site);
    }
  }
  struct RecordedSite {
    corpus::GeneratedSite site;
    record::RecordStore store;
  };
  const util::Rng seed_root{spec.seed};
  const std::vector<RecordedSite> recorded = pool.map(
      static_cast<int>(distinct_sites.size()), [&](int i) {
        const SiteAxis& axis = *distinct_sites[static_cast<std::size_t>(i)];
        RecordedSite entry{corpus::generate_site(axis.site),
                           record::RecordStore{}};
        core::SessionConfig config;
        config.seed = seed_root.fork("record-" + axis.label).next();
        core::RecordSession session{entry.site, corpus::LiveWebConfig{},
                                    config};
        entry.store = session.record();
        return entry;
      });

  // Materialize each cell once (traces are immutable and shared): the
  // fan-out below reads these concurrently but never mutates them.
  std::vector<MaterializedCell> materialized;
  materialized.reserve(cells.size());
  for (const Cell& cell : cells) {
    materialized.push_back(materialize_cell(cell));
  }

  // --- flatten the work: every load and probe is one independent task ---
  std::vector<Task> tasks;
  tasks.reserve(cells.size() * (static_cast<std::size_t>(loads) + 1));
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    for (int load = 0; load < loads; ++load) {
      tasks.push_back(Task{pos, load, false});
    }
    if (options.transport_probes) {
      tasks.push_back(Task{pos, 0, true});
    }
  }

  const std::vector<TaskOutcome> outcomes = pool.map(
      static_cast<int>(tasks.size()), [&](int task_index) {
        const Task& task = tasks[static_cast<std::size_t>(task_index)];
        const Cell& cell = cells[task.cell_pos];
        const MaterializedCell& cell_net = materialized[task.cell_pos];
        TaskOutcome outcome;
        if (task.is_probe) {
          outcome.probe = net::run_multi_bulk_flow(
              cell_probe_spec(cell, cell_net, spec.probe_duration));
          return outcome;
        }
        const RecordedSite& entry =
            recorded[site_pos.at(cell.site.label)];
        const core::ReplaySession session{
            entry.store, cell_session_config(cell, cell_net),
            cell_origin_options(cell)};
        const web::PageLoadResult result =
            session.load_once(entry.site.primary_url(), task.load_index);
        outcome.plt_ms = to_ms(result.page_load_time);
        outcome.load_ok = result.success ? 1 : 0;
        return outcome;
      });

  // --- assemble, in cell order (failure logs after the merge, so even
  // diagnostics are deterministic) ---------------------------------------
  Report report;
  report.name = spec.name;
  report.seed = spec.seed;
  report.loads_per_cell = loads;
  report.total_cells = static_cast<int>(matrix.size());
  report.shard_index = options.shard_index;
  report.shard_count = options.shard_count;
  report.cells.resize(cells.size());
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    const Cell& cell = cells[pos];
    CellResult& row = report.cells[pos];
    row.index = cell.index;
    row.site = cell.site.label;
    row.protocol =
        cell.protocol == web::AppProtocol::kMultiplexed ? "mux" : "http11";
    row.shell = cell.shell.label;
    row.queue = cell.queue.label;
    row.cc = cell.cc.label;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& task = tasks[i];
    const TaskOutcome& outcome = outcomes[i];
    CellResult& row = report.cells[task.cell_pos];
    if (task.is_probe) {
      row.probe_ran = true;
      row.queue_delay_p95_ms = outcome.probe.bottleneck.delay_p95_ms;
      row.jain_index = outcome.probe.jain_index;
      for (const auto& flow : outcome.probe.flows) {
        row.flows.push_back(FlowResult{flow.controller, flow.bytes_delivered,
                                       flow.throughput_bps, flow.share,
                                       flow.retransmissions});
      }
      continue;
    }
    row.plt_ms.add(outcome.plt_ms);
    if (outcome.load_ok == 0) {
      ++row.failed_loads;
      MAHI_WARN("experiment")
          << "cell " << row.index << " (" << cells[task.cell_pos].label()
          << ") load " << task.load_index << " had failures";
    }
  }
  return report;
}

}  // namespace mahimahi::experiment
