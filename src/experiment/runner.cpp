#include "experiment/runner.hpp"

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/sessions.hpp"
#include "experiment/checkpoint.hpp"
#include "fleet/session_mux.hpp"
#include "journal/journal.hpp"
#include "net/bulk_probe.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace mahimahi::experiment {
namespace {

/// Work unit: one page load of one cell, or one transport probe.
struct Task {
  std::size_t cell_pos{0};  // position in the sharded cell list
  int load_index{0};
  bool is_probe{false};
};

core::SessionConfig cell_session_config(const Cell& cell,
                                        const MaterializedCell& materialized,
                                        Microseconds deadline) {
  core::SessionConfig config;
  config.seed = cell.cell_seed;
  config.shells = materialized.shells;
  config.browser.protocol = cell.protocol;
  config.deadline = deadline;
  if (cell.cc.fleet.size() == 1) {
    config.congestion_control = cell.cc.fleet.front();
  } else {
    config.cc_fleet = cell.cc.fleet;
  }
  config.fault = cell.fault.fault;
  return config;
}

replay::OriginServerSet::Options cell_origin_options(const Cell& cell) {
  replay::OriginServerSet::Options options;
  options.multiplexed = cell.protocol == web::AppProtocol::kMultiplexed;
  return options;
}

net::MultiBulkFlowSpec cell_probe_spec(const Cell& cell,
                                       const MaterializedCell& materialized,
                                       Microseconds duration) {
  net::MultiBulkFlowSpec probe;
  probe.controllers = cell.cc.fleet;
  probe.duration = duration;
  probe.queue = cell.queue.queue;
  probe.one_way_delay = materialized.total_one_way_delay;
  probe.loss = materialized.loss;
  // The probe's random streams (loss coin, AQM drop coin) must differ per
  // cell but never per thread.
  probe.loss_seed = cell.cell_seed ^ 0x1055;
  probe.queue.pie_seed = cell.cell_seed ^ 0xC37;
  if (materialized.uplink != nullptr) {
    probe.uplink_trace = materialized.uplink;
    probe.downlink_trace = materialized.downlink;
  } else {
    // No link layer: an effectively-unshaped bottleneck so the probe
    // still reports shares (the queue axis is inert without a link).
    probe.link_mbps = 1000.0;
  }
  return probe;
}

/// Backoff before retry `attempt` (1-based: the attempt that just failed):
/// capped exponential with jitter seeded from (cell seed, load, attempt) —
/// the delays are deterministic even though they burn wall-clock, so retry
/// timing never becomes a hidden source of scheduling nondeterminism.
std::chrono::milliseconds retry_backoff(const Cell& cell, const Task& task,
                                        std::uint32_t attempt) {
  const util::Rng root{cell.cell_seed};
  const std::uint64_t bits =
      root.fork("task-retry-" + std::to_string(task.load_index) + "-" +
                (task.is_probe ? "p" : "l") + "-" + std::to_string(attempt))
          .next();
  // uniform [0.5, 1.5) from the top 53 bits
  const double jitter =
      0.5 + static_cast<double>(bits >> 11) / 9007199254740992.0;
  const std::uint32_t shift = attempt > 6 ? 6 : attempt - 1;
  const double base_ms = 100.0 * static_cast<double>(1U << shift);
  return std::chrono::milliseconds{
      static_cast<long long>(base_ms * jitter)};
}

/// The journal side-channel of one run: the open writer plus the results
/// replayed from a previous attempt, keyed by global task identity.
struct JournalState {
  std::unique_ptr<journal::Writer> writer;
  std::map<TaskKey, TaskResult> replayed;
};

JournalState open_journal(const ExperimentSpec& spec,
                          const std::vector<Cell>& matrix, int loads,
                          bool tracing, bool metrics,
                          const RunOptions& options) {
  JournalState state;
  if (options.journal_dir.empty()) {
    if (options.resume) {
      throw std::invalid_argument{
          "experiment: --resume requires a journal directory"};
    }
    return state;
  }
  std::filesystem::create_directories(options.journal_dir);
  const journal::Manifest manifest =
      build_manifest(spec, matrix, loads, options.transport_probes, tracing,
                     metrics, options.spec_fingerprint);
  std::uint64_t truncate_to = 0;
  if (options.resume) {
    const journal::Manifest existing =
        journal::read_manifest(options.journal_dir);
    const std::string mismatch = manifest.first_mismatch(existing);
    if (!mismatch.empty()) {
      throw std::invalid_argument{
          "journal: cannot resume from " + options.journal_dir +
          ": manifest field '" + mismatch + "' does not match this run "
          "(journal has '" + existing.get(mismatch) + "', this run is '" +
          manifest.get(mismatch) +
          "') — the journal belongs to a different spec, options or build; "
          "rerun without --resume to start over"};
    }
    journal::ReadResult read = journal::read_journal_file(
        journal::Writer::journal_path(options.journal_dir));
    if (read.torn_tail) {
      MAHI_WARN("journal") << "discarding torn tail after "
                           << read.records.size() << " valid record(s) in "
                           << options.journal_dir
                           << " (the record being written at the crash)";
    }
    for (const std::string& record : read.records) {
      auto decoded = decode_task_record(record);
      if (!decoded.has_value()) {
        MAHI_WARN("journal") << "skipping one undecodable record in "
                             << options.journal_dir;
        continue;
      }
      state.replayed[decoded->first] = std::move(decoded->second);
    }
    truncate_to = read.valid_bytes;
  } else {
    // Fresh run: pin this run's identity, then start the log over (a
    // leftover journal.bin from an earlier run is truncated away).
    journal::write_manifest(options.journal_dir, manifest);
  }
  state.writer =
      std::make_unique<journal::Writer>(options.journal_dir, truncate_to);
  return state;
}

}  // namespace

Report run_experiment(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count) {
    throw std::invalid_argument{
        "experiment shard must satisfy 0 <= index < count"};
  }
  core::ParallelRunner& pool =
      options.runner != nullptr ? *options.runner
                                : core::ParallelRunner::shared();
  const int loads = options.loads_override > 0 ? options.loads_override
                                               : spec.loads_per_cell;

  const std::vector<Cell> matrix = expand_matrix(spec);
  std::vector<Cell> cells;
  for (const Cell& cell : matrix) {
    if (cell.index % options.shard_count == options.shard_index) {
      cells.push_back(cell);
    }
  }

  // Metrics derive from per-cell trace buffers, so asking for metrics
  // turns tracing on internally even when no artifacts will be exported.
  const bool tracing = !options.trace_dir.empty() || options.metrics;
  JournalState journal_state =
      open_journal(spec, matrix, loads, tracing, options.metrics, options);

  // --- record each referenced site once (they are shared, read-only) ----
  // Distinct site labels in first-appearance order; recording seeds fork
  // from (spec.seed, label), so the corpus is independent of the axis
  // order and of which shard runs.
  std::vector<const SiteAxis*> distinct_sites;
  std::map<std::string, std::size_t> site_pos;
  for (const Cell& cell : cells) {
    if (site_pos.emplace(cell.site.label, distinct_sites.size()).second) {
      distinct_sites.push_back(&cell.site);
    }
  }
  struct RecordedSite {
    corpus::GeneratedSite site;
    record::RecordStore store;
  };
  const util::Rng seed_root{spec.seed};
  const std::vector<RecordedSite> recorded = [&] {
    MAHI_PROFILE("record");
    return pool.map(
        static_cast<int>(distinct_sites.size()), [&](int i) {
          const SiteAxis& axis = *distinct_sites[static_cast<std::size_t>(i)];
          RecordedSite entry{corpus::generate_site(axis.site),
                             record::RecordStore{}};
          core::SessionConfig config;
          config.seed = seed_root.fork("record-" + axis.label).next();
          core::RecordSession session{entry.site, corpus::LiveWebConfig{},
                                      config};
          entry.store = session.record();
          return entry;
        });
  }();

  // Materialize each cell once (traces are immutable and shared): the
  // fan-out below reads these concurrently but never mutates them.
  std::vector<MaterializedCell> materialized;
  materialized.reserve(cells.size());
  for (const Cell& cell : cells) {
    materialized.push_back(materialize_cell(cell));
  }

  // --- flatten the work: every load and probe is one independent task ---
  std::vector<Task> tasks;
  tasks.reserve(cells.size() * (static_cast<std::size_t>(loads) + 1));
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    for (int load = 0; load < loads; ++load) {
      tasks.push_back(Task{pos, load, false});
    }
    if (options.transport_probes) {
      tasks.push_back(Task{pos, 0, true});
    }
  }

  // Progress accounting (observation only — counts, never results). The
  // per-cell countdown makes cells_done exact under out-of-order task
  // completion across the pool.
  const int tasks_total = static_cast<int>(tasks.size());
  const int cells_total = static_cast<int>(cells.size());
  std::atomic<int> tasks_done{0};
  std::atomic<int> cells_done{0};
  std::vector<std::atomic<int>> cell_remaining(cells.size());
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    cell_remaining[pos].store(loads + (options.transport_probes ? 1 : 0),
                              std::memory_order_relaxed);
  }

  const int max_attempts = 1 + spec.task_retries;
  std::vector<TaskResult> outcomes = pool.map(
      static_cast<int>(tasks.size()), [&](int task_index) {
        const Task& task = tasks[static_cast<std::size_t>(task_index)];
        const Cell& cell = cells[task.cell_pos];
        const TaskKey key{cell.index, task.is_probe ? 0 : task.load_index,
                          task.is_probe};
        const auto progress = [&] {
          if (!options.on_progress) {
            return;
          }
          const int done =
              tasks_done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (cell_remaining[task.cell_pos].fetch_sub(
                  1, std::memory_order_relaxed) == 1) {
            cells_done.fetch_add(1, std::memory_order_relaxed);
          }
          options.on_progress(done, tasks_total,
                              cells_done.load(std::memory_order_relaxed),
                              cells_total);
        };
        // Resume: a journaled result satisfies the task without running
        // anything — the copy lands in the same global-index slot the live
        // run would have filled, so the merge below cannot tell the
        // difference.
        const auto it = journal_state.replayed.find(key);
        if (it != journal_state.replayed.end()) {
          progress();
          return it->second;
        }
        TaskResult outcome;
        // Graceful cancellation: stop admitting work. Tasks already past
        // this check drain normally; this one reports itself skipped and
        // the merge marks the report interrupted.
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) {
          outcome.skipped = 1;
          progress();
          return outcome;
        }
        const MaterializedCell& cell_net = materialized[task.cell_pos];
        for (std::uint32_t attempt = 1;; ++attempt) {
          outcome = TaskResult{};
          outcome.attempts = attempt;
          // One Tracer per attempt (the obs determinism contract): a load
          // task is one deterministic simulation, so its buffer depends
          // only on (cell seed, load index) — never on threads, sharding
          // or which attempt finally succeeded.
          obs::Tracer tracer;
          obs::Tracer* task_tracer =
              tracing && !task.is_probe ? &tracer : nullptr;
          try {
            if (options.transient_fault &&
                options.transient_fault(cell.index, task.load_index,
                                        task.is_probe, attempt)) {
              throw std::runtime_error{
                  "transient: injected worker fault (test hook)"};
            }
            if (task.is_probe) {
              MAHI_PROFILE("probe");
              outcome.probe = net::run_multi_bulk_flow(
                  cell_probe_spec(cell, cell_net, spec.probe_duration));
              break;
            }
            MAHI_PROFILE("replay");
            const RecordedSite& entry =
                recorded[site_pos.at(cell.site.label)];
            if (cell.fleet.sessions > 1) {
              // Offered-load cell: one load = one shared-world fleet,
              // every user contending in the same namespace. The whole
              // fleet is one indivisible simulation under one task, seeded
              // from (cell_seed, load index) — deterministic at any thread
              // count, like every other task. The watchdog deadline covers
              // the whole mux.
              fleet::MuxConfig mux_config;
              mux_config.fleet_seed =
                  util::Rng{cell.cell_seed}
                      .fork("fleet-load-" + std::to_string(task.load_index))
                      .next();
              mux_config.stagger = cell.fleet.stagger;
              mux_config.session =
                  cell_session_config(cell, cell_net, spec.cell_deadline);
              // A shared-world fleet is one indivisible simulation: the
              // whole mux traces into this task's one buffer, sessions
              // told apart by their fleet index (shared infra = -1).
              mux_config.session.tracer = task_tracer;
              mux_config.origin = cell_origin_options(cell);
              mux_config.shared_world = true;
              fleet::SessionMux mux{entry.store, entry.site.primary_url(),
                                    mux_config};
              for (int s = 0; s < cell.fleet.sessions; ++s) {
                mux.add_session(s);
              }
              for (const fleet::SessionOutcome& session : mux.run()) {
                outcome.plts.push_back(session.plt_ms);
                outcome.oks.push_back(session.success);
                outcome.degraded.push_back(session.degraded_plt_ms);
                outcome.failed_objects.push_back(session.objects_failed);
                outcome.retries.push_back(session.retries);
                outcome.timeouts.push_back(session.timeouts);
              }
              outcome.trace = tracer.take();
              break;
            }
            core::SessionConfig session_config =
                cell_session_config(cell, cell_net, spec.cell_deadline);
            session_config.tracer = task_tracer;
            const core::ReplaySession session{entry.store, session_config,
                                              cell_origin_options(cell)};
            const web::PageLoadResult result =
                session.load_once(entry.site.primary_url(), task.load_index);
            outcome.trace = tracer.take();
            outcome.plts.push_back(to_ms(result.page_load_time));
            outcome.oks.push_back(result.success ? 1 : 0);
            outcome.degraded.push_back(to_ms(result.degraded_page_load_time));
            outcome.failed_objects.push_back(
                static_cast<std::uint32_t>(result.objects_failed));
            outcome.retries.push_back(
                static_cast<std::uint32_t>(result.retries));
            outcome.timeouts.push_back(
                static_cast<std::uint32_t>(result.timeouts));
            break;
          } catch (const core::WatchdogError& e) {
            // A watchdog trip is deterministic — the simulation ran out of
            // virtual time, and rerunning would reproduce it bit-for-bit —
            // so it is final, never retried. The partial trace (everything
            // up to the deadline, ending in the kWatchdogExpired event) is
            // kept: it is the diagnosis.
            outcome.error = e.what();
            outcome.trace = tracer.take();
            break;
          } catch (const std::exception& e) {
            // Any other failure becomes a failed row. With task-retries
            // configured it is first retried with identical inputs, so a
            // transient worker hiccup heals into the exact bytes an
            // untroubled run produces; a deterministic failure just fails
            // the same way again and the last error stands.
            outcome.error = e.what();
            if (attempt >= static_cast<std::uint32_t>(max_attempts)) {
              break;
            }
            std::this_thread::sleep_for(retry_backoff(cell, task, attempt));
          }
        }
        // Durability point: the record is fsync'd before the task counts
        // as done — a SIGKILL after this line cannot lose the result.
        if (journal_state.writer != nullptr) {
          MAHI_PROFILE("journal");
          journal_state.writer->append(encode_task_record(key, outcome));
        }
        progress();
        return outcome;
      });

  // --- assemble, in cell order (failure logs after the merge, so even
  // diagnostics are deterministic) ---------------------------------------
  Report report;
  report.name = spec.name;
  report.seed = spec.seed;
  report.loads_per_cell = loads;
  report.total_cells = static_cast<int>(matrix.size());
  report.shard_index = options.shard_index;
  report.shard_count = options.shard_count;
  report.fault_axis = !spec.faults.empty();
  report.cells.resize(cells.size());
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    const Cell& cell = cells[pos];
    CellResult& row = report.cells[pos];
    row.index = cell.index;
    row.site = cell.site.label;
    row.protocol =
        cell.protocol == web::AppProtocol::kMultiplexed ? "mux" : "http11";
    row.shell = cell.shell.label;
    row.queue = cell.queue.label;
    row.cc = cell.cc.label;
    row.fleet = cell.fleet.label;
    row.fleet_sessions = cell.fleet.sessions;
    row.fault = cell.fault.label;
    row.loads_expected = loads;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& task = tasks[i];
    const TaskResult& outcome = outcomes[i];
    CellResult& row = report.cells[task.cell_pos];
    if (outcome.skipped != 0) {
      // Cancelled before it started: the report is partial. The journal
      // (when active) already holds every completed sibling, so --resume
      // picks up exactly here.
      report.interrupted = true;
      continue;
    }
    if (!task.is_probe) {
      ++row.loads_done;
    }
    if (!outcome.error.empty()) {
      // A torn task is one failed load (or a skipped probe) — recorded in
      // task order, which is load order, so error lists are deterministic.
      if (!task.is_probe) {
        ++row.failed_loads;
      }
      row.load_errors.push_back(
          (task.is_probe ? std::string{"probe: "}
                         : "load " + std::to_string(task.load_index) + ": ") +
          outcome.error);
      MAHI_WARN("experiment")
          << "cell " << row.index << " (" << cells[task.cell_pos].label()
          << ") task failed: " << outcome.error;
      continue;
    }
    if (task.is_probe) {
      row.probe_ran = true;
      row.queue_delay_p95_ms = outcome.probe.bottleneck.delay_p95_ms;
      row.jain_index = outcome.probe.jain_index;
      for (const auto& flow : outcome.probe.flows) {
        row.flows.push_back(FlowResult{flow.controller, flow.bytes_delivered,
                                       flow.throughput_bps, flow.share,
                                       flow.retransmissions});
      }
      continue;
    }
    for (std::size_t s = 0; s < outcome.plts.size(); ++s) {
      row.plt_ms.add(outcome.plts[s]);
      row.degraded_plt_ms.add(outcome.degraded[s]);
      row.objects_failed += outcome.failed_objects[s];
      row.retries += outcome.retries[s];
      row.timeouts += outcome.timeouts[s];
      if (outcome.oks[s] == 0) {
        ++row.failed_loads;
        MAHI_WARN("experiment")
            << "cell " << row.index << " (" << cells[task.cell_pos].label()
            << ") load " << task.load_index << " session " << s
            << " had failures";
      }
    }
  }

  // --- runner-lifecycle observability: one events.csv in the journal dir,
  // written post-merge in task (= load) order so its bytes are as
  // deterministic as the report's. These events stay OUT of the per-cell
  // trace artifacts on purpose: a resumed run replays instead of loading,
  // and injecting replay markers into cell traces would break the
  // byte-identity guarantee. (Watchdog events are different — they happen
  // inside the simulation and land in the cell's own trace.)
  if (journal_state.writer != nullptr) {
    obs::TraceBuffer events;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Task& task = tasks[i];
      const TaskResult& outcome = outcomes[i];
      const Cell& cell = cells[task.cell_pos];
      const TaskKey key{cell.index, task.is_probe ? 0 : task.load_index,
                        task.is_probe};
      const std::uint64_t cell_index =
          static_cast<std::uint64_t>(cell.index);
      const obs::EventKind kind =
          outcome.skipped != 0  ? obs::EventKind::kTaskCancelled
          : outcome.replayed != 0 ? obs::EventKind::kJournalReplay
                                  : obs::EventKind::kJournalAppend;
      events.events.push_back(obs::TraceEvent{
          0, obs::Layer::kRunner, kind, -1, 0, cell_index, 0, key.label()});
      if (outcome.attempts > 1) {
        events.events.push_back(obs::TraceEvent{
            0, obs::Layer::kRunner, obs::EventKind::kTaskRetry, -1, 0,
            outcome.attempts, 0, key.label()});
      }
      if (outcome.error.rfind("watchdog:", 0) == 0) {
        events.events.push_back(obs::TraceEvent{
            spec.cell_deadline, obs::Layer::kRunner,
            obs::EventKind::kWatchdogExpired, -1, 0, cell_index,
            to_ms(spec.cell_deadline), key.label()});
      }
    }
    const obs::TraceMeta meta{spec.name, "runner", -1, spec.seed};
    std::vector<obs::LoadTrace> runner_trace;
    runner_trace.push_back(obs::LoadTrace{0, std::move(events)});
    Report::write_file(options.journal_dir + "/events.csv",
                       obs::to_csv(meta, runner_trace));
  }

  if (tracing) {
    // Per-cell traces, merged by global load index — the same ordering
    // contract as the report rows, so both the exported bytes and the
    // derived metrics are identical at any thread count and across shard
    // splits (and across --resume, which replays the same buffers).
    std::vector<std::vector<obs::LoadTrace>> cell_traces(cells.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Task& task = tasks[i];
      if (task.is_probe) {
        continue;
      }
      cell_traces[task.cell_pos].push_back(
          obs::LoadTrace{task.load_index, std::move(outcomes[i].trace)});
    }
    if (options.metrics) {
      MAHI_PROFILE("metrics");
      for (std::size_t pos = 0; pos < cells.size(); ++pos) {
        report.cells[pos].metrics_json =
            obs::derive_cell_metrics(cell_traces[pos]).to_json_inline();
      }
    }
    if (!options.trace_dir.empty()) {
      MAHI_PROFILE("export");
      std::filesystem::create_directories(options.trace_dir);
      for (std::size_t pos = 0; pos < cells.size(); ++pos) {
        const Cell& cell = cells[pos];
        const obs::TraceMeta meta{spec.name, cell.label(), cell.index,
                                  cell.cell_seed};
        const std::string base =
            options.trace_dir + "/cell" + std::to_string(cell.index);
        Report::write_file(base + ".trace.json",
                           obs::to_chrome_trace(meta, cell_traces[pos]));
        Report::write_file(base + ".har", obs::to_har(meta, cell_traces[pos]));
        Report::write_file(base + ".csv", obs::to_csv(meta, cell_traces[pos]));
      }
    }
  }
  return report;
}

}  // namespace mahimahi::experiment
