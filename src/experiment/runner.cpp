#include "experiment/runner.hpp"

#include <filesystem>
#include <map>
#include <stdexcept>

#include "core/sessions.hpp"
#include "fleet/session_mux.hpp"
#include "net/bulk_probe.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace mahimahi::experiment {
namespace {

/// Work unit: one page load of one cell, or one transport probe.
struct Task {
  std::size_t cell_pos{0};  // position in the sharded cell list
  int load_index{0};
  bool is_probe{false};
};

/// Result slot — default-constructible so ParallelRunner can preallocate.
/// A load task yields one PLT per session: one entry for a classic
/// single-user cell, fleet.sessions entries (in session-index order) for
/// an offered-load cell.
struct TaskOutcome {
  std::vector<double> plts;
  std::vector<char> oks;
  /// Per-session resilience accounting, parallel to `plts`.
  std::vector<double> degraded;
  std::vector<std::uint32_t> failed_objects;
  std::vector<std::uint32_t> retries;
  std::vector<std::uint32_t> timeouts;
  /// Non-empty when the task threw: the run keeps going and the failure
  /// lands as a failed report row instead of tearing the experiment down.
  std::string error;
  net::MultiBulkFlowReport probe{};
  /// Everything this load traced (empty unless RunOptions::trace_dir is
  /// set). Harvested by load index into the cell's merged artifacts.
  obs::TraceBuffer trace{};
};

core::SessionConfig cell_session_config(const Cell& cell,
                                        const MaterializedCell& materialized) {
  core::SessionConfig config;
  config.seed = cell.cell_seed;
  config.shells = materialized.shells;
  config.browser.protocol = cell.protocol;
  if (cell.cc.fleet.size() == 1) {
    config.congestion_control = cell.cc.fleet.front();
  } else {
    config.cc_fleet = cell.cc.fleet;
  }
  config.fault = cell.fault.fault;
  return config;
}

replay::OriginServerSet::Options cell_origin_options(const Cell& cell) {
  replay::OriginServerSet::Options options;
  options.multiplexed = cell.protocol == web::AppProtocol::kMultiplexed;
  return options;
}

net::MultiBulkFlowSpec cell_probe_spec(const Cell& cell,
                                       const MaterializedCell& materialized,
                                       Microseconds duration) {
  net::MultiBulkFlowSpec probe;
  probe.controllers = cell.cc.fleet;
  probe.duration = duration;
  probe.queue = cell.queue.queue;
  probe.one_way_delay = materialized.total_one_way_delay;
  probe.loss = materialized.loss;
  // The probe's random streams (loss coin, AQM drop coin) must differ per
  // cell but never per thread.
  probe.loss_seed = cell.cell_seed ^ 0x1055;
  probe.queue.pie_seed = cell.cell_seed ^ 0xC37;
  if (materialized.uplink != nullptr) {
    probe.uplink_trace = materialized.uplink;
    probe.downlink_trace = materialized.downlink;
  } else {
    // No link layer: an effectively-unshaped bottleneck so the probe
    // still reports shares (the queue axis is inert without a link).
    probe.link_mbps = 1000.0;
  }
  return probe;
}

}  // namespace

Report run_experiment(const ExperimentSpec& spec, const RunOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count) {
    throw std::invalid_argument{
        "experiment shard must satisfy 0 <= index < count"};
  }
  core::ParallelRunner& pool =
      options.runner != nullptr ? *options.runner
                                : core::ParallelRunner::shared();
  const int loads = options.loads_override > 0 ? options.loads_override
                                               : spec.loads_per_cell;

  const std::vector<Cell> matrix = expand_matrix(spec);
  std::vector<Cell> cells;
  for (const Cell& cell : matrix) {
    if (cell.index % options.shard_count == options.shard_index) {
      cells.push_back(cell);
    }
  }

  // --- record each referenced site once (they are shared, read-only) ----
  // Distinct site labels in first-appearance order; recording seeds fork
  // from (spec.seed, label), so the corpus is independent of the axis
  // order and of which shard runs.
  std::vector<const SiteAxis*> distinct_sites;
  std::map<std::string, std::size_t> site_pos;
  for (const Cell& cell : cells) {
    if (site_pos.emplace(cell.site.label, distinct_sites.size()).second) {
      distinct_sites.push_back(&cell.site);
    }
  }
  struct RecordedSite {
    corpus::GeneratedSite site;
    record::RecordStore store;
  };
  const util::Rng seed_root{spec.seed};
  const std::vector<RecordedSite> recorded = pool.map(
      static_cast<int>(distinct_sites.size()), [&](int i) {
        const SiteAxis& axis = *distinct_sites[static_cast<std::size_t>(i)];
        RecordedSite entry{corpus::generate_site(axis.site),
                           record::RecordStore{}};
        core::SessionConfig config;
        config.seed = seed_root.fork("record-" + axis.label).next();
        core::RecordSession session{entry.site, corpus::LiveWebConfig{},
                                    config};
        entry.store = session.record();
        return entry;
      });

  // Materialize each cell once (traces are immutable and shared): the
  // fan-out below reads these concurrently but never mutates them.
  std::vector<MaterializedCell> materialized;
  materialized.reserve(cells.size());
  for (const Cell& cell : cells) {
    materialized.push_back(materialize_cell(cell));
  }

  // --- flatten the work: every load and probe is one independent task ---
  std::vector<Task> tasks;
  tasks.reserve(cells.size() * (static_cast<std::size_t>(loads) + 1));
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    for (int load = 0; load < loads; ++load) {
      tasks.push_back(Task{pos, load, false});
    }
    if (options.transport_probes) {
      tasks.push_back(Task{pos, 0, true});
    }
  }

  const bool tracing = !options.trace_dir.empty();
  std::vector<TaskOutcome> outcomes = pool.map(
      static_cast<int>(tasks.size()), [&](int task_index) {
        const Task& task = tasks[static_cast<std::size_t>(task_index)];
        const Cell& cell = cells[task.cell_pos];
        const MaterializedCell& cell_net = materialized[task.cell_pos];
        TaskOutcome outcome;
        // One Tracer per task (the obs determinism contract): a load task
        // is one deterministic simulation, so its buffer depends only on
        // (cell seed, load index) — never on threads or sharding.
        obs::Tracer tracer;
        obs::Tracer* task_tracer =
            tracing && !task.is_probe ? &tracer : nullptr;
        // A throwing task (a faulted world can starve a load past the
        // event limit) must not tear down the other tasks: it becomes a
        // failed row. The message is deterministic — it derives from the
        // task's own simulation, never from sibling threads.
        try {
          if (task.is_probe) {
            outcome.probe = net::run_multi_bulk_flow(
                cell_probe_spec(cell, cell_net, spec.probe_duration));
            return outcome;
          }
          const RecordedSite& entry =
              recorded[site_pos.at(cell.site.label)];
          if (cell.fleet.sessions > 1) {
            // Offered-load cell: one load = one shared-world fleet, every
            // user contending in the same namespace. The whole fleet is one
            // indivisible simulation under one task, seeded from
            // (cell_seed, load index) — deterministic at any thread count,
            // like every other task.
            fleet::MuxConfig mux_config;
            mux_config.fleet_seed =
                util::Rng{cell.cell_seed}
                    .fork("fleet-load-" + std::to_string(task.load_index))
                    .next();
            mux_config.stagger = cell.fleet.stagger;
            mux_config.session = cell_session_config(cell, cell_net);
            // A shared-world fleet is one indivisible simulation: the
            // whole mux traces into this task's one buffer, sessions told
            // apart by their fleet index (shared infrastructure = -1).
            mux_config.session.tracer = task_tracer;
            mux_config.origin = cell_origin_options(cell);
            mux_config.shared_world = true;
            fleet::SessionMux mux{entry.store, entry.site.primary_url(),
                                  mux_config};
            for (int s = 0; s < cell.fleet.sessions; ++s) {
              mux.add_session(s);
            }
            for (const fleet::SessionOutcome& session : mux.run()) {
              outcome.plts.push_back(session.plt_ms);
              outcome.oks.push_back(session.success);
              outcome.degraded.push_back(session.degraded_plt_ms);
              outcome.failed_objects.push_back(session.objects_failed);
              outcome.retries.push_back(session.retries);
              outcome.timeouts.push_back(session.timeouts);
            }
            outcome.trace = tracer.take();
            return outcome;
          }
          core::SessionConfig session_config =
              cell_session_config(cell, cell_net);
          session_config.tracer = task_tracer;
          const core::ReplaySession session{entry.store, session_config,
                                            cell_origin_options(cell)};
          const web::PageLoadResult result =
              session.load_once(entry.site.primary_url(), task.load_index);
          outcome.trace = tracer.take();
          outcome.plts.push_back(to_ms(result.page_load_time));
          outcome.oks.push_back(result.success ? 1 : 0);
          outcome.degraded.push_back(to_ms(result.degraded_page_load_time));
          outcome.failed_objects.push_back(
              static_cast<std::uint32_t>(result.objects_failed));
          outcome.retries.push_back(
              static_cast<std::uint32_t>(result.retries));
          outcome.timeouts.push_back(
              static_cast<std::uint32_t>(result.timeouts));
          return outcome;
        } catch (const std::exception& e) {
          outcome.error = e.what();
          return outcome;
        }
      });

  // --- assemble, in cell order (failure logs after the merge, so even
  // diagnostics are deterministic) ---------------------------------------
  Report report;
  report.name = spec.name;
  report.seed = spec.seed;
  report.loads_per_cell = loads;
  report.total_cells = static_cast<int>(matrix.size());
  report.shard_index = options.shard_index;
  report.shard_count = options.shard_count;
  report.fault_axis = !spec.faults.empty();
  report.cells.resize(cells.size());
  for (std::size_t pos = 0; pos < cells.size(); ++pos) {
    const Cell& cell = cells[pos];
    CellResult& row = report.cells[pos];
    row.index = cell.index;
    row.site = cell.site.label;
    row.protocol =
        cell.protocol == web::AppProtocol::kMultiplexed ? "mux" : "http11";
    row.shell = cell.shell.label;
    row.queue = cell.queue.label;
    row.cc = cell.cc.label;
    row.fleet = cell.fleet.label;
    row.fleet_sessions = cell.fleet.sessions;
    row.fault = cell.fault.label;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& task = tasks[i];
    const TaskOutcome& outcome = outcomes[i];
    CellResult& row = report.cells[task.cell_pos];
    if (!outcome.error.empty()) {
      // A torn task is one failed load (or a skipped probe) — recorded in
      // task order, which is load order, so error lists are deterministic.
      if (!task.is_probe) {
        ++row.failed_loads;
      }
      row.load_errors.push_back(
          (task.is_probe ? std::string{"probe: "}
                         : "load " + std::to_string(task.load_index) + ": ") +
          outcome.error);
      MAHI_WARN("experiment")
          << "cell " << row.index << " (" << cells[task.cell_pos].label()
          << ") task failed: " << outcome.error;
      continue;
    }
    if (task.is_probe) {
      row.probe_ran = true;
      row.queue_delay_p95_ms = outcome.probe.bottleneck.delay_p95_ms;
      row.jain_index = outcome.probe.jain_index;
      for (const auto& flow : outcome.probe.flows) {
        row.flows.push_back(FlowResult{flow.controller, flow.bytes_delivered,
                                       flow.throughput_bps, flow.share,
                                       flow.retransmissions});
      }
      continue;
    }
    for (std::size_t s = 0; s < outcome.plts.size(); ++s) {
      row.plt_ms.add(outcome.plts[s]);
      row.degraded_plt_ms.add(outcome.degraded[s]);
      row.objects_failed += outcome.failed_objects[s];
      row.retries += outcome.retries[s];
      row.timeouts += outcome.timeouts[s];
      if (outcome.oks[s] == 0) {
        ++row.failed_loads;
        MAHI_WARN("experiment")
            << "cell " << row.index << " (" << cells[task.cell_pos].label()
            << ") load " << task.load_index << " session " << s
            << " had failures";
      }
    }
  }

  if (tracing) {
    // Per-cell trace artifacts, merged by global load index — the same
    // ordering contract as the report rows, so the exported bytes are
    // identical at any thread count and across shard splits.
    std::filesystem::create_directories(options.trace_dir);
    std::vector<std::vector<obs::LoadTrace>> cell_traces(cells.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const Task& task = tasks[i];
      if (task.is_probe) {
        continue;
      }
      cell_traces[task.cell_pos].push_back(
          obs::LoadTrace{task.load_index, std::move(outcomes[i].trace)});
    }
    for (std::size_t pos = 0; pos < cells.size(); ++pos) {
      const Cell& cell = cells[pos];
      const obs::TraceMeta meta{spec.name, cell.label(), cell.index,
                                cell.cell_seed};
      const std::string base =
          options.trace_dir + "/cell" + std::to_string(cell.index);
      Report::write_file(base + ".trace.json",
                         obs::to_chrome_trace(meta, cell_traces[pos]));
      Report::write_file(base + ".har", obs::to_har(meta, cell_traces[pos]));
      Report::write_file(base + ".csv", obs::to_csv(meta, cell_traces[pos]));
    }
  }
  return report;
}

}  // namespace mahimahi::experiment
