#pragma once

#include <optional>
#include <string>
#include <vector>

#include "experiment/matrix.hpp"
#include "experiment/spec.hpp"
#include "journal/journal.hpp"
#include "net/bulk_probe.hpp"
#include "obs/trace.hpp"

namespace mahimahi::experiment {

/// Identity of one worker task within the *full* (unsharded) matrix —
/// the journal key. Global indices make journal records relocatable: a
/// record written by shard 0/2 replays into the same slot of an
/// unsharded resume.
struct TaskKey {
  int cell_index{0};  // Cell::index, global
  int load_index{0};
  bool probe{false};

  [[nodiscard]] bool operator<(const TaskKey& other) const {
    if (cell_index != other.cell_index) {
      return cell_index < other.cell_index;
    }
    if (load_index != other.load_index) {
      return load_index < other.load_index;
    }
    return probe < other.probe;
  }

  /// "cell3/load1" / "cell3/probe" — the label runner events carry.
  [[nodiscard]] std::string label() const;
};

/// Everything one task produced — the journal's unit of durability and
/// the runner's merge slot. A load task yields one entry per session in
/// each vector (fleet cells journal their per-session outcomes here); a
/// probe task fills `probe`. Default-constructible for ParallelRunner.
struct TaskResult {
  std::vector<double> plts;
  std::vector<char> oks;
  std::vector<double> degraded;
  std::vector<std::uint32_t> failed_objects;
  std::vector<std::uint32_t> retries;
  std::vector<std::uint32_t> timeouts;
  /// Non-empty when the task failed: the failure lands as a failed report
  /// row. "watchdog: ..." marks a virtual-time deadline trip.
  std::string error;
  net::MultiBulkFlowReport probe{};
  /// The task's full observability trace (empty unless tracing). Journaled
  /// so a resumed --trace-dir run re-exports byte-identical artifacts.
  obs::TraceBuffer trace{};
  // --- execution-only bookkeeping, never serialized -----------------------
  /// Task skipped because cancellation was requested before it started.
  char skipped{0};
  /// Satisfied from the journal instead of running.
  char replayed{0};
  /// 1 + transient retries this execution took (always 1 on replay).
  std::uint32_t attempts{1};
};

/// Serialize (key, result) into a journal payload, and back. The format
/// is internal to a (spec, toolchain) pair — the manifest refuses
/// cross-version replay, so there is no versioned migration path, only
/// the frame-level corruption check. decode returns std::nullopt on a
/// corrupt payload (treated like a torn record by the caller).
[[nodiscard]] std::string encode_task_record(const TaskKey& key,
                                             const TaskResult& result);
[[nodiscard]] std::optional<std::pair<TaskKey, TaskResult>> decode_task_record(
    std::string_view payload);

/// Everything a journal run must agree on before records can be replayed:
/// experiment name, seed, effective loads-per-cell, probe/tracing/metrics
/// flags, watchdog deadline, a hash of the expanded matrix (labels, seeds,
/// fleet sizes), the spec fingerprint (hash of the spec file text; "-" for
/// programmatic specs) and the toolchain fingerprint. A resume whose
/// manifest differs in any field is refused with the field named.
/// `traced` is the *effective* tracing state (trace export or metrics) —
/// it decides whether journaled records carry trace buffers.
[[nodiscard]] journal::Manifest build_manifest(
    const ExperimentSpec& spec, const std::vector<Cell>& matrix,
    int effective_loads, bool probes, bool traced, bool metrics,
    const std::string& spec_fingerprint);

}  // namespace mahimahi::experiment
