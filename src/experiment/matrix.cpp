#include "experiment/matrix.hpp"

#include "cc/registry.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace mahimahi::experiment {

using namespace mahimahi::literals;

namespace {

/// The built-in "lte" trace pair: 6 Mbit/s uplink, a cellular-like
/// downlink walking between 2 and 24 Mbit/s — the same shape
/// bench_cc_comparison uses. Synthesized from fixed seeds so every
/// expansion of every spec sees the identical trace.
std::pair<std::shared_ptr<const trace::PacketTrace>,
          std::shared_ptr<const trace::PacketTrace>>
lte_traces() {
  // Synthesized once per process (immutable, shared): every cell of every
  // expansion aliases the same trace instead of re-walking the 20 s
  // random walk per materialization.
  static const auto traces = [] {
    util::Rng rng{77};
    auto up = std::make_shared<const trace::PacketTrace>(
        trace::constant_rate(6e6, 2_s));
    auto down = std::make_shared<const trace::PacketTrace>(
        trace::cellular_like(rng, 20_s, 2e6, 24e6));
    return std::pair{std::move(up), std::move(down)};
  }();
  return traces;
}

ExperimentSpec with_defaults(ExperimentSpec spec) {
  if (spec.sites.empty()) {
    spec.sites.push_back(
        SiteAxis{"nytimes", site_spec_for_label("nytimes")});
  }
  if (spec.protocols.empty()) {
    spec.protocols.push_back(web::AppProtocol::kHttp11);
  }
  if (spec.shells.empty()) {
    spec.shells.push_back(ShellAxis{"bare", {}});
  }
  if (spec.queues.empty()) {
    spec.queues.push_back(QueueAxis{"fifo", net::QueueSpec{}});
  }
  if (spec.ccs.empty()) {
    spec.ccs.push_back(
        CcAxis{cc::kDefaultController, {cc::kDefaultController}});
  }
  if (spec.fleets.empty()) {
    spec.fleets.push_back(FleetAxis{"solo", 1});
  }
  if (spec.faults.empty()) {
    spec.faults.push_back(FaultAxis{});  // "none": the healthy control
  }
  return spec;
}

}  // namespace

std::string Cell::label() const {
  const char* protocol_name =
      protocol == web::AppProtocol::kMultiplexed ? "mux" : "http11";
  std::string label = site.label + "/" + protocol_name + "/" + shell.label +
                      "/" + queue.label + "/" + cc.label + "/" + fleet.label;
  if (fault.label != "none") {
    label += "/" + fault.label;
  }
  return label;
}

std::uint64_t derive_cell_seed(std::uint64_t experiment_seed, int cell_index) {
  util::Rng root{experiment_seed};
  return root.fork("cell-" + std::to_string(cell_index)).next();
}

std::vector<Cell> expand_matrix(const ExperimentSpec& raw) {
  validate_spec(raw);
  const ExperimentSpec spec = with_defaults(raw);
  // A "bare" default shell has no layers, which validate_spec rejects for
  // explicit entries — it is only reachable as the default, by design.
  std::vector<Cell> cells;
  cells.reserve(spec.sites.size() * spec.protocols.size() *
                spec.shells.size() * spec.queues.size() * spec.ccs.size() *
                spec.fleets.size() * spec.faults.size());
  int index = 0;
  for (const auto& site : spec.sites) {
    for (const auto protocol : spec.protocols) {
      for (const auto& shell : spec.shells) {
        for (const auto& queue : spec.queues) {
          for (const auto& cc : spec.ccs) {
            for (const auto& fleet : spec.fleets) {
              for (const auto& fault : spec.faults) {
                Cell cell;
                cell.index = index;
                cell.site = site;
                cell.protocol = protocol;
                cell.shell = shell;
                cell.queue = queue;
                cell.cc = cc;
                cell.fleet = fleet;
                cell.fault = fault;
                cell.cell_seed = derive_cell_seed(spec.seed, index);
                cells.push_back(std::move(cell));
                ++index;
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

MaterializedCell materialize_cell(const Cell& cell) {
  MaterializedCell materialized;
  for (const auto& layer : cell.shell.layers) {
    switch (layer.kind) {
      case ShellLayerSpec::Kind::kDelay: {
        materialized.shells.push_back(
            core::DelayShellSpec{layer.delay_one_way});
        materialized.total_one_way_delay += layer.delay_one_way;
        break;
      }
      case ShellLayerSpec::Kind::kLink: {
        core::LinkShellSpec link;
        if (layer.trace_name == "lte") {
          auto [up, down] = lte_traces();
          link.uplink = std::move(up);
          link.downlink = std::move(down);
        } else {
          link.uplink = std::make_shared<const trace::PacketTrace>(
              trace::constant_rate(layer.up_mbps * 1e6, 2_s));
          link.downlink = std::make_shared<const trace::PacketTrace>(
              trace::constant_rate(layer.down_mbps * 1e6, 2_s));
        }
        link.uplink_queue = cell.queue.queue;
        link.downlink_queue = cell.queue.queue;
        // Decorrelate the AQM drop coins per cell and per direction
        // (deterministically: pure function of the cell seed).
        link.uplink_queue.pie_seed = cell.cell_seed ^ 0xA17;
        link.downlink_queue.pie_seed = cell.cell_seed ^ 0xB26;
        materialized.uplink = link.uplink;
        materialized.downlink = link.downlink;
        materialized.shells.push_back(std::move(link));
        break;
      }
      case ShellLayerSpec::Kind::kLoss: {
        materialized.shells.push_back(
            core::LossShellSpec{layer.uplink_loss, layer.downlink_loss});
        materialized.loss = layer.downlink_loss;
        break;
      }
    }
  }
  return materialized;
}

}  // namespace mahimahi::experiment
