#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/shells.hpp"
#include "experiment/spec.hpp"
#include "trace/trace.hpp"

namespace mahimahi::experiment {

/// One fully-resolved point of the scenario matrix. Cells carry copies of
/// their axis entries (not pointers into the spec), so a cell outlives
/// the spec it was expanded from.
struct Cell {
  /// Position in the full (unsharded) matrix — the determinism anchor:
  /// every per-cell random stream derives from (spec.seed, index).
  int index{0};
  SiteAxis site;
  web::AppProtocol protocol{web::AppProtocol::kHttp11};
  ShellAxis shell;
  QueueAxis queue;
  CcAxis cc;
  FleetAxis fleet;
  FaultAxis fault;
  std::uint64_t cell_seed{0};

  /// "site/protocol/shell/queue/cc/fleet" — the stable row name in
  /// reports. A non-"none" fault axis appends "/<fault-label>"; the
  /// healthy control keeps the six-segment form, byte-identical to a spec
  /// with no fault axis at all.
  [[nodiscard]] std::string label() const;
};

/// Deterministic seed for cell `cell_index` of an experiment: forked from
/// the experiment seed by index, never by thread or execution order.
/// Per-load randomness then derives from (cell_seed, load_index) inside
/// the session layer — the (seed, cell, load) contract.
std::uint64_t derive_cell_seed(std::uint64_t experiment_seed, int cell_index);

/// Expand the cartesian product in canonical nesting order — site
/// (outermost), protocol, shell, queue, cc, fleet, fault (innermost) —
/// assigning cell indices 0..n-1. Empty axes are filled with their single
/// default entry first (see ExperimentSpec; the default fleet is "solo",
/// one session; the default fault is "none"). Validates the spec.
std::vector<Cell> expand_matrix(const ExperimentSpec& spec);

/// Everything the runner needs to instantiate a cell's network: the shell
/// stack with the cell's queue discipline installed on its link layer,
/// plus the probe-facing view of the bottleneck.
struct MaterializedCell {
  std::vector<core::ShellSpec> shells;
  /// The link layer's traces (shared with `shells`); null when the stack
  /// has no link layer — the probe then uses an effectively-unshaped
  /// 1000 Mbit/s bottleneck and the queue axis is inert.
  std::shared_ptr<const trace::PacketTrace> uplink;
  std::shared_ptr<const trace::PacketTrace> downlink;
  Microseconds total_one_way_delay{0};
  double loss{0};  // the loss layer's downlink rate (the probed direction)
};

/// Materialize a cell's shells and probe parameters. Pure function of the
/// cell: two calls produce identical traces (built-in traces are
/// synthesized from fixed seeds), which is what makes re-expansion at a
/// different thread count byte-identical.
MaterializedCell materialize_cell(const Cell& cell);

}  // namespace mahimahi::experiment
