#include "experiment/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/atomic_file.hpp"

namespace mahimahi::experiment {
namespace {

/// Fixed-precision double formatting — the determinism backbone of the
/// report: printf of a finite double with a fixed precision is a pure
/// function of the value, so byte-identical samples serialize to
/// byte-identical text.
std::string fmt(double value, int precision = 6) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

void append_summary_fields(std::string& out, const util::Samples& plt) {
  out += "\"plt_median_ms\": " + fmt(plt.empty() ? 0 : plt.median());
  out += ", \"plt_mean_ms\": " + fmt(plt.empty() ? 0 : plt.mean());
  out += ", \"plt_p95_ms\": " + fmt(plt.empty() ? 0 : plt.percentile(95));
  out += ", \"plt_min_ms\": " + fmt(plt.empty() ? 0 : plt.min());
  out += ", \"plt_max_ms\": " + fmt(plt.empty() ? 0 : plt.max());
}

}  // namespace

std::string Report::to_json() const {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"mahimahi-experiment-v1\",\n";
  out += "  \"name\": \"" + json_escape(name) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"loads_per_cell\": " + std::to_string(loads_per_cell) + ",\n";
  out += "  \"total_cells\": " + std::to_string(total_cells) + ",\n";
  out += "  \"shard\": \"" + std::to_string(shard_index) + "/" +
         std::to_string(shard_count) + "\",\n";
  if (interrupted) {
    out += "  \"interrupted\": true,\n";
  }
  out += "  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"index\": " + std::to_string(cell.index);
    out += ", \"site\": \"" + json_escape(cell.site) + "\"";
    out += ", \"protocol\": \"" + json_escape(cell.protocol) + "\"";
    out += ", \"shell\": \"" + json_escape(cell.shell) + "\"";
    out += ", \"queue\": \"" + json_escape(cell.queue) + "\"";
    out += ", \"cc\": \"" + json_escape(cell.cc) + "\"";
    out += ", \"fleet\": \"" + json_escape(cell.fleet) + "\"";
    out += ", \"fleet_sessions\": " + std::to_string(cell.fleet_sessions);
    if (fault_axis) {
      out += ", \"fault\": \"" + json_escape(cell.fault) + "\"";
    }
    if (interrupted) {
      out += ", \"loads_done\": " + std::to_string(cell.loads_done);
      out += ", \"loads_expected\": " + std::to_string(cell.loads_expected);
    }
    out += ", \"failed_loads\": " + std::to_string(cell.failed_loads);
    out += ", ";
    append_summary_fields(out, cell.plt_ms);
    out += ", \"plt_ms\": [";
    const auto& values = cell.plt_ms.values();
    for (std::size_t j = 0; j < values.size(); ++j) {
      out += j == 0 ? "" : ", ";
      out += fmt(values[j]);
    }
    out += "]";
    if (fault_axis) {
      out += ", \"objects_failed\": " + std::to_string(cell.objects_failed);
      out += ", \"retries\": " + std::to_string(cell.retries);
      out += ", \"timeouts\": " + std::to_string(cell.timeouts);
      const util::Samples& deg = cell.degraded_plt_ms;
      out += ", \"degraded_plt_median_ms\": " +
             fmt(deg.empty() ? 0 : deg.median());
      out += ", \"degraded_plt_ms\": [";
      const auto& degraded = deg.values();
      for (std::size_t j = 0; j < degraded.size(); ++j) {
        out += j == 0 ? "" : ", ";
        out += fmt(degraded[j]);
      }
      out += "]";
    }
    // Worker-task failures surface in any report (fault axis or not);
    // healthy runs have none, so the key's absence keeps them byte-stable.
    if (!cell.load_errors.empty()) {
      out += ", \"load_errors\": [";
      for (std::size_t j = 0; j < cell.load_errors.size(); ++j) {
        out += j == 0 ? "" : ", ";
        out += "\"" + json_escape(cell.load_errors[j]) + "\"";
      }
      out += "]";
    }
    if (cell.probe_ran) {
      out += ", \"probe\": {\"queue_delay_p95_ms\": " +
             fmt(cell.queue_delay_p95_ms, 3);
      out += ", \"jain_index\": " + fmt(cell.jain_index);
      out += ", \"flows\": [";
      for (std::size_t j = 0; j < cell.flows.size(); ++j) {
        const FlowResult& flow = cell.flows[j];
        out += j == 0 ? "" : ", ";
        out += "{\"cc\": \"" + json_escape(flow.controller) + "\"";
        out += ", \"bytes\": " + std::to_string(flow.bytes_delivered);
        out += ", \"throughput_bps\": " + fmt(flow.throughput_bps, 1);
        out += ", \"share\": " + fmt(flow.share);
        out += ", \"retransmissions\": " +
               std::to_string(flow.retransmissions) + "}";
      }
      out += "]}";
    }
    // Derived metrics ride along only when requested (key absent
    // otherwise, like load_errors): the snapshot is already deterministic
    // JSON, so the report stays byte-stable under the same contract.
    if (!cell.metrics_json.empty()) {
      out += ", \"metrics\": " + cell.metrics_json;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Report::to_csv() const {
  std::string out =
      "cell,site,protocol,shell,queue,cc,fleet,fleet_sessions,loads,"
      "failed_loads,plt_median_ms,plt_mean_ms,plt_p95_ms,plt_min_ms,"
      "plt_max_ms,queue_delay_p95_ms,jain_index,flow_shares";
  if (fault_axis) {
    out += ",fault,objects_failed,retries,timeouts,degraded_plt_median_ms";
  }
  out += "\n";
  for (const CellResult& cell : cells) {
    out += std::to_string(cell.index) + ",";
    out += cell.site + "," + cell.protocol + "," + cell.shell + "," +
           cell.queue + "," + cell.cc + "," + cell.fleet + "," +
           std::to_string(cell.fleet_sessions) + ",";
    out += std::to_string(cell.plt_ms.size()) + ",";
    out += std::to_string(cell.failed_loads) + ",";
    const util::Samples& plt = cell.plt_ms;
    out += fmt(plt.empty() ? 0 : plt.median()) + ",";
    out += fmt(plt.empty() ? 0 : plt.mean()) + ",";
    out += fmt(plt.empty() ? 0 : plt.percentile(95)) + ",";
    out += fmt(plt.empty() ? 0 : plt.min()) + ",";
    out += fmt(plt.empty() ? 0 : plt.max()) + ",";
    if (cell.probe_ran) {
      out += fmt(cell.queue_delay_p95_ms, 3) + ",";
      out += fmt(cell.jain_index) + ",";
      std::string shares;
      for (const FlowResult& flow : cell.flows) {
        shares += shares.empty() ? "" : "|";
        shares += flow.controller + ":" + fmt(flow.share, 4);
      }
      out += shares;
    } else {
      out += ",,";
    }
    if (fault_axis) {
      const util::Samples& deg = cell.degraded_plt_ms;
      out += "," + cell.fault;
      out += "," + std::to_string(cell.objects_failed);
      out += "," + std::to_string(cell.retries);
      out += "," + std::to_string(cell.timeouts);
      out += "," + fmt(deg.empty() ? 0 : deg.median());
    }
    out += "\n";
  }
  return out;
}

std::string Report::to_bench_json() const {
  std::string out;
  out += "{\n  \"schema\": \"mahimahi-bench-v1\",\n  \"benchmarks\": [";
  bool first = true;
  const auto add = [&](const std::string& row_name, double ns_per_op) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(row_name) +
           "\", \"ns_per_op\": " + fmt(ns_per_op, 1) +
           ", \"items_per_second\": 0, \"bytes_per_second\": 0}";
  };
  for (const CellResult& cell : cells) {
    std::string label = cell.site + "/" + cell.protocol + "/" + cell.shell +
                        "/" + cell.queue + "/" + cell.cc + "/" + cell.fleet;
    if (fault_axis && cell.fault != "none") {
      label += "/" + cell.fault;
    }
    if (!cell.plt_ms.empty()) {
      add("exp_plt_median/" + label, cell.plt_ms.median() * 1e6);
    }
    if (fault_axis && !cell.degraded_plt_ms.empty()) {
      add("exp_degraded_plt/" + label, cell.degraded_plt_ms.median() * 1e6);
    }
    if (cell.probe_ran) {
      add("exp_queue_p95_ms/" + label, cell.queue_delay_p95_ms * 1e6);
      add("exp_jain/" + label, cell.jain_index * 1e9);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Report::write_file(const std::string& path, const std::string& content) {
  return util::atomic_write_file(path, content);
}

}  // namespace mahimahi::experiment
