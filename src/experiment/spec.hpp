#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/site_generator.hpp"
#include "fault/fault.hpp"
#include "net/queue.hpp"
#include "util/time.hpp"
#include "web/browser.hpp"

namespace mahimahi::experiment {

/// One layer of a declarative shell stack. Declarative (no live trace
/// pointers) so a spec can round-trip through text and two expansions of
/// the same spec are guaranteed to materialize identical shells.
struct ShellLayerSpec {
  enum class Kind { kDelay, kLink, kLoss };
  Kind kind{Kind::kDelay};
  // kDelay
  Microseconds delay_one_way{0};
  // kLink: either a named built-in trace ("lte") or constant rates.
  std::string trace_name;
  double up_mbps{0};
  double down_mbps{0};
  // kLoss: i.i.d. per-direction rates.
  double uplink_loss{0};
  double downlink_loss{0};
};

/// Axis entry: a named stack of shells, outermost first (mm-delay ...
/// mm-link ... mm-loss ... <app>, exactly like nesting the real tools).
struct ShellAxis {
  std::string label;
  std::vector<ShellLayerSpec> layers;
};

/// Axis entry: a queue discipline applied to both directions of the
/// stack's link layer (cells whose stack has no link ignore it).
struct QueueAxis {
  std::string label;
  net::QueueSpec queue{};
};

/// Axis entry: a congestion-controller fleet. One entry = homogeneous
/// (both flow ends run it); several = the mixed-CC axis — browser
/// connection k runs fleet[k % size], origin server j serves under
/// fleet[j % size], and the cell's fairness probe runs one bulk flow per
/// entry across the cell's bottleneck.
struct CcAxis {
  std::string label;
  std::vector<std::string> fleet;
};

/// Axis entry: a corpus site (generated + recorded once per experiment).
struct SiteAxis {
  std::string label;
  corpus::SiteSpec site{};
};

/// Axis entry: offered load — how many concurrent emulated users load the
/// cell's page per measurement. sessions == 1 is the classic single-user
/// cell; sessions > 1 runs a fleet::SessionMux in shared-world mode, so
/// the users contend for the cell's origin servers and link bandwidth and
/// the cell's PLT distribution degrades with fleet size (the PLT-vs-load
/// grid). Each load of a fleet cell is one indivisible simulation, so the
/// cell stays deterministic at any thread count.
struct FleetAxis {
  std::string label;
  int sessions{1};
  /// Arrival spacing between consecutive users within one load.
  Microseconds stagger{50'000};
};

/// Axis entry: a fault-injection plan (the robustness axis). Label "none"
/// is the healthy control — it carries an empty spec and its cells are
/// byte-identical to a spec with no fault axis at all. Any other label
/// names a deterministic injector ladder (see fault::parse_fault_spec):
/// link flaps, payload corruption, origin crash/stall/slow-start, DNS
/// faults, plus the client resilience policy the cell's browsers run.
struct FaultAxis {
  std::string label{"none"};
  fault::FaultSpec fault{};
};

/// A declarative experiment: the cartesian product of its axes. Parse one
/// from text with parse_spec(), or build it programmatically (the bench
/// drivers do) — the two are equivalent by construction.
struct ExperimentSpec {
  std::string name{"experiment"};
  std::uint64_t seed{1};
  int loads_per_cell{3};
  /// Measurement window of the per-cell transport probe (multi-flow bulk
  /// rig reporting throughput shares, Jain's index and queue-delay p95).
  Microseconds probe_duration{12'000'000};
  /// Per-cell virtual-time watchdog (0 = off): every load task — and, for
  /// fleet cells, the whole shared-world mux — that exceeds this much
  /// *simulated* time is aborted with a typed "watchdog:" failed row
  /// instead of hanging the run. Spec key: `deadline 120s`.
  Microseconds cell_deadline{0};
  /// Bounded retry for transiently failed worker tasks (allocation
  /// pressure, I/O hiccups — NOT in-simulation fault retries, which are
  /// the browser's resilience machinery, and NOT watchdog trips, which
  /// are deterministic). A retried task reruns with identical inputs, so
  /// a success on any attempt yields the exact bytes an untroubled run
  /// produces. Spec key: `task-retries 2`. Backoff between attempts is
  /// capped-exponential with jitter seeded from (seed, cell, load,
  /// attempt) — deterministic delays, wall-clock sleeps.
  int task_retries{0};

  // Axes. An empty axis means "the single default": nytimes-like site,
  // HTTP/1.1, bare shell stack, infinite FIFO, default controller.
  std::vector<SiteAxis> sites;
  std::vector<web::AppProtocol> protocols;
  std::vector<ShellAxis> shells;
  std::vector<QueueAxis> queues;
  std::vector<CcAxis> ccs;
  std::vector<FleetAxis> fleets;
  std::vector<FaultAxis> faults;
};

/// Parse the line-oriented keyval format (see README "Experiments"):
///
///   # comment
///   name smoke
///   seed 42
///   loads 3
///   probe-seconds 8
///   site nytimes
///   protocol http11
///   shell lte delay=30ms link=lte
///   shell cable delay=10ms link=12x1.5 loss=0.002
///   queue fifo infinite
///   queue dt droptail packets=100
///   queue aqm pie target=15ms tupdate=15ms
///   cc cubic
///   cc mixed 1xbbr+5xcubic
///   fleet solo sessions=1
///   fleet crowd sessions=8 stagger=50ms
///   fleet 16                       # shorthand: label "16", 16 sessions
///   fault none                     # healthy control (the default)
///   fault chaos crash:p=0.05 stall:p=0.02 retry:deadline=4s,max=2,base=250ms,cap=4s
///
/// Scalar keys (name, seed, loads, probe-seconds) may appear at most
/// once; a duplicate is an error naming both lines, never a silent
/// last-writer-wins. Throws std::invalid_argument naming the offending
/// line and what was expected. The result is validated (see
/// validate_spec).
ExperimentSpec parse_spec(std::string_view text);

/// Read and parse a spec file; errors mention the path.
ExperimentSpec load_spec_file(const std::string& path);

/// Reject a spec that could not run exactly as written: unknown
/// congestion controllers (against the cc registry), queue specs
/// make_queue would refuse, non-positive loads, duplicate axis labels
/// (cells must be uniquely addressable), malformed shell layers, fleet
/// sizes outside [1, 256]. parse_spec calls this; programmatic builders
/// should too.
void validate_spec(const ExperimentSpec& spec);

/// Parse helpers shared with mm_experiment's CLI.
[[nodiscard]] std::vector<std::string> known_site_labels();
[[nodiscard]] corpus::SiteSpec site_spec_for_label(const std::string& label);

}  // namespace mahimahi::experiment
