#include "experiment/spec.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cc/registry.hpp"
#include "util/strings.hpp"

namespace mahimahi::experiment {
namespace {

[[noreturn]] void fail(int line_number, const std::string& message) {
  throw std::invalid_argument{"spec line " + std::to_string(line_number) +
                              ": " + message};
}

/// "30ms" / "30" -> 30 ms; "2s" -> 2000 ms; never negative.
Microseconds parse_duration_ms(std::string_view text, int line_number) {
  std::string_view digits = text;
  Microseconds unit = 1'000;  // default: milliseconds
  if (util::ends_with(text, "ms")) {
    digits = text.substr(0, text.size() - 2);
  } else if (util::ends_with(text, "s")) {
    digits = text.substr(0, text.size() - 1);
    unit = 1'000'000;
  }
  std::uint64_t value = 0;
  if (!util::parse_u64(digits, value)) {
    fail(line_number, "expected a duration like '30ms' or '2s', got '" +
                          std::string{text} + "'");
  }
  return static_cast<Microseconds>(value) * unit;
}

double parse_double(std::string_view text, int line_number) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(std::string{text}, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument{"trailing junk"};
    }
    return value;
  } catch (const std::exception&) {
    fail(line_number,
         "expected a number, got '" + std::string{text} + "'");
  }
}

std::uint64_t parse_u64_or_fail(std::string_view text, int line_number) {
  std::uint64_t value = 0;
  if (!util::parse_u64(text, value)) {
    fail(line_number,
         "expected a non-negative integer, got '" + std::string{text} + "'");
  }
  return value;
}

/// "12x1.5" -> {12, 1.5}; "8" -> {8, 8} (symmetric).
std::pair<double, double> parse_rate_pair(std::string_view text,
                                          int line_number) {
  const auto [first, second] = util::split_once(text, 'x');
  const double up = parse_double(first, line_number);
  const double down = second.empty() ? up : parse_double(second, line_number);
  return {up, down};
}

ShellAxis parse_shell_line(const std::vector<std::string_view>& tokens,
                           int line_number) {
  if (tokens.size() < 3) {
    fail(line_number, "shell needs a label and at least one layer, e.g. "
                      "'shell lte delay=30ms link=lte'");
  }
  ShellAxis axis;
  axis.label = std::string{tokens[1]};
  // Canonical stack order regardless of token order: delay outermost,
  // then link, then loss — matching the bench networks' nesting.
  std::optional<ShellLayerSpec> delay;
  std::optional<ShellLayerSpec> link;
  std::optional<ShellLayerSpec> loss;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = util::split_once(tokens[i], '=');
    if (key == "delay") {
      if (delay.has_value()) {
        fail(line_number, "duplicate delay= token");
      }
      ShellLayerSpec layer;
      layer.kind = ShellLayerSpec::Kind::kDelay;
      layer.delay_one_way = parse_duration_ms(value, line_number);
      delay = layer;
    } else if (key == "link") {
      if (link.has_value()) {
        fail(line_number, "duplicate link= token");
      }
      ShellLayerSpec layer;
      layer.kind = ShellLayerSpec::Kind::kLink;
      if (value == "lte") {
        layer.trace_name = "lte";
      } else {
        const auto [up, down] = parse_rate_pair(value, line_number);
        if (up <= 0 || down <= 0) {
          fail(line_number, "link rates must be positive Mbit/s");
        }
        layer.up_mbps = up;
        layer.down_mbps = down;
      }
      link = layer;
    } else if (key == "loss") {
      if (loss.has_value()) {
        fail(line_number, "duplicate loss= token");
      }
      ShellLayerSpec layer;
      layer.kind = ShellLayerSpec::Kind::kLoss;
      const auto [up, down] = parse_rate_pair(value, line_number);
      layer.uplink_loss = up;
      layer.downlink_loss = down;
      loss = layer;
    } else {
      fail(line_number, "unknown shell token '" + std::string{tokens[i]} +
                            "' (expected delay=, link= or loss=)");
    }
  }
  if (delay.has_value()) {
    axis.layers.push_back(*delay);
  }
  if (link.has_value()) {
    axis.layers.push_back(*link);
  }
  if (loss.has_value()) {
    axis.layers.push_back(*loss);
  }
  return axis;
}

QueueAxis parse_queue_line(const std::vector<std::string_view>& tokens,
                           int line_number) {
  if (tokens.size() < 3) {
    fail(line_number, "queue needs a label and a discipline, e.g. "
                      "'queue dt droptail packets=100'");
  }
  QueueAxis axis;
  axis.label = std::string{tokens[1]};
  axis.queue.discipline = std::string{tokens[2]};
  // Each discipline accepts only its own parameters — 'interval=' on a
  // pie queue (or any knob on infinite) would otherwise be stored into an
  // ignored QueueSpec field and silently measure the wrong queue.
  const auto accepts = [&](std::string_view key) {
    const std::string& d = axis.queue.discipline;
    if (key == "packets") {
      return d == "droptail" || d == "drophead" || d == "codel" || d == "pie";
    }
    if (key == "bytes") {
      return d == "droptail" || d == "drophead";
    }
    if (key == "target") {
      return d == "codel" || d == "pie";
    }
    if (key == "interval") {
      return d == "codel";
    }
    if (key == "tupdate") {
      return d == "pie";
    }
    return false;
  };
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    const auto [key, value] = util::split_once(tokens[i], '=');
    if (!accepts(key)) {
      fail(line_number, "queue discipline '" + axis.queue.discipline +
                            "' does not take '" + std::string{tokens[i]} +
                            "' (droptail/drophead: packets=, bytes=; codel: "
                            "target=, interval=, packets=; pie: target=, "
                            "tupdate=, packets=; infinite: none)");
    }
    if (key == "packets") {
      axis.queue.max_packets =
          static_cast<std::size_t>(parse_u64_or_fail(value, line_number));
    } else if (key == "bytes") {
      axis.queue.max_bytes =
          static_cast<std::size_t>(parse_u64_or_fail(value, line_number));
    } else if (key == "target") {
      const Microseconds t = parse_duration_ms(value, line_number);
      axis.queue.codel_target = t;
      axis.queue.pie_target = t;
    } else if (key == "interval") {
      axis.queue.codel_interval = parse_duration_ms(value, line_number);
    } else if (key == "tupdate") {
      axis.queue.pie_tupdate = parse_duration_ms(value, line_number);
    }
  }
  return axis;
}

/// "1xbbr+5xcubic" or "cubic" -> expanded fleet.
std::vector<std::string> parse_fleet(std::string_view text, int line_number) {
  constexpr std::uint64_t kMaxFlows = 64;
  std::vector<std::string> fleet;
  for (const auto part : util::split(text, '+')) {
    const auto [count_text, controller] = util::split_once(part, 'x');
    if (controller.empty()) {
      fleet.emplace_back(part);  // plain controller name, one flow
      continue;
    }
    const std::uint64_t count = parse_u64_or_fail(count_text, line_number);
    if (count == 0 || count > kMaxFlows) {
      fail(line_number, "fleet count must be in [1, 64], got '" +
                            std::string{count_text} + "'");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      fleet.emplace_back(controller);
    }
  }
  if (fleet.empty() || fleet.size() > kMaxFlows) {
    fail(line_number, "fleet must expand to between 1 and 64 flows");
  }
  return fleet;
}

/// "fleet <label> sessions=N [stagger=Xms]" or the shorthand "fleet N"
/// (label "N", N sessions, default stagger).
FleetAxis parse_fleet_line(const std::vector<std::string_view>& tokens,
                           int line_number) {
  if (tokens.size() < 2) {
    fail(line_number, "fleet needs a label and a size, e.g. "
                      "'fleet crowd sessions=8 stagger=50ms' or 'fleet 8'");
  }
  FleetAxis axis;
  axis.label = std::string{tokens[1]};
  std::uint64_t shorthand = 0;
  if (tokens.size() == 2 && util::parse_u64(tokens[1], shorthand)) {
    axis.sessions = static_cast<int>(shorthand);
    return axis;
  }
  bool saw_sessions = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = util::split_once(tokens[i], '=');
    if (key == "sessions") {
      if (saw_sessions) {
        fail(line_number, "duplicate sessions= token");
      }
      saw_sessions = true;
      axis.sessions =
          static_cast<int>(parse_u64_or_fail(value, line_number));
    } else if (key == "stagger") {
      axis.stagger = parse_duration_ms(value, line_number);
    } else {
      fail(line_number, "unknown fleet token '" + std::string{tokens[i]} +
                            "' (expected sessions= or stagger=)");
    }
  }
  if (!saw_sessions) {
    fail(line_number, "fleet '" + axis.label + "' needs sessions=N");
  }
  return axis;
}

}  // namespace

std::vector<std::string> known_site_labels() {
  return {"cnbc", "nytimes", "wikihow"};
}

corpus::SiteSpec site_spec_for_label(const std::string& label) {
  if (label == "cnbc") {
    return corpus::cnbc_like_spec();
  }
  if (label == "nytimes") {
    return corpus::nytimes_like_spec();
  }
  if (label == "wikihow") {
    return corpus::wikihow_like_spec();
  }
  std::string known;
  for (const std::string& name : known_site_labels()) {
    known += known.empty() ? name : ", " + name;
  }
  throw std::invalid_argument{"unknown site '" + label +
                              "' (known: " + known + ")"};
}

ExperimentSpec parse_spec(std::string_view text) {
  ExperimentSpec spec;
  spec.loads_per_cell = 3;
  int line_number = 0;
  // First-seen line of each scalar key: scalar keys may appear at most
  // once per spec. (Axis keys repeat — each occurrence is one more axis
  // entry — but a repeated scalar used to silently keep the last value,
  // so a spec redefining `seed` halfway down measured something other
  // than what its header said.)
  std::map<std::string, int> scalar_lines;
  const auto claim_scalar = [&](std::string_view key, int at_line) {
    const auto [it, inserted] =
        scalar_lines.emplace(std::string{key}, at_line);
    if (!inserted) {
      fail(at_line, "duplicate '" + std::string{key} + "' (first set on line " +
                        std::to_string(it->second) +
                        "); scalar keys may appear only once");
    }
  };
  for (const auto raw_line : util::split(text, '\n')) {
    ++line_number;
    // Strip comments and surrounding whitespace.
    const auto [content, comment] = util::split_once(raw_line, '#');
    (void)comment;
    const std::string_view line = util::trim(content);
    if (line.empty()) {
      continue;
    }
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
        ++pos;
      }
      std::size_t end = pos;
      while (end < line.size() &&
             std::isspace(static_cast<unsigned char>(line[end])) == 0) {
        ++end;
      }
      if (end > pos) {
        tokens.push_back(line.substr(pos, end - pos));
      }
      pos = end;
    }
    if (tokens.empty()) {
      continue;
    }
    const std::string_view key = tokens[0];
    if (key == "name") {
      if (tokens.size() != 2) {
        fail(line_number, "name takes exactly one value");
      }
      claim_scalar(key, line_number);
      spec.name = std::string{tokens[1]};
    } else if (key == "seed") {
      if (tokens.size() != 2) {
        fail(line_number, "seed takes exactly one value");
      }
      claim_scalar(key, line_number);
      spec.seed = parse_u64_or_fail(tokens[1], line_number);
    } else if (key == "loads") {
      if (tokens.size() != 2) {
        fail(line_number, "loads takes exactly one value");
      }
      claim_scalar(key, line_number);
      spec.loads_per_cell =
          static_cast<int>(parse_u64_or_fail(tokens[1], line_number));
    } else if (key == "probe-seconds") {
      if (tokens.size() != 2) {
        fail(line_number, "probe-seconds takes exactly one value");
      }
      claim_scalar(key, line_number);
      spec.probe_duration = static_cast<Microseconds>(
          parse_u64_or_fail(tokens[1], line_number) * 1'000'000);
    } else if (key == "deadline") {
      if (tokens.size() != 2) {
        fail(line_number, "deadline takes exactly one duration, e.g. "
                          "'deadline 120s'");
      }
      claim_scalar(key, line_number);
      spec.cell_deadline = parse_duration_ms(tokens[1], line_number);
      if (spec.cell_deadline <= 0) {
        fail(line_number, "deadline must be positive (omit it to disable "
                          "the watchdog)");
      }
    } else if (key == "task-retries") {
      if (tokens.size() != 2) {
        fail(line_number, "task-retries takes exactly one value");
      }
      claim_scalar(key, line_number);
      spec.task_retries =
          static_cast<int>(parse_u64_or_fail(tokens[1], line_number));
    } else if (key == "site") {
      if (tokens.size() != 2) {
        fail(line_number, "site takes exactly one label");
      }
      SiteAxis axis;
      axis.label = std::string{tokens[1]};
      try {
        axis.site = site_spec_for_label(axis.label);
      } catch (const std::invalid_argument& e) {
        fail(line_number, e.what());
      }
      spec.sites.push_back(std::move(axis));
    } else if (key == "protocol") {
      if (tokens.size() != 2) {
        fail(line_number, "protocol takes exactly one value");
      }
      if (tokens[1] == "http11") {
        spec.protocols.push_back(web::AppProtocol::kHttp11);
      } else if (tokens[1] == "mux") {
        spec.protocols.push_back(web::AppProtocol::kMultiplexed);
      } else {
        fail(line_number, "unknown protocol '" + std::string{tokens[1]} +
                              "' (known: http11, mux)");
      }
    } else if (key == "shell") {
      spec.shells.push_back(parse_shell_line(tokens, line_number));
    } else if (key == "queue") {
      spec.queues.push_back(parse_queue_line(tokens, line_number));
    } else if (key == "cc") {
      if (tokens.size() != 2 && tokens.size() != 3) {
        fail(line_number,
             "cc takes '<fleet>' or '<label> <fleet>', e.g. 'cc cubic' or "
             "'cc mixed 1xbbr+5xcubic'");
      }
      CcAxis axis;
      axis.label = std::string{tokens[1]};
      axis.fleet =
          parse_fleet(tokens.size() == 3 ? tokens[2] : tokens[1], line_number);
      spec.ccs.push_back(std::move(axis));
    } else if (key == "fleet") {
      spec.fleets.push_back(parse_fleet_line(tokens, line_number));
    } else if (key == "fault") {
      if (tokens.size() < 2) {
        fail(line_number,
             "fault needs a label, e.g. 'fault none' or "
             "'fault chaos crash:p=0.05 retry:deadline=4s,max=2,base=250ms,cap=4s'");
      }
      FaultAxis axis;
      axis.label = std::string{tokens[1]};
      if (axis.label == "none") {
        if (tokens.size() != 2) {
          fail(line_number,
               "'fault none' is the healthy control and takes no injectors");
        }
      } else {
        if (tokens.size() < 3) {
          fail(line_number, "fault '" + axis.label +
                                "' needs at least one injector token");
        }
        std::string injectors;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (!injectors.empty()) {
            injectors += ' ';
          }
          injectors += std::string{tokens[i]};
        }
        try {
          axis.fault = fault::parse_fault_spec(injectors);
        } catch (const std::invalid_argument& e) {
          fail(line_number, e.what());
        }
      }
      spec.faults.push_back(std::move(axis));
    } else {
      fail(line_number,
           "unknown key '" + std::string{key} +
               "' (known: name, seed, loads, probe-seconds, deadline, "
               "task-retries, site, protocol, shell, queue, cc, fleet, "
               "fault)");
    }
  }
  validate_spec(spec);
  return spec;
}

ExperimentSpec load_spec_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::invalid_argument{"cannot open spec file: " + path};
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  try {
    return parse_spec(contents.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument{path + ": " + e.what()};
  }
}

void validate_spec(const ExperimentSpec& spec) {
  const auto require = [](bool ok, const std::string& message) {
    if (!ok) {
      throw std::invalid_argument{"invalid experiment spec: " + message};
    }
  };
  require(!spec.name.empty(), "name must not be empty");
  require(spec.loads_per_cell >= 1, "loads must be >= 1");
  require(spec.cell_deadline >= 0, "deadline must not be negative");
  require(spec.task_retries >= 0 && spec.task_retries <= 16,
          "task-retries must be in [0, 16]");
  require(spec.probe_duration > 0, "probe duration must be positive");

  const auto check_unique = [&require](const std::vector<std::string>& labels,
                                       const char* axis) {
    std::set<std::string> seen;
    for (const std::string& label : labels) {
      require(!label.empty(), std::string{axis} + " label must not be empty");
      require(seen.insert(label).second,
              std::string{axis} + " label '" + label +
                  "' appears twice (cells must be uniquely addressable)");
    }
  };
  std::vector<std::string> labels;
  for (const auto& site : spec.sites) {
    labels.push_back(site.label);
  }
  check_unique(labels, "site");
  labels.clear();
  for (const auto& shell : spec.shells) {
    labels.push_back(shell.label);
  }
  check_unique(labels, "shell");
  labels.clear();
  for (const auto& queue : spec.queues) {
    labels.push_back(queue.label);
  }
  check_unique(labels, "queue");
  labels.clear();
  for (const auto& cc : spec.ccs) {
    labels.push_back(cc.label);
  }
  check_unique(labels, "cc");
  labels.clear();
  for (const auto& fleet : spec.fleets) {
    labels.push_back(fleet.label);
  }
  check_unique(labels, "fleet");
  labels.clear();
  for (const auto& f : spec.faults) {
    labels.push_back(f.label);
  }
  check_unique(labels, "fault");

  for (const auto& f : spec.faults) {
    // "none" must stay a true control cell; any other label must actually
    // inject or defend something, or the axis is mislabeled.
    if (f.label == "none") {
      require(!f.fault.any(),
              "fault 'none' must carry no injectors (it is the control)");
    } else {
      require(f.fault.any(), "fault '" + f.label +
                                 "' parses to an empty plan; label it 'none' "
                                 "or add an injector");
    }
  }

  for (const auto& fleet : spec.fleets) {
    require(fleet.sessions >= 1 && fleet.sessions <= 256,
            "fleet '" + fleet.label + "': sessions must be in [1, 256]");
    require(fleet.stagger >= 0,
            "fleet '" + fleet.label + "': stagger must be >= 0");
  }

  for (const auto& shell : spec.shells) {
    require(!shell.layers.empty(),
            "shell '" + shell.label + "' has no layers");
    for (const auto& layer : shell.layers) {
      switch (layer.kind) {
        case ShellLayerSpec::Kind::kDelay:
          require(layer.delay_one_way >= 0,
                  "shell '" + shell.label + "': delay must be >= 0");
          break;
        case ShellLayerSpec::Kind::kLink:
          require(layer.trace_name == "lte" ||
                      (layer.trace_name.empty() && layer.up_mbps > 0 &&
                       layer.down_mbps > 0),
                  "shell '" + shell.label +
                      "': link needs positive rates or the 'lte' trace");
          break;
        case ShellLayerSpec::Kind::kLoss:
          require(layer.uplink_loss >= 0 && layer.uplink_loss < 1 &&
                      layer.downlink_loss >= 0 && layer.downlink_loss < 1,
                  "shell '" + shell.label + "': loss rates must be in [0, 1)");
          break;
      }
    }
  }
  for (const auto& queue : spec.queues) {
    try {
      (void)net::make_queue(queue.queue);  // dry-run the validating factory
    } catch (const std::invalid_argument& e) {
      require(false, "queue '" + queue.label + "': " + e.what());
    }
  }
  for (const auto& cc : spec.ccs) {
    require(!cc.fleet.empty(), "cc '" + cc.label + "' has an empty fleet");
    for (const std::string& controller : cc.fleet) {
      require(cc::is_registered(controller),
              "cc '" + cc.label + "': '" + controller +
                  "' is not a registered congestion controller");
    }
  }
  for (const auto& site : spec.sites) {
    require(site.site.object_count > 0 && site.site.server_count > 0,
            "site '" + site.label + "' has an empty site spec");
  }
}

}  // namespace mahimahi::experiment
