#include "experiment/checkpoint.hpp"

#include <cstdio>

#include "util/random.hpp"

namespace mahimahi::experiment {
namespace {

// Serialize only what the runner's merge consumes from a probe (see
// run_experiment): bottleneck delay p95, Jain's index and the per-flow
// controller/bytes/throughput/share/srtt/cwnd/retransmissions. The rest of
// LinkLogSummary never reaches a report, so journaling it would only
// widen the compatibility surface the manifest has to pin.
void put_probe(std::string& out, const net::MultiBulkFlowReport& probe) {
  journal::put_double(out, probe.jain_index);
  journal::put_double(out, probe.bottleneck.delay_p95_ms);
  journal::put_u32(out, static_cast<std::uint32_t>(probe.flows.size()));
  for (const auto& flow : probe.flows) {
    journal::put_string(out, flow.controller);
    journal::put_u64(out, flow.bytes_delivered);
    journal::put_double(out, flow.throughput_bps);
    journal::put_double(out, flow.share);
    journal::put_i64(out, flow.final_srtt);
    journal::put_double(out, flow.final_cwnd_bytes);
    journal::put_u64(out, flow.retransmissions);
  }
}

net::MultiBulkFlowReport get_probe(journal::Cursor& in) {
  net::MultiBulkFlowReport probe;
  probe.jain_index = in.get_double();
  probe.bottleneck.delay_p95_ms = in.get_double();
  const std::uint32_t flows = in.get_u32();
  probe.flows.reserve(flows);
  for (std::uint32_t i = 0; i < flows; ++i) {
    net::MultiBulkFlowReport::Flow flow;
    flow.controller = in.get_string();
    flow.bytes_delivered = in.get_u64();
    flow.throughput_bps = in.get_double();
    flow.share = in.get_double();
    flow.final_srtt = in.get_i64();
    flow.final_cwnd_bytes = in.get_double();
    flow.retransmissions = in.get_u64();
    probe.flows.push_back(std::move(flow));
  }
  return probe;
}

// The full TraceBuffer round-trips so a resumed --trace-dir run exports
// byte-identical artifacts without rerunning the simulation.
void put_trace(std::string& out, const obs::TraceBuffer& trace) {
  journal::put_u32(out, static_cast<std::uint32_t>(trace.events.size()));
  for (const obs::TraceEvent& e : trace.events) {
    journal::put_i64(out, e.at);
    journal::put_u8(out, static_cast<std::uint8_t>(e.layer));
    journal::put_u8(out, static_cast<std::uint8_t>(e.kind));
    journal::put_i64(out, e.session);
    journal::put_u64(out, e.flow);
    journal::put_u64(out, e.value);
    journal::put_double(out, e.metric);
    journal::put_string(out, e.label);
  }
  journal::put_u32(out, static_cast<std::uint32_t>(trace.objects.size()));
  for (const obs::ObjectRecord& o : trace.objects) {
    journal::put_string(out, o.url);
    journal::put_string(out, o.kind);
    journal::put_i64(out, o.session);
    journal::put_i64(out, o.fetch_start);
    journal::put_i64(out, o.dns_start);
    journal::put_i64(out, o.dns_done);
    journal::put_i64(out, o.connect_done);
    journal::put_i64(out, o.request_sent);
    journal::put_i64(out, o.first_byte);
    journal::put_i64(out, o.complete);
    journal::put_u64(out, o.bytes);
    journal::put_u32(out, o.status);
    journal::put_u32(out, o.attempts);
    journal::put_u8(out, o.failed ? 1 : 0);
    journal::put_string(out, o.error);
  }
  journal::put_u32(out, static_cast<std::uint32_t>(trace.pages.size()));
  for (const obs::PageRecord& p : trace.pages) {
    journal::put_i64(out, p.session);
    journal::put_string(out, p.url);
    journal::put_i64(out, p.started_at);
    journal::put_i64(out, p.plt);
    journal::put_i64(out, p.degraded_plt);
    journal::put_u8(out, p.success ? 1 : 0);
  }
}

obs::TraceBuffer get_trace(journal::Cursor& in) {
  obs::TraceBuffer trace;
  const std::uint32_t events = in.get_u32();
  trace.events.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    obs::TraceEvent e;
    e.at = in.get_i64();
    e.layer = static_cast<obs::Layer>(in.get_u8());
    e.kind = static_cast<obs::EventKind>(in.get_u8());
    e.session = static_cast<std::int32_t>(in.get_i64());
    e.flow = in.get_u64();
    e.value = in.get_u64();
    e.metric = in.get_double();
    e.label = in.get_string();
    trace.events.push_back(std::move(e));
  }
  const std::uint32_t objects = in.get_u32();
  trace.objects.reserve(objects);
  for (std::uint32_t i = 0; i < objects; ++i) {
    obs::ObjectRecord o;
    o.url = in.get_string();
    o.kind = in.get_string();
    o.session = static_cast<std::int32_t>(in.get_i64());
    o.fetch_start = in.get_i64();
    o.dns_start = in.get_i64();
    o.dns_done = in.get_i64();
    o.connect_done = in.get_i64();
    o.request_sent = in.get_i64();
    o.first_byte = in.get_i64();
    o.complete = in.get_i64();
    o.bytes = in.get_u64();
    o.status = in.get_u32();
    o.attempts = in.get_u32();
    o.failed = in.get_u8() != 0;
    o.error = in.get_string();
    trace.objects.push_back(std::move(o));
  }
  const std::uint32_t pages = in.get_u32();
  trace.pages.reserve(pages);
  for (std::uint32_t i = 0; i < pages; ++i) {
    obs::PageRecord p;
    p.session = static_cast<std::int32_t>(in.get_i64());
    p.url = in.get_string();
    p.started_at = in.get_i64();
    p.plt = in.get_i64();
    p.degraded_plt = in.get_i64();
    p.success = in.get_u8() != 0;
    trace.pages.push_back(std::move(p));
  }
  return trace;
}

}  // namespace

std::string TaskKey::label() const {
  return "cell" + std::to_string(cell_index) + "/" +
         (probe ? "probe" : "load" + std::to_string(load_index));
}

std::string encode_task_record(const TaskKey& key, const TaskResult& result) {
  std::string out;
  out.reserve(128);
  journal::put_i64(out, key.cell_index);
  journal::put_i64(out, key.load_index);
  journal::put_u8(out, key.probe ? 1 : 0);
  journal::put_string(out, result.error);
  const std::uint32_t sessions =
      static_cast<std::uint32_t>(result.plts.size());
  journal::put_u32(out, sessions);
  for (std::uint32_t s = 0; s < sessions; ++s) {
    journal::put_double(out, result.plts[s]);
    journal::put_u8(out, static_cast<std::uint8_t>(result.oks[s]));
    journal::put_double(out, result.degraded[s]);
    journal::put_u32(out, result.failed_objects[s]);
    journal::put_u32(out, result.retries[s]);
    journal::put_u32(out, result.timeouts[s]);
  }
  put_probe(out, result.probe);
  put_trace(out, result.trace);
  return out;
}

std::optional<std::pair<TaskKey, TaskResult>> decode_task_record(
    std::string_view payload) {
  try {
    journal::Cursor in{payload};
    TaskKey key;
    key.cell_index = static_cast<int>(in.get_i64());
    key.load_index = static_cast<int>(in.get_i64());
    key.probe = in.get_u8() != 0;
    TaskResult result;
    result.error = in.get_string();
    const std::uint32_t sessions = in.get_u32();
    result.plts.reserve(sessions);
    for (std::uint32_t s = 0; s < sessions; ++s) {
      result.plts.push_back(in.get_double());
      result.oks.push_back(static_cast<char>(in.get_u8()));
      result.degraded.push_back(in.get_double());
      result.failed_objects.push_back(in.get_u32());
      result.retries.push_back(in.get_u32());
      result.timeouts.push_back(in.get_u32());
    }
    result.probe = get_probe(in);
    result.trace = get_trace(in);
    result.replayed = 1;
    if (!in.exhausted()) {
      return std::nullopt;  // trailing garbage: not a record we wrote
    }
    return std::make_pair(std::move(key), std::move(result));
  } catch (const std::exception&) {
    return std::nullopt;  // underrun: corrupt payload
  }
}

journal::Manifest build_manifest(const ExperimentSpec& spec,
                                 const std::vector<Cell>& matrix,
                                 int effective_loads, bool probes, bool traced,
                                 bool metrics,
                                 const std::string& spec_fingerprint) {
  // Hash the expanded matrix — labels, seeds, fleet sizes, probe window —
  // so a journal can only replay into the exact cell grid it was written
  // for, regardless of how the spec text was arranged.
  std::string cells;
  for (const Cell& cell : matrix) {
    cells += std::to_string(cell.index) + "|" + cell.label() + "|" +
             std::to_string(cell.cell_seed) + "|" +
             std::to_string(cell.fleet.sessions) + "|" +
             std::to_string(cell.fleet.stagger) + "\n";
  }
  cells += "probe=" + std::to_string(spec.probe_duration);

  char hash[32];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(util::fnv1a(cells)));

  journal::Manifest manifest;
  manifest.set("name", spec.name);
  manifest.set("seed", std::to_string(spec.seed));
  manifest.set("cells", std::to_string(matrix.size()));
  manifest.set("loads", std::to_string(effective_loads));
  manifest.set("probes", probes ? "1" : "0");
  manifest.set("traced", traced ? "1" : "0");
  manifest.set("metrics", metrics ? "1" : "0");
  manifest.set("deadline-us", std::to_string(spec.cell_deadline));
  manifest.set("matrix-hash", hash);
  manifest.set("spec-fingerprint", spec_fingerprint);
  manifest.set("toolchain", journal::toolchain_fingerprint());
  return manifest;
}

}  // namespace mahimahi::experiment
