#include "fault/fault.hpp"

#include <cctype>
#include <charconv>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hpp"
#include "util/strings.hpp"

namespace mahimahi::fault {
namespace {

[[noreturn]] void bad(std::string_view token, std::string_view message) {
  throw std::invalid_argument("fault spec token '" + std::string(token) +
                              "': " + std::string(message));
}

double parse_double_or(std::string_view token, std::string_view value) {
  double out = 0.0;
  const auto* end = value.data() + value.size();
  const auto result = std::from_chars(value.data(), end, out);
  if (result.ec != std::errc{} || result.ptr != end) {
    bad(token, "expected a number, got '" + std::string(value) + "'");
  }
  return out;
}

double parse_rate(std::string_view token, std::string_view value) {
  const double rate = parse_double_or(token, value);
  if (rate < 0.0 || rate > 1.0) {
    bad(token, "probability must be in [0, 1]");
  }
  return rate;
}

/// "200ms" / "2s" / "1500us" -> Microseconds. Accepts integers only; the
/// grammar matches the experiment spec parser's duration syntax.
Microseconds parse_duration(std::string_view token, std::string_view value) {
  std::size_t digits = 0;
  while (digits < value.size() &&
         (std::isdigit(static_cast<unsigned char>(value[digits])) != 0)) {
    ++digits;
  }
  if (digits == 0) {
    bad(token, "expected a duration like 500ms, got '" + std::string(value) + "'");
  }
  std::uint64_t magnitude = 0;
  if (!util::parse_u64(value.substr(0, digits), magnitude)) {
    bad(token, "duration out of range: '" + std::string(value) + "'");
  }
  const std::string_view unit = value.substr(digits);
  std::uint64_t scale = 0;
  if (unit == "us") {
    scale = 1;
  } else if (unit == "ms") {
    scale = 1000;
  } else if (unit == "s") {
    scale = 1'000'000;
  } else {
    bad(token, "duration unit must be us/ms/s, got '" + std::string(value) + "'");
  }
  return static_cast<Microseconds>(magnitude * scale);
}

int parse_count(std::string_view token, std::string_view value) {
  std::uint64_t out = 0;
  if (!util::parse_u64(value, out) || out > 64) {
    bad(token, "expected a small count, got '" + std::string(value) + "'");
  }
  return static_cast<int>(out);
}

/// Split "k1=v1,k2=v2" into pairs; every key must appear in `allowed`.
std::vector<std::pair<std::string_view, std::string_view>> parse_kv(
    std::string_view token, std::string_view body,
    std::initializer_list<std::string_view> allowed) {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;
  for (const auto field : util::split(body, ',')) {
    const auto [key, value] = util::split_once(field, '=');
    if (value.empty()) {
      bad(token, "expected key=value, got '" + std::string(field) + "'");
    }
    bool known = false;
    for (const auto candidate : allowed) {
      known = known || key == candidate;
    }
    if (!known) {
      bad(token, "unknown key '" + std::string(key) + "'");
    }
    for (const auto& existing : pairs) {
      if (existing.first == key) {
        bad(token, "duplicate key '" + std::string(key) + "'");
      }
    }
    pairs.emplace_back(key, value);
  }
  return pairs;
}

}  // namespace

FaultSpec parse_fault_spec(std::string_view text) {
  FaultSpec spec;
  // Tokenize on '+' and whitespace; empty pieces (from "a + b") are skipped.
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '+' || text[i] == ' ' || text[i] == '\t') {
      if (i > start) {
        tokens.push_back(text.substr(start, i - start));
      }
      start = i + 1;
    }
  }

  if (tokens.empty()) {
    throw std::invalid_argument(
        "fault spec is empty (use 'none' for the healthy control)");
  }

  bool saw_none = false;
  std::vector<std::string_view> seen_injectors;
  for (const auto token : tokens) {
    const auto [name, body] = util::split_once(token, ':');
    // One token per injector: "crash:p=0.1 crash:p=0.2" must never
    // silently keep the last writer.
    for (const auto previous : seen_injectors) {
      if (previous == name) {
        bad(token, "duplicate injector '" + std::string(name) + "'");
      }
    }
    seen_injectors.push_back(name);
    if (name == "none") {
      saw_none = true;
    } else if (name == "flap") {
      FlapSpec flap;
      bool saw_period = false;
      bool saw_down = false;
      for (const auto& [key, value] :
           parse_kv(token, body, {"period", "down", "offset"})) {
        if (key == "period") {
          flap.period = parse_duration(token, value);
          saw_period = true;
        } else if (key == "down") {
          flap.down = parse_duration(token, value);
          saw_down = true;
        } else {
          flap.offset = parse_duration(token, value);
        }
      }
      if (!saw_period || !saw_down) {
        bad(token, "flap needs period= and down=");
      }
      if (flap.period <= 0 || flap.down <= 0 || flap.down >= flap.period) {
        bad(token, "flap needs 0 < down < period");
      }
      spec.flap = flap;
    } else if (name == "corrupt") {
      CorruptSpec corrupt;
      bool saw_rate = false;
      for (const auto& [key, value] : parse_kv(token, body, {"rate"})) {
        (void)key;
        corrupt.rate = parse_rate(token, value);
        saw_rate = true;
      }
      if (!saw_rate) {
        bad(token, "corrupt needs rate=");
      }
      spec.corrupt = corrupt;
    } else if (name == "crash") {
      bool saw_p = false;
      for (const auto& [key, value] : parse_kv(token, body, {"p", "frac"})) {
        if (key == "p") {
          spec.origin.crash_rate = parse_rate(token, value);
          saw_p = true;
        } else {
          spec.origin.crash_fraction = parse_rate(token, value);
        }
      }
      if (!saw_p) {
        bad(token, "crash needs p=");
      }
    } else if (name == "stall") {
      bool saw_p = false;
      for (const auto& [key, value] : parse_kv(token, body, {"p"})) {
        (void)key;
        spec.origin.stall_rate = parse_rate(token, value);
        saw_p = true;
      }
      if (!saw_p) {
        bad(token, "stall needs p=");
      }
    } else if (name == "slowstart") {
      bool saw_delay = false;
      for (const auto& [key, value] : parse_kv(token, body, {"delay"})) {
        (void)key;
        spec.origin.slow_start = parse_duration(token, value);
        saw_delay = true;
      }
      if (!saw_delay) {
        bad(token, "slowstart needs delay=");
      }
    } else if (name == "dns") {
      if (body.empty()) {
        bad(token, "dns needs fail= and/or drop=");
      }
      for (const auto& [key, value] : parse_kv(token, body, {"fail", "drop"})) {
        if (key == "fail") {
          spec.dns.fail_rate = parse_rate(token, value);
        } else {
          spec.dns.drop_rate = parse_rate(token, value);
        }
      }
    } else if (name == "noretry") {
      spec.client.no_retry = true;
    } else if (name == "retry") {
      for (const auto& [key, value] :
           parse_kv(token, body, {"deadline", "max", "base", "cap", "jitter"})) {
        if (key == "deadline") {
          spec.client.request_deadline = parse_duration(token, value);
        } else if (key == "max") {
          spec.client.max_retries = parse_count(token, value);
        } else if (key == "base") {
          spec.client.backoff_base = parse_duration(token, value);
        } else if (key == "cap") {
          spec.client.backoff_max = parse_duration(token, value);
        } else {
          spec.client.backoff_jitter = parse_rate(token, value);
        }
      }
      if (spec.client.backoff_base <= 0 ||
          spec.client.backoff_max < spec.client.backoff_base) {
        bad(token, "retry needs 0 < base <= cap");
      }
    } else {
      bad(token,
          "unknown injector (expected none, flap, corrupt, crash, stall, "
          "slowstart, dns, noretry, retry)");
    }
  }
  if (saw_none && (spec.any() || tokens.size() != 1)) {
    throw std::invalid_argument("fault spec 'none' cannot combine with injectors");
  }
  bool saw_retry = false;
  for (const auto injector : seen_injectors) {
    saw_retry = saw_retry || injector == "retry";
  }
  if (spec.client.no_retry && saw_retry) {
    throw std::invalid_argument(
        "fault spec cannot combine 'noretry' with 'retry:...'");
  }
  return spec;
}

bool FaultPlan::chance(std::string_view stream, std::uint64_t index,
                       double p) const {
  return util::derive_chance(plan_seed_, stream, index, p);
}

net::ServerFault FaultPlan::server_fault(std::size_t server_index,
                                         std::uint64_t request_index) const {
  net::ServerFault out;
  if (!spec_.origin.any()) {
    return out;
  }
  const std::string key = "origin-s" + std::to_string(server_index);
  // Slow-start: the first requests to each origin pay extra latency that
  // decays linearly over the first four requests (a cold cache warming up).
  if (spec_.origin.slow_start > 0 && request_index < 4) {
    out.extra_delay = spec_.origin.slow_start *
                      static_cast<Microseconds>(4 - request_index) / 4;
  }
  // Crash and stall are mutually exclusive per request; crash wins the tie
  // so crash-heavy ladders stay crash-heavy.
  if (spec_.origin.crash_rate > 0.0 &&
      chance(key + "/crash", request_index, spec_.origin.crash_rate)) {
    out.kind = net::ServerFault::Kind::kCrash;
    out.fraction = spec_.origin.crash_fraction;
  } else if (spec_.origin.stall_rate > 0.0 &&
             chance(key + "/stall", request_index, spec_.origin.stall_rate)) {
    out.kind = net::ServerFault::Kind::kStall;
  }
  return out;
}

net::DnsFault FaultPlan::dns_query_fault(std::uint64_t query_index) const {
  if (!spec_.dns.any()) {
    return net::DnsFault::kNone;
  }
  if (spec_.dns.drop_rate > 0.0 &&
      chance("dns/drop", query_index, spec_.dns.drop_rate)) {
    return net::DnsFault::kDrop;
  }
  if (spec_.dns.fail_rate > 0.0 &&
      chance("dns/fail", query_index, spec_.dns.fail_rate)) {
    return net::DnsFault::kFail;
  }
  return net::DnsFault::kNone;
}

}  // namespace mahimahi::fault
