#pragma once

// Deterministic fault injection. A FaultSpec says *which* failure modes are
// active (parsed from an experiment axis like
// "flap:period=5s,down=500ms + crash:p=0.1 + dns:fail=0.05"); a FaultPlan
// binds a spec to a plan seed and answers per-event questions ("does query
// #7 fail?") as a pure function of (plan_seed, stream, index). Nothing in a
// plan advances state, so every shard/thread sees identical faults — the
// same contract the traffic side of the simulator already holds.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/fault_hooks.hpp"
#include "util/time.hpp"

namespace mahimahi::fault {

/// Periodic link outage: the shell goes dark for `down` once per `period`,
/// first outage starting at `offset`.
struct FlapSpec {
  Microseconds period{5'000'000};
  Microseconds down{500'000};
  Microseconds offset{1'000'000};
};

/// Random single-packet corruption (modelled as a drop — the simulator has
/// no checksum path, and a corrupted frame is discarded either way).
struct CorruptSpec {
  double rate{0.001};
};

/// Origin-server misbehavior, decided per (server, request).
struct OriginSpec {
  double crash_rate{0.0};     ///< P(send partial response, then RST)
  double crash_fraction{0.5}; ///< fraction of wire bytes sent before the RST
  double stall_rate{0.0};     ///< P(accept request, never respond)
  Microseconds slow_start{0}; ///< extra delay on each server's first requests

  [[nodiscard]] bool any() const {
    return crash_rate > 0.0 || stall_rate > 0.0 || slow_start > 0;
  }
};

/// DNS misbehavior, decided per query.
struct DnsSpec {
  double fail_rate{0.0};  ///< P(NXDOMAIN for a known name)
  double drop_rate{0.0};  ///< P(swallow the query; client times out + retries)

  [[nodiscard]] bool any() const { return fail_rate > 0.0 || drop_rate > 0.0; }
};

/// Client-side resilience policy shipped with a fault plan (the browser
/// maps this onto its retry/deadline machinery when the plan is active).
struct ClientPolicy {
  bool no_retry{false};  ///< "noretry": measure the un-defended baseline
  Microseconds request_deadline{8'000'000};
  int max_retries{2};
  Microseconds backoff_base{500'000};
  Microseconds backoff_max{8'000'000};
  double backoff_jitter{0.1};
};

/// Which injectors a scenario turns on. Default-constructed = no faults.
struct FaultSpec {
  std::optional<FlapSpec> flap;
  std::optional<CorruptSpec> corrupt;
  OriginSpec origin;
  DnsSpec dns;
  ClientPolicy client;

  [[nodiscard]] bool any() const {
    return flap.has_value() || corrupt.has_value() || origin.any() || dns.any();
  }
};

/// Parse a plan spec: injector tokens separated by '+' or whitespace.
///   none
///   flap:period=5s,down=500ms[,offset=1s]
///   corrupt:rate=0.001
///   crash:p=0.1[,frac=0.5]
///   stall:p=0.05
///   slowstart:delay=200ms
///   dns:fail=0.1[,drop=0.3]
///   noretry
///   retry:deadline=8s,max=2,base=500ms,cap=8s[,jitter=0.1]
/// Throws std::invalid_argument with a token-level message on bad input.
FaultSpec parse_fault_spec(std::string_view text);

/// A spec bound to a seed. Copyable value; all queries are const and pure.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(FaultSpec spec, std::uint64_t plan_seed)
      : spec_{spec}, plan_seed_{plan_seed} {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t plan_seed() const { return plan_seed_; }
  [[nodiscard]] bool active() const { return spec_.any(); }

  /// Pure Bernoulli decision for event `index` of `stream`.
  [[nodiscard]] bool chance(std::string_view stream, std::uint64_t index,
                            double p) const;

  /// Origin fault for request `request_index` on server `server_index`
  /// (decision streams are keyed per server so servers fail independently).
  [[nodiscard]] net::ServerFault server_fault(std::size_t server_index,
                                              std::uint64_t request_index) const;

  /// DNS fault for query `query_index`.
  [[nodiscard]] net::DnsFault dns_query_fault(std::uint64_t query_index) const;

 private:
  FaultSpec spec_{};
  std::uint64_t plan_seed_{0};
};

}  // namespace mahimahi::fault
