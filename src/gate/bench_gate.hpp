#pragma once

// CI perf-regression gate over the repo's "mahimahi-bench-v1" perf rows
// (BENCH_*.json, emitted by every bench driver via bench::PerfReport and
// experiment::Report::to_bench_json). A checked-in baseline file pins the
// expected value of each metric plus a per-metric tolerance band; check()
// diffs a freshly-measured file against it, classifying every metric so
// CI can fail on regressions and print a metric-by-metric delta table.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mahimahi::gate {

/// One benchmark row of a mahimahi-bench-v1 file. A metric with value 0
/// is "not reported" (the emitters write 0 for counters they don't
/// measure) and is never compared.
struct BenchRow {
  std::string name;
  double ns_per_op{0};
  double items_per_second{0};
  double bytes_per_second{0};
};

/// Parse `{"schema": "mahimahi-bench-v1", "benchmarks": [...]}`. Throws
/// std::invalid_argument (mentioning what and roughly where) on malformed
/// JSON or a wrong schema string.
std::vector<BenchRow> parse_bench_json(std::string_view text);

/// Read + parse; errors mention the path.
std::vector<BenchRow> load_bench_file(const std::string& path);

/// A pinned expectation set: rows plus tolerance bands.
/// Tolerances are relative fractions (0.05 = ±5%). A row without an
/// override uses default_tolerance; a NEGATIVE tolerance marks the row
/// informational — reported in the table, never failing the gate (for
/// wall-clock throughput metrics too noisy to gate on shared CI runners).
struct Baseline {
  double default_tolerance{0.25};
  /// Keyed by row name; applies to every compared metric of that row.
  std::map<std::string, double> tolerances;
  std::vector<BenchRow> rows;
};

/// Parse the "mahimahi-bench-baseline-v1" schema: a bench file plus
/// "default_tolerance" and an optional "tolerances" object.
Baseline parse_baseline_json(std::string_view text);
Baseline load_baseline_file(const std::string& path);

/// Serialize (the refresh procedure: re-measure, then rewrite the
/// baseline keeping its tolerance policy). Fixed-precision, diffable.
std::string make_baseline_json(const Baseline& baseline);

/// How one metric of one row compared.
enum class MetricStatus {
  kOk,         // within the band
  kImproved,   // outside the band in the good direction
  kRegressed,  // outside the band in the bad direction → gate fails
  kInfo,       // informational row (negative tolerance): never fails
  kMissing,    // row in the baseline, absent from current → gate fails
  kNew,        // row measured but not pinned → refresh the baseline
};

struct MetricDelta {
  std::string row;     // benchmark name
  std::string metric;  // "ns_per_op" | "items_per_second" | "bytes_per_second"
  double baseline{0};
  double current{0};
  double change_pct{0};    // signed, relative to baseline
  double tolerance{0};     // band applied (absolute value)
  MetricStatus status{MetricStatus::kOk};
};

struct GateResult {
  std::vector<MetricDelta> deltas;  // baseline row order, then new rows
  int regressions{0};
  int missing{0};
  [[nodiscard]] bool ok() const { return regressions == 0 && missing == 0; }
};

/// Compare a measurement against the baseline. Direction-aware:
/// ns_per_op regresses upward, items/bytes_per_second regress downward.
/// Only metrics the BASELINE reports (non-zero) are compared, so adding a
/// counter to an emitter never breaks the gate until the baseline pins it.
GateResult check(const Baseline& baseline,
                 const std::vector<BenchRow>& current);

/// The metric-by-metric delta table CI prints: one row per compared
/// metric with baseline, current, signed change and verdict.
std::string format_delta_table(const GateResult& result);

}  // namespace mahimahi::gate
