#include "gate/bench_gate.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mahimahi::gate {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON reader — just enough for the bench/baseline schemas (no
// unicode escapes, no nesting beyond what the schemas use). Kept local so
// the gate has zero dependencies beyond the standard library.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type{Type::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object (duplicate keys rejected at parse time).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
      }
    }
    throw std::invalid_argument{"JSON error at line " + std::to_string(line) +
                                ": " + message};
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string{"expected '"} + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  void parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("malformed literal (expected '" + std::string{literal} + "')");
    }
    pos_ += literal.size();
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_[pos_] == 't') {
      parse_literal("true");
      value.boolean = true;
    } else {
      parse_literal("false");
    }
    return value;
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        const char escaped = text_[pos_++];
        switch (escaped) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            fail(std::string{"unsupported escape '\\"} + escaped + "'");
        }
      }
      value.string += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    ++pos_;  // closing quote
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail(std::string{"unexpected character '"} + text_[start] + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    try {
      std::size_t consumed = 0;
      const std::string token{text_.substr(start, pos_ - start)};
      value.number = std::stod(token, &consumed);
      if (consumed != token.size()) {
        throw std::invalid_argument{"trailing junk"};
      }
    } catch (const std::exception&) {
      fail("malformed number '" +
           std::string{text_.substr(start, pos_ - start)} + "'");
    }
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return value;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonValue key = parse_string();
      if (value.find(key.string) != nullptr) {
        fail("duplicate object key '" + key.string + "'");
      }
      expect(':');
      value.object.emplace_back(std::move(key.string), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return value;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_{0};
};

// ---------------------------------------------------------------------------

double number_field(const JsonValue& object, const std::string& key,
                    double fallback) {
  const JsonValue* field = object.find(key);
  if (field == nullptr) {
    return fallback;
  }
  if (field->type != JsonValue::Type::kNumber) {
    throw std::invalid_argument{"field '" + key + "' must be a number"};
  }
  return field->number;
}

std::vector<BenchRow> rows_from(const JsonValue& root,
                                const char* expected_schema) {
  if (root.type != JsonValue::Type::kObject) {
    throw std::invalid_argument{"top level must be a JSON object"};
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != expected_schema) {
    throw std::invalid_argument{std::string{"expected schema \""} +
                                expected_schema + "\""};
  }
  const JsonValue* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr || benchmarks->type != JsonValue::Type::kArray) {
    throw std::invalid_argument{"missing \"benchmarks\" array"};
  }
  std::vector<BenchRow> rows;
  rows.reserve(benchmarks->array.size());
  for (const JsonValue& entry : benchmarks->array) {
    if (entry.type != JsonValue::Type::kObject) {
      throw std::invalid_argument{"benchmark entries must be objects"};
    }
    const JsonValue* name = entry.find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        name->string.empty()) {
      throw std::invalid_argument{"benchmark entry without a \"name\""};
    }
    BenchRow row;
    row.name = name->string;
    row.ns_per_op = number_field(entry, "ns_per_op", 0);
    row.items_per_second = number_field(entry, "items_per_second", 0);
    row.bytes_per_second = number_field(entry, "bytes_per_second", 0);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string read_file_or_throw(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::invalid_argument{"cannot open " + path};
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

/// One metric comparison; `lower_is_better` encodes the direction.
void compare_metric(GateResult& result, const std::string& row_name,
                    const char* metric, double base, double current,
                    double tolerance, bool lower_is_better) {
  if (base == 0) {
    return;  // metric not pinned by the baseline
  }
  MetricDelta delta;
  delta.row = row_name;
  delta.metric = metric;
  delta.baseline = base;
  delta.current = current;
  delta.change_pct = 100.0 * (current - base) / base;
  delta.tolerance = std::fabs(tolerance);
  const double relative = (current - base) / base;
  const bool informational = tolerance < 0;
  const bool worse = lower_is_better ? relative > delta.tolerance
                                     : relative < -delta.tolerance;
  const bool better = lower_is_better ? relative < -delta.tolerance
                                      : relative > delta.tolerance;
  if (informational) {
    delta.status = MetricStatus::kInfo;
  } else if (worse) {
    delta.status = MetricStatus::kRegressed;
    ++result.regressions;
  } else if (better) {
    delta.status = MetricStatus::kImproved;
  } else {
    delta.status = MetricStatus::kOk;
  }
  result.deltas.push_back(std::move(delta));
}

const char* status_name(MetricStatus status) {
  switch (status) {
    case MetricStatus::kOk: return "ok";
    case MetricStatus::kImproved: return "IMPROVED";
    case MetricStatus::kRegressed: return "REGRESSED";
    case MetricStatus::kInfo: return "info";
    case MetricStatus::kMissing: return "MISSING";
    case MetricStatus::kNew: return "new";
  }
  return "?";
}

}  // namespace

std::vector<BenchRow> parse_bench_json(std::string_view text) {
  return rows_from(JsonParser{text}.parse(), "mahimahi-bench-v1");
}

std::vector<BenchRow> load_bench_file(const std::string& path) {
  try {
    return parse_bench_json(read_file_or_throw(path));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument{path + ": " + e.what()};
  }
}

Baseline parse_baseline_json(std::string_view text) {
  const JsonValue root = JsonParser{text}.parse();
  Baseline baseline;
  baseline.rows = rows_from(root, "mahimahi-bench-baseline-v1");
  baseline.default_tolerance =
      number_field(root, "default_tolerance", baseline.default_tolerance);
  if (baseline.default_tolerance <= 0) {
    throw std::invalid_argument{"default_tolerance must be positive"};
  }
  if (const JsonValue* tolerances = root.find("tolerances");
      tolerances != nullptr) {
    if (tolerances->type != JsonValue::Type::kObject) {
      throw std::invalid_argument{"\"tolerances\" must be an object"};
    }
    for (const auto& [name, value] : tolerances->object) {
      if (value.type != JsonValue::Type::kNumber) {
        throw std::invalid_argument{"tolerance for '" + name +
                                    "' must be a number"};
      }
      baseline.tolerances.emplace(name, value.number);
    }
  }
  return baseline;
}

Baseline load_baseline_file(const std::string& path) {
  try {
    return parse_baseline_json(read_file_or_throw(path));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument{path + ": " + e.what()};
  }
}

std::string make_baseline_json(const Baseline& baseline) {
  std::string out;
  out += "{\n  \"schema\": \"mahimahi-bench-baseline-v1\",\n";
  out += "  \"default_tolerance\": " + fmt(baseline.default_tolerance) + ",\n";
  out += "  \"tolerances\": {";
  bool first = true;
  for (const auto& [name, tolerance] : baseline.tolerances) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + fmt(tolerance);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"benchmarks\": [";
  for (std::size_t i = 0; i < baseline.rows.size(); ++i) {
    const BenchRow& row = baseline.rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + row.name +
           "\", \"ns_per_op\": " + fmt(row.ns_per_op, 1) +
           ", \"items_per_second\": " + fmt(row.items_per_second, 1) +
           ", \"bytes_per_second\": " + fmt(row.bytes_per_second, 1) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

GateResult check(const Baseline& baseline,
                 const std::vector<BenchRow>& current) {
  std::map<std::string, const BenchRow*> measured;
  for (const BenchRow& row : current) {
    measured.emplace(row.name, &row);
  }
  GateResult result;
  for (const BenchRow& pinned : baseline.rows) {
    const auto tolerance_it = baseline.tolerances.find(pinned.name);
    const double tolerance = tolerance_it != baseline.tolerances.end()
                                 ? tolerance_it->second
                                 : baseline.default_tolerance;
    const auto it = measured.find(pinned.name);
    if (it == measured.end()) {
      MetricDelta delta;
      delta.row = pinned.name;
      delta.metric = "-";
      delta.status = MetricStatus::kMissing;
      result.deltas.push_back(std::move(delta));
      ++result.missing;
      continue;
    }
    const BenchRow& now = *it->second;
    compare_metric(result, pinned.name, "ns_per_op", pinned.ns_per_op,
                   now.ns_per_op, tolerance, /*lower_is_better=*/true);
    compare_metric(result, pinned.name, "items_per_second",
                   pinned.items_per_second, now.items_per_second, tolerance,
                   /*lower_is_better=*/false);
    compare_metric(result, pinned.name, "bytes_per_second",
                   pinned.bytes_per_second, now.bytes_per_second, tolerance,
                   /*lower_is_better=*/false);
    measured.erase(it);
  }
  // Rows measured but not pinned: informational, prompting a refresh.
  for (const auto& [name, row] : measured) {
    MetricDelta delta;
    delta.row = name;
    delta.metric = "-";
    delta.current = row->ns_per_op;
    delta.status = MetricStatus::kNew;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

std::string format_delta_table(const GateResult& result) {
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"benchmark", "metric", "baseline", "current", "change",
                   "band", "verdict"});
  for (const MetricDelta& delta : result.deltas) {
    std::vector<std::string> row;
    row.push_back(delta.row);
    row.push_back(delta.metric);
    if (delta.status == MetricStatus::kMissing) {
      row.insert(row.end(), {"-", "(not measured)", "-", "-"});
    } else if (delta.status == MetricStatus::kNew) {
      row.insert(row.end(), {"(not pinned)", "-", "-", "-"});
    } else {
      row.push_back(fmt(delta.baseline, 1));
      row.push_back(fmt(delta.current, 1));
      row.push_back((delta.change_pct >= 0 ? "+" : "") +
                    fmt(delta.change_pct, 2) + "%");
      row.push_back("+-" + fmt(delta.tolerance * 100.0, 0) + "%");
    }
    row.push_back(status_name(delta.status));
    cells.push_back(std::move(row));
  }
  // Simple fixed-width rendering (own copy: util::render_table is bench
  // table-styled; the gate prints to CI logs where alignment is enough).
  std::vector<std::size_t> widths;
  for (const auto& row : cells) {
    widths.resize(std::max(widths.size(), row.size()), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (const auto& row : cells) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace mahimahi::gate
