// Arbitrary shell composition — the structural claim of the paper.
//
// Shows (a) nesting DelayShell / LinkShell / LossShell in any order, with
// the same additive semantics as nesting the real tools, and (b) the
// isolation property: two differently-configured sessions measure exactly
// the same numbers whether they run alone or side by side.

#include <cstdio>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  corpus::SiteSpec spec;
  spec.name = "compose";
  spec.seed = 3;
  spec.server_count = 10;
  spec.object_count = 60;
  const auto site = corpus::generate_site(spec);
  SessionConfig base;
  base.seed = 5;
  RecordSession recorder{site, corpus::LiveWebConfig{}, base};
  const auto store = recorder.record();

  // (a) Composition: each stack nests one more shell, like prefixing
  // another mm-* command.
  struct Stack {
    const char* command_line;
    std::vector<ShellSpec> shells;
  };
  const Stack stacks[] = {
      {"<browser>", {}},
      {"mm-delay 50 <browser>", {DelayShellSpec{50_ms}}},
      {"mm-delay 50 mm-link 12/12 <browser>",
       {DelayShellSpec{50_ms}, LinkShellSpec::constant_rate_mbps(12, 12)}},
      {"mm-delay 50 mm-link 12/12 mm-loss 2% <browser>",
       {DelayShellSpec{50_ms}, LinkShellSpec::constant_rate_mbps(12, 12),
        LossShellSpec{0.02, 0.02}}},
      {"mm-loss 2% mm-delay 50 mm-link 12/12 <browser> (reordered)",
       {LossShellSpec{0.02, 0.02}, DelayShellSpec{50_ms},
        LinkShellSpec::constant_rate_mbps(12, 12)}},
  };
  std::printf("%-62s %10s\n", "composition", "PLT");
  for (const auto& stack : stacks) {
    SessionConfig config = base;
    config.shells = stack.shells;
    ReplaySession session{store, config};
    const auto result = session.load_once(site.primary_url(), 0);
    std::printf("%-62s %7.0f ms\n", stack.command_line,
                to_ms(result.page_load_time));
  }

  // (b) Isolation: interleaved sessions reproduce their solo numbers
  // bit-for-bit.
  SessionConfig fast = base;
  fast.shells = {DelayShellSpec{10_ms}};
  SessionConfig slow = base;
  slow.shells = {DelayShellSpec{120_ms}};

  ReplaySession fast_solo{store, fast};
  ReplaySession slow_solo{store, slow};
  const auto fast_alone = fast_solo.load_once(site.primary_url(), 0);
  const auto slow_alone = slow_solo.load_once(site.primary_url(), 0);

  ReplaySession fast_mixed{store, fast};
  ReplaySession slow_mixed{store, slow};
  const auto fast_inter = fast_mixed.load_once(site.primary_url(), 0);
  const auto slow_inter = slow_mixed.load_once(site.primary_url(), 0);

  std::printf("\nisolation check (solo vs interleaved):\n");
  std::printf("  10 ms session: %.3f ms vs %.3f ms  %s\n",
              to_ms(fast_alone.page_load_time), to_ms(fast_inter.page_load_time),
              fast_alone.page_load_time == fast_inter.page_load_time
                  ? "IDENTICAL"
                  : "DIFFER (bug!)");
  std::printf("  120 ms session: %.3f ms vs %.3f ms  %s\n",
              to_ms(slow_alone.page_load_time), to_ms(slow_inter.page_load_time),
              slow_alone.page_load_time == slow_inter.page_load_time
                  ? "IDENTICAL"
                  : "DIFFER (bug!)");
  return 0;
}
