// "Evaluate how techniques that aim to make the Web faster perform over
// different network conditions" — the paper's opening use case.
//
// Here the technique under study is client parallelism: HTTP/1.1 with 2,
// 6, or 12 connections per origin, swept across access-link profiles. The
// same recorded page, the same emulated networks, fully reproducible —
// which is exactly what the toolkit is for.
//
// Set MAHI_PROTO_CC=cubic|vegas|bbr (any registered controller) to rerun
// the identical sweep under a different congestion controller.

#include <cstdio>
#include <cstdlib>

#include "cc/registry.hpp"
#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const auto cc_choice = cc::controller_from_env("MAHI_PROTO_CC");
  if (!cc_choice.has_value()) {
    return 2;
  }
  const std::string& cc_name = *cc_choice;

  const auto site = corpus::generate_site(corpus::nytimes_like_spec());
  SessionConfig base;
  base.seed = 21;
  base.congestion_control = cc_name;  // empty = Reno default
  std::printf("congestion control: %s\n",
              cc_name.empty() ? cc::kDefaultController : cc_name.c_str());
  RecordSession recorder{site, corpus::LiveWebConfig{}, base};
  const auto store = recorder.record();
  std::printf("page: %s (%zu objects, %zu origins)\n\n",
              site.primary_url().c_str(), site.objects.size(),
              site.hostnames.size());

  struct Network {
    const char* label;
    std::vector<ShellSpec> shells;
  };
  const Network networks[] = {
      {"DSL 4/1 Mbit/s, 40 ms",
       {DelayShellSpec{20_ms}, LinkShellSpec::constant_rate_mbps(1, 4)}},
      {"Cable 20/5 Mbit/s, 20 ms",
       {DelayShellSpec{10_ms}, LinkShellSpec::constant_rate_mbps(5, 20)}},
      {"Fiber 100/100 Mbit/s, 5 ms",
       {DelayShellSpec{2'500}, LinkShellSpec::constant_rate_mbps(100, 100)}},
  };

  std::printf("%-28s", "median PLT (5 loads)");
  for (const int conns : {2, 6, 12}) {
    std::printf("  %8d conns", conns);
  }
  std::printf("\n");

  for (const auto& network : networks) {
    std::printf("%-28s", network.label);
    for (const int conns : {2, 6, 12}) {
      SessionConfig config = base;
      config.shells = network.shells;
      config.browser.max_connections_per_origin = conns;
      ReplaySession session{store, config};
      const auto samples = session.measure(site.primary_url(), 5);
      std::printf("  %11.0f ms", samples.median());
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: extra parallelism helps most on fat, short pipes; on thin\n"
      "links the bottleneck is bandwidth and parallelism buys little.\n");
  return 0;
}
