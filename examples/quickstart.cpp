// Quickstart: the full mahimahi workflow in ~60 lines.
//
//   1. Generate a small multi-origin website and host it on the simulated
//      live web.
//   2. Record it through RecordShell's transparent proxy.
//   3. Save the recording to disk and load it back (the mm-webrecord
//      folder round trip).
//   4. Replay it under DelayShell + LinkShell and measure page load time.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"
#include "util/strings.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  // 1. A site with 8 origins and 40 objects.
  corpus::SiteSpec spec;
  spec.name = "quickstart";
  spec.seed = 7;
  spec.server_count = 8;
  spec.object_count = 40;
  const auto site = corpus::generate_site(spec);
  std::printf("site: %s — %zu objects, %zu origins, %s total\n",
              site.primary_url().c_str(), site.objects.size(),
              site.hostnames.size(),
              util::format_bytes(site.total_bytes()).c_str());

  // 2. Record it (browser -> proxy -> live web, all simulated).
  SessionConfig config;
  config.seed = 42;
  web::PageLoadResult live_load;
  RecordSession recorder{site, corpus::LiveWebConfig{}, config};
  const auto store = recorder.record(&live_load);
  std::printf("recorded %zu exchanges from %zu servers (live PLT %.0f ms)\n",
              store.size(), store.distinct_servers().size(),
              to_ms(live_load.page_load_time));

  // 3. Disk round trip, like a recorded-site folder.
  const auto dir = std::filesystem::temp_directory_path() / "quickstart_site";
  std::filesystem::remove_all(dir);
  store.save(dir);
  const auto loaded = record::RecordStore::load(dir);
  std::printf("saved + reloaded %zu exchanges from %s\n", loaded.size(),
              dir.c_str());

  // 4. Replay under emulated network conditions:
  //    mm-delay 40 mm-link 8mbit 8mbit <browser>
  config.shells = {DelayShellSpec{40_ms},
                   LinkShellSpec::constant_rate_mbps(8, 8)};
  ReplaySession replay{loaded, config};
  for (int i = 0; i < 3; ++i) {
    const auto result = replay.load_once(site.primary_url(), i);
    std::printf("replay load %d: PLT %.0f ms (%zu objects, %zu connections)\n",
                i, to_ms(result.page_load_time), result.objects_loaded,
                result.connections_opened);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
