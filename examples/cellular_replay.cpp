// Replaying a page over cellular-like, time-varying links — LinkShell's
// raison d'être. Demonstrates:
//   - synthesizing time-varying packet-delivery traces (and saving them in
//     mahimahi's trace format),
//   - replaying the same recorded page over several link qualities,
//   - queue-discipline effects (infinite vs droptail vs CoDel) on PLT.

#include <cstdio>
#include <filesystem>

#include "core/sessions.hpp"
#include "corpus/site_generator.hpp"
#include "trace/synthesis.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const auto site = corpus::generate_site(corpus::wikihow_like_spec());
  SessionConfig config;
  config.seed = 11;
  RecordSession recorder{site, corpus::LiveWebConfig{}, config};
  const auto store = recorder.record();
  std::printf("recorded %zu exchanges of %s\n\n", store.size(),
              site.primary_url().c_str());

  // Synthesize three downlink traces and save one to disk to show the
  // mm-link trace-file format round trip.
  util::Rng rng{99};
  const auto lte_like = std::make_shared<const trace::PacketTrace>(
      trace::cellular_like(rng, 20_s, 2e6, 24e6));
  const auto edge_like = std::make_shared<const trace::PacketTrace>(
      trace::cellular_like(rng, 20_s, 0.2e6, 1.5e6));
  const auto uplink = std::make_shared<const trace::PacketTrace>(
      trace::constant_rate(5e6, 2_s));

  const auto trace_path =
      std::filesystem::temp_directory_path() / "lte_downlink.trace";
  lte_like->save(trace_path);
  const auto reloaded = std::make_shared<const trace::PacketTrace>(
      trace::PacketTrace::load(trace_path));
  std::printf("LTE-like trace: %zu delivery opportunities, avg %.1f Mbit/s "
              "(saved to %s)\n\n",
              lte_like->opportunity_count(),
              lte_like->average_bits_per_second() / 1e6, trace_path.c_str());

  struct Scenario {
    const char* label;
    std::shared_ptr<const trace::PacketTrace> downlink;
    net::QueueSpec queue;
  };
  const Scenario scenarios[] = {
      {"LTE-like, infinite queue", reloaded, {.discipline = "infinite"}},
      {"LTE-like, droptail 60 pkts",
       reloaded,
       {.discipline = "droptail", .max_packets = 60}},
      {"LTE-like, CoDel", reloaded, {.discipline = "codel"}},
      {"EDGE-like, infinite queue", edge_like, {.discipline = "infinite"}},
  };

  std::printf("%-30s %12s %12s\n", "scenario", "median PLT", "p90 PLT");
  for (const auto& scenario : scenarios) {
    LinkShellSpec link;
    link.uplink = uplink;
    link.downlink = scenario.downlink;
    link.downlink_queue = scenario.queue;
    SessionConfig run = config;
    run.shells = {DelayShellSpec{30_ms}, link};
    ReplaySession session{store, run};
    const auto samples = session.measure(site.primary_url(), 9);
    std::printf("%-30s %9.0f ms %9.0f ms\n", scenario.label, samples.median(),
                samples.percentile(90));
  }
  std::filesystem::remove(trace_path);
  return 0;
}
