// "Beyond browsers" (paper §4): Mahimahi replays *any* application that
// speaks HTTP, not just page loads. Here the application is a REST API
// client — the kind of traffic a mobile-app emulator generates — doing a
// login -> list -> detail -> POST sequence. We record it once against the
// live service, then replay the session under two cellular profiles.

#include <cstdio>

#include "core/shells.hpp"
#include "net/dns.hpp"
#include "record/proxy.hpp"
#include "replay/origin_servers.hpp"
#include "trace/synthesis.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

namespace {

/// The "mobile app": four dependent API calls over one keep-alive
/// connection; reports total session time.
void run_api_session(net::Fabric& fabric, net::Address service,
                     const char* label) {
  auto client = std::make_shared<net::HttpClientConnection>(fabric, service);
  auto t_done = std::make_shared<Microseconds>(0);
  net::EventLoop& loop = fabric.loop();

  http::Request login;
  login.method = http::Method::kPost;
  login.target = "/api/login";
  login.headers.add("Host", "api.service.test");
  login.body = R"({"user":"demo","pass":"demo"})";

  client->fetch(std::move(login), [client, &loop, t_done](http::Response r) {
    std::printf("    POST /api/login       -> %d (%zu B)\n", r.status,
                r.body.size());
    client->fetch(http::make_get("http://api.service.test/api/items"),
                  [client, &loop, t_done](http::Response r2) {
                    std::printf("    GET  /api/items        -> %d (%zu B)\n",
                                r2.status, r2.body.size());
                    client->fetch(
                        http::make_get("http://api.service.test/api/items/17"),
                        [client, &loop, t_done](http::Response r3) {
                          std::printf(
                              "    GET  /api/items/17     -> %d (%zu B)\n",
                              r3.status, r3.body.size());
                          http::Request update;
                          update.method = http::Method::kPost;
                          update.target = "/api/items/17/read";
                          update.headers.add("Host", "api.service.test");
                          update.body = R"({"read":true})";
                          client->fetch(std::move(update),
                                        [&loop, t_done](http::Response r4) {
                                          std::printf(
                                              "    POST /api/items/17/read"
                                              " -> %d\n",
                                              r4.status);
                                          *t_done = loop.now();
                                        });
                        });
                  });
  });
  const Microseconds start = loop.now();
  loop.run();
  std::printf("  %s: session time %.0f ms\n\n", label,
              to_ms(*t_done - start));
}

}  // namespace

int main() {
  const net::Address service_addr{net::Ipv4{203, 0, 113, 10}, 80};

  // --- record: app -> RecordShell proxy -> live API service ------------
  net::EventLoop record_loop;
  net::Fabric inner{record_loop};
  net::Fabric outer{record_loop};
  record::RecordStore store;
  record::RecordingProxy proxy{inner, outer, store};

  net::HttpServer service{
      outer, service_addr, [](const http::Request& request) {
        if (request.target == "/api/login") {
          return http::make_ok(R"({"token":"abc123"})", "application/json");
        }
        if (request.target == "/api/items") {
          std::string items = "{\"items\":[";
          for (int i = 0; i < 40; ++i) {
            if (i > 0) {
              items += ',';
            }
            items += std::to_string(i);
          }
          return http::make_ok(items + "]}", "application/json");
        }
        if (request.target == "/api/items/17") {
          return http::make_ok(std::string(2000, 'x'), "application/json");
        }
        if (request.target == "/api/items/17/read") {
          return http::make_ok(R"({"ok":true})", "application/json");
        }
        return http::make_not_found(request.target);
      },
      /*processing_delay=*/3'000};

  std::printf("recording the API session through RecordShell...\n");
  run_api_session(inner, service_addr, "record (live service)");
  std::printf("recorded %zu exchanges\n\n", store.size());

  // --- replay under emulated cellular networks --------------------------
  struct Profile {
    const char* label;
    double mbps;
    Microseconds one_way;
  };
  for (const Profile profile : {Profile{"LTE-ish (12 Mbit/s, 40 ms RTT)", 12, 20_ms},
                                Profile{"3G-ish (1 Mbit/s, 150 ms RTT)", 1, 75_ms}}) {
    net::EventLoop loop;
    net::Fabric fabric{loop};
    replay::OriginServerSet servers{fabric, store};
    HostProfile host;
    util::Rng rng{1};
    std::vector<ShellSpec> shells = {
        DelayShellSpec{profile.one_way},
        LinkShellSpec::constant_rate_mbps(profile.mbps, profile.mbps)};
    apply_shells(fabric, shells, host, rng);
    std::printf("replaying under %s:\n", profile.label);
    run_api_session(fabric, service_addr, profile.label);
  }
  std::printf("Same bytes, same sequence, any network — no browser involved.\n");
  return 0;
}
