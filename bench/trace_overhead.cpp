// Trace overhead — the cost of the observability layer (src/obs/), both
// off and on:
//
//   untraced   config.tracer == nullptr: every instrumentation site is a
//              single pointer test (the production default)
//   traced     one obs::Tracer per load recording link/tcp/dns/browser
//              events plus the per-object waterfall, then exported to all
//              three formats (Chrome trace JSON, HAR, CSV)
//
// Claims under test (exit 1 when violated):
//   - tracing is an observer, not a participant: the traced loads report
//     bit-identical PLTs to the untraced ones (no loop events, no RNG
//     draws, no timing perturbation from recording),
//   - the trace is non-trivial (events from link, tcp, dns and browser
//     layers all present).
//
// Output: BENCH_obs.json (override with MAHI_OBS_JSON). Wall-clock rows
// are informational (negative tolerance in the baseline); event/object
// counts and export byte sizes are deterministic and pinned at the
// default 0.05 band.
//
// Scale knobs: MAHI_OBS_LOADS (loads per scenario, default 6).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "corpus/site_generator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "web/browser.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;

namespace {

CorpusEntry recorded_page() {
  corpus::SiteSpec spec;
  spec.name = "obs-page";
  spec.seed = 29;
  spec.server_count = 3;
  spec.object_count = 12;
  spec.size_scale = 0.25;
  CorpusEntry entry{corpus::generate_site(spec), record::RecordStore{}};
  core::SessionConfig config;
  config.seed = 31;
  core::RecordSession session{entry.site, corpus::LiveWebConfig{}, config};
  entry.store = session.record();
  return entry;
}

core::SessionConfig session_config() {
  core::SessionConfig config;
  config.seed = 41;
  // Delay + a rate-limited link, so the trace carries link-layer
  // enqueue/dequeue events alongside tcp/dns/browser ones.
  config.shells = {core::DelayShellSpec{15'000},
                   core::LinkShellSpec::constant_rate_mbps(12.0, 12.0)};
  return config;
}

}  // namespace

int main() {
  const int loads = env_int("MAHI_OBS_LOADS", 6);
  const CorpusEntry page = recorded_page();
  const std::string url = page.site.primary_url();

  // Loads run sequentially on purpose: the wall-clock comparison should
  // measure the instrumentation, not the pool scheduler.
  std::vector<double> untraced_plt_us;
  const WallTimer untraced_timer;
  {
    const core::ReplaySession session{page.store, session_config()};
    for (int i = 0; i < loads; ++i) {
      untraced_plt_us.push_back(
          static_cast<double>(session.load_once(url, i).page_load_time));
    }
  }
  const double untraced_s = untraced_timer.elapsed_seconds();

  std::vector<double> traced_plt_us;
  std::vector<obs::LoadTrace> traces;
  const WallTimer traced_timer;
  for (int i = 0; i < loads; ++i) {
    // One tracer per load, exactly as the experiment engine arranges it.
    obs::Tracer tracer;
    core::SessionConfig config = session_config();
    config.tracer = &tracer;
    const core::ReplaySession session{page.store, config};
    traced_plt_us.push_back(
        static_cast<double>(session.load_once(url, i).page_load_time));
    traces.push_back(obs::LoadTrace{i, tracer.take()});
  }
  const double traced_s = traced_timer.elapsed_seconds();

  bool ok = true;
  if (traced_plt_us != untraced_plt_us) {
    std::fprintf(stderr,
                 "FAIL: tracing perturbed the simulation (PLTs differ)\n");
    ok = false;
  }

  std::size_t events = 0;
  std::size_t objects = 0;
  bool saw_link = false;
  bool saw_tcp = false;
  bool saw_dns = false;
  bool saw_browser = false;
  for (const obs::LoadTrace& load : traces) {
    events += load.buffer.events.size();
    objects += load.buffer.objects.size();
    for (const obs::TraceEvent& e : load.buffer.events) {
      saw_link = saw_link || e.layer == obs::Layer::kLink;
      saw_tcp = saw_tcp || e.layer == obs::Layer::kTcp;
      saw_dns = saw_dns || e.layer == obs::Layer::kDns;
      saw_browser = saw_browser || e.layer == obs::Layer::kBrowser;
    }
  }
  if (!saw_link || !saw_tcp || !saw_dns || !saw_browser) {
    std::fprintf(stderr,
                 "FAIL: trace missing a layer (link=%d tcp=%d dns=%d "
                 "browser=%d)\n",
                 saw_link, saw_tcp, saw_dns, saw_browser);
    ok = false;
  }

  const obs::TraceMeta meta{"bench-obs", "obs-page", 0, 41};
  const std::string chrome = obs::to_chrome_trace(meta, traces);
  const std::string har = obs::to_har(meta, traces);
  const std::string csv = obs::to_csv(meta, traces);

  // Derived metrics are a pure function of the buffers; the catalog size
  // and serialized bytes are pinned alongside the export sizes.
  const obs::MetricsSnapshot metrics = obs::derive_cell_metrics(traces);
  const std::string metrics_json = metrics.to_json();
  if (obs::derive_cell_metrics(traces).to_json() != metrics_json) {
    std::fprintf(stderr, "FAIL: metric derivation is not deterministic\n");
    ok = false;
  }

  const double per_load_ns_untraced = untraced_s * 1e9 / loads;
  const double per_load_ns_traced = traced_s * 1e9 / loads;
  print_rule();
  std::printf("trace overhead: %d load(s), %zu events, %zu objects\n", loads,
              events, objects);
  std::printf("  untraced  %10.1f ms/load\n", per_load_ns_untraced / 1e6);
  std::printf("  traced    %10.1f ms/load  (%+.1f%%)\n",
              per_load_ns_traced / 1e6,
              untraced_s > 0
                  ? (per_load_ns_traced / per_load_ns_untraced - 1.0) * 100.0
                  : 0.0);
  std::printf("  exports   chrome %zu B, har %zu B, csv %zu B\n",
              chrome.size(), har.size(), csv.size());
  std::printf("  metrics   %zu series, %zu B json\n", metrics.size(),
              metrics_json.size());
  if (!ok) {
    return 1;
  }

  PerfReport report;
  // Wall-clock rows (informational in the baseline — shared CI runners).
  report.add({"obs_untraced_ns_per_load", per_load_ns_untraced, 0, 0});
  report.add({"obs_traced_ns_per_load", per_load_ns_traced, 0, 0});
  // Deterministic rows: pure functions of (page seed, session seed).
  report.add({"obs_trace_events", static_cast<double>(events), 0, 0});
  report.add({"obs_trace_objects", static_cast<double>(objects), 0, 0});
  report.add({"obs_chrome_bytes", static_cast<double>(chrome.size()), 0, 0});
  report.add({"obs_har_bytes", static_cast<double>(har.size()), 0, 0});
  report.add({"obs_csv_bytes", static_cast<double>(csv.size()), 0, 0});
  report.add({"obs_metrics_count", static_cast<double>(metrics.size()), 0, 0});
  report.add({"obs_metrics_json_bytes",
              static_cast<double>(metrics_json.size()), 0, 0});
  const char* out = std::getenv("MAHI_OBS_JSON");
  report.write(out != nullptr ? out : "BENCH_obs.json");
  return 0;
}
