#pragma once

// Shared scaffolding for the paper-reproduction bench binaries.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.hpp"
#include "core/sessions.hpp"
#include "corpus/alexa.hpp"
#include "util/atomic_file.hpp"
#include "util/statistics.hpp"

namespace mahimahi::bench {

/// Integer knob from the environment (bench scale controls).
inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// The process-wide measurement pool every bench driver fans out on.
/// Thread count: MAHI_THREADS env, else hardware concurrency. Results are
/// merged in load-index order, so bench output does not depend on it.
inline core::ParallelRunner& shared_runner() {
  return core::ParallelRunner::shared();
}

/// Host wall-clock stopwatch for speedup reporting (NOT simulated time).
class WallTimer {
 public:
  WallTimer() : start_{std::chrono::steady_clock::now()} {}
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One recorded corpus site ready for replay.
struct CorpusEntry {
  corpus::GeneratedSite site;
  record::RecordStore store;
};

/// Generate and record `count` Alexa-calibrated sites (the recording runs
/// the real RecordShell pipeline per site). Deterministic given `seed`:
/// the specs are drawn sequentially from one stream, then each site's
/// expensive generate+record runs as an independent task — its seed is
/// fixed before dispatch, so the corpus is identical at any thread count.
inline std::vector<CorpusEntry> build_recorded_corpus(int count,
                                                      std::uint64_t seed) {
  util::Rng rng{seed};
  util::Rng spec_rng = rng.fork("specs");
  const auto server_counts = corpus::alexa_server_counts(spec_rng, count);
  std::vector<corpus::SiteSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    specs.push_back(corpus::alexa_site_spec(
        i, server_counts[static_cast<std::size_t>(i)], spec_rng));
  }

  std::atomic<int> recorded{0};
  return shared_runner().map(count, [&](int i) {
    CorpusEntry entry{corpus::generate_site(specs[static_cast<std::size_t>(i)]),
                      record::RecordStore{}};
    core::SessionConfig config;
    config.seed = seed + static_cast<std::uint64_t>(i) * 101;
    core::RecordSession session{entry.site, corpus::LiveWebConfig{}, config};
    entry.store = session.record();
    const int done = recorded.fetch_add(1, std::memory_order_relaxed) + 1;
    if (done % 50 == 0) {
      std::fprintf(stderr, "  [corpus] recorded %d/%d sites\n", done, count);
    }
    return entry;
  });
}

/// Print a CDF as (value, cumulative fraction) rows at the given
/// percentile grid — the series behind the paper's CDF figures.
inline void print_cdf(const char* label, const util::Samples& samples) {
  std::printf("# CDF %s (n=%zu)\n", label, samples.size());
  for (const double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("%-28s p%-4.0f %10.1f ms\n", label, p, samples.percentile(p));
  }
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------------\n");
}

/// Machine-readable perf log: one row per benchmark (name → ns/op plus
/// throughput counters), serialized as JSON so the repo's perf trajectory
/// is diffable across PRs. Framework-agnostic — any bench driver can feed
/// rows; micro_substrate wires google-benchmark results through it and
/// writes BENCH_substrate.json (CI uploads the file as an artifact).
class PerfReport {
 public:
  struct Row {
    std::string name;
    double ns_per_op{0};
    double items_per_second{0};
    double bytes_per_second{0};
  };

  void add(Row row) { rows_.push_back(std::move(row)); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// Write `{"schema": ..., "benchmarks": [...]}` (insertion order kept),
  /// atomically — a crash mid-write never leaves CI a truncated baseline.
  /// Returns false (after warning on stderr) if the file cannot be written.
  bool write(const std::string& path) const {
    std::ostringstream out;
    out.precision(12);
    out << "{\n  \"schema\": \"mahimahi-bench-v1\",\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
          << json_escape(row.name) << "\", \"ns_per_op\": " << row.ns_per_op
          << ", \"items_per_second\": " << row.items_per_second
          << ", \"bytes_per_second\": " << row.bytes_per_second << "}";
    }
    out << "\n  ]\n}\n";
    return util::atomic_write_file(path, out.str());
  }

 private:
  static std::string json_escape(const std::string& text) {
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        escaped += '\\';
      }
      escaped += c;
    }
    return escaped;
  }

  std::vector<Row> rows_;
};

}  // namespace mahimahi::bench
