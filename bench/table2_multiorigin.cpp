// Table 2 — page load time inflation when the multi-origin nature of
// websites is NOT preserved (single-server replay), across nine network
// configurations.
//
// Paper (50th, 95th percentile difference):
//              30 ms           120 ms         300 ms
//   1 Mbit/s   1.6%,  27.6%    1.7%, 10.8%    2.1%,  9.7%
//  14 Mbit/s  19.3%, 127.3%    6.2%, 42.4%    3.3%, 20.3%
//  25 Mbit/s  21.4%, 111.6%    6.3%, 51.8%    2.6%, 15.0%
//
// For every corpus site and every cell, this harness measures PLT under
// multi-origin and single-server replay and reports the distribution of
// the per-site percentage difference.
//
// Scale knob: MAHI_T2_SITES (default 40).

#include "bench/common.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const int site_count = env_int("MAHI_T2_SITES", 40);
  std::printf(
      "=== Table 2: PLT difference without multi-origin preservation "
      "(%d sites) ===\n",
      site_count);
  const auto corpus = build_recorded_corpus(site_count, /*seed=*/0x7AB2E);

  const double rates_mbps[] = {1, 14, 25};
  const Microseconds rtts[] = {30_ms, 120_ms, 300_ms};
  const double paper[3][3][2] = {
      {{1.6, 27.6}, {1.7, 10.8}, {2.1, 9.7}},
      {{19.3, 127.3}, {6.2, 42.4}, {3.3, 20.3}},
      {{21.4, 111.6}, {6.3, 51.8}, {2.6, 15.0}},
  };

  std::vector<std::vector<std::string>> table;
  table.push_back(
      {"link", "RTT", "p50 diff", "p95 diff", "paper p50", "paper p95"});

  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t d = 0; d < 3; ++d) {
      // Paired multi/single loads per site, one task per site.
      const util::Samples diffs = shared_runner().map_samples(
          static_cast<int>(corpus.size()), [&](int idx) {
            const auto i = static_cast<std::size_t>(idx);
            SessionConfig config;
            config.seed = 0x7AB2E + i;
            config.shells = {DelayShellSpec{rtts[d] / 2},
                             LinkShellSpec::constant_rate_mbps(rates_mbps[r],
                                                               rates_mbps[r])};
            ReplaySession multi{corpus[i].store, config};
            ReplaySession::Options single_options;
            single_options.single_server = true;
            ReplaySession single{corpus[i].store, config, single_options};

            const auto url = corpus[i].site.primary_url();
            const double m = to_ms(multi.load_once(url, 0).page_load_time);
            const double s = to_ms(single.load_once(url, 0).page_load_time);
            return 100.0 * (s - m) / m;
          });
      char link[24], rtt[24], p50[16], p95[16], pp50[16], pp95[16];
      std::snprintf(link, sizeof link, "%.0f Mbit/s", rates_mbps[r]);
      std::snprintf(rtt, sizeof rtt, "%lld ms", (long long)(rtts[d] / 1000));
      std::snprintf(p50, sizeof p50, "%+.1f%%", diffs.median());
      std::snprintf(p95, sizeof p95, "%+.1f%%", diffs.percentile(95));
      std::snprintf(pp50, sizeof pp50, "%.1f%%", paper[r][d][0]);
      std::snprintf(pp95, sizeof pp95, "%.1f%%", paper[r][d][1]);
      table.push_back({link, rtt, p50, p95, pp50, pp95});
      std::fprintf(stderr, "  [table2] finished %s / %s\n", link, rtt);
    }
  }
  print_rule();
  std::fputs(util::render_table(table).c_str(), stdout);
  std::printf(
      "\nShape checks: differences are largest at high bandwidth + low RTT,\n"
      "shrink as RTT grows, and nearly vanish at 1 Mbit/s (bandwidth-bound).\n");
  return 0;
}
