// Figure 2 — "DelayShell's and LinkShell's low overhead".
//
// Paper: loading the 500-site corpus, DelayShell with 0 ms adds 0.15% to
// the median page load time over ReplayShell alone; LinkShell with a
// 1000 Mbit/s trace adds 1.5%.
//
// This harness records the corpus, loads every site under the three shell
// stacks, prints the three PLT CDFs (the figure's series), and the median
// overheads (the figure's claim).
//
// Scale knob: MAHI_FIG2_SITES (default 120; the paper used 500).

#include "bench/common.hpp"
#include "trace/synthesis.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const int site_count = env_int("MAHI_FIG2_SITES", 120);
  std::printf("=== Figure 2: DelayShell / LinkShell overhead (%d sites) ===\n",
              site_count);
  const auto corpus = build_recorded_corpus(site_count, /*seed=*/0xF162);

  struct Stack {
    const char* label;
    std::vector<ShellSpec> shells;
  };
  const Stack stacks[] = {
      {"ReplayShell", {}},
      {"DelayShell 0 ms", {DelayShellSpec{0}}},
      {"LinkShell 1000 Mbit/s", {LinkShellSpec::constant_rate_mbps(1000, 1000)}},
  };

  util::Samples plt[3];
  for (std::size_t s = 0; s < 3; ++s) {
    // One isolated load per site, fanned across the pool; samples merge
    // in site order, so the CDFs match the sequential run exactly.
    plt[s] = shared_runner().map_samples(
        static_cast<int>(corpus.size()), [&](int i) {
          const auto& entry = corpus[static_cast<std::size_t>(i)];
          SessionConfig config;
          // Same seed across stacks: paired loads.
          config.seed = 0xF162 + static_cast<std::uint64_t>(i);
          config.shells = stacks[s].shells;
          ReplaySession session{entry.store, config};
          const auto result = session.load_once(entry.site.primary_url(), 0);
          return to_ms(result.page_load_time);
        });
    std::fprintf(stderr, "  [fig2] finished stack '%s'\n", stacks[s].label);
  }

  print_rule();
  for (std::size_t s = 0; s < 3; ++s) {
    print_cdf(stacks[s].label, plt[s]);
  }
  print_rule();
  const double base = plt[0].median();
  std::printf("median PLT, ReplayShell alone:        %9.1f ms\n", base);
  std::printf("median PLT, + DelayShell 0 ms:        %9.1f ms  (+%.2f%%; paper: +0.15%%)\n",
              plt[1].median(), util::percent_difference(base, plt[1].median()));
  std::printf("median PLT, + LinkShell 1000 Mbit/s:  %9.1f ms  (+%.2f%%; paper: +1.5%%)\n",
              plt[2].median(), util::percent_difference(base, plt[2].median()));
  return 0;
}
