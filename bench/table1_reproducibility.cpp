// Table 1 — reproducibility of page load times across host machines.
//
// Paper: loading www.cnbc.com and www.wikihow.com 100 times each on two
// machines gives means within 0.5% across machines and standard
// deviations within 1.6% of the mean:
//          Machine 1        Machine 2
//   CNBC    7584 +/- 120 ms   7612 +/- 111 ms
//   wikiHow 4804 +/-  37 ms   4800 +/-  37 ms
//
// Protocol here: each page is recorded once, then replayed under the
// toolkit's reference web-access emulation (DelayShell 25 ms one-way +
// LinkShell 6 Mbit/s — a 2014 cable profile; the paper does not state its
// link, see EXPERIMENTS.md). "Machines" are two calibrated HostProfiles.
//
// Scale knob: MAHI_T1_LOADS (default 100, as in the paper).

#include "bench/common.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const int loads = env_int("MAHI_T1_LOADS", 100);
  std::printf("=== Table 1: reproducibility across machines (%d loads) ===\n",
              loads);

  struct Page {
    const char* label;
    corpus::SiteSpec spec;
    double paper_mean_m1, paper_sd_m1, paper_mean_m2, paper_sd_m2;
  };
  const Page pages[] = {
      {"CNBC", corpus::cnbc_like_spec(), 7584, 120, 7612, 111},
      {"wikiHow", corpus::wikihow_like_spec(), 4804, 37, 4800, 37},
  };
  const HostProfile machines[] = {HostProfile::machine1(),
                                  HostProfile::machine2()};

  std::vector<std::vector<std::string>> table;
  table.push_back({"page", "machine", "mean +/- sd (ms)", "sd/mean", "paper"});

  // The first page's site/store are kept for the scaling cross-check
  // below, to avoid re-running the recording pipeline.
  corpus::GeneratedSite first_site;
  record::RecordStore first_store;

  for (const auto& page : pages) {
    const auto site = corpus::generate_site(page.spec);
    SessionConfig record_config;
    record_config.seed = 0x7AB1E1;
    RecordSession recorder{site, corpus::LiveWebConfig{}, record_config};
    const auto store = recorder.record();
    if (&page == &pages[0]) {
      first_site = site;
      first_store = store;
    }

    double means[2] = {0, 0};
    for (int m = 0; m < 2; ++m) {
      SessionConfig config;
      config.seed = 0x7AB1E1;
      config.host = machines[m];
      config.shells = {DelayShellSpec{25_ms},
                       LinkShellSpec::constant_rate_mbps(6, 6)};
      ReplaySession session{store, config};
      const auto samples =
          session.measure(site.primary_url(), loads, shared_runner());
      means[m] = samples.mean();

      char cell[64];
      std::snprintf(cell, sizeof cell, "%.0f +/- %.0f", samples.mean(),
                    samples.stddev());
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2f%%",
                    100.0 * samples.stddev() / samples.mean());
      char paper[64];
      std::snprintf(paper, sizeof paper, "%.0f +/- %.0f",
                    m == 0 ? page.paper_mean_m1 : page.paper_mean_m2,
                    m == 0 ? page.paper_sd_m1 : page.paper_sd_m2);
      table.push_back({page.label, machines[m].name, cell, ratio, paper});
    }
    std::printf("%s: cross-machine mean difference %.2f%% (paper: <0.5%%)\n",
                page.label,
                100.0 * std::abs(means[0] - means[1]) / means[0]);
  }
  print_rule();
  std::fputs(util::render_table(table).c_str(), stdout);

  // --- wall-clock scaling + determinism cross-check ----------------------
  // Re-run one cell (CNBC on machine 1) at 1 and 4 threads: the samples
  // must be byte-identical (the whole point of Table 1), and the pool
  // should turn shared-nothing isolation into real speedup.
  {
    SessionConfig config;
    config.seed = 0x7AB1E1;
    config.host = machines[0];
    config.shells = {DelayShellSpec{25_ms},
                     LinkShellSpec::constant_rate_mbps(6, 6)};
    ReplaySession session{first_store, config};

    ParallelRunner one_thread{1};
    WallTimer sequential_timer;
    const auto sequential =
        session.measure(first_site.primary_url(), loads, one_thread);
    const double sequential_s = sequential_timer.elapsed_seconds();

    ParallelRunner four_threads{4};
    WallTimer parallel_timer;
    const auto parallel =
        session.measure(first_site.primary_url(), loads, four_threads);
    const double parallel_s = parallel_timer.elapsed_seconds();

    print_rule();
    std::printf("determinism: samples at 1 thread == samples at 4 threads: %s\n",
                sequential.values() == parallel.values() ? "yes" : "NO");
    std::printf("wall clock, 1 thread:   %7.2f s\n", sequential_s);
    std::printf("wall clock, 4 threads:  %7.2f s  (%.2fx speedup, %u-core host)\n",
                parallel_s, sequential_s / parallel_s,
                std::thread::hardware_concurrency());
    if (sequential.values() != parallel.values()) {
      std::fprintf(stderr, "FATAL: parallel run diverged from sequential\n");
      return 1;
    }
  }
  return 0;
}
