// Fleet throughput — how many independent replay sessions the runtime
// sustains when thousands of emulated users are multiplexed onto sharded
// event loops (src/fleet/). Two measurements:
//
//   - capacity (isolated fleets): MAHI_FLEET_SESSIONS full page loads,
//     each in its own connection namespace, sharded across the pool —
//     sessions/sec and page-loads/sec are the host-dependent throughput
//     figures; p50/p95 PLT and peak concurrency are deterministic.
//   - degradation (shared-world ladder): the same page loaded by fleets
//     of 1, 4 and 16 users contending in ONE namespace — p50 PLT rises
//     with fleet size (the offered-load story the experiment engine's
//     fleet axis grids over).
//
// Determinism contract under test: every session's seed and arrival time
// derive from (fleet_seed, global session index) alone, so the merged
// per-session report is byte-identical for ANY shard assignment and ANY
// thread count. --selfcheck re-runs the whole fleet at a different shard
// count on a different-size pool and byte-compares the serialized
// per-session reports; exit 1 on divergence.
//
// Scale knobs: MAHI_FLEET_SESSIONS (default 1000 — CI runs the default),
//              MAHI_FLEET_SHARDS (default: pool thread count),
//              MAHI_FLEET_STAGGER_US (arrival spacing, default 100 us —
//              tight enough that the whole default fleet is concurrently
//              in flight at peak).
// Output:      BENCH_fleet.json (override with MAHI_FLEET_JSON).

#include <cstring>
#include <string>

#include "bench/common.hpp"
#include "corpus/site_generator.hpp"
#include "fleet/fleet.hpp"
#include "util/assert.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;

namespace {

/// A small multi-origin page (3 servers, 8 objects) so the bench measures
/// the runtime's session-multiplexing overhead, not one giant page.
CorpusEntry recorded_page() {
  corpus::SiteSpec spec;
  spec.name = "fleet-page";
  spec.seed = 7;
  spec.server_count = 3;
  spec.object_count = 8;
  spec.size_scale = 0.25;
  CorpusEntry entry{corpus::generate_site(spec), record::RecordStore{}};
  core::SessionConfig config;
  config.seed = 11;
  core::RecordSession session{entry.site, corpus::LiveWebConfig{}, config};
  entry.store = session.record();
  return entry;
}

core::SessionConfig session_template() {
  core::SessionConfig config;
  // A 10 ms one-way delay shell keeps the transport honest (handshakes
  // and slow start actually pace the load) while staying cheap enough to
  // run a thousand sessions in the CI smoke tier.
  config.shells = {core::DelayShellSpec{10'000}};
  return config;
}

fleet::FleetSpec fleet_spec(int sessions, int shards, Microseconds stagger) {
  fleet::FleetSpec spec;
  spec.sessions = sessions;
  spec.shards = shards;
  spec.stagger = stagger;
  spec.seed = 1;
  spec.session = session_template();
  return spec;
}

/// Shared-world fleet of `sessions` users on one loop; returns the p50
/// PLT (ms) across its sessions. Deterministic.
double shared_world_p50(const CorpusEntry& page, int sessions) {
  fleet::MuxConfig config;
  config.fleet_seed = 21;
  config.stagger = 10'000;
  config.session = session_template();
  config.shared_world = true;
  fleet::SessionMux mux{page.store, page.site.primary_url(), config};
  for (int i = 0; i < sessions; ++i) {
    mux.add_session(i);
  }
  util::Samples plts;
  for (const fleet::SessionOutcome& outcome : mux.run()) {
    MAHI_ASSERT_MSG(outcome.success != 0, "shared-world load failed");
    plts.add(outcome.plt_ms);
  }
  return plts.percentile(50.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else {
      std::fprintf(stderr, "usage: %s [--selfcheck]\n", argv[0]);
      return 2;
    }
  }

  const int sessions = env_int("MAHI_FLEET_SESSIONS", 1000);
  const int shards = env_int("MAHI_FLEET_SHARDS", 0);
  const Microseconds stagger =
      static_cast<Microseconds>(env_int("MAHI_FLEET_STAGGER_US", 100));

  std::printf("=== fleet throughput: %d sessions, stagger %lld us ===\n",
              sessions, static_cast<long long>(stagger));
  const CorpusEntry page = recorded_page();

  const fleet::FleetResult result = fleet::run_fleet(
      page.store, page.site.primary_url(), fleet_spec(sessions, shards, stagger));
  std::printf(
      "fleet: %d sessions over %d shard(s): %.2f s wall, %.1f sessions/s, "
      "%.1f page-loads/s\n",
      sessions, result.shards, result.wall_seconds,
      result.sessions_per_second, result.page_loads_per_second);
  std::printf("       plt p50 %.1f ms, p95 %.1f ms, peak concurrent %zu, "
              "failed %zu\n",
              result.plt_p50_ms, result.plt_p95_ms, result.peak_concurrent,
              result.failed);
  if (result.failed != 0) {
    std::fprintf(stderr, "FAIL: %zu session(s) failed their page load\n",
                 result.failed);
    return 1;
  }

  // --- shared-world degradation ladder (deterministic) ------------------
  print_rule();
  double ladder_p50[3] = {0, 0, 0};
  const int ladder_sizes[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    ladder_p50[i] = shared_world_p50(page, ladder_sizes[i]);
    std::printf("shared world, %2d user(s): plt p50 %8.1f ms\n",
                ladder_sizes[i], ladder_p50[i]);
  }
  if (!(ladder_p50[2] > ladder_p50[0])) {
    // 16 users contending for 3 origin servers and one shell stack must
    // be slower than a lone user — if not, sessions are not actually
    // sharing the world and the offered-load axis measures nothing.
    std::fprintf(stderr, "FAIL: no contention degradation (p50 %0.1f ms at "
                 "16 users vs %0.1f ms solo)\n",
                 ladder_p50[2], ladder_p50[0]);
    return 1;
  }

  PerfReport report;
  // Wall-clock rows: host-dependent (baselines mark them informational).
  report.add({"fleet_sessions_per_sec", 0, result.sessions_per_second, 0});
  report.add({"fleet_page_loads_per_sec", 0, result.page_loads_per_second, 0});
  // Deterministic rows: pure functions of (seed, page, session template).
  report.add({"fleet_plt_p50_ms", result.plt_p50_ms * 1e6, 0, 0});
  report.add({"fleet_plt_p95_ms", result.plt_p95_ms * 1e6, 0, 0});
  report.add({"fleet_peak_concurrent",
              static_cast<double>(result.peak_concurrent), 0, 0});
  for (int i = 0; i < 3; ++i) {
    report.add({"fleet_shared_plt_p50_ms/" + std::to_string(ladder_sizes[i]),
                ladder_p50[i] * 1e6, 0, 0});
  }
  const char* out = std::getenv("MAHI_FLEET_JSON");
  report.write(out != nullptr ? out : "BENCH_fleet.json");

  if (selfcheck) {
    // Same fleet, deliberately different shard count AND thread count:
    // the per-session report must not move by a single byte.
    print_rule();
    const std::string reference = fleet::serialize_outcomes(result.sessions);
    const int other_shards = result.shards == 1 ? 3 : 1;
    core::ParallelRunner other_pool{
        core::ParallelRunner::shared().thread_count() == 1 ? 3 : 1};
    const fleet::FleetResult rerun =
        fleet::run_fleet(page.store, page.site.primary_url(),
                         fleet_spec(sessions, other_shards, stagger),
                         &other_pool);
    const bool identical =
        fleet::serialize_outcomes(rerun.sessions) == reference;
    std::printf("selfcheck: per-session reports byte-identical at "
                "%d vs %d shard(s), %d vs %d thread(s): %s\n",
                result.shards, rerun.shards,
                core::ParallelRunner::shared().thread_count(),
                other_pool.thread_count(), identical ? "yes" : "NO");
    if (!identical) {
      return 1;
    }
  }
  return 0;
}
