// Figure 3 — multi-origin preservation yields measurements closer to the
// real Web.
//
// Paper: www.nytimes.com loaded 100 times on the Internet and 100 times in
// ReplayShell (DelayShell pinned to each live load's minimum RTT). The
// multi-origin replay's median PLT is 7.9% above the live median; the
// single-server replay's is 29.6% above.
//
// Scale knob: MAHI_FIG3_LOADS (default 100, as in the paper).

#include <utility>

#include "bench/common.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const int loads = env_int("MAHI_FIG3_LOADS", 100);
  std::printf("=== Figure 3: replay fidelity vs the live web (%d loads) ===\n",
              loads);

  const auto site = corpus::generate_site(corpus::nytimes_like_spec());
  corpus::LiveWebConfig web;

  // Record the site once (RecordShell against the live web).
  SessionConfig record_config;
  record_config.seed = 0xF16300;
  RecordSession recorder{site, web, record_config};
  const auto store = recorder.record();

  // 100 live loads; keep each load's primary-origin min RTT, as the paper
  // does with ping. Each load re-draws its weather from (seed, index), so
  // the fan-out reproduces the sequential PLT/RTT pairs in index order.
  util::Samples live_plt;
  std::vector<Microseconds> live_rtts;
  {
    SessionConfig config;
    config.seed = 0xF16301;
    LiveWebSession live{site, web, config};
    const auto outcomes = shared_runner().map(
        loads, [&live](int i) { return live.load_outcome(i); });
    for (const auto& outcome : outcomes) {
      live_plt.add(to_ms(outcome.result.page_load_time));
      live_rtts.push_back(outcome.primary_rtt);
    }
  }
  std::fprintf(stderr, "  [fig3] live loads done\n");

  // Replay each load with DelayShell at that load's live min RTT.
  util::Samples multi_plt;
  util::Samples single_plt;
  const auto replay_pairs = shared_runner().map(loads, [&](int i) {
    SessionConfig config;
    config.seed = 0xF16302;
    config.shells = {DelayShellSpec{live_rtts[static_cast<std::size_t>(i)] / 2}};
    ReplaySession multi{store, config};
    const double multi_ms =
        to_ms(multi.load_once(site.primary_url(), i).page_load_time);

    ReplaySession::Options single_options;
    single_options.single_server = true;
    ReplaySession single{store, config, single_options};
    const double single_ms =
        to_ms(single.load_once(site.primary_url(), i).page_load_time);
    return std::pair{multi_ms, single_ms};
  });
  for (const auto& [multi_ms, single_ms] : replay_pairs) {
    multi_plt.add(multi_ms);
    single_plt.add(single_ms);
  }
  std::fprintf(stderr, "  [fig3] replay loads done\n");

  print_rule();
  print_cdf("Actual Web", live_plt);
  print_cdf("Replay Multi-origin", multi_plt);
  print_cdf("Replay Single Server", single_plt);
  print_rule();
  const double live = live_plt.median();
  std::printf("median PLT, actual web:            %9.1f ms\n", live);
  std::printf("median PLT, replay multi-origin:   %9.1f ms  (%+.1f%% vs web; paper: +7.9%%)\n",
              multi_plt.median(), util::percent_difference(live, multi_plt.median()));
  std::printf("median PLT, replay single server:  %9.1f ms  (%+.1f%% vs web; paper: +29.6%%)\n",
              single_plt.median(), util::percent_difference(live, single_plt.median()));
  return 0;
}
