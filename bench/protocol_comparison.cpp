// Protocol evaluation — the paper's opening use case: "network protocol
// designers who seek to understand the application-level impact of new
// multiplexing protocols" (this was the SPDY era).
//
// Compares HTTP/1.1 (six connections per origin) against the SPDY-like
// multiplexed protocol (one connection per origin, interleaved streams)
// replaying the same recorded page over a grid of emulated networks.
// Expected shape, matching the published SPDY studies of the period:
//   - multiplexing wins at high RTT (handshakes amortized, no
//     six-connection ceiling);
//   - the win shrinks on fat, short links;
//   - under packet loss the single TCP pipe suffers head-of-line
//     blocking, eroding (or reversing) the win.
//
// Scale knobs: MAHI_PROTO_LOADS (default 7 loads per cell);
// MAHI_PROTO_CC re-runs the whole grid under any registered congestion
// controller ("reno" default, "cubic", "vegas", "bbr", ...), applied to
// both protocols' flows — the transport axis crossed with the protocol
// axis.

#include "bench/common.hpp"
#include "cc/registry.hpp"
#include "trace/synthesis.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

int main() {
  const int loads = env_int("MAHI_PROTO_LOADS", 7);
  const auto cc_choice = cc::controller_from_env("MAHI_PROTO_CC");
  if (!cc_choice.has_value()) {
    return 2;
  }
  const std::string& cc_name = *cc_choice;
  std::printf("=== HTTP/1.1 vs SPDY-like multiplexing (%d loads/cell, %s) ===\n",
              loads, cc_name.empty() ? cc::kDefaultController : cc_name.c_str());

  const auto site = corpus::generate_site(corpus::nytimes_like_spec());
  SessionConfig base;
  base.seed = 0x5BD7;
  RecordSession recorder{site, corpus::LiveWebConfig{}, base};
  const auto store = recorder.record();
  std::printf("page: %zu objects, %zu origins, %.1f MB\n\n",
              site.objects.size(), site.hostnames.size(),
              site.total_bytes() / 1e6);

  struct Network {
    const char* label;
    std::vector<ShellSpec> shells;
  };
  util::Rng trace_rng{77};
  LinkShellSpec lte;
  lte.uplink = std::make_shared<const trace::PacketTrace>(
      trace::constant_rate(6e6, 2_s));
  lte.downlink = std::make_shared<const trace::PacketTrace>(
      trace::cellular_like(trace_rng, 20_s, 2e6, 24e6));

  const Network networks[] = {
      {"fiber 100 Mbit/s, 10 ms RTT",
       {DelayShellSpec{5_ms}, LinkShellSpec::constant_rate_mbps(100, 100)}},
      {"cable 20 Mbit/s, 40 ms RTT",
       {DelayShellSpec{20_ms}, LinkShellSpec::constant_rate_mbps(5, 20)}},
      {"transcontinental 20 Mbit/s, 200 ms RTT",
       {DelayShellSpec{100_ms}, LinkShellSpec::constant_rate_mbps(5, 20)}},
      {"LTE-like trace, 60 ms RTT", {DelayShellSpec{30_ms}, lte}},
      {"lossy cable (2%), 40 ms RTT",
       {DelayShellSpec{20_ms}, LinkShellSpec::constant_rate_mbps(5, 20),
        LossShellSpec{0.02, 0.02}}},
  };

  std::printf("%-42s %14s %14s %9s\n", "network", "HTTP/1.1 p50",
              "multiplexed", "speedup");
  for (const auto& network : networks) {
    double medians[2];
    for (int proto = 0; proto < 2; ++proto) {
      SessionConfig config = base;
      config.shells = network.shells;
      config.congestion_control = cc_name;  // empty = Reno default
      ReplaySession::Options options;
      if (proto == 1) {
        config.browser.protocol = web::AppProtocol::kMultiplexed;
        config.browser.max_concurrent_requests = 64;  // streams are cheap
        options.multiplexed = true;
      }
      ReplaySession session{store, config, options};
      const auto samples =
          session.measure(site.primary_url(), loads, shared_runner());
      medians[proto] = samples.median();
    }
    std::printf("%-42s %11.0f ms %11.0f ms %8.2fx\n", network.label,
                medians[0], medians[1], medians[0] / medians[1]);
  }
  std::printf(
      "\nExpected shape: multiplexing's advantage grows with RTT, shrinks on\n"
      "fat short links, and erodes under loss (TCP head-of-line blocking).\n");
  return 0;
}
