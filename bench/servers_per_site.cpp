// Section 4 corpus statistic — physical servers per website.
//
// Paper (Alexa U.S. Top 500): median 20 servers, 95th percentile 51, and
// only 9 pages using a single server (~98% multi-origin).
//
// This harness *records* every corpus site through RecordShell and counts
// distinct (IP, port) pairs in the recording — i.e. it validates that the
// full pipeline preserves the server topology, not just that the
// generator was configured with those numbers.
//
// Scale knob: MAHI_SPS_SITES (default 500, as in the paper).

#include <map>

#include "bench/common.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;

int main() {
  const int site_count = env_int("MAHI_SPS_SITES", 500);
  std::printf("=== Servers per website, recorded corpus (%d sites) ===\n",
              site_count);
  const auto corpus = build_recorded_corpus(site_count, /*seed=*/0xA1E7A);

  util::Samples servers;
  int singles = 0;
  for (const auto& entry : corpus) {
    const auto count = entry.store.distinct_servers().size();
    servers.add(static_cast<double>(count));
    if (count == 1) {
      ++singles;
    }
  }

  print_rule();
  std::printf("sites:                        %zu\n", servers.size());
  std::printf("median servers per site:      %.0f   (paper: 20)\n",
              servers.median());
  std::printf("95th percentile:              %.0f   (paper: 51)\n",
              servers.percentile(95));
  std::printf("single-server sites:          %d   (paper: 9 of 500)\n", singles);
  std::printf("multi-origin share:           %.1f%% (paper: ~98%%)\n",
              100.0 * (servers.size() - static_cast<std::size_t>(singles)) /
                  servers.size());
  print_rule();

  // Histogram (log-ish buckets) — the distribution behind the statistic.
  std::map<int, int> buckets;
  for (const double v : servers.values()) {
    const int bucket = v <= 1   ? 1
                       : v <= 5  ? 5
                       : v <= 10 ? 10
                       : v <= 20 ? 20
                       : v <= 35 ? 35
                       : v <= 51 ? 51
                       : v <= 80 ? 80
                                 : 999;
    ++buckets[bucket];
  }
  std::printf("servers-per-site histogram:\n");
  for (const auto& [upper, count] : buckets) {
    std::printf("  <=%3d : %4d %s\n", upper, count,
                std::string(static_cast<std::size_t>(count) / 4, '#').c_str());
  }
  return 0;
}
