// Fault resilience — what the client's retry/timeout/backoff machinery
// buys under deterministic origin faults (src/fault/). Three scenarios on
// one recorded page:
//
//   healthy    no faults (the control — must match a fault-free session)
//   undefended origin crashes mid-response, client never retries: crashed
//              objects land as objects_failed and the page degrades
//   defended   identical crash schedule, but the client retries with
//              capped exponential backoff and per-request deadlines
//
// Claims under test (exit 1 when violated):
//   - the crash schedule actually fires (undefended loses objects),
//   - retries recover what no-retry loses (defended fails strictly fewer
//     objects and completes strictly more loads),
//   - graceful degradation is bounded: degraded PLT <= PLT on every load,
//     and equals PLT on every clean load.
//
// Determinism contract: a faulted load is as reproducible as a healthy
// one — every fault decision is a pure function of (plan seed, event
// index). --selfcheck re-runs the defended scenario on a different-size
// pool and byte-compares the serialized per-load reports.
//
// Scale knobs: MAHI_FAULT_LOADS (loads per scenario, default 12).
// Output:      BENCH_faults.json (override with MAHI_FAULT_JSON).

#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "corpus/site_generator.hpp"
#include "fault/fault.hpp"
#include "web/browser.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;

namespace {

/// A small multi-origin page: enough objects that a per-request crash
/// coin at p=0.15 fires several times per scenario.
CorpusEntry recorded_page() {
  corpus::SiteSpec spec;
  spec.name = "fault-page";
  spec.seed = 17;
  spec.server_count = 3;
  spec.object_count = 10;
  spec.size_scale = 0.25;
  CorpusEntry entry{corpus::generate_site(spec), record::RecordStore{}};
  core::SessionConfig config;
  config.seed = 23;
  core::RecordSession session{entry.site, corpus::LiveWebConfig{}, config};
  entry.store = session.record();
  return entry;
}

struct ScenarioResult {
  util::Samples plt_ms;
  util::Samples degraded_ms;
  std::size_t loads_failed{0};
  std::uint64_t objects_failed{0};
  std::uint64_t retries{0};
  std::uint64_t timeouts{0};
  std::string serialized;  // per-load report, fixed precision
  bool degraded_bounded{true};
  bool clean_loads_undegraded{true};
};

ScenarioResult run_scenario(const CorpusEntry& page, const std::string& spec,
                            int loads, core::ParallelRunner& pool) {
  core::SessionConfig config;
  config.seed = 97;
  config.shells = {core::DelayShellSpec{10'000}};
  if (!spec.empty()) {
    config.fault = fault::parse_fault_spec(spec);
  }
  const core::ReplaySession session{page.store, config};
  const auto results = pool.map(loads, [&](int i) {
    return session.load_once(page.site.primary_url(), i);
  });

  ScenarioResult scenario;
  for (int i = 0; i < loads; ++i) {
    const web::PageLoadResult& r = results[static_cast<std::size_t>(i)];
    scenario.plt_ms.add(to_ms(r.page_load_time));
    scenario.degraded_ms.add(to_ms(r.degraded_page_load_time));
    if (!r.success) {
      ++scenario.loads_failed;
    }
    scenario.objects_failed += r.objects_failed;
    scenario.retries += r.retries;
    scenario.timeouts += r.timeouts;
    if (r.degraded_page_load_time > r.page_load_time) {
      scenario.degraded_bounded = false;
    }
    if (r.objects_failed == 0 &&
        r.degraded_page_load_time != r.page_load_time) {
      scenario.clean_loads_undegraded = false;
    }
    char line[256];
    std::snprintf(line, sizeof line,
                  "load %3d ok=%d plt_ms=%.6f degraded_ms=%.6f failed=%zu "
                  "retries=%zu timeouts=%zu\n",
                  i, r.success ? 1 : 0, to_ms(r.page_load_time),
                  to_ms(r.degraded_page_load_time), r.objects_failed,
                  r.retries, r.timeouts);
    scenario.serialized += line;
  }
  return scenario;
}

void print_scenario(const char* name, const ScenarioResult& s) {
  std::printf("%-10s plt p50 %8.1f ms  degraded p50 %8.1f ms  "
              "loads-failed %zu  objects-failed %llu  retries %llu  "
              "timeouts %llu\n",
              name, s.plt_ms.percentile(50.0), s.degraded_ms.percentile(50.0),
              s.loads_failed,
              static_cast<unsigned long long>(s.objects_failed),
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.timeouts));
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) {
      selfcheck = true;
    } else {
      std::fprintf(stderr, "usage: %s [--selfcheck]\n", argv[0]);
      return 2;
    }
  }

  const int loads = env_int("MAHI_FAULT_LOADS", 12);
  constexpr const char* kCrash = "crash:p=0.15";
  const std::string undefended = std::string{kCrash} + " noretry";
  const std::string defended =
      std::string{kCrash} + " retry:deadline=4s,max=3,base=200ms,cap=2s";

  std::printf("=== fault resilience: %d loads per scenario ===\n", loads);
  const CorpusEntry page = recorded_page();
  core::ParallelRunner& pool = shared_runner();

  const ScenarioResult healthy = run_scenario(page, "", loads, pool);
  const ScenarioResult lost = run_scenario(page, undefended, loads, pool);
  const ScenarioResult saved = run_scenario(page, defended, loads, pool);
  print_scenario("healthy", healthy);
  print_scenario("undefended", lost);
  print_scenario("defended", saved);

  bool ok = true;
  if (healthy.objects_failed != 0 || healthy.loads_failed != 0) {
    std::fprintf(stderr, "FAIL: healthy control lost objects\n");
    ok = false;
  }
  if (lost.objects_failed == 0) {
    std::fprintf(stderr, "FAIL: crash schedule never fired (undefended "
                         "scenario lost nothing)\n");
    ok = false;
  }
  if (saved.objects_failed >= lost.objects_failed) {
    std::fprintf(stderr,
                 "FAIL: retries recovered nothing (%llu objects failed "
                 "defended vs %llu undefended)\n",
                 static_cast<unsigned long long>(saved.objects_failed),
                 static_cast<unsigned long long>(lost.objects_failed));
    ok = false;
  }
  if (saved.loads_failed >= lost.loads_failed && lost.loads_failed > 0) {
    std::fprintf(stderr,
                 "FAIL: defended client completed no more loads (%zu failed "
                 "vs %zu undefended)\n",
                 saved.loads_failed, lost.loads_failed);
    ok = false;
  }
  if (saved.retries == 0) {
    std::fprintf(stderr, "FAIL: defended client never retried\n");
    ok = false;
  }
  for (const ScenarioResult* s : {&healthy, &lost, &saved}) {
    if (!s->degraded_bounded) {
      std::fprintf(stderr, "FAIL: degraded PLT exceeded PLT on some load\n");
      ok = false;
    }
    if (!s->clean_loads_undegraded) {
      std::fprintf(stderr,
                   "FAIL: a clean load reported degraded PLT != PLT\n");
      ok = false;
    }
  }
  if (!ok) {
    return 1;
  }

  PerfReport report;
  // All rows are deterministic: pure functions of (seed, page, spec).
  report.add({"fault_plt_p50_ms/healthy",
              healthy.plt_ms.percentile(50.0) * 1e6, 0, 0});
  report.add({"fault_plt_p50_ms/undefended",
              lost.plt_ms.percentile(50.0) * 1e6, 0, 0});
  report.add({"fault_plt_p50_ms/defended",
              saved.plt_ms.percentile(50.0) * 1e6, 0, 0});
  report.add({"fault_degraded_p50_ms/undefended",
              lost.degraded_ms.percentile(50.0) * 1e6, 0, 0});
  report.add({"fault_degraded_p50_ms/defended",
              saved.degraded_ms.percentile(50.0) * 1e6, 0, 0});
  report.add({"fault_objects_failed/undefended",
              static_cast<double>(lost.objects_failed), 0, 0});
  report.add({"fault_objects_failed/defended",
              static_cast<double>(saved.objects_failed), 0, 0});
  report.add({"fault_retries/defended",
              static_cast<double>(saved.retries), 0, 0});
  const char* out = std::getenv("MAHI_FAULT_JSON");
  report.write(out != nullptr ? out : "BENCH_faults.json");

  if (selfcheck) {
    // The defended (most machinery engaged: crashes, retries, backoff
    // timers, deadlines) scenario re-run on a different-size pool must
    // reproduce the per-load report byte for byte.
    print_rule();
    core::ParallelRunner other{pool.thread_count() == 1 ? 3 : 1};
    const ScenarioResult rerun = run_scenario(page, defended, loads, other);
    const bool identical = rerun.serialized == saved.serialized;
    std::printf("selfcheck: faulted per-load reports byte-identical at "
                "%d vs %d thread(s): %s\n",
                pool.thread_count(), other.thread_count(),
                identical ? "yes" : "NO");
    if (!identical) {
      return 1;
    }
  }
  return 0;
}
