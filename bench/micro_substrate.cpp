// Microbenchmarks for the substrate: HTTP parsing, request matching,
// queue disciplines, the event loop, and trace-driven link forwarding.
// These are google-benchmark timings of the host code itself (wall time),
// not simulated-time results.

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "bench/common.hpp"
#include "http/parser.hpp"
#include "net/event_loop.hpp"
#include "net/fabric.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "net/tcp.hpp"
#include "record/serialize.hpp"
#include "replay/matcher.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace {

using namespace mahimahi;
using namespace mahimahi::literals;

std::string make_response_wire(std::size_t body_bytes) {
  http::Response response = http::make_ok(std::string(body_bytes, 'x'));
  return http::to_bytes(response);
}

void BM_ResponseParser(benchmark::State& state) {
  const std::string wire = make_response_wire(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    http::ResponseParser parser;
    parser.notify_request(http::Method::kGet);
    parser.push(wire);
    benchmark::DoNotOptimize(parser.pop());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ResponseParser)->Arg(1 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_RequestParserPipelined(benchmark::State& state) {
  std::string wire;
  for (int i = 0; i < state.range(0); ++i) {
    wire += http::to_bytes(
        http::make_get("http://host.test/obj" + std::to_string(i)));
  }
  for (auto _ : state) {
    http::RequestParser parser;
    parser.push(wire);
    while (parser.has_message()) {
      benchmark::DoNotOptimize(parser.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RequestParserPipelined)->Arg(1)->Arg(16)->Arg(128);

record::RecordStore corpus_store(int exchanges) {
  record::RecordStore store;
  util::Rng rng{42};
  for (int i = 0; i < exchanges; ++i) {
    record::RecordedExchange exchange;
    exchange.request = http::make_get(
        "http://host" + std::to_string(i % 20) + ".test/asset" +
        std::to_string(i) + "?v=" + std::to_string(rng.uniform_int(1, 5)));
    exchange.response = http::make_ok(std::string(1000, 'b'));
    exchange.server_address =
        net::Address{net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(1 + i % 20)}, 80};
    store.add(std::move(exchange));
  }
  return store;
}

void BM_MatcherLookup(benchmark::State& state) {
  const auto store = corpus_store(static_cast<int>(state.range(0)));
  const replay::Matcher matcher{store};
  const auto request = http::make_get("http://host3.test/asset43?v=9");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.find(request));
  }
}
BENCHMARK(BM_MatcherLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ExchangeSerializeRoundTrip(benchmark::State& state) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get("http://host.test/page?a=1");
  exchange.response =
      http::make_ok(std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  exchange.server_address = net::Address{net::Ipv4{10, 0, 0, 1}, 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        record::decode_exchange(record::encode_exchange(exchange)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ExchangeSerializeRoundTrip)->Arg(1 << 10)->Arg(64 << 10);

void BM_DropTailQueue(benchmark::State& state) {
  net::DropTailQueue queue{1024, 0};
  net::Packet packet;
  packet.tcp.payload = std::string(1400, 'x');
  for (auto _ : state) {
    net::Packet p = packet;
    queue.enqueue(std::move(p), 0);
    benchmark::DoNotOptimize(queue.dequeue(0));
  }
}
BENCHMARK(BM_DropTailQueue);

void BM_CoDelQueue(benchmark::State& state) {
  net::CoDelQueue queue;
  net::Packet packet;
  packet.tcp.payload = std::string(1400, 'x');
  Microseconds now = 0;
  for (auto _ : state) {
    net::Packet p = packet;
    queue.enqueue(std::move(p), now);
    benchmark::DoNotOptimize(queue.dequeue(now + 100));
    now += 100;
  }
}
BENCHMARK(BM_CoDelQueue);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule_at(i, [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_TraceLinkForwarding(benchmark::State& state) {
  // Cost of pushing packets through a 1000 Mbit/s trace-driven link.
  for (auto _ : state) {
    net::EventLoop loop;
    net::LinkQueue link{loop, trace::constant_rate(1e9, 1_s),
                        std::make_unique<net::InfiniteQueue>(),
                        [](net::Packet&&) {}};
    for (int i = 0; i < state.range(0); ++i) {
      net::Packet packet;
      packet.tcp.payload = std::string(1400, 'x');
      link.accept(std::move(packet));
    }
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TraceLinkForwarding)->Arg(1000);

void BM_EventLoopScheduleCancelRun(benchmark::State& state) {
  // The timer-heavy cycle: schedule a batch, cancel half (the fate of most
  // retransmission timers), run the survivors.
  const int n = static_cast<int>(state.range(0));
  std::vector<net::EventLoop::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    ids.clear();
    for (int i = 0; i < n; ++i) {
      ids.push_back(loop.schedule_at(i, [&counter] { ++counter; }));
    }
    for (int i = 0; i < n; i += 2) {
      loop.cancel(ids[static_cast<std::size_t>(i)]);
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EventLoopScheduleCancelRun)->Arg(1000)->Arg(100000);

void BM_EventLoopTimerChurn(benchmark::State& state) {
  // TCP's arm/disarm pattern: every event re-arms a far-future RTO that is
  // almost always cancelled before it fires.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::EventLoop loop;
    int remaining = n;
    net::EventLoop::EventId rto = 0;
    std::function<void()> rearm = [&] {
      if (rto != 0) {
        loop.cancel(rto);
      }
      rto = loop.schedule_in(200'000, [] {});
      if (--remaining > 0) {
        loop.schedule_in(10, [&rearm] { rearm(); });
      }
    };
    loop.schedule_at(0, [&rearm] { rearm(); });
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EventLoopTimerChurn)->Arg(10000);

void BM_LinkForwardingFullQueue(benchmark::State& state) {
  // A saturated bottleneck: arrivals outpace a 100 Mbit/s link with a
  // bounded drop-tail queue, so most of the work is enqueue/drop/dequeue
  // against a full buffer.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::EventLoop loop;
    net::LinkQueue link{loop, trace::constant_rate(1e8, 1_s),
                        std::make_unique<net::DropTailQueue>(256, 0),
                        [](net::Packet&&) {}};
    net::Packet prototype;
    prototype.tcp.payload = std::string(1400, 'x');
    for (int i = 0; i < n; ++i) {
      net::Packet p = prototype;
      link.accept(std::move(p));
    }
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_LinkForwardingFullQueue)->Arg(4096);

void BM_TcpBulkTransfer(benchmark::State& state) {
  // End-to-end substrate cost of a bulk TCP transfer over a 1 Gbit/s link:
  // handshake, segmentation, link forwarding, acks, teardown. Dominated by
  // per-segment payload handling, so it is the canary for copy costs.
  const std::size_t total_bytes = static_cast<std::size_t>(state.range(0));
  const net::Address server_addr{net::Ipv4{10, 0, 0, 1}, 80};
  std::uint64_t copied_payload_bytes = 0;
  for (auto _ : state) {
    net::EventLoop loop;
    net::Fabric fabric{loop};
    fabric.chain().push_back(std::make_unique<net::TraceLink>(
        loop, trace::constant_rate(1e9, 1_s), trace::constant_rate(1e9, 1_s)));
    std::size_t received = 0;
    net::TcpListener listener{
        fabric, server_addr,
        [&received](const std::shared_ptr<net::TcpConnection>& conn) {
          net::TcpConnection* raw = conn.get();
          net::TcpConnection::Callbacks cb;
          cb.on_data = [&received](std::string_view b) { received += b.size(); };
          cb.on_peer_close = [raw] { raw->close(); };
          return cb;
        }};
    net::TcpClient client{fabric, server_addr, {}};
    client.connection().send(std::string(total_bytes, 'x'));
    client.connection().close();
    loop.run();
    copied_payload_bytes += client.connection().payload_copy_bytes();
    if (received != total_bytes) {
      state.SkipWithError("short transfer");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total_bytes));
  // Payload bytes the send path materialized (0 = every segment aliased
  // the send buffer) — the copy-elimination evidence next to bytes/s.
  state.counters["payload_copy_bytes"] = benchmark::Counter(
      static_cast<double>(copied_payload_bytes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TcpBulkTransfer)->Arg(1 << 20);

/// Console output as usual, plus every per-iteration result captured into
/// the PerfReport that becomes BENCH_substrate.json.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(mahimahi::bench::PerfReport& report)
      : report_{report} {}

  void ReportRuns(const std::vector<Run>& runs) override {
    // google-benchmark renamed Run::error_occurred to Run::skipped in
    // 1.8.0; probe for whichever member this library version has.
    constexpr auto run_errored = []<typename R>(const R& r) {
      if constexpr (requires { r.skipped; }) {
        return static_cast<bool>(r.skipped);
      } else {
        return static_cast<bool>(r.error_occurred);
      }
    };
    for (const Run& run : runs) {
      if (run_errored(run) || run.run_type != Run::RT_Iteration) {
        continue;
      }
      mahimahi::bench::PerfReport::Row row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime();
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        row.items_per_second = it->second;
      }
      if (const auto it = run.counters.find("bytes_per_second");
          it != run.counters.end()) {
        row.bytes_per_second = it->second;
      }
      report_.add(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  mahimahi::bench::PerfReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  mahimahi::bench::PerfReport report;
  JsonTeeReporter reporter{report};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* out = std::getenv("MAHI_BENCH_JSON");
  report.write(out != nullptr ? out : "BENCH_substrate.json");
  return 0;
}
