// Microbenchmarks for the substrate: HTTP parsing, request matching,
// queue disciplines, the event loop, and trace-driven link forwarding.
// These are google-benchmark timings of the host code itself (wall time),
// not simulated-time results.

#include <benchmark/benchmark.h>

#include "http/parser.hpp"
#include "net/event_loop.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "record/serialize.hpp"
#include "replay/matcher.hpp"
#include "trace/synthesis.hpp"
#include "util/random.hpp"

namespace {

using namespace mahimahi;
using namespace mahimahi::literals;

std::string make_response_wire(std::size_t body_bytes) {
  http::Response response = http::make_ok(std::string(body_bytes, 'x'));
  return http::to_bytes(response);
}

void BM_ResponseParser(benchmark::State& state) {
  const std::string wire = make_response_wire(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    http::ResponseParser parser;
    parser.notify_request(http::Method::kGet);
    parser.push(wire);
    benchmark::DoNotOptimize(parser.pop());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ResponseParser)->Arg(1 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_RequestParserPipelined(benchmark::State& state) {
  std::string wire;
  for (int i = 0; i < state.range(0); ++i) {
    wire += http::to_bytes(
        http::make_get("http://host.test/obj" + std::to_string(i)));
  }
  for (auto _ : state) {
    http::RequestParser parser;
    parser.push(wire);
    while (parser.has_message()) {
      benchmark::DoNotOptimize(parser.pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RequestParserPipelined)->Arg(1)->Arg(16)->Arg(128);

record::RecordStore corpus_store(int exchanges) {
  record::RecordStore store;
  util::Rng rng{42};
  for (int i = 0; i < exchanges; ++i) {
    record::RecordedExchange exchange;
    exchange.request = http::make_get(
        "http://host" + std::to_string(i % 20) + ".test/asset" +
        std::to_string(i) + "?v=" + std::to_string(rng.uniform_int(1, 5)));
    exchange.response = http::make_ok(std::string(1000, 'b'));
    exchange.server_address =
        net::Address{net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(1 + i % 20)}, 80};
    store.add(std::move(exchange));
  }
  return store;
}

void BM_MatcherLookup(benchmark::State& state) {
  const auto store = corpus_store(static_cast<int>(state.range(0)));
  const replay::Matcher matcher{store};
  const auto request = http::make_get("http://host3.test/asset43?v=9");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.find(request));
  }
}
BENCHMARK(BM_MatcherLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ExchangeSerializeRoundTrip(benchmark::State& state) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get("http://host.test/page?a=1");
  exchange.response =
      http::make_ok(std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  exchange.server_address = net::Address{net::Ipv4{10, 0, 0, 1}, 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        record::decode_exchange(record::encode_exchange(exchange)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ExchangeSerializeRoundTrip)->Arg(1 << 10)->Arg(64 << 10);

void BM_DropTailQueue(benchmark::State& state) {
  net::DropTailQueue queue{1024, 0};
  net::Packet packet;
  packet.tcp.payload = std::string(1400, 'x');
  for (auto _ : state) {
    net::Packet p = packet;
    queue.enqueue(std::move(p), 0);
    benchmark::DoNotOptimize(queue.dequeue(0));
  }
}
BENCHMARK(BM_DropTailQueue);

void BM_CoDelQueue(benchmark::State& state) {
  net::CoDelQueue queue;
  net::Packet packet;
  packet.tcp.payload = std::string(1400, 'x');
  Microseconds now = 0;
  for (auto _ : state) {
    net::Packet p = packet;
    queue.enqueue(std::move(p), now);
    benchmark::DoNotOptimize(queue.dequeue(now + 100));
    now += 100;
  }
}
BENCHMARK(BM_CoDelQueue);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    net::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule_at(i, [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_TraceLinkForwarding(benchmark::State& state) {
  // Cost of pushing packets through a 1000 Mbit/s trace-driven link.
  for (auto _ : state) {
    net::EventLoop loop;
    net::LinkQueue link{loop, trace::constant_rate(1e9, 1_s),
                        std::make_unique<net::InfiniteQueue>(),
                        [](net::Packet&&) {}};
    for (int i = 0; i < state.range(0); ++i) {
      net::Packet packet;
      packet.tcp.payload = std::string(1400, 'x');
      link.accept(std::move(packet));
    }
    loop.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TraceLinkForwarding)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
