// Congestion-control comparison — the transport-dimension counterpart of
// the protocol bench: the same recorded page replayed over a grid of
// emulated networks, once per registered congestion controller, so a
// protocol designer can answer "CUBIC vs BBR on an LTE trace" with one
// command. Two measurements per (network, controller) cell:
//
//   - application view: median page-load time of MAHI_CC_LOADS replays —
//     since PR 5 this grid is one declarative ExperimentSpec executed by
//     the experiment engine (src/experiment/), making this bench the
//     engine's first library consumer;
//   - transport view: a 3 MB bulk transfer straight over the cell's link,
//     reporting completion time and the p95 queueing delay the controller
//     induced at the bottleneck (the bufferbloat axis where delay-based
//     and rate-based controllers earn their keep).
//
// Expected shape: CUBIC finishes the lossy high-BDP bulk transfer well
// ahead of Reno (cubic window regrowth vs one-MSS-per-RTT), while Vegas
// and BBR-lite hold far shorter queues on the deep-buffered LTE cell.
//
// The whole PLT grid re-runs at a different thread count and must be
// byte-identical — the engine serializes its report deterministically, so
// the check compares JSON bytes. Exit status is 1 on any divergence *or*
// when an expected-shape check fails (the grid is deterministic, so a
// failed check is a controller regression, not noise).
//
// Scale knob: MAHI_CC_LOADS (default 5 loads per cell).
// Output:     BENCH_cc.json (override with MAHI_CC_JSON).

#include <map>

#include "bench/common.hpp"
#include "cc/registry.hpp"
#include "experiment/runner.hpp"
#include "net/bulk_probe.hpp"
#include "util/assert.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::experiment;
using namespace mahimahi::literals;

namespace {

constexpr const char* kControllers[] = {"reno", "cubic", "vegas", "bbr"};

struct Network {
  const char* label;
  const char* key;  // short slug: the shell-axis label and JSON row name
  std::vector<ShellLayerSpec> layers;
  double loss{0.0};            // i.i.d. loss for the bulk probe
  double link_mbps{8.0};       // symmetric bulk-probe bottleneck
  Microseconds one_way{20'000};  // bulk-probe propagation delay
};

ShellLayerSpec delay_layer(Microseconds one_way) {
  ShellLayerSpec layer;
  layer.kind = ShellLayerSpec::Kind::kDelay;
  layer.delay_one_way = one_way;
  return layer;
}

ShellLayerSpec link_layer(double up_mbps, double down_mbps) {
  ShellLayerSpec layer;
  layer.kind = ShellLayerSpec::Kind::kLink;
  layer.up_mbps = up_mbps;
  layer.down_mbps = down_mbps;
  return layer;
}

ShellLayerSpec lte_link_layer() {
  ShellLayerSpec layer;
  layer.kind = ShellLayerSpec::Kind::kLink;
  layer.trace_name = "lte";
  return layer;
}

ShellLayerSpec loss_layer(double rate) {
  ShellLayerSpec layer;
  layer.kind = ShellLayerSpec::Kind::kLoss;
  layer.uplink_loss = rate;
  layer.downlink_loss = rate;
  return layer;
}

struct BulkOutcome {
  double seconds{0};
  double queue_p95_ms{0};
  std::uint64_t retransmissions{0};
};

/// Transport-level probe: one bulk transfer through the cell's delay +
/// (optionally lossy) bottleneck with a deep buffer, under `controller`.
/// Mirrors the replay cell's character without the browser on top, so the
/// queueing numbers isolate the controller's behaviour.
BulkOutcome bulk_probe(const Network& network, const std::string& controller,
                       std::size_t bytes) {
  net::BulkFlowSpec spec;
  spec.congestion_control = controller;
  spec.bytes = bytes;
  spec.link_mbps = network.link_mbps;
  spec.one_way_delay = network.one_way;
  spec.loss = network.loss;
  const net::BulkFlowReport report = net::run_bulk_flow(spec);

  BulkOutcome outcome;
  if (!report.complete) {
    std::fprintf(stderr, "[cc] bulk probe under %s did not deliver all of "
                 "its %zu bytes\n", controller.c_str(), bytes);
    return outcome;
  }
  outcome.seconds = static_cast<double>(report.completed_at) / 1e6;
  outcome.queue_p95_ms = report.uplink.delay_p95_ms;
  outcome.retransmissions = report.retransmissions;
  return outcome;
}

}  // namespace

int main() {
  const int loads = env_int("MAHI_CC_LOADS", 5);
  std::printf("=== Congestion-control comparison (%d loads/cell) ===\n", loads);

  const Network networks[] = {
      {"LTE-like trace, 60 ms RTT, deep buffer",
       "lte",
       {delay_layer(30_ms), lte_link_layer()},
       0.0, 10.0, 30'000},
      {"high-BDP 20 Mbit/s, 200 ms RTT, 0.5% loss",
       "high-bdp",
       {delay_layer(100_ms), link_layer(20, 20), loss_layer(0.005)},
       0.005, 20.0, 100'000},
      {"lossy cable (2%), 40 ms RTT",
       "lossy-cable",
       {delay_layer(20_ms), link_layer(5, 20), loss_layer(0.02)},
       0.02, 20.0, 20'000},
  };

  // --- application view: the PLT grid as one declarative experiment ------
  ExperimentSpec spec;
  spec.name = "cc-comparison";
  spec.seed = 0xCC01;
  spec.loads_per_cell = loads;
  spec.sites = {SiteAxis{"nytimes", site_spec_for_label("nytimes")}};
  spec.protocols = {web::AppProtocol::kHttp11};
  for (const Network& network : networks) {
    spec.shells.push_back(ShellAxis{network.key, network.layers});
  }
  spec.queues = {QueueAxis{"fifo", net::QueueSpec{}}};
  for (const char* controller : kControllers) {
    spec.ccs.push_back(CcAxis{controller, {controller}});
  }

  RunOptions options;
  options.runner = &shared_runner();
  options.transport_probes = false;  // this bench runs its own, below
  const Report grid = run_experiment(spec, options);

  PerfReport report;
  const std::size_t cc_count = std::size(kControllers);
  std::printf("%-44s", "median PLT");
  for (const char* controller : kControllers) {
    std::printf(" %9s", controller);
  }
  std::printf("\n");
  for (std::size_t n = 0; n < std::size(networks); ++n) {
    std::printf("%-44s", networks[n].label);
    for (std::size_t c = 0; c < cc_count; ++c) {
      // Engine cell order: shell-major, cc innermost (one site/protocol/
      // queue) — exactly this grid's row-major layout.
      const CellResult& cell = grid.cells[n * cc_count + c];
      MAHI_ASSERT(cell.shell == networks[n].key);
      MAHI_ASSERT(cell.cc == kControllers[c]);
      std::printf(" %7.0fms", cell.plt_ms.median());
      report.add({std::string("cc_plt/") + networks[n].key + "/" +
                      kControllers[c],
                  cell.plt_ms.median() * 1e6, 0, 0});
    }
    std::printf("\n");
  }

  // --- transport view: bulk probes ---------------------------------------
  std::printf("\n%-44s %9s %12s %12s %8s\n", "bulk 3 MB probe", "cc",
              "completion", "queue p95", "rexmit");
  // Probe results keyed "<cell>/<controller>", so the shape checks below
  // look up by name and survive kControllers being reordered or extended.
  std::map<std::string, BulkOutcome> probes;
  for (const auto& network : networks) {
    for (const char* controller : kControllers) {
      const BulkOutcome outcome =
          bulk_probe(network, controller, 3 * 1000 * 1000);
      probes[std::string(network.key) + "/" + controller] = outcome;
      std::printf("%-44s %9s %10.2f s %9.1f ms %8llu\n", network.label,
                  controller, outcome.seconds, outcome.queue_p95_ms,
                  static_cast<unsigned long long>(outcome.retransmissions));
      report.add({std::string("cc_bulk_seconds/") + network.key + "/" +
                      controller,
                  outcome.seconds * 1e9, 0,
                  outcome.seconds > 0 ? 3e6 / outcome.seconds : 0});
      report.add({std::string("cc_queue_p95_ms/") + network.key + "/" +
                      controller,
                  outcome.queue_p95_ms * 1e6, 0, 0});
    }
  }

  // --- expected-shape checks ---------------------------------------------
  const double reno_high_bdp_s = probes["high-bdp/reno"].seconds;
  const double cubic_high_bdp_s = probes["high-bdp/cubic"].seconds;
  const double reno_lte_q = probes["lte/reno"].queue_p95_ms;
  const double vegas_lte_q = probes["lte/vegas"].queue_p95_ms;
  const double bbr_lte_q = probes["lte/bbr"].queue_p95_ms;
  const bool cubic_wins =
      cubic_high_bdp_s > 0 && cubic_high_bdp_s < reno_high_bdp_s;
  const bool low_delay = vegas_lte_q < reno_lte_q && bbr_lte_q < reno_lte_q;
  std::printf("\ncheck: CUBIC beats Reno on the high-BDP cell: %s "
              "(%.2f s vs %.2f s)\n",
              cubic_wins ? "yes" : "NO", cubic_high_bdp_s, reno_high_bdp_s);
  std::printf("check: Vegas/BBR queue less than Reno on the LTE cell: %s "
              "(%.1f / %.1f vs %.1f ms)\n",
              low_delay ? "yes" : "NO", vegas_lte_q, bbr_lte_q, reno_lte_q);

  // --- determinism: the full PLT grid at a different thread count ---------
  // The first pass ran on shared_runner(); one engine rerun at a
  // deliberately different thread count must serialize byte-for-byte.
  bool deterministic = true;
  {
    const int other_threads = shared_runner().thread_count() == 1 ? 8 : 1;
    core::ParallelRunner other{other_threads};
    RunOptions rerun_options = options;
    rerun_options.runner = &other;
    const Report rerun = run_experiment(spec, rerun_options);
    deterministic = rerun.to_json() == grid.to_json();
    // Thread counts deliberately left out of stdout: bench output must
    // diff clean across MAHI_THREADS settings (the repo-wide probe).
    std::fprintf(stderr, "[cc] determinism rerun at %d thread(s) vs %d\n",
                 other_threads, shared_runner().thread_count());
    std::printf("determinism: PLT grid byte-identical across thread counts: "
                "%s\n",
                deterministic ? "yes" : "NO");
  }

  const char* out = std::getenv("MAHI_CC_JSON");
  report.write(out != nullptr ? out : "BENCH_cc.json");
  // The expected-shape checks gate the exit status too: the grid is fully
  // deterministic, so a "NO" is a controller regression, not noise.
  return deterministic && cubic_wins && low_delay ? 0 : 1;
}
