// Ablations of the calibrated mechanisms (DESIGN.md §3): how each model
// knob moves the headline Table 2 cell (14 Mbit/s, 30 ms RTT, median
// single-vs-multi PLT difference). This is the sensitivity analysis
// behind the calibration recorded in EXPERIMENTS.md.
//
// Scale knob: MAHI_ABL_SITES (default 24).

#include <utility>

#include "bench/common.hpp"

using namespace mahimahi;
using namespace mahimahi::bench;
using namespace mahimahi::core;
using namespace mahimahi::literals;

namespace {

struct CellResult {
  double median_diff_pct;
  double median_multi_ms;
};

CellResult measure_cell(const std::vector<CorpusEntry>& corpus,
                        const ReplaySession::Options& multi_options,
                        const ReplaySession::Options& single_options,
                        const web::BrowserConfig& browser,
                        int initial_window) {
  (void)initial_window;  // reserved for the IW ablation below
  // One task per site; each measures the multi/single pair.
  const auto pairs = bench::shared_runner().map(
      static_cast<int>(corpus.size()), [&](int idx) {
        const auto i = static_cast<std::size_t>(idx);
        SessionConfig config;
        config.seed = 0xAB1A + i;
        config.browser = browser;
        config.shells = {DelayShellSpec{15_ms},
                         LinkShellSpec::constant_rate_mbps(14, 14)};
        ReplaySession multi{corpus[i].store, config, multi_options};
        ReplaySession single{corpus[i].store, config, single_options};
        const auto url = corpus[i].site.primary_url();
        const double m = to_ms(multi.load_once(url, 0).page_load_time);
        const double s = to_ms(single.load_once(url, 0).page_load_time);
        return std::pair{100.0 * (s - m) / m, m};
      });
  util::Samples diffs;
  util::Samples multis;
  for (const auto& [diff, multi_ms] : pairs) {
    diffs.add(diff);
    multis.add(multi_ms);
  }
  return CellResult{diffs.median(), multis.median()};
}

}  // namespace

int main() {
  const int site_count = env_int("MAHI_ABL_SITES", 24);
  std::printf("=== Ablations @ 14 Mbit/s, 30 ms RTT (%d sites) ===\n\n",
              site_count);
  const auto corpus = build_recorded_corpus(site_count, /*seed=*/0xAB1A7E);

  ReplaySession::Options multi_default;
  ReplaySession::Options single_default;
  single_default.single_server = true;
  const web::BrowserConfig browser_default;

  // --- 1. Apache prefork pool: initial workers x spawn interval ---------
  std::printf("[1] worker pool (single-server penalty source)\n");
  std::printf("%-34s %12s %14s\n", "pool", "p50 diff", "multi p50");
  for (const auto& [initial, spawn_ms] :
       {std::pair{1, 27}, {3, 27}, {8, 27}, {3, 9}, {3, 81}, {256, 27}}) {
    auto single = single_default;
    single.worker_pool.initial_workers = initial;
    single.worker_pool.spawn_interval = spawn_ms * 1'000;
    auto multi = multi_default;
    multi.worker_pool = single.worker_pool;
    const auto cell =
        measure_cell(corpus, multi, single, browser_default, 10);
    char label[64];
    std::snprintf(label, sizeof label, "initial=%d spawn=%dms%s", initial,
                  spawn_ms, (initial == 3 && spawn_ms == 27) ? "  (default)" : "");
    std::printf("%-34s %+11.1f%% %11.0f ms\n", label, cell.median_diff_pct,
                cell.median_multi_ms);
  }

  // --- 2. Browser request throttle --------------------------------------
  std::printf("\n[2] browser in-flight request throttle\n");
  std::printf("%-34s %12s %14s\n", "cap", "p50 diff", "multi p50");
  for (const std::size_t cap : {8ul, 16ul, 24ul, 48ul, 1000ul}) {
    auto browser = browser_default;
    browser.max_concurrent_requests = cap;
    const auto cell = measure_cell(corpus, multi_default, single_default,
                                   browser, 10);
    char label[64];
    std::snprintf(label, sizeof label, "max_concurrent_requests=%zu%s", cap,
                  cap == 24 ? "  (default)" : "");
    std::printf("%-34s %+11.1f%% %11.0f ms\n", label, cell.median_diff_pct,
                cell.median_multi_ms);
  }

  // --- 3. Per-origin connection limit ------------------------------------
  std::printf("\n[3] per-origin connection limit (the paper's six)\n");
  std::printf("%-34s %12s %14s\n", "limit", "p50 diff", "multi p50");
  for (const int conns : {2, 6, 12}) {
    auto browser = browser_default;
    browser.max_connections_per_origin = conns;
    const auto cell = measure_cell(corpus, multi_default, single_default,
                                   browser, 10);
    char label[64];
    std::snprintf(label, sizeof label, "max_connections_per_origin=%d%s",
                  conns, conns == 6 ? "  (default)" : "");
    std::printf("%-34s %+11.1f%% %11.0f ms\n", label, cell.median_diff_pct,
                cell.median_multi_ms);
  }

  // --- 4. Replay server think time ---------------------------------------
  std::printf("\n[4] per-request server processing delay\n");
  std::printf("%-34s %12s %14s\n", "delay", "p50 diff", "multi p50");
  for (const Microseconds think : {0_us, 1'500_us, 6'000_us}) {
    auto multi = multi_default;
    multi.processing_delay = think;
    auto single = single_default;
    single.processing_delay = think;
    const auto cell =
        measure_cell(corpus, multi, single, browser_default, 10);
    char label[64];
    std::snprintf(label, sizeof label, "processing_delay=%lldus%s",
                  (long long)think, think == 1'500 ? "  (default)" : "");
    std::printf("%-34s %+11.1f%% %11.0f ms\n", label, cell.median_diff_pct,
                cell.median_multi_ms);
  }

  std::printf(
      "\nReading: the single-server penalty is produced by pool starvation\n"
      "(rows [1]); an uncontended pool (initial=256) erases it. The browser\n"
      "throttle (rows [2]) bounds how hard one server can be hit; per-origin\n"
      "parallelism (rows [3]) shifts both modes together.\n");
  return 0;
}
