// mm-store-dump: inspect a recorded-site folder.
//
//   usage: mm_store_dump <recorded-folder> [--full]
//
// Prints the origin inventory (the servers ReplayShell would spawn), the
// hostname bindings, and a per-exchange summary.

#include <cstdio>
#include <cstring>

#include "record/serialize.hpp"
#include "record/store.hpp"
#include "util/strings.hpp"

using namespace mahimahi;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <recorded-folder> [--full]\n", argv[0]);
    return 2;
  }
  const bool full = argc > 2 && std::strcmp(argv[2], "--full") == 0;

  record::RecordStore store = [&] {
    try {
      return record::RecordStore::load(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("recorded folder:   %s\n", argv[1]);
  std::printf("exchanges:         %zu\n", store.size());
  std::printf("response bytes:    %s\n",
              util::format_bytes(store.total_response_bytes()).c_str());

  const auto servers = store.distinct_servers();
  std::printf("origin servers:    %zu (ReplayShell spawns one each)\n",
              servers.size());
  for (const auto& address : servers) {
    std::size_t count = 0;
    for (const auto& exchange : store.exchanges()) {
      if (exchange.server_address == address) {
        ++count;
      }
    }
    std::printf("  %-22s %4zu exchange(s)\n", address.to_string().c_str(),
                count);
  }

  std::printf("hostname bindings (the replay DNS):\n");
  for (const auto& [host, ip] : store.host_bindings()) {
    std::printf("  %-40s -> %s\n", host.c_str(), ip.to_string().c_str());
  }

  if (full) {
    std::printf("exchanges:\n");
    for (const auto& exchange : store.exchanges()) {
      std::printf("  %s\n", record::describe_exchange(exchange).c_str());
    }
  }
  return 0;
}
