// mm-trace-diff: compare two experiment trace runs and localize divergence.
//
//   usage: mm_trace_diff <a> <b> [--max-deltas N]
//
// <a> and <b> are either two --trace-dir directories (every cell*.csv in
// each is loaded and cells are aligned by label) or two single cell CSVs.
// For each aligned cell pair the tool reports:
//   - byte-identical, or
//   - the first divergent event (row index, layer, kind, t_us, flow, both
//     raw lines),
//   - per-(layer.kind) event-count deltas ranked by |delta|, and
//   - derived-metric deltas (counters / gauges / histogram stats from the
//     same derivation mm_experiment --metrics uses) ranked by |relative
//     delta|.
// A cell label present in only one run is itself a divergence.
//
// Exit status: 0 identical, 1 divergent, 2 usage/load error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/analyze.hpp"

using namespace mahimahi::obs;

namespace {

/// Load one run: a directory of cell*.csv (sorted by filename so the order
/// is stable) or a single CSV file. Empty vector = error (already printed).
std::vector<ParsedTrace> load_run(const std::string& path) {
  std::vector<ParsedTrace> traces;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator{path, ec}) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("cell", 0) == 0 && name.size() > 4 &&
          name.substr(name.size() - 4) == ".csv") {
        files.push_back(entry.path().string());
      }
    }
    if (files.empty()) {
      std::fprintf(stderr, "error: no cell*.csv in %s\n", path.c_str());
      return traces;
    }
    std::sort(files.begin(), files.end());
    for (const std::string& file : files) {
      std::string error;
      auto parsed = parse_trace_file(file, &error);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "error: %s: %s\n", file.c_str(), error.c_str());
        traces.clear();
        return traces;
      }
      traces.push_back(std::move(*parsed));
    }
    return traces;
  }
  std::string error;
  auto parsed = parse_trace_file(path, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return traces;
  }
  traces.push_back(std::move(*parsed));
  return traces;
}

void print_cell(const CellDiff& cell, std::size_t max_deltas) {
  if (!cell.in_a || !cell.in_b) {
    std::printf("cell %-40s  only in %s\n", cell.label.c_str(),
                cell.in_a ? "A" : "B");
    return;
  }
  if (cell.identical) {
    std::printf("cell %-40s  identical\n", cell.label.c_str());
    return;
  }
  std::printf("cell %-40s  DIVERGENT\n", cell.label.c_str());
  std::printf("  first divergence: event index %zu  layer=%s kind=%s "
              "t_us=%lld flow=%llu\n",
              cell.first_divergence, cell.layer.c_str(), cell.kind.c_str(),
              static_cast<long long>(cell.t_us),
              static_cast<unsigned long long>(cell.flow));
  std::printf("    A: %s\n",
              cell.a_line.empty() ? "<stream ended>" : cell.a_line.c_str());
  std::printf("    B: %s\n",
              cell.b_line.empty() ? "<stream ended>" : cell.b_line.c_str());
  std::size_t shown = 0;
  for (const CellDiff::CountDelta& delta : cell.count_deltas) {
    if (shown++ >= max_deltas) {
      std::printf("  ... %zu more count delta(s)\n",
                  cell.count_deltas.size() - max_deltas);
      break;
    }
    std::printf("  count %-32s A=%lld B=%lld (%+lld)\n", delta.key.c_str(),
                static_cast<long long>(delta.a),
                static_cast<long long>(delta.b),
                static_cast<long long>(delta.b - delta.a));
  }
  shown = 0;
  for (const CellDiff::MetricDelta& delta : cell.metric_deltas) {
    if (shown++ >= max_deltas) {
      std::printf("  ... %zu more metric delta(s)\n",
                  cell.metric_deltas.size() - max_deltas);
      break;
    }
    std::printf("  metric %-40s A=%.6f B=%.6f (%+.2f%%)\n",
                delta.name.c_str(), delta.a, delta.b,
                delta.relative * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path_a;
  std::string path_b;
  std::size_t max_deltas = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-deltas" && i + 1 < argc) {
      max_deltas = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    } else {
      std::fprintf(stderr, "usage: %s <a> <b> [--max-deltas N]\n", argv[0]);
      return 2;
    }
  }
  if (path_b.empty()) {
    std::fprintf(stderr, "usage: %s <a> <b> [--max-deltas N]\n", argv[0]);
    return 2;
  }

  const std::vector<ParsedTrace> a = load_run(path_a);
  if (a.empty()) {
    return 2;
  }
  const std::vector<ParsedTrace> b = load_run(path_b);
  if (b.empty()) {
    return 2;
  }

  const TraceDiff diff = diff_traces(a, b);
  std::size_t divergent = 0;
  for (const CellDiff& cell : diff.cells) {
    if (!cell.identical) {
      ++divergent;
    }
    print_cell(cell, max_deltas);
  }
  std::printf("%zu cell(s) compared, %zu divergent: runs are %s\n",
              diff.cells.size(), divergent,
              diff.identical ? "IDENTICAL" : "DIVERGENT");
  return diff.identical ? 0 : 1;
}
