// mm-trace-dump: inspect an observability trace CSV written by
// mm_experiment --trace-dir (cell<i>.csv, format "mahimahi-obs-trace-v1").
// Not to be confused with mm_trace_info, which reports on *cellular rate
// traces* (packet-delivery schedules); this tool reads *obs traces* —
// the per-load event/object/page streams recorded by obs::Tracer.
//
//   usage: mm_trace_dump <cell.csv> [options]
//     --layer NAME     only this layer (link, tcp, dns, fault, browser,
//                      runner — the journal's events.csv uses it)
//     --stream N       only this session (stream) index; -1 = shared infra
//     --load N         only this load index
//     --events         list the matching raw events instead of a summary
//     --waterfall      ASCII per-object waterfall (DNS → request → first
//                      byte → complete) for the matching loads/sessions
//
// Default output is a summary: per-layer/kind event counts, per-load page
// results, and object failure totals. Filters compose with every mode.
//
// Exit status: 0 ok, 1 parse failure, 2 usage error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Row {
  int load{0};
  std::int32_t session{0};
  long long t_us{0};
  std::string layer;
  std::string kind;
  std::uint64_t flow{0};
  std::uint64_t value{0};
  double metric{0};
  std::string label;
  std::string detail;
};

struct Filter {
  std::string layer;  // empty = all
  bool has_stream{false};
  std::int32_t stream{0};
  bool has_load{false};
  int load{0};

  [[nodiscard]] bool matches(const Row& row) const {
    if (!layer.empty() && row.layer != layer) {
      return false;
    }
    if (has_stream && row.session != stream) {
      return false;
    }
    if (has_load && row.load != load) {
      return false;
    }
    return true;
  }
};

std::vector<std::string> split(const std::string& line, char sep,
                               std::size_t max_fields) {
  // The detail column may itself never contain the separator (the
  // exporter sanitizes it), but capping the split keeps us honest if a
  // future field grows commas.
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (fields.size() + 1 < max_fields) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      break;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  fields.push_back(line.substr(start));
  return fields;
}

// Extract "key=value" from a ';'-separated detail blob; "" if absent.
std::string detail_field(const std::string& detail, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < detail.size()) {
    const std::size_t end = detail.find(';', pos);
    const std::string item =
        detail.substr(pos, end == std::string::npos ? end : end - pos);
    if (item.rfind(needle, 0) == 0) {
      return item.substr(needle.size());
    }
    if (end == std::string::npos) {
      break;
    }
    pos = end + 1;
  }
  return "";
}

long long detail_us(const std::string& detail, const std::string& key) {
  const std::string text = detail_field(detail, key);
  return text.empty() ? -1 : std::atoll(text.c_str());
}

void print_summary(const std::string& header, const std::vector<Row>& rows) {
  std::printf("%s\n", header.c_str());

  std::map<int, std::size_t> per_load;
  std::map<std::int32_t, std::size_t> per_session;
  std::map<std::string, std::map<std::string, std::size_t>> per_layer_kind;
  std::size_t objects = 0;
  std::size_t failed_objects = 0;
  std::uint64_t object_bytes = 0;
  std::vector<const Row*> pages;
  for (const Row& row : rows) {
    per_load[row.load]++;
    per_session[row.session]++;
    per_layer_kind[row.layer][row.kind]++;
    if (row.layer == "browser" && row.kind == "object") {
      ++objects;
      object_bytes += row.value;
      if (detail_field(row.detail, "failed") == "1") {
        ++failed_objects;
      }
    } else if (row.layer == "browser" && row.kind == "page") {
      pages.push_back(&row);
    }
  }

  std::printf("rows: %zu across %zu load(s), %zu stream(s)\n", rows.size(),
              per_load.size(), per_session.size());
  for (const auto& [layer, kinds] : per_layer_kind) {
    std::size_t total = 0;
    for (const auto& [kind, count] : kinds) {
      total += count;
    }
    std::printf("  %-8s %8zu\n", layer.c_str(), total);
    for (const auto& [kind, count] : kinds) {
      std::printf("    %-24s %8zu\n", kind.c_str(), count);
    }
  }
  const auto runner = per_layer_kind.find("runner");
  if (runner != per_layer_kind.end()) {
    // Runner-lifecycle counters (journal events.csv, or watchdog rows in a
    // cell trace): the crash-safety story of the run at a glance.
    const auto count = [&](const char* kind) -> std::size_t {
      const auto it = runner->second.find(kind);
      return it == runner->second.end() ? 0 : it->second;
    };
    std::printf("runner: journaled=%zu replayed=%zu cancelled=%zu "
                "retried=%zu watchdog-expired=%zu\n",
                count("journal-append"), count("journal-replay"),
                count("task-cancelled"), count("task-retry"),
                count("watchdog-expired"));
  }
  if (objects > 0) {
    std::printf("objects: %zu (%zu failed), %llu bytes\n", objects,
                failed_objects, (unsigned long long)object_bytes);
  }
  if (!pages.empty()) {
    std::printf("pages:\n");
    for (const Row* page : pages) {
      std::printf("  load %d stream %d  %-40s  plt=%8.1f ms  "
                  "degraded=%8s ms  %s\n",
                  page->load, page->session, page->label.c_str(), page->metric,
                  detail_field(page->detail, "degraded_ms").c_str(),
                  page->value != 0 ? "ok" : "FAILED");
    }
  }
}

void print_events(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    if (row.kind == "object" || row.kind == "page") {
      continue;  // synthetic summary rows; use --waterfall / summary
    }
    std::printf("%4d %4d %12lld us  %-8s %-20s flow=%-4llu value=%-8llu "
                "metric=%-10.3f %s\n",
                row.load, row.session, row.t_us, row.layer.c_str(),
                row.kind.c_str(), (unsigned long long)row.flow,
                (unsigned long long)row.value, row.metric, row.label.c_str());
  }
}

// One line per object: a bar over the load's time axis with phase marks —
// '.' queued (fetch discovered, DNS not yet answered), '-' DNS lookup,
// '=' request in flight (sent, no response byte yet), '#' receiving.
void print_waterfall(const std::vector<Row>& rows) {
  constexpr int kWidth = 64;
  std::vector<const Row*> objects;
  long long max_us = 1;
  for (const Row& row : rows) {
    if (row.layer == "browser" && row.kind == "object") {
      objects.push_back(&row);
      max_us = std::max(max_us, detail_us(row.detail, "complete_us"));
    } else if (row.layer == "browser" && row.kind == "page") {
      max_us = std::max(
          max_us, row.t_us + static_cast<long long>(row.metric * 1000.0));
    }
  }
  if (objects.empty()) {
    std::printf("no objects match the filter\n");
    return;
  }
  std::stable_sort(objects.begin(), objects.end(),
                   [](const Row* a, const Row* b) {
                     if (a->load != b->load) {
                       return a->load < b->load;
                     }
                     if (a->session != b->session) {
                       return a->session < b->session;
                     }
                     return a->t_us < b->t_us;
                   });

  const auto col = [&](long long t_us) {
    if (t_us < 0) {
      return -1;
    }
    const long long c = t_us * kWidth / max_us;
    return static_cast<int>(std::min<long long>(c, kWidth - 1));
  };
  std::printf("time axis: 0 .. %.1f ms  (%d columns; "
              "'.' queued  '-' dns  '=' request  '#' receive  '!' failed)\n",
              static_cast<double>(max_us) / 1e3, kWidth);
  for (const Row* object : objects) {
    const long long start = object->t_us;
    const long long dns_done = detail_us(object->detail, "dns_done_us");
    const long long request = detail_us(object->detail, "request_us");
    const long long first_byte = detail_us(object->detail, "first_byte_us");
    const long long complete = detail_us(object->detail, "complete_us");
    const bool failed = detail_field(object->detail, "failed") == "1";
    const long long end = complete >= 0 ? complete : max_us;

    std::string bar(kWidth, ' ');
    const int from = std::clamp(col(start), 0, kWidth - 1);
    const int to = std::clamp(std::max(col(end), from), 0, kWidth - 1);
    for (int i = from; i <= to; ++i) {
      bar[static_cast<std::size_t>(i)] = '.';
    }
    const auto fill = [&](long long phase_start, long long phase_end,
                          char mark) {
      if (phase_start < 0 || phase_end < phase_start) {
        return;
      }
      const int a = std::max(col(phase_start), from);
      const int b = std::min(std::max(col(phase_end), a), to);
      for (int i = a; i <= b; ++i) {
        bar[static_cast<std::size_t>(i)] = mark;
      }
    };
    fill(start, dns_done, '-');
    fill(request, first_byte >= 0 ? first_byte : end, '=');
    fill(first_byte, end, '#');
    if (failed) {
      bar[static_cast<std::size_t>(to)] = '!';
    }

    std::string name = object->label;
    if (name.size() > 36) {
      name = "..." + name.substr(name.size() - 33);
    }
    const std::string attempts = detail_field(object->detail, "attempts");
    std::printf("%2d/%-3d %-36s |%s| %8.1f ms%s%s\n", object->load,
                object->session, name.c_str(), bar.c_str(),
                static_cast<double>(end - start) / 1e3,
                attempts != "1" ? (" x" + attempts).c_str() : "",
                failed ? "  FAILED" : "");
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <cell.csv> [--layer NAME] [--stream N] [--load N] "
               "[--events] [--waterfall]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
  }
  const std::string path = argv[1];
  Filter filter;
  bool events = false;
  bool waterfall = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--layer") {
      filter.layer = value();
    } else if (arg == "--stream") {
      filter.has_stream = true;
      filter.stream = std::atoi(value().c_str());
    } else if (arg == "--load") {
      filter.has_load = true;
      filter.load = std::atoi(value().c_str());
    } else if (arg == "--events") {
      events = true;
    } else if (arg == "--waterfall") {
      waterfall = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# mahimahi-obs-trace-v1", 0) != 0) {
    std::fprintf(stderr,
                 "error: %s is not a mahimahi-obs-trace-v1 CSV (did you "
                 "mean mm_trace_info, for cellular rate traces?)\n",
                 path.c_str());
    return 1;
  }
  std::string columns;
  std::getline(in, columns);  // "load,session,t_us,..."

  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> fields = split(line, ',', 10);
    if (fields.size() != 10) {
      std::fprintf(stderr, "error: malformed row: %s\n", line.c_str());
      return 1;
    }
    Row row;
    row.load = std::atoi(fields[0].c_str());
    row.session = std::atoi(fields[1].c_str());
    row.t_us = std::atoll(fields[2].c_str());
    row.layer = fields[3];
    row.kind = fields[4];
    row.flow = std::strtoull(fields[5].c_str(), nullptr, 10);
    row.value = std::strtoull(fields[6].c_str(), nullptr, 10);
    row.metric = std::atof(fields[7].c_str());
    row.label = fields[8];
    row.detail = fields[9];
    if (filter.matches(row)) {
      rows.push_back(std::move(row));
    }
  }

  if (waterfall) {
    print_waterfall(rows);
  } else if (events) {
    print_events(rows);
  } else {
    print_summary(header, rows);
  }
  return 0;
}
