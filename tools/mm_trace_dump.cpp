// mm-trace-dump: inspect an observability trace CSV written by
// mm_experiment --trace-dir (cell<i>.csv, format "mahimahi-obs-trace-v1").
// Not to be confused with mm_trace_info, which reports on *cellular rate
// traces* (packet-delivery schedules); this tool reads *obs traces* —
// the per-load event/object/page streams recorded by obs::Tracer.
//
//   usage: mm_trace_dump <cell.csv> [options]
//     --layer NAME     only this layer (link, tcp, dns, fault, browser,
//                      runner — the journal's events.csv uses it)
//     --stream N       only this session (stream) index; -1 = shared infra
//     --load N         only this load index
//     --events         list the matching raw events instead of a summary
//     --waterfall      ASCII per-object waterfall (DNS → connect →
//                      request → first byte → complete) for the matching
//                      loads/sessions
//
// Default output is a summary: per-layer/kind event counts, per-load page
// results, and object failure totals. Filters compose with every mode.
// Parsing and the waterfall renderer live in obs/analyze (shared with
// mm_trace_diff and mm_metrics).
//
// Exit status: 0 ok, 1 parse failure, 2 usage error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/analyze.hpp"

using namespace mahimahi::obs;

namespace {

struct Filter {
  std::string layer;  // empty = all
  bool has_stream{false};
  std::int32_t stream{0};
  bool has_load{false};
  int load{0};

  [[nodiscard]] bool matches(const TraceRow& row) const {
    if (!layer.empty() && row.layer != layer) {
      return false;
    }
    if (has_stream && row.session != stream) {
      return false;
    }
    if (has_load && row.load != load) {
      return false;
    }
    return true;
  }
};

void print_summary(const ParsedTrace& trace,
                   const std::vector<TraceRow>& rows) {
  std::printf("# mahimahi-obs-trace-v1 experiment=%s cell=%d label=%s "
              "seed=%llu\n",
              trace.experiment.c_str(), trace.cell_index,
              trace.cell_label.c_str(),
              static_cast<unsigned long long>(trace.seed));

  std::map<int, std::size_t> per_load;
  std::map<std::int32_t, std::size_t> per_session;
  std::map<std::string, std::map<std::string, std::size_t>> per_layer_kind;
  std::size_t objects = 0;
  std::size_t failed_objects = 0;
  std::uint64_t object_bytes = 0;
  std::vector<const TraceRow*> pages;
  for (const TraceRow& row : rows) {
    per_load[row.load]++;
    per_session[row.session]++;
    per_layer_kind[row.layer][row.kind]++;
    if (row.layer == "browser" && row.kind == "object") {
      ++objects;
      object_bytes += row.value;
      if (detail_field(row.detail, "failed") == "1") {
        ++failed_objects;
      }
    } else if (row.layer == "browser" && row.kind == "page") {
      pages.push_back(&row);
    }
  }

  std::printf("rows: %zu across %zu load(s), %zu stream(s)\n", rows.size(),
              per_load.size(), per_session.size());
  for (const auto& [layer, kinds] : per_layer_kind) {
    std::size_t total = 0;
    for (const auto& [kind, count] : kinds) {
      total += count;
    }
    std::printf("  %-8s %8zu\n", layer.c_str(), total);
    for (const auto& [kind, count] : kinds) {
      std::printf("    %-24s %8zu\n", kind.c_str(), count);
    }
  }
  const auto runner = per_layer_kind.find("runner");
  if (runner != per_layer_kind.end()) {
    // Runner-lifecycle counters (journal events.csv, or watchdog rows in a
    // cell trace): the crash-safety story of the run at a glance.
    const auto count = [&](const char* kind) -> std::size_t {
      const auto it = runner->second.find(kind);
      return it == runner->second.end() ? 0 : it->second;
    };
    std::printf("runner: journaled=%zu replayed=%zu cancelled=%zu "
                "retried=%zu watchdog-expired=%zu\n",
                count("journal-append"), count("journal-replay"),
                count("task-cancelled"), count("task-retry"),
                count("watchdog-expired"));
  }
  if (objects > 0) {
    std::printf("objects: %zu (%zu failed), %llu bytes\n", objects,
                failed_objects, (unsigned long long)object_bytes);
  }
  if (!pages.empty()) {
    std::printf("pages:\n");
    for (const TraceRow* page : pages) {
      std::printf("  load %d stream %d  %-40s  plt=%8.1f ms  "
                  "degraded=%8s ms  %s\n",
                  page->load, page->session, page->label.c_str(), page->metric,
                  detail_field(page->detail, "degraded_ms").c_str(),
                  page->value != 0 ? "ok" : "FAILED");
    }
  }
}

void print_events(const std::vector<TraceRow>& rows) {
  for (const TraceRow& row : rows) {
    if (row.kind == "object" || row.kind == "page") {
      continue;  // synthetic summary rows; use --waterfall / summary
    }
    std::printf("%4d %4d %12lld us  %-8s %-20s flow=%-4llu value=%-8llu "
                "metric=%-10.3f %s\n",
                row.load, row.session, static_cast<long long>(row.t_us),
                row.layer.c_str(), row.kind.c_str(),
                (unsigned long long)row.flow, (unsigned long long)row.value,
                row.metric, row.label.c_str());
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <cell.csv> [--layer NAME] [--stream N] [--load N] "
               "[--events] [--waterfall]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
  }
  const std::string path = argv[1];
  Filter filter;
  bool events = false;
  bool waterfall = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--layer") {
      filter.layer = value();
    } else if (arg == "--stream") {
      filter.has_stream = true;
      filter.stream = std::atoi(value().c_str());
    } else if (arg == "--load") {
      filter.has_load = true;
      filter.load = std::atoi(value().c_str());
    } else if (arg == "--events") {
      events = true;
    } else if (arg == "--waterfall") {
      waterfall = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  std::string error;
  const auto parsed = parse_trace_file(path, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "error: %s: %s (did you mean mm_trace_info, for cellular "
                 "rate traces?)\n",
                 path.c_str(), error.c_str());
    return 1;
  }
  std::vector<TraceRow> rows;
  for (const TraceRow& row : parsed->rows) {
    if (filter.matches(row)) {
      rows.push_back(row);
    }
  }

  if (waterfall) {
    const std::string out = render_waterfall(rows);
    std::fwrite(out.data(), 1, out.size(), stdout);
  } else if (events) {
    print_events(rows);
  } else {
    print_summary(*parsed, rows);
  }
  return 0;
}
