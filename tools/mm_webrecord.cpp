// mm-webrecord: generate a synthetic site, record it through RecordShell,
// and write the recorded folder — producing corpora for mm_webreplay.
//
//   usage: mm_webrecord <output-folder> [options]
//     --name <s>      site name (default "site")
//     --servers <n>   distinct origins (default 20)
//     --objects <n>   object count (default 100)
//     --seed <n>      generation seed (default 1)
//     --profile <p>   cnbc | wikihow | nytimes (overrides the above)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/sessions.hpp"
#include "util/strings.hpp"
#include "corpus/site_generator.hpp"

using namespace mahimahi;
using namespace mahimahi::core;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output-folder> [--name s] [--servers n]\n"
                 "          [--objects n] [--seed n] [--profile cnbc|wikihow|nytimes]\n",
                 argv[0]);
    return 2;
  }
  const std::string output = argv[1];

  corpus::SiteSpec spec;
  spec.name = "site";
  spec.server_count = 20;
  spec.object_count = 100;
  spec.seed = 1;

  for (int i = 2; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--name") == 0) {
      spec.name = need_value("--name");
    } else if (std::strcmp(argv[i], "--servers") == 0) {
      spec.server_count = std::atoi(need_value("--servers"));
    } else if (std::strcmp(argv[i], "--objects") == 0) {
      spec.object_count = std::atoi(need_value("--objects"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      spec.seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      const std::string profile = need_value("--profile");
      if (profile == "cnbc") {
        spec = corpus::cnbc_like_spec();
      } else if (profile == "wikihow") {
        spec = corpus::wikihow_like_spec();
      } else if (profile == "nytimes") {
        spec = corpus::nytimes_like_spec();
      } else {
        std::fprintf(stderr, "unknown profile %s\n", profile.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  try {
    const auto site = corpus::generate_site(spec);
    std::printf("site %s: %zu objects over %zu origins, %s\n",
                site.primary_url().c_str(), site.objects.size(),
                site.hostnames.size(),
                util::format_bytes(site.total_bytes()).c_str());

    SessionConfig config;
    config.seed = spec.seed;
    web::PageLoadResult load;
    RecordSession session{site, corpus::LiveWebConfig{}, config};
    const auto store = session.record(&load);
    std::printf("recorded %zu exchanges in %.0f ms of simulated time\n",
                store.size(), to_ms(load.page_load_time));
    store.save(output);
    std::printf("wrote %s (replay with: mm_webreplay %s %s)\n", output.c_str(),
                output.c_str(), site.primary_url().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
