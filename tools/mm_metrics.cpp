// mm-metrics: derive the metrics snapshot of one cell trace CSV, post-hoc.
//
//   usage: mm_metrics <cell.csv> [--csv]
//
// Runs the exact derivation mm_experiment --metrics performs in-process
// (counters, gauges, log-bucketed histograms: queue residence, cwnd
// convergence, retransmit bursts, PLT critical-path shares, fault
// recovery) on an already-exported trace, and prints the snapshot as JSON
// (default) or CSV. Deriving from the CSV reproduces the in-run snapshot
// byte for byte — the trace carries every field the derivation consumes.
//
// Exit status: 0 ok, 2 usage/load error.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/analyze.hpp"
#include "obs/metrics.hpp"

using namespace mahimahi::obs;

int main(int argc, char** argv) {
  std::string path;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <cell.csv> [--csv]\n", argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <cell.csv> [--csv]\n", argv[0]);
    return 2;
  }
  std::string error;
  const auto parsed = parse_trace_file(path, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  const MetricsSnapshot snapshot = derive_cell_metrics(to_load_traces(*parsed));
  const std::string out = csv ? snapshot.to_csv() : snapshot.to_json();
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}
