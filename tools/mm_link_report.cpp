// mm-link-report: analyze a saved link log (mm-link --uplink-log format) —
// the mm-throughput-graph / mm-delay-graph equivalent.
//
//   usage: mm_link_report <log-file> [bin-ms]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/link_log.hpp"

using namespace mahimahi;
using namespace mahimahi::net;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <log-file> [bin-ms]\n", argv[0]);
    return 2;
  }
  const Microseconds bin_width =
      argc > 2 ? static_cast<Microseconds>(std::atoll(argv[2])) * 1000 : 500'000;

  std::ifstream in{argv[1]};
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream contents;
  contents << in.rdbuf();

  LinkLog log = [&] {
    try {
      return LinkLog::parse(contents.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();
  const LinkLogSummary summary = summarize_link_log(log, bin_width);

  std::printf("log:                 %s (%zu events)\n", argv[1], log.size());
  std::printf("arrivals:            %llu\n",
              (unsigned long long)summary.arrivals);
  std::printf("departures:          %llu\n",
              (unsigned long long)summary.departures);
  std::printf("drops:               %llu\n", (unsigned long long)summary.drops);
  std::printf("bytes delivered:     %llu\n",
              (unsigned long long)summary.bytes_delivered);
  std::printf("average throughput:  %.3f Mbit/s\n",
              summary.average_throughput_bps / 1e6);
  std::printf("queueing delay:      p50 %.1f ms, p95 %.1f ms, max %.1f ms\n",
              summary.delay_p50_ms, summary.delay_p95_ms, summary.delay_max_ms);

  std::printf("throughput per %lld ms bin (Mbit/s):\n",
              (long long)(bin_width / 1000));
  for (std::size_t i = 0; i < summary.throughput_bins_bps.size(); ++i) {
    const double mbps = summary.throughput_bins_bps[i] / 1e6;
    std::printf("  %6.1fs %8.2f  %s\n",
                static_cast<double>(i) * static_cast<double>(bin_width) / 1e6,
                mbps, std::string(static_cast<std::size_t>(mbps), '#').c_str());
  }
  return 0;
}
