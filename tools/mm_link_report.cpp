// mm-link-report: analyze a saved link log (mm-link --uplink-log format) —
// the mm-throughput-graph / mm-delay-graph equivalent.
//
//   usage: mm_link_report <log-file> [bin-ms]
//          mm_link_report --cc [controller ...]
//
// The --cc mode generates the log itself: it drives one bulk flow per
// congestion controller (default: every registered one) across a
// reference bottleneck (8 Mbit/s, 40 ms RTT, deep buffer), prints each
// flow's transport endpoint state — controller name, final smoothed_rtt()
// and cwnd_bytes(), pacing rate, retransmissions — and then the usual
// link-log summary for the queue that flow built.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cc/registry.hpp"
#include "net/bulk_probe.hpp"
#include "net/link_log.hpp"

using namespace mahimahi;
using namespace mahimahi::net;

namespace {

void print_drop_reasons(const LinkLogSummary& summary) {
  if (summary.drops == 0) {
    return;
  }
  std::string reasons;
  if (summary.drops_overflow > 0) {
    reasons += "overflow " + std::to_string(summary.drops_overflow);
  }
  if (summary.drops_aqm > 0) {
    reasons += (reasons.empty() ? "" : ", ") +
               std::string("aqm ") + std::to_string(summary.drops_aqm);
  }
  if (summary.drops_unknown > 0) {
    reasons += (reasons.empty() ? "" : ", ") +
               std::string("unattributed ") +
               std::to_string(summary.drops_unknown);
  }
  std::printf("  drop reasons:        %s\n", reasons.c_str());
}

void print_summary(const LinkLogSummary& summary) {
  std::printf("  arrivals %llu, departures %llu, drops %llu\n",
              (unsigned long long)summary.arrivals,
              (unsigned long long)summary.departures,
              (unsigned long long)summary.drops);
  print_drop_reasons(summary);
  std::printf("  queue high water:    %llu packets / %llu bytes\n",
              (unsigned long long)summary.queue_high_water_packets,
              (unsigned long long)summary.queue_high_water_bytes);
  std::printf("  average throughput:  %.3f Mbit/s\n",
              summary.average_throughput_bps / 1e6);
  std::printf("  queueing delay:      p50 %.1f ms, p95 %.1f ms, max %.1f ms\n",
              summary.delay_p50_ms, summary.delay_p95_ms, summary.delay_max_ms);
}

int run_cc_flows(const std::vector<std::string>& controllers) {
  BulkFlowSpec spec;  // defaults: 8 Mbit/s, 40 ms RTT, deep buffer, 3 MB
  std::printf("reference bottleneck: %.0f Mbit/s, %lld ms RTT, deep buffer, "
              "%.0f MB bulk flow per controller\n\n",
              spec.link_mbps, (long long)(2 * spec.one_way_delay / 1000),
              static_cast<double>(spec.bytes) / 1e6);
  for (const std::string& controller : controllers) {
    if (!cc::is_registered(controller)) {
      std::fprintf(stderr, "error: '%s' is not a registered controller\n",
                   controller.c_str());
      return 2;
    }
    spec.congestion_control = controller;
    const BulkFlowReport flow = run_bulk_flow(spec);

    const std::string pacing_text =
        flow.final_pacing_rate > 0
            ? std::to_string(
                  static_cast<long long>(flow.final_pacing_rate * 8 / 1e3)) +
                  " kbit/s"
            : "off";
    // The transport's own typed verdict — "close=normal" for a clean FIN
    // exchange, "close=retransmit-exhausted" etc. under faults — rather
    // than an undifferentiated "closed".
    std::printf("flow: cc=%-6s  srtt=%6.1f ms  cwnd=%8.0f B  "
                "pacing=%s  rexmit=%llu  completed=%.2f s  close=%s%s\n",
                flow.controller.c_str(),
                static_cast<double>(flow.final_srtt) / 1e3,
                flow.final_cwnd_bytes, pacing_text.c_str(),
                (unsigned long long)flow.retransmissions,
                static_cast<double>(flow.completed_at) / 1e6,
                std::string{to_string(flow.close_reason)}.c_str(),
                flow.complete ? "" : "  [INCOMPLETE]");
    print_summary(flow.uplink);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <log-file> [bin-ms]\n"
                 "       %s --cc [controller ...]\n",
                 argv[0], argv[0]);
    return 2;
  }

  if (std::strcmp(argv[1], "--cc") == 0) {
    std::vector<std::string> controllers;
    for (int i = 2; i < argc; ++i) {
      controllers.emplace_back(argv[i]);
    }
    if (controllers.empty()) {
      controllers = cc::registered_controllers();
    }
    return run_cc_flows(controllers);
  }

  const Microseconds bin_width =
      argc > 2 ? static_cast<Microseconds>(std::atoll(argv[2])) * 1000 : 500'000;

  std::ifstream in{argv[1]};
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream contents;
  contents << in.rdbuf();

  LinkLog log = [&] {
    try {
      return LinkLog::parse(contents.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();
  const LinkLogSummary summary = summarize_link_log(log, bin_width);

  std::printf("log:                 %s (%zu events)\n", argv[1], log.size());
  std::printf("arrivals:            %llu\n",
              (unsigned long long)summary.arrivals);
  std::printf("departures:          %llu\n",
              (unsigned long long)summary.departures);
  std::printf("drops:               %llu\n", (unsigned long long)summary.drops);
  if (summary.drops > 0) {
    std::printf("  overflow %llu, aqm %llu, unattributed %llu\n",
                (unsigned long long)summary.drops_overflow,
                (unsigned long long)summary.drops_aqm,
                (unsigned long long)summary.drops_unknown);
  }
  std::printf("queue high water:    %llu packets / %llu bytes\n",
              (unsigned long long)summary.queue_high_water_packets,
              (unsigned long long)summary.queue_high_water_bytes);
  std::printf("bytes delivered:     %llu\n",
              (unsigned long long)summary.bytes_delivered);
  std::printf("average throughput:  %.3f Mbit/s\n",
              summary.average_throughput_bps / 1e6);
  std::printf("queueing delay:      p50 %.1f ms, p95 %.1f ms, max %.1f ms\n",
              summary.delay_p50_ms, summary.delay_p95_ms, summary.delay_max_ms);

  std::printf("throughput per %lld ms bin (Mbit/s):\n",
              (long long)(bin_width / 1000));
  for (std::size_t i = 0; i < summary.throughput_bins_bps.size(); ++i) {
    const double mbps = summary.throughput_bins_bps[i] / 1e6;
    std::printf("  %6.1fs %8.2f  %s\n",
                static_cast<double>(i) * static_cast<double>(bin_width) / 1e6,
                mbps, std::string(static_cast<std::size_t>(mbps), '#').c_str());
  }
  return 0;
}
