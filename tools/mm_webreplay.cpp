// mm-webreplay: load a page from a recorded folder under emulated network
// conditions and report page load time — the toolkit's core loop as a CLI.
//
//   usage: mm_webreplay <recorded-folder> <url> [options]
//     --delay <ms>          DelayShell one-way delay
//     --rate <mbit/s>       LinkShell symmetric constant rate
//     --uplink-trace <f>    LinkShell uplink trace file
//     --downlink-trace <f>  LinkShell downlink trace file
//     --loss <p>            LossShell loss probability per direction
//     --single-server       collapse all origins onto one server
//     --loads <n>           number of measured loads (default 1)
//     --seed <n>            experiment seed (default 1)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/sessions.hpp"
#include "util/strings.hpp"
#include "trace/synthesis.hpp"

using namespace mahimahi;
using namespace mahimahi::core;
using namespace mahimahi::literals;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <recorded-folder> <url> [--delay ms] [--rate mbps]\n"
               "          [--uplink-trace f] [--downlink-trace f] [--loss p]\n"
               "          [--single-server] [--loads n] [--seed n]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(argv[0]);
  }
  const std::string folder = argv[1];
  const std::string url = argv[2];

  Microseconds delay = 0;
  double rate_mbps = 0;
  std::string uplink_trace, downlink_trace;
  double loss = 0;
  bool single_server = false;
  int loads = 1;
  std::uint64_t seed = 1;

  for (int i = 3; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--delay") == 0) {
      delay = static_cast<Microseconds>(std::atof(need_value("--delay")) * 1000);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      rate_mbps = std::atof(need_value("--rate"));
    } else if (std::strcmp(argv[i], "--uplink-trace") == 0) {
      uplink_trace = need_value("--uplink-trace");
    } else if (std::strcmp(argv[i], "--downlink-trace") == 0) {
      downlink_trace = need_value("--downlink-trace");
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      loss = std::atof(need_value("--loss"));
    } else if (std::strcmp(argv[i], "--single-server") == 0) {
      single_server = true;
    } else if (std::strcmp(argv[i], "--loads") == 0) {
      loads = std::atoi(need_value("--loads"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      usage(argv[0]);
    }
  }

  try {
    const auto store = record::RecordStore::load(folder);
    std::printf("loaded %zu exchanges, %zu origin servers\n", store.size(),
                store.distinct_servers().size());

    SessionConfig config;
    config.seed = seed;
    if (delay > 0) {
      config.shells.push_back(DelayShellSpec{delay});
    }
    if (!uplink_trace.empty() || !downlink_trace.empty()) {
      if (uplink_trace.empty() || downlink_trace.empty()) {
        std::fprintf(stderr, "need both --uplink-trace and --downlink-trace\n");
        return 2;
      }
      LinkShellSpec link;
      link.uplink = std::make_shared<const trace::PacketTrace>(
          trace::PacketTrace::load(uplink_trace));
      link.downlink = std::make_shared<const trace::PacketTrace>(
          trace::PacketTrace::load(downlink_trace));
      config.shells.push_back(link);
    } else if (rate_mbps > 0) {
      config.shells.push_back(
          LinkShellSpec::constant_rate_mbps(rate_mbps, rate_mbps));
    }
    if (loss > 0) {
      config.shells.push_back(LossShellSpec{loss, loss});
    }

    ReplaySession::Options options;
    options.single_server = single_server;
    ReplaySession session{store, config, options};

    util::Samples samples;
    for (int i = 0; i < loads; ++i) {
      const auto result = session.load_once(url, i);
      std::printf("load %2d: PLT %8.1f ms  (%zu objects, %zu failed, %s)\n", i,
                  to_ms(result.page_load_time), result.objects_loaded,
                  result.objects_failed,
                  util::format_bytes(result.bytes_downloaded).c_str());
      samples.add(to_ms(result.page_load_time));
    }
    if (loads > 1) {
      std::printf("summary: mean %.1f ms, sd %.1f ms, median %.1f ms\n",
                  samples.mean(), samples.stddev(), samples.median());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
