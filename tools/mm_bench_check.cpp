// mm-bench-check: the CI perf-regression gate.
//
//   usage: mm_bench_check [--update] <baseline.json> <current.json>
//                         [<baseline.json> <current.json> ...]
//
// Each pair diffs a freshly-measured mahimahi-bench-v1 file (BENCH_*.json)
// against its checked-in mahimahi-bench-baseline-v1 file under
// bench/baselines/. For every metric the baseline pins (non-zero value)
// the gate applies the row's tolerance band — direction-aware: ns_per_op
// may not rise past the band, items/bytes_per_second may not fall past it
// — and prints a metric-by-metric delta table. A row with a negative
// tolerance is informational: printed, never failing (wall-clock
// throughput on shared CI runners).
//
//   --update   rewrite each baseline from the current measurement, keeping
//              the existing tolerance policy (the documented refresh
//              procedure — see bench/baselines/README.md). The gate is
//              not applied.
//
// Exit status: 0 all gates pass (or --update wrote all baselines),
//              1 at least one regression / missing benchmark,
//              2 usage or file/parse error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gate/bench_gate.hpp"
#include "util/atomic_file.hpp"

using namespace mahimahi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--update] <baseline.json> <current.json> "
               "[<baseline.json> <current.json> ...]\n",
               argv0);
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& content) {
  // Atomic (temp + fsync + rename): --update can never leave a baseline
  // half-written, even if the runner is killed mid-write.
  return mahimahi::util::atomic_write_file(path, content);
}

}  // namespace

int main(int argc, char** argv) {
  bool update = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", argv[i]);
      usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty() || paths.size() % 2 != 0) {
    usage(argv[0]);
  }

  bool all_ok = true;
  for (std::size_t i = 0; i < paths.size(); i += 2) {
    const std::string& baseline_path = paths[i];
    const std::string& current_path = paths[i + 1];
    try {
      const std::vector<gate::BenchRow> current =
          gate::load_bench_file(current_path);
      if (update) {
        // Refresh: keep the tolerance policy, re-pin every measured row.
        gate::Baseline baseline;
        try {
          baseline = gate::load_baseline_file(baseline_path);
        } catch (const std::exception&) {
          // First-time pin: defaults apply until tolerances are curated.
          std::fprintf(stderr, "[gate] %s: creating new baseline\n",
                       baseline_path.c_str());
        }
        baseline.rows = current;
        if (!write_file(baseline_path, gate::make_baseline_json(baseline))) {
          return 2;
        }
        std::printf("updated %s from %s (%zu rows)\n", baseline_path.c_str(),
                    current_path.c_str(), current.size());
        continue;
      }
      const gate::Baseline baseline =
          gate::load_baseline_file(baseline_path);
      const gate::GateResult result = gate::check(baseline, current);
      std::printf("=== %s vs %s ===\n", current_path.c_str(),
                  baseline_path.c_str());
      std::fputs(gate::format_delta_table(result).c_str(), stdout);
      if (result.ok()) {
        std::printf("gate: PASS (%zu metrics within their bands)\n\n",
                    result.deltas.size());
      } else {
        std::printf("gate: FAIL (%d regression(s), %d missing); if the "
                    "change is intentional, refresh with: mm_bench_check "
                    "--update %s %s\n\n",
                    result.regressions, result.missing, baseline_path.c_str(),
                    current_path.c_str());
        all_ok = false;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  return all_ok ? 0 : 1;
}
