// mm-trace-info: inspect a mahimahi packet-delivery trace file.
//
//   usage: mm_trace_info <trace-file>
//
// Prints opportunity count, duration, average rate, and a per-second rate
// profile — handy before feeding a trace to LinkShell.

#include <cstdio>

#include "trace/trace.hpp"

using namespace mahimahi;
using namespace mahimahi::literals;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace-file>\n", argv[0]);
    return 2;
  }
  trace::PacketTrace trace = [&] {
    try {
      return trace::PacketTrace::load(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("trace:                  %s\n", argv[1]);
  std::printf("delivery opportunities: %zu\n", trace.opportunity_count());
  std::printf("duration (one lap):     %.3f s\n",
              static_cast<double>(trace.period()) / 1e6);
  std::printf("average rate:           %.2f Mbit/s\n",
              trace.average_bits_per_second() / 1e6);

  // Per-second rate profile.
  const Microseconds second = 1_s;
  std::printf("per-second profile (Mbit/s):\n");
  std::size_t index = 0;
  for (Microseconds window = 0; window < trace.period(); window += second) {
    std::size_t count = 0;
    while (index < trace.opportunity_count() &&
           trace.opportunities()[index] < window + second) {
      ++count;
      ++index;
    }
    const double mbps =
        static_cast<double>(count) * trace::kOpportunityBytes * 8.0 / 1e6;
    std::printf("  %4llds  %8.2f  %s\n", (long long)(window / 1'000'000), mbps,
                std::string(static_cast<std::size_t>(mbps / 2), '#').c_str());
  }
  return 0;
}
