// mm-experiment: run a declarative scenario-matrix experiment.
//
//   usage: mm_experiment <spec-file> [options]
//     --list              expand the matrix, print one line per cell, exit
//     --shard i/n         run only cells with index % n == i (CI fan-out;
//                         cell indices and seeds come from the full
//                         matrix, so shard rows equal the unsharded rows)
//     --loads N           override the spec's loads-per-cell
//     --no-probes         skip the per-cell transport probes
//     --json PATH         write the experiment report JSON (default
//                         <name>.json)
//     --csv PATH          write the report CSV (default <name>.csv)
//     --bench-json PATH   also write mahimahi-bench-v1 perf rows
//                         (CI uploads BENCH_experiment.json)
//     --trace-dir DIR     record a full observability trace of every load
//                         and write three artifacts per cell into DIR:
//                         cell<i>.trace.json (Chrome trace-event, loadable
//                         in Perfetto), cell<i>.har (HAR 1.2) and
//                         cell<i>.csv (mm_trace_dump input). Artifact
//                         bytes are deterministic at any MAHI_THREADS and
//                         across --shard splits.
//     --metrics           derive per-cell metrics (counters, gauges,
//                         log-bucketed histograms: queue residence, cwnd
//                         convergence, retransmit bursts, PLT critical
//                         path, fault recovery) and attach a "metrics"
//                         block to every cell of the report JSON. Off, the
//                         report is byte-identical to a pre-metrics build.
//                         Metric bytes are deterministic at any
//                         MAHI_THREADS and across --shard / --resume.
//     --progress          periodic progress line on stderr (tasks done /
//                         total, cells done / total, elapsed, ETA). Purely
//                         observational: never touches stdout or any
//                         artifact.
//     --profile           wall-clock profiler: aggregate real time per
//                         phase (record/replay/probe/journal/metrics/
//                         export) across the pool, print the table on
//                         stderr and write profile.json. Wall-clock is
//                         nondeterministic by nature — profile.json is
//                         excluded from the determinism-checked artifact
//                         set, and profiling perturbs none of them.
//     --selfcheck         run the whole experiment twice — once on 1
//                         thread, once on several — and fail unless the
//                         serialized reports are byte-identical (the
//                         engine's reproducibility contract)
//     --fail-on-error     exit 1 when any cell recorded a failed load
//                         (fault cells tolerate failures by default —
//                         degradation is data; CI's healthy runs use this
//                         flag to make any failure fatal). Reports and
//                         bench artifacts are written before the verdict;
//                         each failing cell is listed with its typed error.
//     --journal DIR       crash-safe execution: append one fsync'd,
//                         checksummed record per completed task to
//                         DIR/journal.bin, guarded by DIR/MANIFEST (spec,
//                         matrix and toolchain fingerprints). A SIGKILL
//                         loses at most the record being written.
//     --resume            with --journal: replay journaled results and run
//                         only the missing work. Refuses (exit 2, naming
//                         the field) a journal whose manifest does not
//                         match this spec/options/binary. The completed
//                         artifacts are byte-identical to an uninterrupted
//                         run at any thread count or shard split.
//
//   env: MAHI_EXP_LOADS caps loads-per-cell when --loads is absent;
//        MAHI_THREADS sizes the shared pool, as everywhere in the repo.
//
// SIGINT/SIGTERM cancel gracefully: no new tasks start, in-flight ones
// drain (their results still reach the journal), and the report is written
// partial with "interrupted": true and per-cell completion counts.
//
// Exit status: 0 ok, 1 runtime/selfcheck failure, 2 usage/spec error,
// 130 interrupted (resume with --journal ... --resume).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "experiment/runner.hpp"
#include "obs/profile.hpp"
#include "util/random.hpp"

using namespace mahimahi;
using namespace mahimahi::experiment;

namespace {

/// Graceful-cancellation token, flipped by the signal handler and polled
/// by the runner at every task admission. atomic<bool> stores are
/// async-signal-safe (lock-free on every platform we build for).
std::atomic<bool> g_cancel{false};

void handle_cancel_signal(int) { g_cancel.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_cancel_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: an experiment mid-simulation polls the token at task
  // boundaries anyway, and a second signal should keep working.
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

/// Fingerprint of the spec file's exact bytes, pinned in the journal
/// manifest: a resume against an edited spec is refused even when the
/// edit would expand to the same matrix hash.
std::string spec_file_fingerprint(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    return "-";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  char hash[32];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(util::fnv1a(buffer.str())));
  return hash;
}

std::string cell_label(const CellResult& cell) {
  std::string label = cell.site + "/" + cell.protocol + "/" + cell.shell +
                      "/" + cell.queue + "/" + cell.cc + "/" + cell.fleet;
  if (cell.fault != "none") {
    label += "/" + cell.fault;
  }
  return label;
}

void print_cells(const ExperimentSpec& spec) {
  const std::vector<Cell> cells = expand_matrix(spec);
  std::printf("# %zu cells (site/protocol/shell/queue/cc/fleet[/fault]), "
              "seed %llu, %d loads per cell\n",
              cells.size(), static_cast<unsigned long long>(spec.seed),
              spec.loads_per_cell);
  for (const Cell& cell : cells) {
    std::printf("%4d  %-48s flows=%zu sessions=%d\n", cell.index,
                cell.label().c_str(), cell.cc.fleet.size(),
                cell.fleet.sessions);
  }
}

void print_summary(const Report& report) {
  std::printf("%-4s %-44s %10s %10s %8s %6s\n", "cell", "label",
              "median-plt", "queue-p95", "jain", "loads");
  for (const CellResult& cell : report.cells) {
    const std::string label = cell_label(cell);
    std::printf("%-4d %-44s %8.0fms", cell.index, label.c_str(),
                cell.plt_ms.empty() ? 0.0 : cell.plt_ms.median());
    if (cell.probe_ran) {
      std::printf(" %8.1fms %8.4f", cell.queue_delay_p95_ms, cell.jain_index);
    } else {
      std::printf(" %10s %8s", "-", "-");
    }
    std::printf(" %6zu\n", cell.plt_ms.size());
    if (cell.probe_ran && cell.flows.size() > 1) {
      for (const FlowResult& flow : cell.flows) {
        std::printf("       flow %-8s share=%.4f  %8.0f kbit/s  rexmit=%llu\n",
                    flow.controller.c_str(), flow.share,
                    flow.throughput_bps / 1e3,
                    static_cast<unsigned long long>(flow.retransmissions));
      }
    }
  }
}

int env_loads() {
  const char* value = std::getenv("MAHI_EXP_LOADS");
  if (value == nullptr) {
    return 0;
  }
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 0;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spec-file> [--list] [--shard i/n] [--loads N] "
      "[--no-probes] [--json PATH] [--csv PATH] [--bench-json PATH] "
      "[--trace-dir DIR] [--metrics] [--progress] [--profile] "
      "[--journal DIR] [--resume] [--selfcheck] [--fail-on-error]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
  }
  const std::string spec_path = argv[1];
  bool list = false;
  bool selfcheck = false;
  bool fail_on_error = false;
  bool progress = false;
  bool profile = false;
  RunOptions options;
  std::string json_path;
  std::string csv_path;
  std::string bench_json_path;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (arg == "--fail-on-error") {
      fail_on_error = true;
    } else if (arg == "--no-probes") {
      options.transport_probes = false;
    } else if (arg == "--loads") {
      options.loads_override = std::atoi(value().c_str());
      if (options.loads_override < 1) {
        std::fprintf(stderr, "error: --loads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--shard") {
      const std::string shard = value();
      const std::size_t slash = shard.find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "error: --shard expects i/n, e.g. 0/4\n");
        return 2;
      }
      options.shard_index = std::atoi(shard.substr(0, slash).c_str());
      options.shard_count = std::atoi(shard.substr(slash + 1).c_str());
      if (options.shard_count < 1 || options.shard_index < 0 ||
          options.shard_index >= options.shard_count) {
        std::fprintf(stderr, "error: --shard needs 0 <= i < n\n");
        return 2;
      }
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--bench-json") {
      bench_json_path = value();
    } else if (arg == "--trace-dir") {
      options.trace_dir = value();
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--journal") {
      options.journal_dir = value();
    } else if (arg == "--resume") {
      options.resume = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  if (options.resume && options.journal_dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --journal DIR\n");
    return 2;
  }

  ExperimentSpec spec;
  try {
    spec = load_spec_file(spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!options.journal_dir.empty()) {
    options.spec_fingerprint = spec_file_fingerprint(spec_path);
  }

  // MAHI_EXP_LOADS is a *cap* (CI scale guard), never an amplifier; an
  // explicit --loads wins over both it and the spec.
  if (options.loads_override == 0) {
    const int cap = env_loads();
    if (cap > 0 && cap < spec.loads_per_cell) {
      options.loads_override = cap;
    }
  }

  if (list) {
    print_cells(spec);
    return 0;
  }

  try {
    install_signal_handlers();
    options.cancel = &g_cancel;
    if (profile) {
      obs::Profiler::enable(true);
    }
    // --progress: stderr-only, throttled to ~1 line/s by a CAS on the
    // last-print timestamp (callbacks arrive concurrently from workers).
    const auto started = std::chrono::steady_clock::now();
    std::atomic<long long> last_print_ms{-1000};
    if (progress) {
      options.on_progress = [&](int done, int total, int cells_done,
                                int cells_total) {
        const long long elapsed_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        long long last = last_print_ms.load(std::memory_order_relaxed);
        if (done < total && elapsed_ms - last < 1000) {
          return;
        }
        if (!last_print_ms.compare_exchange_strong(last, elapsed_ms)) {
          return;  // another worker is printing this tick
        }
        const double elapsed_s = static_cast<double>(elapsed_ms) / 1e3;
        const double eta_s =
            done > 0 ? elapsed_s * (total - done) / done : 0.0;
        std::fprintf(stderr,
                     "[progress] %d/%d tasks  %d/%d cells  %.1fs elapsed"
                     "  ETA %.1fs\n",
                     done, total, cells_done, cells_total, elapsed_s, eta_s);
      };
    }
    const Report report = run_experiment(spec, options);
    std::printf("=== experiment %s: %zu/%d cells (shard %d/%d), "
                "%d loads/cell ===\n",
                report.name.c_str(), report.cells.size(), report.total_cells,
                report.shard_index, report.shard_count,
                report.loads_per_cell);
    print_summary(report);

    // Reports are written before the selfcheck verdict decides the exit
    // status: when the selfcheck fails, the (divergent) report files are
    // precisely the diagnostic CI must upload.
    const std::string json_out =
        json_path.empty() ? spec.name + ".json" : json_path;
    const std::string csv_out =
        csv_path.empty() ? spec.name + ".csv" : csv_path;
    bool wrote = Report::write_file(json_out, report.to_json());
    wrote = Report::write_file(csv_out, report.to_csv()) && wrote;
    if (!bench_json_path.empty()) {
      wrote =
          Report::write_file(bench_json_path, report.to_bench_json()) && wrote;
    }
    std::fprintf(stderr, "[experiment] wrote %s and %s\n", json_out.c_str(),
                 csv_out.c_str());

    if (profile) {
      // Wall-clock numbers: a diagnostic artifact, deliberately outside
      // the determinism-checked set (its bytes differ every run).
      std::fprintf(stderr, "%s", obs::Profiler::report().c_str());
      if (Report::write_file("profile.json", obs::Profiler::to_json())) {
        std::fprintf(stderr,
                     "[experiment] wrote profile.json (wall-clock; "
                     "excluded from determinism checks)\n");
      }
    }

    if (report.interrupted) {
      // Partial artifacts are on disk (marked "interrupted": true with
      // per-cell completion counts); the journal holds every finished
      // task. Exit with the conventional interrupted status.
      std::size_t done = 0;
      std::size_t expected = 0;
      for (const CellResult& cell : report.cells) {
        done += static_cast<std::size_t>(cell.loads_done);
        expected += static_cast<std::size_t>(cell.loads_expected);
        if (cell.loads_done < cell.loads_expected) {
          std::fprintf(stderr, "[experiment]   cell %d (%s): %d/%d loads\n",
                       cell.index, cell_label(cell).c_str(), cell.loads_done,
                       cell.loads_expected);
        }
      }
      std::fprintf(
          stderr,
          "[experiment] interrupted: %zu/%zu loads done; %s\n", done,
          expected,
          options.journal_dir.empty()
              ? "no journal — a rerun starts over"
              : ("resume with: --journal " + options.journal_dir +
                 " --resume")
                    .c_str());
      return 130;
    }

    if (selfcheck) {
      // Rerun the identical experiment at a deliberately different thread
      // count; the serialized reports must match byte for byte. The rerun
      // must actually run: journal replay (or appending to the same
      // journal) would make the check vacuous, so it runs journal-free.
      const int current = (options.runner != nullptr
                               ? options.runner->thread_count()
                               : core::ParallelRunner::shared().thread_count());
      core::ParallelRunner other{current == 1 ? 4 : 1};
      RunOptions rerun_options = options;
      rerun_options.runner = &other;
      rerun_options.journal_dir.clear();
      rerun_options.resume = false;
      const Report rerun = run_experiment(spec, rerun_options);
      const bool identical = rerun.to_json() == report.to_json() &&
                             rerun.to_csv() == report.to_csv();
      std::printf("selfcheck: reports byte-identical at %d vs %d "
                  "thread(s): %s\n",
                  current, other.thread_count(), identical ? "yes" : "NO");
      if (!identical) {
        // Both sides of the divergence on disk, diffable.
        Report::write_file(json_out + ".selfcheck-divergent",
                           rerun.to_json());
        return 1;
      }
    }

    if (fail_on_error) {
      // The verdict comes after every artifact is on disk (above): a
      // failing CI run still uploads its report. Each failing cell is
      // named with its typed errors so the log alone identifies the
      // culprit.
      std::size_t failed = 0;
      for (const CellResult& cell : report.cells) {
        if (cell.failed_loads == 0 && cell.load_errors.empty()) {
          continue;
        }
        failed += cell.failed_loads;
        std::fprintf(stderr, "[experiment] cell %d (%s): %zu failed load(s)\n",
                     cell.index, cell_label(cell).c_str(), cell.failed_loads);
        for (const std::string& error : cell.load_errors) {
          std::fprintf(stderr, "[experiment]   %s\n", error.c_str());
        }
      }
      if (failed > 0) {
        std::fprintf(stderr,
                     "[experiment] --fail-on-error: %zu failed load(s)\n",
                     failed);
        return 1;
      }
    }
    return wrote ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    // Usage-class refusals (bad shard, journal-manifest mismatch): the
    // caller's invocation is wrong, not the run.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
