#include "gate/bench_gate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mahimahi::gate {
namespace {

constexpr const char* kBenchJson = R"({
  "schema": "mahimahi-bench-v1",
  "benchmarks": [
    {"name": "loop_schedule", "ns_per_op": 100.0, "items_per_second": 1e7,
     "bytes_per_second": 0},
    {"name": "fleet_plt_p50_ms", "ns_per_op": 2500000.0,
     "items_per_second": 0, "bytes_per_second": 0}
  ]
})";

Baseline simple_baseline() {
  Baseline baseline;
  baseline.default_tolerance = 0.10;
  baseline.rows = {
      BenchRow{"loop_schedule", 100.0, 1e7, 0},
      BenchRow{"fleet_plt_p50_ms", 2'500'000.0, 0, 0},
  };
  return baseline;
}

TEST(BenchGate, ParsesBenchV1) {
  const std::vector<BenchRow> rows = parse_bench_json(kBenchJson);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "loop_schedule");
  EXPECT_DOUBLE_EQ(rows[0].ns_per_op, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].items_per_second, 1e7);
  EXPECT_EQ(rows[1].name, "fleet_plt_p50_ms");
}

TEST(BenchGate, RejectsWrongSchemaAndMalformedJson) {
  EXPECT_THROW(parse_bench_json(R"({"schema": "other", "benchmarks": []})"),
               std::invalid_argument);
  EXPECT_THROW(parse_bench_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_bench_json("[]"), std::invalid_argument);
  EXPECT_THROW(
      parse_bench_json(
          R"({"schema": "mahimahi-bench-v1", "benchmarks": [{"ns_per_op": 1}]})"),
      std::invalid_argument);
}

TEST(BenchGate, IdenticalMeasurementPasses) {
  const GateResult result =
      check(simple_baseline(), parse_bench_json(kBenchJson));
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  // loop_schedule compares ns_per_op + items_per_second; the fleet row
  // pins only ns_per_op (its zero counters are "not reported").
  EXPECT_EQ(result.deltas.size(), 3u);
  for (const MetricDelta& delta : result.deltas) {
    EXPECT_EQ(delta.status, MetricStatus::kOk) << delta.row;
  }
}

TEST(BenchGate, InjectedRegressionFails) {
  // The satellite's proof-of-life: a synthetic 30% slowdown on a 10% band
  // must fail the gate, naming the metric that moved.
  std::vector<BenchRow> current = parse_bench_json(kBenchJson);
  current[1].ns_per_op *= 1.30;
  const GateResult result = check(simple_baseline(), current);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1);
  bool found = false;
  for (const MetricDelta& delta : result.deltas) {
    if (delta.row == "fleet_plt_p50_ms" && delta.metric == "ns_per_op") {
      EXPECT_EQ(delta.status, MetricStatus::kRegressed);
      EXPECT_NEAR(delta.change_pct, 30.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const std::string table = format_delta_table(result);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos) << table;
  EXPECT_NE(table.find("fleet_plt_p50_ms"), std::string::npos) << table;
}

TEST(BenchGate, DirectionAwareness) {
  // ns_per_op regresses upward only; items_per_second downward only.
  Baseline baseline = simple_baseline();
  std::vector<BenchRow> faster = parse_bench_json(kBenchJson);
  faster[0].ns_per_op *= 0.5;        // much faster
  faster[0].items_per_second *= 2.0; // much more throughput
  const GateResult good = check(baseline, faster);
  EXPECT_TRUE(good.ok());
  int improved = 0;
  for (const MetricDelta& delta : good.deltas) {
    improved += delta.status == MetricStatus::kImproved ? 1 : 0;
  }
  EXPECT_EQ(improved, 2);

  std::vector<BenchRow> starved = parse_bench_json(kBenchJson);
  starved[0].items_per_second *= 0.5;  // throughput collapse
  const GateResult bad = check(baseline, starved);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.regressions, 1);
}

TEST(BenchGate, PerRowToleranceOverridesAndInformationalRows) {
  Baseline baseline = simple_baseline();
  baseline.tolerances["loop_schedule"] = 0.50;   // loose
  baseline.tolerances["fleet_plt_p50_ms"] = -1;  // informational
  std::vector<BenchRow> current = parse_bench_json(kBenchJson);
  current[0].ns_per_op *= 1.40;  // within the loosened band
  current[1].ns_per_op *= 5.00;  // way off, but informational
  const GateResult result = check(baseline, current);
  EXPECT_TRUE(result.ok()) << format_delta_table(result);
  bool info_seen = false;
  for (const MetricDelta& delta : result.deltas) {
    info_seen |= delta.status == MetricStatus::kInfo;
  }
  EXPECT_TRUE(info_seen);
}

TEST(BenchGate, MissingBenchmarkFailsNewBenchmarkDoesNot) {
  const Baseline baseline = simple_baseline();
  std::vector<BenchRow> current = parse_bench_json(kBenchJson);
  current.erase(current.begin());  // loop_schedule vanished
  current.push_back(BenchRow{"brand_new", 5.0, 0, 0});
  const GateResult result = check(baseline, current);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.missing, 1);
  EXPECT_EQ(result.regressions, 0);
  bool new_seen = false;
  for (const MetricDelta& delta : result.deltas) {
    new_seen |= delta.status == MetricStatus::kNew;
  }
  EXPECT_TRUE(new_seen);
}

TEST(BenchGate, BaselineRoundTripsThroughItsSerialization) {
  Baseline baseline = simple_baseline();
  baseline.tolerances["loop_schedule"] = 0.05;
  baseline.tolerances["fleet_wall_clock"] = -1;
  const std::string json = make_baseline_json(baseline);
  const Baseline reparsed = parse_baseline_json(json);
  EXPECT_DOUBLE_EQ(reparsed.default_tolerance, baseline.default_tolerance);
  ASSERT_EQ(reparsed.rows.size(), baseline.rows.size());
  EXPECT_EQ(reparsed.rows[0].name, baseline.rows[0].name);
  EXPECT_DOUBLE_EQ(reparsed.rows[0].ns_per_op, baseline.rows[0].ns_per_op);
  ASSERT_EQ(reparsed.tolerances.size(), 2u);
  EXPECT_DOUBLE_EQ(reparsed.tolerances.at("loop_schedule"), 0.05);
  EXPECT_LT(reparsed.tolerances.at("fleet_wall_clock"), 0);
  // And the round-trip is a fixed point (refresh diffs stay minimal).
  EXPECT_EQ(make_baseline_json(reparsed), json);
}

TEST(BenchGate, BaselineParserRejectsBadTolerances) {
  EXPECT_THROW(parse_baseline_json(
                   R"({"schema": "mahimahi-bench-baseline-v1",
                       "default_tolerance": 0, "benchmarks": []})"),
               std::invalid_argument);
  EXPECT_THROW(parse_baseline_json(
                   R"({"schema": "mahimahi-bench-baseline-v1",
                       "tolerances": {"a": "tight"}, "benchmarks": []})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mahimahi::gate
