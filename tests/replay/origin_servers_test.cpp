// OriginServerSet tests, including a full record -> replay round trip at
// the HTTP level (the browser-level loop lives in tests/integration).

#include "replay/origin_servers.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "record/proxy.hpp"

namespace mahimahi::replay {
namespace {

const net::Address kA{net::Ipv4{93, 184, 216, 34}, 80};
const net::Address kB{net::Ipv4{151, 101, 1, 1}, 80};
const net::Address kB443{net::Ipv4{151, 101, 1, 1}, 443};

record::RecordedExchange make_exchange(std::string_view url, net::Address server,
                                       std::string body) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get(url);
  exchange.response = http::make_ok(std::move(body));
  exchange.server_address = server;
  return exchange;
}

record::RecordStore three_origin_store() {
  record::RecordStore store;
  store.add(make_exchange("http://www.site.test/", kA, "root-html"));
  store.add(make_exchange("http://cdn.site.test/a.js", kB, "js-content"));
  store.add(make_exchange("https://cdn.site.test/s.css", kB443, "css-content"));
  return store;
}

TEST(OriginServerSet, MultiOriginSpawnsOneServerPerRecordedAddress) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};
  EXPECT_EQ(servers.server_count(), 3u);  // (ip,port) pairs
  // DNS: every recorded hostname resolves to its recorded IP.
  EXPECT_EQ(servers.dns_table().lookup("www.site.test"), kA.ip);
  EXPECT_EQ(servers.dns_table().lookup("cdn.site.test"), kB.ip);
}

TEST(OriginServerSet, HomogeneousFleetDefaultsToRegistryDefault) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};
  ASSERT_EQ(servers.server_controllers().size(), 3u);
  for (const auto& name : servers.server_controllers()) {
    EXPECT_EQ(name, "reno");
  }
}

TEST(OriginServerSet, CcFleetAssignsControllersBySpawnOrder) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet::Options options;
  options.cc_fleet = {"bbr", "cubic"};
  OriginServerSet servers{fabric, store, options};
  // Spawn order follows distinct_servers()' sorted (ip, port) order:
  // 93.184.216.34:80, 151.101.1.1:80, 151.101.1.1:443 — so the two-entry
  // fleet wraps around on the third server.
  ASSERT_EQ(servers.server_controllers().size(), 3u);
  EXPECT_EQ(servers.server_controllers()[0], "bbr");
  EXPECT_EQ(servers.server_controllers()[1], "cubic");
  EXPECT_EQ(servers.server_controllers()[2], "bbr");
}

TEST(OriginServerSet, CcByOriginPinsAHostnamesServers) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet::Options options;
  options.tcp.congestion_control = "cubic";
  options.cc_by_origin["cdn.site.test"] = "vegas";
  OriginServerSet servers{fabric, store, options};
  ASSERT_EQ(servers.server_controllers().size(), 3u);
  // Both of cdn.site.test's (ip,port) servers run vegas; www stays cubic.
  int vegas = 0;
  int cubic = 0;
  for (const auto& name : servers.server_controllers()) {
    vegas += name == "vegas" ? 1 : 0;
    cubic += name == "cubic" ? 1 : 0;
  }
  EXPECT_EQ(vegas, 2);
  EXPECT_EQ(cubic, 1);
}

TEST(OriginServerSet, CcByOriginRejectsUnknownHostname) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet::Options options;
  options.cc_by_origin["cdn.site.tset"] = "bbr";  // typo must not be a no-op
  EXPECT_THROW((OriginServerSet{fabric, store, options}),
               std::invalid_argument);
}

TEST(OriginServerSet, ServersAnswerWithRecordedBytes) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};

  net::HttpClientConnection client{fabric, kA};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://www.site.test/"),
               [&](http::Response r) { got = std::move(r); });
  loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "root-html");
}

TEST(OriginServerSet, EveryServerServesWholeCorpus) {
  // The paper: "each of which can access the entire recorded content".
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};

  // Ask server A for content recorded from server B's hostname.
  net::HttpClientConnection client{fabric, kA};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://cdn.site.test/a.js"),
               [&](http::Response r) { got = std::move(r); });
  loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "js-content");
}

TEST(OriginServerSet, UnmatchedRequestGets404) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};
  net::HttpClientConnection client{fabric, kA};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://www.site.test/not-recorded"),
               [&](http::Response r) { got = std::move(r); });
  loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
}

TEST(OriginServerSet, SingleServerModeCollapsesTopology) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet::Options options;
  options.single_server = true;
  OriginServerSet servers{fabric, store, options};
  // Recorded ports were {80, 443}: one listener per port, same IP.
  EXPECT_EQ(servers.server_count(), 2u);
  EXPECT_EQ(servers.dns_table().lookup("www.site.test"),
            options.single_server_ip);
  EXPECT_EQ(servers.dns_table().lookup("cdn.site.test"),
            options.single_server_ip);

  net::HttpClientConnection client{
      fabric, net::Address{options.single_server_ip, 80}};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://cdn.site.test/a.js"),
               [&](http::Response r) { got = std::move(r); });
  loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "js-content");
}

TEST(OriginServerSet, RecordThenReplayRoundTrip) {
  // Record through the proxy, then replay from the store: the replayed
  // response must be byte-identical to the live one.
  net::EventLoop loop;
  record::RecordStore store;
  {
    net::Fabric inner{loop};
    net::Fabric outer{loop};
    record::RecordingProxy proxy{inner, outer, store};
    net::HttpServer origin{outer, kA, [](const http::Request& r) {
                             http::Response resp =
                                 http::make_ok("live body for " + r.target);
                             resp.headers.add("X-Origin", "the-real-one");
                             return resp;
                           }};
    net::HttpClientConnection app{inner, kA};
    app.fetch(http::make_get("http://www.site.test/page?v=7"),
              [](http::Response) {});
    loop.run();
  }
  ASSERT_EQ(store.size(), 1u);

  net::Fabric replay_fabric{loop};
  OriginServerSet servers{replay_fabric, store};
  net::HttpClientConnection client{replay_fabric, kA};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://www.site.test/page?v=7"),
               [&](http::Response r) { got = std::move(r); });
  loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, "live body for /page?v=7");
  EXPECT_EQ(got->headers.get("X-Origin"), "the-real-one");
}

TEST(OriginServerSet, RequestCountersAggregate) {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  const auto store = three_origin_store();
  OriginServerSet servers{fabric, store};
  net::HttpClientConnection c1{fabric, kA};
  net::HttpClientConnection c2{fabric, kB};
  c1.fetch(http::make_get("http://www.site.test/"), [](http::Response) {});
  c2.fetch(http::make_get("http://cdn.site.test/a.js"), [](http::Response) {});
  loop.run();
  EXPECT_EQ(servers.requests_served(), 2u);
  EXPECT_EQ(servers.connections_accepted(), 2u);
}

}  // namespace
}  // namespace mahimahi::replay
