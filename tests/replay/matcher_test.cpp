#include "replay/matcher.hpp"

#include <gtest/gtest.h>

namespace mahimahi::replay {
namespace {

record::RecordedExchange make_exchange(std::string_view url, std::string body,
                                       http::Method method = http::Method::kGet) {
  record::RecordedExchange exchange;
  exchange.request = http::make_get(url);
  exchange.request.method = method;
  exchange.response = http::make_ok(std::move(body));
  exchange.server_address = net::Address{net::Ipv4{10, 0, 0, 1}, 80};
  return exchange;
}

record::RecordStore site_store() {
  record::RecordStore store;
  store.add(make_exchange("http://www.site.test/", "root"));
  store.add(make_exchange("http://www.site.test/page?a=1&b=2", "ab"));
  store.add(make_exchange("http://www.site.test/page?a=1&c=3", "ac"));
  store.add(make_exchange("http://cdn.site.test/lib.js", "js"));
  store.add(make_exchange("http://www.site.test/api", "get-api"));
  store.add(make_exchange("http://www.site.test/api", "post-api",
                          http::Method::kPost));
  return store;
}

TEST(Matcher, ExactMatchWins) {
  const auto store = site_store();
  const Matcher matcher{store};
  const auto response =
      matcher.respond(http::make_get("http://www.site.test/page?a=1&c=3"));
  EXPECT_EQ(response.body, "ac");
}

TEST(Matcher, LongestQueryPrefixWhenNoExact) {
  const auto store = site_store();
  const Matcher matcher{store};
  // "a=1&b=9" shares "a=1&b=" (6 chars) with the b=2 recording but only
  // "a=1&" (4) with the c=3 one.
  const auto response =
      matcher.respond(http::make_get("http://www.site.test/page?a=1&b=9"));
  EXPECT_EQ(response.body, "ab");
}

TEST(Matcher, HostMustMatch) {
  const auto store = site_store();
  const Matcher matcher{store};
  EXPECT_EQ(matcher.find(http::make_get("http://other.test/")), nullptr);
  EXPECT_NE(matcher.find(http::make_get("http://www.site.test/")), nullptr);
}

TEST(Matcher, PathMustMatchExactly) {
  const auto store = site_store();
  const Matcher matcher{store};
  EXPECT_EQ(matcher.find(http::make_get("http://www.site.test/pag")), nullptr);
  EXPECT_EQ(matcher.find(http::make_get("http://www.site.test/page/")), nullptr);
}

TEST(Matcher, NoMatchYields404) {
  const auto store = site_store();
  const Matcher matcher{store};
  const auto response =
      matcher.respond(http::make_get("http://www.site.test/missing"));
  EXPECT_EQ(response.status, 404);
}

TEST(Matcher, MethodBreaksTies) {
  const auto store = site_store();
  const Matcher matcher{store};
  http::Request post = http::make_get("http://www.site.test/api");
  post.method = http::Method::kPost;
  EXPECT_EQ(matcher.respond(post).body, "post-api");
  EXPECT_EQ(matcher.respond(http::make_get("http://www.site.test/api")).body,
            "get-api");
}

TEST(Matcher, QuerylessRequestPrefersQuerylessRecording) {
  record::RecordStore store;
  store.add(make_exchange("http://h.test/p?long=query", "with-query"));
  store.add(make_exchange("http://h.test/p", "bare"));
  const Matcher matcher{store};
  EXPECT_EQ(matcher.respond(http::make_get("http://h.test/p")).body, "bare");
}

TEST(Matcher, DeterministicOnExactTies) {
  record::RecordStore store;
  store.add(make_exchange("http://h.test/p?x=1", "first"));
  store.add(make_exchange("http://h.test/p?x=1", "second"));  // duplicate
  const Matcher matcher{store};
  // Earliest recording wins, every time.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(matcher.respond(http::make_get("http://h.test/p?x=1")).body,
              "first");
  }
}

TEST(Matcher, EmptyStoreAlways404) {
  const record::RecordStore store;
  const Matcher matcher{store};
  EXPECT_EQ(matcher.indexed_exchanges(), 0u);
  EXPECT_EQ(matcher.respond(http::make_get("http://h.test/")).status, 404);
}

TEST(CommonQueryPrefix, Basics) {
  EXPECT_EQ(common_query_prefix("", ""), 0u);
  EXPECT_EQ(common_query_prefix("abc", "abc"), 3u);
  EXPECT_EQ(common_query_prefix("abc", "abd"), 2u);
  EXPECT_EQ(common_query_prefix("a=1&b=2", "a=1&c=3"), 4u);
  EXPECT_EQ(common_query_prefix("xyz", "abc"), 0u);
}

}  // namespace
}  // namespace mahimahi::replay
