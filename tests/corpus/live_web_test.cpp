#include "corpus/live_web.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"

namespace mahimahi::corpus {
namespace {

using namespace mahimahi::literals;

SiteSpec tiny_spec() {
  SiteSpec spec;
  spec.name = "live";
  spec.seed = 5;
  spec.server_count = 4;
  spec.object_count = 12;
  return spec;
}

struct LiveHarness {
  net::EventLoop loop;
  net::Fabric fabric{loop};
  GeneratedSite site;
  LiveWeb web;

  explicit LiveHarness(LiveWebConfig config = {})
      : site{generate_site(tiny_spec())},
        web{fabric, site, config, util::Rng{42}} {
    loop.set_event_limit(10'000'000);
  }
};

TEST(LiveWeb, OneOriginPerHostnamePlusWorkingDns) {
  LiveHarness h;
  EXPECT_EQ(h.web.origin_count(), h.site.hostnames.size());
  for (const auto& host : h.site.hostnames) {
    EXPECT_TRUE(h.web.dns_table().lookup(host).has_value()) << host;
  }
}

TEST(LiveWeb, ServesSiteContentVerbatim) {
  LiveHarness h;
  const auto& object = h.site.objects[0];
  const auto ip = h.web.dns_table().lookup(object.url.host);
  ASSERT_TRUE(ip.has_value());
  net::HttpClientConnection client{h.fabric, net::Address{*ip, 80}};
  std::optional<http::Response> got;
  client.fetch(http::make_get(object.url.to_string()),
               [&](http::Response r) { got = std::move(r); });
  h.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, object.body);
}

TEST(LiveWeb, UnknownPathGets404) {
  LiveHarness h;
  const auto ip = h.web.dns_table().lookup(h.site.hostnames[0]);
  net::HttpClientConnection client{h.fabric, net::Address{*ip, 80}};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://" + h.site.hostnames[0] + "/nope"),
               [&](http::Response r) { got = std::move(r); });
  h.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 404);
}

TEST(LiveWeb, PrimaryRttReflectsConfig) {
  LiveWebConfig config;
  config.primary_one_way = 20'000;
  config.variability_sigma = 0.0;
  LiveHarness h{config};
  EXPECT_EQ(h.web.primary_rtt(), 40_ms);
}

TEST(LiveWeb, OriginDelaysAreHeterogeneous) {
  LiveWebConfig config;
  config.variability_sigma = 0.0;
  LiveHarness h{config};
  // Fetch the same-size probe from two different origins and compare
  // handshake-to-response times — they should not all be identical.
  std::set<Microseconds> delays;
  for (const auto& host : h.site.hostnames) {
    const auto ip = h.web.dns_table().lookup(host);
    delays.insert(h.fabric.server_delay(*ip));
  }
  EXPECT_GT(delays.size(), 1u);
}

TEST(LiveWeb, WeatherVariesAcrossInstantiations) {
  net::EventLoop loop;
  const auto site = generate_site(tiny_spec());
  LiveWebConfig config;
  config.variability_sigma = 0.3;
  net::Fabric f1{loop};
  net::Fabric f2{loop};
  LiveWeb a{f1, site, config, util::Rng{1}};
  LiveWeb b{f2, site, config, util::Rng{2}};
  EXPECT_NE(a.primary_rtt(), b.primary_rtt());
}

TEST(LiveWeb, DnsResolutionWorksEndToEnd) {
  LiveHarness h;
  net::DnsClient resolver{h.fabric, h.web.dns_server_address()};
  std::optional<net::Ipv4> answer;
  resolver.resolve(h.site.hostnames[1],
                   [&](std::optional<net::Ipv4> ip) { answer = ip; });
  h.loop.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, *h.web.dns_table().lookup(h.site.hostnames[1]));
}

}  // namespace
}  // namespace mahimahi::corpus
