#include "corpus/site_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "web/discovery.hpp"

namespace mahimahi::corpus {
namespace {

SiteSpec small_spec() {
  SiteSpec spec;
  spec.name = "unit";
  spec.seed = 99;
  spec.server_count = 8;
  spec.object_count = 40;
  return spec;
}

TEST(SiteGenerator, HostnameCountMatchesSpec) {
  const auto site = generate_site(small_spec());
  EXPECT_EQ(site.hostnames.size(), 8u);
  std::set<std::string> unique{site.hostnames.begin(), site.hostnames.end()};
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(site.hostnames[0], "www.unit.test");
}

TEST(SiteGenerator, ObjectCountMatchesSpec) {
  const auto site = generate_site(small_spec());
  EXPECT_EQ(site.objects.size(), 40u);
  EXPECT_EQ(site.objects[0].kind, http::ResourceKind::kHtml);
  EXPECT_EQ(site.objects[0].url.host, "www.unit.test");
}

TEST(SiteGenerator, EveryHostServesAtLeastOneObject) {
  const auto site = generate_site(small_spec());
  std::set<std::string> serving;
  for (const auto& object : site.objects) {
    serving.insert(object.url.host);
  }
  EXPECT_EQ(serving.size(), site.hostnames.size());
}

TEST(SiteGenerator, DeterministicForSameSpec) {
  const auto a = generate_site(small_spec());
  const auto b = generate_site(small_spec());
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].url, b.objects[i].url);
    EXPECT_EQ(a.objects[i].body, b.objects[i].body);
  }
}

TEST(SiteGenerator, DifferentSeedsDiffer) {
  auto spec_b = small_spec();
  spec_b.seed = 100;
  const auto a = generate_site(small_spec());
  const auto b = generate_site(spec_b);
  EXPECT_NE(a.objects[0].body, b.objects[0].body);
}

TEST(SiteGenerator, AllObjectsReachableFromRootWithinDepth3) {
  const auto site = generate_site(small_spec());
  // Walk the real discovery path: parse bodies the way the browser does.
  std::map<std::string, const GeneratedObject*> by_url;
  for (const auto& object : site.objects) {
    by_url[object.url.to_string()] = &object;
  }
  std::set<std::string> visited;
  std::queue<std::pair<const GeneratedObject*, int>> frontier;
  frontier.emplace(&site.objects[0], 0);
  visited.insert(site.objects[0].url.to_string());
  int max_depth = 0;
  while (!frontier.empty()) {
    const auto [object, depth] = frontier.front();
    frontier.pop();
    max_depth = std::max(max_depth, depth);
    for (const auto& url :
         web::discover_subresources(object->kind, object->url, object->body)) {
      const auto it = by_url.find(url.to_string());
      ASSERT_NE(it, by_url.end()) << "dangling reference " << url.to_string();
      if (visited.insert(url.to_string()).second) {
        frontier.emplace(it->second, depth + 1);
      }
    }
  }
  EXPECT_EQ(visited.size(), site.objects.size()) << "unreachable objects";
  EXPECT_LE(max_depth, 3);
}

TEST(SiteGenerator, BodiesApproximateTargetSizes) {
  const auto site = generate_site(small_spec());
  for (const auto& object : site.objects) {
    EXPECT_GE(object.body.size(), 60u) << object.url.to_string();
    EXPECT_LE(object.body.size(), 5'000'000u);
  }
  EXPECT_GT(site.total_bytes(), 100'000u);
}

TEST(SiteGenerator, FindLocatesObjectsByHostAndTarget) {
  const auto site = generate_site(small_spec());
  const auto& object = site.objects[5];
  const auto* found =
      site.find(object.url.host, object.url.request_target());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &object);
  EXPECT_EQ(site.find("nosuch.test", "/"), nullptr);
}

TEST(SiteGenerator, SingleServerSiteIsValid) {
  SiteSpec spec = small_spec();
  spec.server_count = 1;
  spec.object_count = 5;
  const auto site = generate_site(spec);
  EXPECT_EQ(site.hostnames.size(), 1u);
  for (const auto& object : site.objects) {
    EXPECT_EQ(object.url.host, site.hostnames[0]);
  }
}

TEST(SiteGenerator, NamedProfilesHavePaperScale) {
  const auto cnbc = generate_site(cnbc_like_spec());
  const auto wikihow = generate_site(wikihow_like_spec());
  const auto nytimes = generate_site(nytimes_like_spec());
  // CNBC is the heaviest page (its Table 1 PLT is the largest).
  EXPECT_GT(cnbc.total_bytes(), wikihow.total_bytes());
  EXPECT_GT(cnbc.spec.server_count, wikihow.spec.server_count);
  EXPECT_GT(nytimes.spec.server_count, 20);
}

}  // namespace
}  // namespace mahimahi::corpus
