#include "corpus/alexa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/statistics.hpp"

namespace mahimahi::corpus {
namespace {

TEST(Alexa, ServerCountDistributionMatchesPaper) {
  util::Rng rng{2014};
  const auto counts = alexa_server_counts(rng, 500);
  ASSERT_EQ(counts.size(), 500u);

  util::Samples samples;
  int singles = 0;
  for (const int c : counts) {
    samples.add(c);
    if (c == 1) {
      ++singles;
    }
  }
  // Paper (§4): median 20, p95 51, exactly 9 single-server pages.
  EXPECT_EQ(singles, 9);
  EXPECT_NEAR(samples.median(), 20.0, 3.0);
  EXPECT_NEAR(samples.percentile(95), 51.0, 8.0);
  EXPECT_GE(samples.min(), 1.0);
}

TEST(Alexa, MultiOriginShareIsAbout98Percent) {
  util::Rng rng{2014};
  const auto counts = alexa_server_counts(rng, 500);
  const auto multi =
      std::count_if(counts.begin(), counts.end(), [](int c) { return c > 1; });
  EXPECT_NEAR(static_cast<double>(multi) / 500.0, 0.982, 0.01);
}

TEST(Alexa, DeterministicGivenSeed) {
  util::Rng a{7};
  util::Rng b{7};
  EXPECT_EQ(alexa_server_counts(a, 100), alexa_server_counts(b, 100));
}

TEST(Alexa, SmallCorpusScalesSingles) {
  util::Rng rng{3};
  const auto counts = alexa_server_counts(rng, 100);
  const auto singles = std::count(counts.begin(), counts.end(), 1);
  EXPECT_EQ(singles, 1);  // 9/500 scaled down
}

TEST(Alexa, SiteSpecCorrelatesObjectsWithServers) {
  util::Rng rng{11};
  const auto small = alexa_site_spec(0, 2, rng);
  const auto large = alexa_site_spec(1, 60, rng);
  EXPECT_LT(small.object_count, large.object_count);
  EXPECT_GE(small.object_count, 8);
  EXPECT_LE(large.object_count, 420);
  EXPECT_EQ(small.server_count, 2);
  EXPECT_EQ(large.server_count, 60);
  EXPECT_NE(small.name, large.name);
}

TEST(Alexa, SingleServerSpecsAreSmallPages) {
  util::Rng rng{13};
  const auto spec = alexa_site_spec(5, 1, rng);
  EXPECT_LE(spec.object_count, 18);
}

}  // namespace
}  // namespace mahimahi::corpus
