#include "net/bulk_probe.hpp"

#include <gtest/gtest.h>

#include "util/statistics.hpp"

namespace mahimahi::net {
namespace {

TEST(JainFairnessIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(util::jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness_index({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness_index({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness_index({3.0, 3.0, 3.0}), 1.0);
  // One flow has everything: index = 1/n.
  EXPECT_DOUBLE_EQ(util::jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(MultiBulkFlow, TwoIdenticalFlowsShareEvenly) {
  MultiBulkFlowSpec spec;
  spec.controllers = {"reno", "reno"};
  spec.duration = 10'000'000;  // 10 s
  spec.link_mbps = 8.0;
  const MultiBulkFlowReport report = run_multi_bulk_flow(spec);

  ASSERT_EQ(report.flows.size(), 2u);
  double total_share = 0.0;
  for (const auto& flow : report.flows) {
    EXPECT_EQ(flow.controller, "reno");
    EXPECT_GT(flow.bytes_delivered, 0u);
    total_share += flow.share;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-12);
  // Two identical loss-synchronized flows: close to even split.
  EXPECT_GT(report.jain_index, 0.9);
  EXPECT_LE(report.jain_index, 1.0);
  // Together they should saturate most of the 8 Mbit/s bottleneck.
  const double total_bps =
      report.flows[0].throughput_bps + report.flows[1].throughput_bps;
  EXPECT_GT(total_bps, 5.5e6);
  EXPECT_LT(total_bps, 8.5e6);
}

TEST(MultiBulkFlow, MixedFleetReportsEveryFlowAndValidIndex) {
  MultiBulkFlowSpec spec;
  spec.controllers = {"bbr", "cubic", "cubic"};
  spec.duration = 8'000'000;
  spec.link_mbps = 12.0;
  const MultiBulkFlowReport report = run_multi_bulk_flow(spec);

  ASSERT_EQ(report.flows.size(), 3u);
  EXPECT_EQ(report.flows[0].controller, "bbr");
  EXPECT_EQ(report.flows[1].controller, "cubic");
  EXPECT_EQ(report.flows[2].controller, "cubic");
  for (const auto& flow : report.flows) {
    EXPECT_GT(flow.bytes_delivered, 0u) << flow.controller << " starved";
  }
  EXPECT_GT(report.jain_index, 0.0);
  EXPECT_LE(report.jain_index, 1.0);
  EXPECT_GT(report.bottleneck.departures, 0u);
}

TEST(MultiBulkFlow, QueueDisciplineShapesTheBottleneck) {
  // Same fleet over droptail vs codel: the AQM must hold a visibly
  // shorter queue (that is its entire purpose).
  MultiBulkFlowSpec spec;
  spec.controllers = {"reno", "reno"};
  spec.duration = 8'000'000;
  spec.link_mbps = 6.0;

  spec.queue = QueueSpec{};  // infinite FIFO: bufferbloat
  const double fifo_p95 = run_multi_bulk_flow(spec).bottleneck.delay_p95_ms;
  spec.queue.discipline = "codel";
  const double codel_p95 = run_multi_bulk_flow(spec).bottleneck.delay_p95_ms;

  EXPECT_GT(fifo_p95, 0.0);
  EXPECT_LT(codel_p95, fifo_p95);
}

TEST(MultiBulkFlow, DeterministicAcrossRuns) {
  MultiBulkFlowSpec spec;
  spec.controllers = {"bbr", "cubic"};
  spec.duration = 5'000'000;
  spec.link_mbps = 10.0;
  spec.loss = 0.001;

  const MultiBulkFlowReport a = run_multi_bulk_flow(spec);
  const MultiBulkFlowReport b = run_multi_bulk_flow(spec);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].bytes_delivered, b.flows[i].bytes_delivered);
    EXPECT_EQ(a.flows[i].retransmissions, b.flows[i].retransmissions);
  }
  EXPECT_DOUBLE_EQ(a.jain_index, b.jain_index);
}

}  // namespace
}  // namespace mahimahi::net
