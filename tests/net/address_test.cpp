#include "net/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mahimahi::net {
namespace {

TEST(Ipv4, FormatAndParseRoundTrip) {
  const Ipv4 ip{10, 0, 0, 1};
  EXPECT_EQ(ip.to_string(), "10.0.0.1");
  const auto parsed = Ipv4::parse("10.0.0.1");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ip);
}

TEST(Ipv4, ParseRejectsBadInput) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
}

TEST(Ipv4, OrderingFollowsValue) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Address, FormatAndParseRoundTrip) {
  const Address addr{Ipv4{192, 168, 1, 10}, 8080};
  EXPECT_EQ(addr.to_string(), "192.168.1.10:8080");
  const auto parsed = Address::parse("192.168.1.10:8080");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(Address, ParseRejectsBadInput) {
  EXPECT_FALSE(Address::parse("192.168.1.10").has_value());
  EXPECT_FALSE(Address::parse("192.168.1.10:").has_value());
  EXPECT_FALSE(Address::parse("192.168.1.10:70000").has_value());
  EXPECT_FALSE(Address::parse(":80").has_value());
}

TEST(Address, HashDistinguishesPortAndIp) {
  std::unordered_set<Address> set;
  set.insert(Address{Ipv4{1, 2, 3, 4}, 80});
  set.insert(Address{Ipv4{1, 2, 3, 4}, 81});
  set.insert(Address{Ipv4{1, 2, 3, 5}, 80});
  EXPECT_EQ(set.size(), 3u);
}

TEST(AddressAllocator, HandsOutDistinctSequentialIps) {
  AddressAllocator alloc{Ipv4{10, 0, 0, 1}};
  const Ipv4 a = alloc.next_ip();
  const Ipv4 b = alloc.next_ip();
  EXPECT_EQ(a.to_string(), "10.0.0.1");
  EXPECT_EQ(b.to_string(), "10.0.0.2");
  // Octet rollover works (value-based increment).
  AddressAllocator alloc2{Ipv4{10, 0, 0, 255}};
  (void)alloc2.next_ip();
  EXPECT_EQ(alloc2.next_ip().to_string(), "10.0.1.0");
}

}  // namespace
}  // namespace mahimahi::net
