#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"

namespace mahimahi::net {
namespace {

using namespace mahimahi::literals;

const Address kServer{Ipv4{10, 0, 0, 1}, 80};

Packet make_packet(Address src, Address dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.tcp.payload = "x";
  return p;
}

struct FabricHarness {
  EventLoop loop;
  Fabric fabric{loop};
};

TEST(Fabric, DeliversToBoundServerEndpoint) {
  FabricHarness h;
  int delivered = 0;
  h.fabric.bind(Side::kServer, kServer, [&](Packet&&) { ++delivered; });
  const Address client = h.fabric.allocate_client_address();
  h.fabric.send(Side::kClient, make_packet(client, kServer));
  h.loop.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(h.fabric.delivered_packets(Side::kServer), 1u);
  EXPECT_EQ(h.fabric.undeliverable_packets(), 0u);
}

TEST(Fabric, DoubleBindThrows) {
  FabricHarness h;
  h.fabric.bind(Side::kServer, kServer, [](Packet&&) {});
  EXPECT_THROW(h.fabric.bind(Side::kServer, kServer, [](Packet&&) {}),
               std::invalid_argument);
  // Same address is fine on the *other* side (separate tables).
  h.fabric.bind(Side::kClient, kServer, [](Packet&&) {});
}

TEST(Fabric, UnbindStopsDelivery) {
  FabricHarness h;
  int delivered = 0;
  h.fabric.bind(Side::kServer, kServer, [&](Packet&&) { ++delivered; });
  h.fabric.unbind(Side::kServer, kServer);
  EXPECT_FALSE(h.fabric.bound(Side::kServer, kServer));
  h.fabric.send(Side::kClient, make_packet({}, kServer));
  h.loop.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(h.fabric.undeliverable_packets(), 1u);
}

TEST(Fabric, EphemeralAddressesAreUnique) {
  FabricHarness h;
  const Address a = h.fabric.allocate_client_address();
  const Address b = h.fabric.allocate_client_address();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ip, b.ip);  // one client host
  EXPECT_EQ(a.ip, h.fabric.client_ip());
}

TEST(Fabric, ServerIpsAreUnique) {
  FabricHarness h;
  EXPECT_NE(h.fabric.allocate_server_ip(), h.fabric.allocate_server_ip());
}

TEST(Fabric, PacketIdsAreAssignedAndIncrease) {
  FabricHarness h;
  std::vector<std::uint64_t> ids;
  h.fabric.bind(Side::kServer, kServer,
                [&](Packet&& p) { ids.push_back(p.id); });
  for (int i = 0; i < 3; ++i) {
    h.fabric.send(Side::kClient, make_packet({}, kServer));
  }
  h.loop.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
}

TEST(Fabric, ServerDelayAppliesBothWays) {
  FabricHarness h;
  const Ipv4 far_ip{10, 0, 0, 9};
  const Address far{far_ip, 80};
  h.fabric.set_server_delay(far_ip, 25_ms);
  EXPECT_EQ(h.fabric.server_delay(far_ip), 25_ms);
  EXPECT_EQ(h.fabric.server_delay(kServer.ip), 0);

  Microseconds arrival = -1;
  h.fabric.bind(Side::kServer, far, [&](Packet&&) { arrival = h.loop.now(); });
  const Address client = h.fabric.allocate_client_address();
  h.fabric.bind(Side::kClient, client,
                [&](Packet&&) { arrival = h.loop.now(); });

  // Client -> delayed server: pays the delay on ingress.
  h.fabric.send(Side::kClient, make_packet(client, far));
  h.loop.run();
  EXPECT_EQ(arrival, 25_ms);
  // Delayed server -> client: pays the delay on egress.
  arrival = -1;
  h.fabric.send(Side::kServer, make_packet(far, client));
  h.loop.run();
  EXPECT_EQ(arrival, 50_ms);  // 25 at entry earlier + 25 more now
}

TEST(Fabric, DefaultServerHandlerInterceptsUnboundOnly) {
  FabricHarness h;
  int intercepted = 0;
  int normal = 0;
  h.fabric.set_server_default([&](Packet&&) { ++intercepted; });
  h.fabric.bind(Side::kServer, kServer, [&](Packet&&) { ++normal; });

  h.fabric.send(Side::kClient, make_packet({}, kServer));  // bound
  h.fabric.send(Side::kClient,
                make_packet({}, Address{Ipv4{99, 9, 9, 9}, 443}));  // unbound
  h.loop.run();
  EXPECT_EQ(normal, 1);
  EXPECT_EQ(intercepted, 1);
  EXPECT_EQ(h.fabric.undeliverable_packets(), 0u);
}

TEST(Fabric, RedeliverSkipsDefaultHandler) {
  // redeliver() must not loop back into the default handler: if the
  // address is still unbound it counts undeliverable instead.
  FabricHarness h;
  int intercepted = 0;
  h.fabric.set_server_default([&](Packet&& p) {
    ++intercepted;
    h.fabric.redeliver(Side::kServer, std::move(p));  // still unbound
  });
  h.fabric.send(Side::kClient, make_packet({}, kServer));
  h.loop.run();
  EXPECT_EQ(intercepted, 1);  // no infinite interception loop
  EXPECT_EQ(h.fabric.undeliverable_packets(), 1u);
}

TEST(Fabric, TwoFabricsShareNothing) {
  EventLoop loop;
  Fabric a{loop};
  Fabric b{loop};
  int a_count = 0;
  int b_count = 0;
  a.bind(Side::kServer, kServer, [&](Packet&&) { ++a_count; });
  b.bind(Side::kServer, kServer, [&](Packet&&) { ++b_count; });  // no clash
  a.send(Side::kClient, make_packet({}, kServer));
  loop.run();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 0);
}

}  // namespace
}  // namespace mahimahi::net
