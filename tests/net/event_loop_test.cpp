#include "net/event_loop.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace mahimahi::net {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventLoop, ActionsCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      loop.schedule_in(10, chain);
    }
  };
  loop.schedule_at(0, chain);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelUnknownOrRunIsNoOp) {
  EventLoop loop;
  const auto id = loop.schedule_at(1, [] {});
  loop.run();
  loop.cancel(id);      // already ran
  loop.cancel(999999);  // never existed
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelFromWithinAction) {
  EventLoop loop;
  bool second_ran = false;
  EventLoop::EventId second = 0;
  loop.schedule_at(10, [&] { loop.cancel(second); });
  second = loop.schedule_at(20, [&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(50, [] {}), InternalError);
  EXPECT_THROW(loop.schedule_in(-1, [] {}), InternalError);
}

TEST(EventLoop, EventLimitGuardsRunaway) {
  EventLoop loop;
  loop.set_event_limit(100);
  std::function<void()> forever = [&] { loop.schedule_in(1, forever); };
  loop.schedule_at(0, forever);
  EXPECT_THROW(loop.run(), std::runtime_error);
}

TEST(EventLoop, PendingEventsTracksCancellations) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.cancel(a);  // double cancel is a no-op
  EXPECT_EQ(loop.pending_events(), 1u);
}

// --- lazy-cancellation / slot-reuse edge cases -------------------------------

TEST(EventLoop, CancelDuringDispatchOfSameTimestamp) {
  // The first event at t=10 cancels the second event at the same time —
  // the tombstone is discarded mid-dispatch without disturbing FIFO order.
  EventLoop loop;
  std::vector<int> order;
  EventLoop::EventId doomed = 0;
  loop.schedule_at(10, [&] {
    order.push_back(1);
    loop.cancel(doomed);
  });
  doomed = loop.schedule_at(10, [&] { order.push_back(2); });
  loop.schedule_at(10, [&] { order.push_back(3); });
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoop, CancelOwnIdFromInsideCallbackIsNoOp) {
  EventLoop loop;
  EventLoop::EventId self = 0;
  int runs = 0;
  self = loop.schedule_at(5, [&] {
    ++runs;
    loop.cancel(self);  // already dispatching: must be a no-op
  });
  loop.schedule_at(6, [&] { ++runs; });
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(runs, 2);
}

TEST(EventLoop, CancelOfAlreadyRunIdDoesNotKillSlotReuser) {
  // After an event runs, its arena slot is recycled. A stale cancel with
  // the old id must not touch whichever event now occupies the slot.
  EventLoop loop;
  const auto stale = loop.schedule_at(1, [] {});
  loop.run();
  bool second_ran = false;
  loop.schedule_at(2, [&] { second_ran = true; });  // likely reuses the slot
  loop.cancel(stale);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_TRUE(second_ran);
}

TEST(EventLoop, CancelOfCancelledIdDoesNotKillSlotReuser) {
  EventLoop loop;
  const auto cancelled = loop.schedule_at(10, [] {});
  loop.cancel(cancelled);
  loop.run();  // drains the tombstone, freeing the slot
  bool ran = false;
  loop.schedule_at(20, [&] { ran = true; });
  loop.cancel(cancelled);  // stale id, generation mismatch
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, RescheduleInsideCallback) {
  // The arm/disarm pattern from inside a callback: cancel the pending
  // timer and schedule a replacement, repeatedly.
  EventLoop loop;
  int timer_fired = 0;
  int steps = 0;
  EventLoop::EventId timer = 0;
  std::function<void()> step = [&] {
    loop.cancel(timer);
    timer = loop.schedule_in(100, [&] { ++timer_fired; });
    if (++steps < 10) {
      loop.schedule_in(1, step);
    }
  };
  loop.schedule_at(0, step);
  loop.run();
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(timer_fired, 1);  // only the last rearm survives
  EXPECT_EQ(loop.now(), 9 + 100);
}

TEST(EventLoop, RunUntilLandingBetweenTombstones) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(10); });
  const auto t20 = loop.schedule_at(20, [&] { order.push_back(20); });
  const auto t25 = loop.schedule_at(25, [&] { order.push_back(25); });
  loop.schedule_at(30, [&] { order.push_back(30); });
  loop.cancel(t20);
  loop.cancel(t25);
  // Deadline lands between the two tombstones: only t=10 runs, the dead
  // entries at 20/25 must not block or execute, and time advances exactly
  // to the deadline.
  EXPECT_EQ(loop.run_until(22), 1u);
  EXPECT_EQ(order, (std::vector<int>{10}));
  EXPECT_EQ(loop.now(), 22);
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{10, 30}));
}

TEST(EventLoop, CallbackLargerThanInlineBufferStillRuns) {
  // Captures beyond the inline capacity take the heap-boxed fallback;
  // behaviour (ordering, cancel) is identical.
  struct Big {
    std::array<char, EventLoop::kInlineActionBytes + 64> blob{};
  };
  static_assert(!EventLoop::Action::kFitsInline<decltype([b = Big{}] { (void)b; })>);
  EventLoop loop;
  int sum = 0;
  Big big;
  big.blob[0] = 7;
  loop.schedule_at(10, [big, &sum] { sum += big.blob[0]; });
  const auto doomed = loop.schedule_at(11, [big, &sum] { sum += 100; });
  loop.cancel(doomed);
  loop.run();
  EXPECT_EQ(sum, 7);
}

TEST(EventLoop, CancelStormOnMidDispatchTeardown) {
  // The resilience layer's teardown shape: a page finishing (or a session
  // dying) cancels every armed deadline timer at once, from inside a
  // callback, while some of those timers share the current timestamp.
  // None may fire afterwards, and the arena must recycle cleanly.
  EventLoop loop;
  struct Owner {
    EventLoop& loop;
    std::vector<EventLoop::EventId> deadlines;
    int fired{0};

    void arm(Microseconds at) {
      deadlines.push_back(loop.schedule_at(at, [this] { ++fired; }));
    }
    void teardown() {
      for (const auto id : deadlines) {
        loop.cancel(id);
      }
      deadlines.clear();
    }
  };
  Owner owner{loop};
  // The "page done" event is scheduled first, so FIFO order within t=100
  // dispatches it ahead of every same-timestamp deadline: the teardown
  // happens mid-dispatch with the whole cluster still pending.
  loop.schedule_at(100, [&] { owner.teardown(); });
  for (int i = 0; i < 300; ++i) {
    owner.arm(100 + (i % 7));  // clustered timestamps, many at t=100
  }
  loop.run();
  EXPECT_EQ(owner.fired, 0);  // teardown beat every deadline to the punch
  EXPECT_TRUE(owner.deadlines.empty());

  // The storm of tombstones must not poison later use: re-arm after the
  // teardown, on recycled slots, and fire normally.
  for (int i = 0; i < 50; ++i) {
    owner.arm(loop.now() + 10);
  }
  loop.run();
  EXPECT_EQ(owner.fired, 50);
}

TEST(EventLoop, RepeatedArmTeardownCyclesStayBalanced) {
  // Retry/backoff churn: arm a deadline, cancel it on "response", arm the
  // next — thousands of times. pending_events() must return to zero and
  // no stale timer may outlive its cycle.
  EventLoop loop;
  int stale_fires = 0;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    const auto deadline =
        loop.schedule_at(loop.now() + 500, [&] { ++stale_fires; });
    loop.schedule_at(loop.now() + 1, [] {});  // the "response" arrives
    loop.cancel(deadline);
    loop.run();
  }
  EXPECT_EQ(stale_fires, 0);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, HeapGrowthStressKeepsDeterministicOrder) {
  // Interleaved scheduling and cancellation across a growing heap and
  // arena: surviving events must run in exact (time, schedule-order).
  EventLoop loop;
  std::vector<std::pair<Microseconds, int>> executed;
  std::vector<EventLoop::EventId> ids;
  int seq = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 50; ++i) {
      const Microseconds at = (i * 37 + round * 11) % 97;  // colliding times
      const int tag = seq++;
      ids.push_back(loop.schedule_at(at, [&executed, at, tag] {
        executed.emplace_back(at, tag);
      }));
    }
    for (std::size_t i = round % 3; i < ids.size(); i += 3) {
      loop.cancel(ids[i]);  // repeated cancels of the same ids: no-ops
    }
  }
  loop.run();
  ASSERT_FALSE(executed.empty());
  for (std::size_t i = 1; i < executed.size(); ++i) {
    const bool ordered =
        executed[i - 1].first < executed[i].first ||
        (executed[i - 1].first == executed[i].first &&
         executed[i - 1].second < executed[i].second);
    ASSERT_TRUE(ordered) << "event " << i << " out of order";
  }
}

}  // namespace
}  // namespace mahimahi::net
