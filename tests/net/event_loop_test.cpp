#include "net/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace mahimahi::net {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventLoop, ActionsCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      loop.schedule_in(10, chain);
    }
  };
  loop.schedule_at(0, chain);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelUnknownOrRunIsNoOp) {
  EventLoop loop;
  const auto id = loop.schedule_at(1, [] {});
  loop.run();
  loop.cancel(id);      // already ran
  loop.cancel(999999);  // never existed
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoop, CancelFromWithinAction) {
  EventLoop loop;
  bool second_ran = false;
  EventLoop::EventId second = 0;
  loop.schedule_at(10, [&] { loop.cancel(second); });
  second = loop.schedule_at(20, [&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
  EXPECT_TRUE(loop.idle());
}

TEST(EventLoop, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(50, [] {}), InternalError);
  EXPECT_THROW(loop.schedule_in(-1, [] {}), InternalError);
}

TEST(EventLoop, EventLimitGuardsRunaway) {
  EventLoop loop;
  loop.set_event_limit(100);
  std::function<void()> forever = [&] { loop.schedule_in(1, forever); };
  loop.schedule_at(0, forever);
  EXPECT_THROW(loop.run(), std::runtime_error);
}

TEST(EventLoop, PendingEventsTracksCancellations) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending_events(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.cancel(a);  // double cancel is a no-op
  EXPECT_EQ(loop.pending_events(), 1u);
}

}  // namespace
}  // namespace mahimahi::net
