#include "net/link_log.hpp"

#include <gtest/gtest.h>

#include "net/event_loop.hpp"
#include "net/link.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::net {
namespace {

using namespace mahimahi::literals;

Packet make_packet(std::uint64_t id, std::size_t payload) {
  Packet p;
  p.id = id;
  p.tcp.payload = std::string(payload, 'x');
  return p;
}

TEST(LinkLog, TextFormatRoundTrip) {
  LinkLog log;
  log.arrival(5_ms, 1500, 1);
  log.departure(9_ms, 1500, 1);
  log.drop(12_ms, 500, 2);
  const std::string text = log.to_text();
  EXPECT_EQ(text, "5 + 1500\n9 - 1500\n12 d 500\n");
  const LinkLog parsed = LinkLog::parse(text);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.events()[0].kind, LinkLogEvent::Kind::kArrival);
  EXPECT_EQ(parsed.events()[1].kind, LinkLogEvent::Kind::kDeparture);
  EXPECT_EQ(parsed.events()[2].kind, LinkLogEvent::Kind::kDrop);
  EXPECT_EQ(parsed.events()[2].bytes, 500u);
}

TEST(LinkLog, ParseRejectsGarbage) {
  EXPECT_THROW(LinkLog::parse("5 +\n"), std::invalid_argument);
  EXPECT_THROW(LinkLog::parse("x + 1500\n"), std::invalid_argument);
  EXPECT_THROW(LinkLog::parse("5 ? 1500\n"), std::invalid_argument);
  EXPECT_THROW(LinkLog::parse("5 + banana\n"), std::invalid_argument);
  // Blank lines and comments are fine.
  EXPECT_EQ(LinkLog::parse("# header\n\n").size(), 0u);
}

TEST(LinkLogSummary, CountsAndDelays) {
  LinkLog log;
  log.arrival(0, 1500, 1);
  log.arrival(0, 1500, 2);
  log.departure(10_ms, 1500, 1);
  log.departure(30_ms, 1500, 2);
  log.arrival(40_ms, 700, 3);
  log.drop(40_ms, 700, 3);
  const auto summary = summarize_link_log(log);
  EXPECT_EQ(summary.arrivals, 3u);
  EXPECT_EQ(summary.departures, 2u);
  EXPECT_EQ(summary.drops, 1u);
  EXPECT_EQ(summary.bytes_delivered, 3000u);
  EXPECT_DOUBLE_EQ(summary.delay_p50_ms, 20.0);  // delays 10 and 30
  EXPECT_DOUBLE_EQ(summary.delay_max_ms, 30.0);
}

TEST(LinkLogSummary, EmptyLogIsZeroes) {
  const auto summary = summarize_link_log(LinkLog{});
  EXPECT_EQ(summary.arrivals, 0u);
  EXPECT_EQ(summary.bytes_delivered, 0u);
}

TEST(LinkLogSummary, ThroughputBins) {
  LinkLog log;
  // 10 x 1500B departures in the first half-second bin.
  for (int i = 0; i < 10; ++i) {
    log.arrival(i * 10_ms, 1500, 0);
    log.departure(i * 10_ms + 1_ms, 1500, 0);
  }
  const auto summary = summarize_link_log(log, 500_ms);
  ASSERT_GE(summary.throughput_bins_bps.size(), 1u);
  // 15000 bytes in 0.5 s = 240 kbit/s.
  EXPECT_NEAR(summary.throughput_bins_bps[0], 240e3, 1.0);
}

TEST(TraceLinkLogging, RecordsArrivalsDeparturesAndDrops) {
  EventLoop loop;
  TraceLink link{loop, trace::PacketTrace{{10_ms, 20_ms}},
                 trace::PacketTrace{{10_ms, 20_ms}},
                 QueueSpec{.discipline = "droptail", .max_packets = 1},
                 QueueSpec{}};
  link.enable_logging();
  link.set_forward(Direction::kUplink, [](Packet&&) {});
  link.set_forward(Direction::kDownlink, [](Packet&&) {});

  loop.schedule_at(0, [&] {
    link.process(make_packet(1, 100), Direction::kUplink);
    link.process(make_packet(2, 100), Direction::kUplink);  // dropped (cap 1)
  });
  loop.run();

  const LinkLog& up = link.log(Direction::kUplink);
  const auto summary = summarize_link_log(up);
  EXPECT_EQ(summary.arrivals, 2u);
  EXPECT_EQ(summary.departures, 1u);
  EXPECT_EQ(summary.drops, 1u);
  // Packet 1 arrived at 0, departed at the 10 ms opportunity.
  EXPECT_DOUBLE_EQ(summary.delay_p50_ms, 10.0);
}

TEST(TraceLinkLogging, MatchesDeliveredCounters) {
  EventLoop loop;
  TraceLink link{loop, trace::constant_rate(10e6, 1_s),
                 trace::constant_rate(10e6, 1_s)};
  link.enable_logging();
  link.set_forward(Direction::kUplink, [](Packet&&) {});
  link.set_forward(Direction::kDownlink, [](Packet&&) {});
  loop.schedule_at(0, [&] {
    for (int i = 0; i < 20; ++i) {
      link.process(make_packet(static_cast<std::uint64_t>(i), 1000),
                   Direction::kUplink);
    }
  });
  loop.run();
  const auto summary = summarize_link_log(link.log(Direction::kUplink));
  EXPECT_EQ(summary.departures, link.uplink().delivered_packets());
  EXPECT_EQ(summary.bytes_delivered, link.uplink().delivered_bytes());
}

TEST(LoggingTap, CountsBothDirections) {
  EventLoop loop;
  Chain chain;
  auto tap = std::make_unique<LoggingTap>();
  tap->set_clock(&loop);
  LoggingTap& ref = *tap;
  chain.push_back(std::move(tap));
  chain.set_outputs([](Packet&&) {}, [](Packet&&) {});
  chain.send_uplink(make_packet(1, 100));
  chain.send_uplink(make_packet(2, 100));
  chain.send_downlink(make_packet(3, 100));
  EXPECT_EQ(summarize_link_log(ref.log(Direction::kUplink)).arrivals, 2u);
  EXPECT_EQ(summarize_link_log(ref.log(Direction::kDownlink)).arrivals, 1u);
}

}  // namespace
}  // namespace mahimahi::net
