#include "net/http_session.hpp"

#include <gtest/gtest.h>

#include "net/sim_fixture.hpp"
#include "trace/synthesis.hpp"

namespace mahimahi::net {
namespace {

using testing::SimNet;
using namespace mahimahi::literals;

const Address kServerAddr{Ipv4{10, 0, 0, 1}, 80};

http::Response echo_handler(const http::Request& request) {
  http::Response response;
  response.status = 200;
  response.reason = "OK";
  response.headers.add("Content-Type", "text/plain");
  response.body = "echo:" + request.target;
  return response;
}

TEST(HttpSession, SimpleFetch) {
  SimNet net;
  net.add_delay(10_ms);
  HttpServer server{net.fabric, kServerAddr, echo_handler};
  HttpClientConnection client{net.fabric, kServerAddr};

  std::optional<http::Response> got;
  client.fetch(http::make_get("http://10.0.0.1/index.html"),
               [&](http::Response r) { got = std::move(r); });
  net.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, 200);
  EXPECT_EQ(got->body, "echo:/index.html");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpSession, KeepAliveReusesOneConnection) {
  SimNet net;
  net.add_delay(5_ms);
  HttpServer server{net.fabric, kServerAddr, echo_handler};
  HttpClientConnection client{net.fabric, kServerAddr};

  int responses = 0;
  for (int i = 0; i < 5; ++i) {
    client.fetch(http::make_get("http://10.0.0.1/obj" + std::to_string(i)),
                 [&](http::Response r) {
                   EXPECT_EQ(r.status, 200);
                   ++responses;
                 });
  }
  net.loop.run();
  EXPECT_EQ(responses, 5);
  EXPECT_EQ(server.total_accepted(), 1u);  // one TCP connection
}

TEST(HttpSession, ResponsesArriveInRequestOrder) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, echo_handler};
  HttpClientConnection client{net.fabric, kServerAddr};
  std::vector<std::string> bodies;
  for (int i = 0; i < 4; ++i) {
    client.fetch(http::make_get("http://10.0.0.1/o" + std::to_string(i)),
                 [&](http::Response r) { bodies.push_back(r.body); });
  }
  net.loop.run();
  ASSERT_EQ(bodies.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bodies[static_cast<std::size_t>(i)],
              "echo:/o" + std::to_string(i));
  }
}

TEST(HttpSession, ServerProcessingDelayDefersResponse) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, echo_handler,
                    /*processing_delay=*/40_ms};
  HttpClientConnection client{net.fabric, kServerAddr};
  Microseconds done_at = 0;
  client.fetch(http::make_get("http://10.0.0.1/x"),
               [&](http::Response) { done_at = net.loop.now(); });
  net.loop.run();
  EXPECT_GE(done_at, 40_ms);
}

TEST(HttpSession, LargeResponseOverSlowLink) {
  SimNet net;
  net.add_link(trace::constant_rate(10e6, 1_s), trace::constant_rate(1e6, 2_s));
  const std::string big(250'000, 'B');  // 2 Mbit
  HttpServer server{net.fabric, kServerAddr,
                    [&](const http::Request&) { return http::make_ok(big); }};
  HttpClientConnection client{net.fabric, kServerAddr};
  std::optional<http::Response> got;
  Microseconds done_at = 0;
  client.fetch(http::make_get("http://10.0.0.1/big"), [&](http::Response r) {
    got = std::move(r);
    done_at = net.loop.now();
  });
  net.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body.size(), big.size());
  EXPECT_GT(done_at, 2_s);  // 2 Mbit over 1 Mbit/s
  EXPECT_LT(done_at, 3_s);
}

TEST(HttpSession, ConnectionCloseResponseEndsConnection) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, [](const http::Request&) {
                      http::Response r = http::make_ok("done");
                      r.headers.add("Connection", "close");
                      return r;
                    }};
  HttpClientConnection client{net.fabric, kServerAddr};
  std::optional<http::Response> got;
  client.fetch(http::make_get("http://10.0.0.1/"),
               [&](http::Response r) { got = std::move(r); });
  net.loop.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(client.alive());
}

TEST(HttpSession, ErrorCallbackOnQueuedRequestsWhenServerCloses) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, [](const http::Request&) {
                      http::Response r = http::make_ok("one");
                      r.headers.add("Connection", "close");
                      return r;
                    }};
  std::string error;
  HttpClientConnection client{net.fabric, kServerAddr,
                              [&](const std::string& reason) { error = reason; }};
  int ok = 0;
  client.fetch(http::make_get("http://10.0.0.1/a"),
               [&](http::Response) { ++ok; });
  client.fetch(http::make_get("http://10.0.0.1/b"),
               [&](http::Response) { ++ok; });
  net.loop.run();
  EXPECT_EQ(ok, 1);
  EXPECT_FALSE(error.empty());
}

TEST(HttpSession, CloseWhenIdleSendsFin) {
  SimNet net;
  HttpServer server{net.fabric, kServerAddr, echo_handler};
  HttpClientConnection client{net.fabric, kServerAddr};
  bool done = false;
  client.fetch(http::make_get("http://10.0.0.1/x"),
               [&](http::Response) { done = true; });
  client.close_when_idle();
  net.loop.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(client.alive());
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(HttpSession, PostBodyReachesHandler) {
  SimNet net;
  std::string seen_body;
  HttpServer server{net.fabric, kServerAddr, [&](const http::Request& r) {
                      seen_body = r.body;
                      return http::make_ok("ok");
                    }};
  HttpClientConnection client{net.fabric, kServerAddr};
  http::Request post;
  post.method = http::Method::kPost;
  post.target = "/submit";
  post.headers.add("Host", "10.0.0.1");
  post.body = std::string(5000, 'p');
  bool done = false;
  client.fetch(std::move(post), [&](http::Response) { done = true; });
  net.loop.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(seen_body, std::string(5000, 'p'));
}

TEST(HttpSession, ManyParallelConnectionsAreIsolated) {
  SimNet net;
  net.add_delay(5_ms);
  HttpServer server{net.fabric, kServerAddr, echo_handler};
  std::vector<std::unique_ptr<HttpClientConnection>> clients;
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    clients.push_back(
        std::make_unique<HttpClientConnection>(net.fabric, kServerAddr));
    clients.back()->fetch(
        http::make_get("http://10.0.0.1/c" + std::to_string(i)),
        [&responses](http::Response r) {
          EXPECT_EQ(r.status, 200);
          ++responses;
        });
  }
  net.loop.run();
  EXPECT_EQ(responses, 20);
  EXPECT_EQ(server.total_accepted(), 20u);
}

}  // namespace
}  // namespace mahimahi::net
